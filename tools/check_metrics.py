#!/usr/bin/env python3
"""Lint a Prometheus text exposition (dbspd's GET /metrics) and/or a
flight-recorder trace dump (dbspd's GET /traces).

Metrics checks, against one scrape (a URL or a file) and optionally a
second scrape of the same URL:

  * every exposed series parses as ``name{labels} value``;
  * metric and label names stay inside the Prometheus charset;
  * every family has exactly one ``# TYPE`` line, placed before its
    samples, with a known type;
  * histogram families expose ``_bucket`` series whose ``le`` counts are
    cumulative (non-decreasing, ending at ``+Inf`` == ``_count``);
  * counters never decrease between the two scrapes (monotonicity — the
    property Counter::sync_to exists to protect).

Trace checks (a target ending in ``/traces`` or ``.json``):

  * the document has the ``traces``/``recorded_total``/``dropped_total``
    shape with ids rendered as decimal strings;
  * span ``start_us`` offsets are monotone within each trace entry and
    bounded by the entry's duration;
  * span parent ids are referentially sound: each span's ``parent_span``
    is 0, the entry's propagated parent, or a sibling span of the entry.

Usage:
  check_metrics.py http://127.0.0.1:7412/metrics   # two scrapes, full lint
  check_metrics.py scrape.txt                      # single-scrape lint
  check_metrics.py http://127.0.0.1:7412/traces    # trace-dump lint
  check_metrics.py dump.json                       # trace-dump file lint
  check_metrics.py http://h:p/metrics http://h:p/traces   # both

Exit status: 0 clean, 1 lint findings, 2 scrape/read failure.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.request

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)(?:\s+\d+)?$"
)
LABEL_RE = re.compile(r'(?P<k>[^=,]+)="(?P<v>(?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fetch(target: str) -> str:
    if target.startswith("http://") or target.startswith("https://"):
        with urllib.request.urlopen(target, timeout=10) as resp:
            ctype = resp.headers.get("Content-Type", "")
            if "text/plain" not in ctype:
                raise RuntimeError(f"unexpected Content-Type: {ctype!r}")
            return resp.read().decode("utf-8")
    with open(target, encoding="utf-8") as f:
        return f.read()


def family_of(series_name: str) -> str:
    """The family a series belongs to (histogram suffixes stripped)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if series_name.endswith(suffix):
            return series_name[: -len(suffix)]
    return series_name


class Scrape:
    def __init__(self, text: str):
        self.types: dict[str, str] = {}
        # (name, sorted-label-tuple) -> float value
        self.samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        self.errors: list[str] = []
        self.order_errors: list[str] = []
        seen_samples: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line or line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                parts = line.split()
                if len(parts) != 4:
                    self.errors.append(f"line {lineno}: malformed TYPE line")
                    continue
                _, _, fam, typ = parts
                if typ not in KNOWN_TYPES:
                    self.errors.append(f"line {lineno}: unknown type '{typ}'")
                if fam in self.types:
                    self.errors.append(f"line {lineno}: duplicate TYPE for '{fam}'")
                if fam in seen_samples:
                    self.order_errors.append(
                        f"line {lineno}: TYPE for '{fam}' after its samples")
                self.types[fam] = typ
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                self.errors.append(f"line {lineno}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            if not METRIC_NAME_RE.match(name):
                self.errors.append(f"line {lineno}: bad metric name '{name}'")
                continue
            labels = []
            if m.group("labels"):
                for lm in LABEL_RE.finditer(m.group("labels")):
                    k = lm.group("k")
                    if not LABEL_NAME_RE.match(k):
                        self.errors.append(
                            f"line {lineno}: bad label name '{k}' on '{name}'")
                    labels.append((k, lm.group("v")))
            try:
                value = float(m.group("value"))
            except ValueError:
                self.errors.append(
                    f"line {lineno}: non-numeric value on '{name}'")
                continue
            key = (name, tuple(sorted(labels)))
            if key in self.samples:
                self.errors.append(f"line {lineno}: duplicate series {key}")
            self.samples[key] = value
            seen_samples.add(family_of(name))
        self.check_families()

    def check_families(self) -> None:
        untyped = set()
        for (name, _labels) in self.samples:
            fam = family_of(name)
            if fam not in self.types and name not in self.types:
                untyped.add(name)
        for name in sorted(untyped):
            self.errors.append(f"series '{name}' has no TYPE line")
        # Histogram coherence: cumulative le buckets ending at +Inf==count.
        for fam, typ in self.types.items():
            if typ != "histogram":
                continue
            groups: dict[tuple[tuple[str, str], ...], dict[float, float]] = {}
            for (name, labels), value in self.samples.items():
                if name != fam + "_bucket":
                    continue
                le = None
                rest = []
                for k, v in labels:
                    if k == "le":
                        le = float("inf") if v == "+Inf" else float(v)
                    else:
                        rest.append((k, v))
                if le is None:
                    self.errors.append(f"'{fam}_bucket' sample without le")
                    continue
                groups.setdefault(tuple(rest), {})[le] = value
            for rest, buckets in groups.items():
                bounds = sorted(buckets)
                counts = [buckets[b] for b in bounds]
                if any(b > a + 1e-9 for a, b in zip(counts[1:], counts)):
                    self.errors.append(
                        f"'{fam}' {dict(rest)}: buckets not cumulative")
                if bounds and bounds[-1] != float("inf"):
                    self.errors.append(f"'{fam}' {dict(rest)}: no +Inf bucket")
                total = self.samples.get((fam + "_count", tuple(sorted(rest))))
                if total is not None and counts and counts[-1] != total:
                    self.errors.append(
                        f"'{fam}' {dict(rest)}: +Inf bucket {counts[-1]} != "
                        f"_count {total}")


DECIMAL_ID_RE = re.compile(r"^\d+$")


def fetch_json(target: str) -> dict:
    if target.startswith("http://") or target.startswith("https://"):
        with urllib.request.urlopen(target, timeout=10) as resp:
            ctype = resp.headers.get("Content-Type", "")
            if "json" not in ctype:
                raise RuntimeError(f"unexpected Content-Type: {ctype!r}")
            return json.loads(resp.read().decode("utf-8"))
    with open(target, encoding="utf-8") as f:
        return json.load(f)


def check_id(errors: list[str], where: str, key: str, value) -> str | None:
    """Ids travel as decimal strings (u64 overflows a double-parsing JSON
    reader). Returns the id, or None after reporting."""
    if not isinstance(value, str) or not DECIMAL_ID_RE.match(value):
        errors.append(f"{where}: {key} is {value!r}, want a decimal string")
        return None
    return value


def check_traces(doc) -> list[str]:
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    for key in ("traces", "recorded_total", "dropped_total"):
        if key not in doc:
            errors.append(f"trace document missing '{key}'")
    traces = doc.get("traces", [])
    if not isinstance(traces, list):
        return errors + ["'traces' is not a list"]
    for key in ("recorded_total", "dropped_total"):
        total = doc.get(key, 0)
        if not isinstance(total, int) or total < 0:
            errors.append(f"'{key}' is {total!r}, want a non-negative integer")
    if isinstance(doc.get("recorded_total"), int) and len(traces) > doc["recorded_total"]:
        errors.append(
            f"{len(traces)} trace entries exceed recorded_total "
            f"{doc['recorded_total']}")
    for i, trace in enumerate(traces):
        where = f"traces[{i}]"
        if not isinstance(trace, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("trace_id", "parent_span", "sampled", "start_unix_us",
                    "duration_us", "spans"):
            if key not in trace:
                errors.append(f"{where}: missing '{key}'")
        trace_id = check_id(errors, where, "trace_id", trace.get("trace_id", ""))
        if trace_id == "0":
            errors.append(f"{where}: trace_id 0 (the no-trace sentinel)")
        trace_parent = check_id(
            errors, where, "parent_span", trace.get("parent_span", "0"))
        if not isinstance(trace.get("sampled"), bool):
            errors.append(f"{where}: 'sampled' is not a bool")
        spans = trace.get("spans", [])
        if not isinstance(spans, list):
            errors.append(f"{where}: 'spans' is not a list")
            continue
        span_ids = set()
        for j, span in enumerate(spans):
            if isinstance(span, dict):
                sid = check_id(errors, f"{where}.spans[{j}]", "span_id",
                               span.get("span_id", ""))
                if sid is not None:
                    span_ids.add(sid)
        prev_start = -1
        for j, span in enumerate(spans):
            swhere = f"{where}.spans[{j}]"
            if not isinstance(span, dict):
                errors.append(f"{swhere}: not an object")
                continue
            stage = span.get("stage")
            if not isinstance(stage, str) or not stage:
                errors.append(f"{swhere}: missing stage name")
            for key in ("start_us", "duration_us", "detail"):
                v = span.get(key)
                if not isinstance(v, int) or v < 0:
                    errors.append(
                        f"{swhere}: '{key}' is {v!r}, want a non-negative "
                        "integer")
            start = span.get("start_us")
            if isinstance(start, int):
                if start < prev_start:
                    errors.append(
                        f"{swhere}: start_us {start} after a span starting at "
                        f"{prev_start} (spans must be sorted by offset)")
                prev_start = max(prev_start, start)
            parent = check_id(errors, swhere, "parent_span",
                              span.get("parent_span", "0"))
            if parent is not None and parent != "0" and parent != trace_parent \
                    and parent not in span_ids:
                errors.append(
                    f"{swhere}: parent_span {parent} is neither 0, the "
                    "entry's propagated parent, nor a sibling span id")
    return errors


def is_traces_target(target: str) -> bool:
    return target.rstrip("/").endswith("/traces") or target.endswith(".json")


def run_traces(target: str) -> int:
    try:
        doc = fetch_json(target)
    except Exception as e:  # noqa: BLE001 - report and exit
        print(f"check_metrics: trace fetch failed: {e}", file=sys.stderr)
        return 2
    errors = check_traces(doc)
    n = len(doc.get("traces", [])) if isinstance(doc, dict) else 0
    spans = sum(len(t.get("spans", [])) for t in doc.get("traces", [])
                if isinstance(t, dict)) if isinstance(doc, dict) else 0
    print(f"check_metrics: {n} trace entries, {spans} spans, "
          f"recorded_total={doc.get('recorded_total')}, "
          f"dropped_total={doc.get('dropped_total')}")
    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    return 1 if errors else 0


def run_metrics(target: str) -> int:
    try:
        first = Scrape(fetch(target))
    except Exception as e:  # noqa: BLE001 - report and exit
        print(f"check_metrics: scrape failed: {e}", file=sys.stderr)
        return 2
    errors = list(first.errors) + list(first.order_errors)

    if target.startswith("http"):
        time.sleep(0.2)
        try:
            second = Scrape(fetch(target))
        except Exception as e:  # noqa: BLE001
            print(f"check_metrics: second scrape failed: {e}", file=sys.stderr)
            return 2
        errors += second.errors + second.order_errors
        # Counter monotonicity across the two scrapes.
        for key, before in first.samples.items():
            name, _labels = key
            fam = family_of(name)
            typ = first.types.get(fam) or first.types.get(name)
            is_monotone = typ == "counter" or (
                typ == "histogram" and not name.endswith("_sum"))
            if not is_monotone:
                continue
            after = second.samples.get(key)
            if after is not None and after < before:
                errors.append(
                    f"counter '{key}' decreased between scrapes: "
                    f"{before} -> {after}")
        print(f"check_metrics: {len(second.samples)} series, "
              f"{len(second.types)} families, 2 scrapes")
    else:
        print(f"check_metrics: {len(first.samples)} series, "
              f"{len(first.types)} families, 1 scrape")

    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    return 1 if errors else 0


def main() -> int:
    targets = sys.argv[1:]
    if not targets or len(targets) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for target in targets:
        rc = run_traces(target) if is_traces_target(target) else run_metrics(target)
        status = max(status, rc)
    return status


if __name__ == "__main__":
    sys.exit(main())
