#!/usr/bin/env python3
"""Run the dbsp micro benchmarks (plus a scaled-down fig1 sweep) and emit a
machine-readable BENCH_micro.json, run the durable-store benchmarks
(WAL append / snapshot / crash-recovery replay throughput) into
BENCH_store.json, run the network-edge benchmarks (ping RTT, publish and
publish_batch throughput through an in-process NetServer over loopback
TCP) into BENCH_net.json, run the aggregated-routing scale sweep
(micro_routing's subscription-population sweep with sub-linearity and
latency gates, plus the micro_covering pairwise baseline) into
BENCH_routing.json, then run the scenario soak (all three workload
domains through churn + flash crowd + pruning maintenance +
kill-and-recover) and emit BENCH_scenario.json.

The JSON files are the repo's perf trajectory record: each entry carries
the benchmark name, events/sec, and ns/event (micro) or events/sec,
churn ops/sec, per-phase memory, recovery timings/replay counts, and the
notification-exactness flag (scenario) so later PRs can diff numbers
against this baseline. A scenario oracle mismatch fails the run. Usage:

    cmake --build build --target bench_runner          # via CMake
    tools/bench_runner.py --build-dir build            # directly
    tools/bench_runner.py --build-dir build --quick    # CI smoke settings
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

MICRO_BENCHES = [
    "micro_api",
    "micro_filter",
    "micro_metrics",
    "micro_pruning",
    "micro_selectivity",
    "micro_sharded",
    "micro_trace",
]


def host_info(context):
    """The host block of every BENCH_*.json. Google Benchmark's context
    provides num_cpus/mhz_per_cpu, but both are null when the first binary
    ran without JSON context (or the runner summarized non-benchmark
    sources); fall back to os.cpu_count() and /proc/cpuinfo so the
    perf-trajectory record always says what machine produced it."""
    num_cpus = (context or {}).get("num_cpus")
    if num_cpus is None:
        num_cpus = os.cpu_count()
    mhz_per_cpu = (context or {}).get("mhz_per_cpu")
    if mhz_per_cpu is None:
        try:
            with open("/proc/cpuinfo") as f:
                for line in f:
                    if line.lower().startswith("cpu mhz"):
                        mhz_per_cpu = round(float(line.split(":", 1)[1]), 1)
                        break
        except (OSError, ValueError):
            pass
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "num_cpus": num_cpus,
        "mhz_per_cpu": mhz_per_cpu,
    }

# Scaled-down fig1 workload: big enough to exercise the full pipeline
# (training, pruning grid, filtering), small enough for a CI smoke run.
FIG1_ENV = {
    "DBSP_SUBS": "2000",
    "DBSP_EVENTS": "500",
    "DBSP_TRAINING_EVENTS": "1000",
    "DBSP_STEP_PCT": "25",
}

# Quick-mode scenario soak: same phase structure, smaller population.
SCENARIO_QUICK_ENV = {
    "DBSP_SCENARIO_SUBS": "400",
    "DBSP_SCENARIO_EVENTS": "250",
}


def find_binary(build_dir, name):
    for candidate in (
        os.path.join(build_dir, "bench", name),
        os.path.join(build_dir, name),
    ):
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return candidate
    return None


def run_micro(binary, quick):
    """Run one Google-Benchmark binary with JSON output and normalize it."""
    cmd = [binary, "--benchmark_format=json"]
    if quick:
        # Short min-time, and skip the large-argument variants (10k/50k subs).
        # micro_api, micro_metrics, and micro_trace keep a longer floor even
        # in quick mode: their outputs are ratios (direct-vs-facade, metrics
        # on-vs-off, tracing on-vs-off), and single-iteration timings are too
        # noisy to hold the documented <= 5% overhead contracts.
        ratio_bench = os.path.basename(binary) in (
            "micro_api", "micro_metrics", "micro_trace")
        min_time = "0.5" if ratio_bench else "0.05"
        cmd += [f"--benchmark_min_time={min_time}", "--benchmark_filter=-/(10000|50000)$"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{cmd[0]} exited with {proc.returncode}")
    report = json.loads(proc.stdout)
    out = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        ns_per_event = b.get("real_time", 0.0) * scale
        events_per_sec = b.get("items_per_second")
        if events_per_sec is None and ns_per_event > 0:
            events_per_sec = 1e9 / ns_per_event
        out.append(
            {
                "source": os.path.basename(binary),
                "name": b["name"],
                "ns_per_event": ns_per_event,
                "events_per_sec": events_per_sec,
                "iterations": b.get("iterations"),
            }
        )
    return out, report.get("context", {})


def sharded_speedup(rows):
    """Summarize the micro_sharded sweep: events/sec per shard count and the
    speedup of each shard count over the 1-shard baseline. Wall-clock, so the
    speedup only materializes on multi-core hosts (see host.num_cpus)."""
    per_shards = {}
    for row in rows:
        name = row.get("name", "")
        if not name.startswith("BM_ShardedMatchBatch/"):
            continue
        shards = name.split("/")[1]
        if shards.isdigit() and row.get("events_per_sec"):
            per_shards[int(shards)] = row["events_per_sec"]
    if 1 not in per_shards:
        return None
    base = per_shards[1]
    return {
        "events_per_sec_by_shards": {str(k): v for k, v in sorted(per_shards.items())},
        "speedup_over_1_shard": {
            str(k): round(v / base, 3) for k, v in sorted(per_shards.items())
        },
    }


def api_overhead(rows):
    """Summarize micro_api: facade (PubSub::publish_batch, no callbacks)
    vs direct ShardedEngine::match_batch on the same workload, per shard
    count. facade_overhead_pct > 0 means the facade is slower; the public
    API contract keeps it within a few percent."""
    direct, facade = {}, {}
    for row in rows:
        name = row.get("name", "")
        eps = row.get("events_per_sec")
        if not eps:
            continue
        parts = name.split("/")
        if parts[0] == "BM_DirectMatchBatch" and parts[1].isdigit():
            direct[int(parts[1])] = eps
        elif parts[0] == "BM_PubSubPublishBatch" and parts[1].isdigit():
            facade[int(parts[1])] = eps
    common = sorted(set(direct) & set(facade))
    if not common:
        return None
    return {
        "events_per_sec_direct": {str(k): direct[k] for k in common},
        "events_per_sec_facade": {str(k): facade[k] for k in common},
        "facade_overhead_pct": {
            str(k): round((direct[k] / facade[k] - 1.0) * 100.0, 2) for k in common
        },
    }


def metrics_overhead(rows):
    """Summarize micro_metrics: the same publish_batch workload with the
    metrics registry live (default sampling) vs disabled, per shard count,
    plus what one registry scrape costs. overhead_pct > 0 means metrics-on
    is slower; the documented contract keeps it <= 5%."""
    on, off = {}, {}
    scrape_cost_us = None
    for row in rows:
        name = row.get("name", "")
        parts = name.split("/")
        if parts[0] == "BM_MetricsSnapshot" and row.get("ns_per_event"):
            scrape_cost_us = round(row["ns_per_event"] / 1e3, 3)
            continue
        eps = row.get("events_per_sec")
        if not eps or len(parts) < 2 or not parts[1].isdigit():
            continue
        if parts[0] == "BM_PublishBatchMetricsOn":
            on[int(parts[1])] = eps
        elif parts[0] == "BM_PublishBatchMetricsOff":
            off[int(parts[1])] = eps
    common = sorted(set(on) & set(off))
    if not common and scrape_cost_us is None:
        return None
    return {
        "events_per_sec_metrics_on": {str(k): on[k] for k in common},
        "events_per_sec_metrics_off": {str(k): off[k] for k in common},
        "overhead_pct": {
            str(k): round((off[k] / on[k] - 1.0) * 100.0, 2) for k in common
        },
        "scrape_cost_us": scrape_cost_us,
    }


def trace_overhead(rows):
    """Summarize micro_trace: the same publish_batch workload with per-event
    tracing live (default 1-in-8 head sampling) vs disabled, per shard
    count, plus the raw ring-write and snapshot costs. overhead_pct > 0
    means tracing-on is slower; the documented contract keeps it <= 5%."""
    on, off = {}, {}
    record_ns = None
    snapshot_cost_us = None
    for row in rows:
        name = row.get("name", "")
        parts = name.split("/")
        if parts[0] == "BM_FlightRecorderRecord" and row.get("ns_per_event"):
            record_ns = round(row["ns_per_event"], 1)
            continue
        if parts[0] == "BM_TracesSnapshot" and row.get("ns_per_event"):
            snapshot_cost_us = round(row["ns_per_event"] / 1e3, 3)
            continue
        eps = row.get("events_per_sec")
        if not eps or len(parts) < 2 or not parts[1].isdigit():
            continue
        if parts[0] == "BM_PublishBatchTracingOn":
            on[int(parts[1])] = eps
        elif parts[0] == "BM_PublishBatchTracingOff":
            off[int(parts[1])] = eps
    common = sorted(set(on) & set(off))
    if not common and record_ns is None and snapshot_cost_us is None:
        return None
    return {
        "events_per_sec_tracing_on": {str(k): on[k] for k in common},
        "events_per_sec_tracing_off": {str(k): off[k] for k in common},
        "overhead_pct": {
            str(k): round((off[k] / on[k] - 1.0) * 100.0, 2) for k in common
        },
        "ring_record_ns": record_ns,
        "snapshot_cost_us": snapshot_cost_us,
    }


def store_summary(rows):
    """Summarize micro_store: durable subscribes (WAL appends) per second,
    snapshot and recovery-replay throughput per table size."""
    appends = None
    snapshot = {}
    recover = {}
    for row in rows:
        name = row.get("name", "")
        eps = row.get("events_per_sec")
        if not eps:
            continue
        parts = name.split("/")
        if parts[0] == "BM_DurableSubscribe":
            appends = eps
        elif parts[0] == "BM_SnapshotWrite" and parts[1].isdigit():
            snapshot[int(parts[1])] = eps
        elif parts[0] == "BM_RecoverFromWal" and parts[1].isdigit():
            recover[int(parts[1])] = eps
    if appends is None and not snapshot and not recover:
        return None
    return {
        "durable_subscribes_per_sec": appends,
        "snapshot_subs_per_sec": {str(k): v for k, v in sorted(snapshot.items())},
        "recovery_replayed_subs_per_sec": {
            str(k): v for k, v in sorted(recover.items())
        },
    }


def write_store_json(build_dir, out_path, quick, context):
    binary = find_binary(build_dir, "micro_store")
    if binary is None:
        print("[bench_runner] micro_store binary not found; skipping BENCH_store.json")
        return None
    print("[bench_runner] running micro_store ...", flush=True)
    rows, ctx = run_micro(binary, quick)
    result = {
        "schema_version": 1,
        "generated_unix_time": int(time.time()),
        "host": host_info(context or ctx),
        "mode": "quick" if quick else "full",
        "benchmarks": rows,
        "store": store_summary(rows),
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {out_path} ({len(rows)} benchmark rows)")
    return result


def net_summary(rows):
    """Summarize micro_net: ping round-trip latency (the request-verb floor)
    and publish / publish_batch events per second over loopback TCP."""
    ping_us = None
    publish = None
    batch = None
    for row in rows:
        name = row.get("name", "")
        base = name.split("/")[0]
        if base == "BM_NetPingRoundTrip" and row.get("ns_per_event"):
            ping_us = round(row["ns_per_event"] / 1e3, 3)
        elif base == "BM_NetPublish":
            publish = row.get("events_per_sec")
        elif base == "BM_NetPublishBatch":
            batch = row.get("events_per_sec")
    if ping_us is None and publish is None and batch is None:
        return None
    return {
        "ping_rtt_us": ping_us,
        "publish_events_per_sec": publish,
        "publish_batch_events_per_sec": batch,
    }


def write_net_json(build_dir, out_path, quick, context):
    binary = find_binary(build_dir, "micro_net")
    if binary is None:
        print("[bench_runner] micro_net binary not found; skipping BENCH_net.json")
        return None
    print("[bench_runner] running micro_net ...", flush=True)
    rows, ctx = run_micro(binary, quick)
    result = {
        "schema_version": 1,
        "generated_unix_time": int(time.time()),
        "host": host_info(context or ctx),
        "mode": "quick" if quick else "full",
        "benchmarks": rows,
        "net": net_summary(rows),
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {out_path} ({len(rows)} benchmark rows)")
    return result


def run_fig1(binary):
    env = dict(os.environ)
    env.update(FIG1_ENV)
    start = time.monotonic()
    proc = subprocess.run([binary], capture_output=True, text=True, env=env)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode}")
    return {
        "source": os.path.basename(binary),
        "config": FIG1_ENV,
        "elapsed_seconds": round(elapsed, 3),
        "stdout_lines": proc.stdout.strip().splitlines(),
    }


def run_scenario(binary, quick):
    """Run the scenario soak and return its parsed JSON report. Raises on a
    non-zero exit (the binary exits 1 on any oracle mismatch)."""
    env = dict(os.environ)
    if quick:
        env.update(SCENARIO_QUICK_ENV)
    start = time.monotonic()
    proc = subprocess.run([binary], capture_output=True, text=True, env=env)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode} (oracle mismatch?)")
    report = json.loads(proc.stdout)
    report["elapsed_seconds"] = round(elapsed, 3)
    return report


def write_scenario_json(build_dir, out_path, quick, context):
    binary = find_binary(build_dir, "scenario_soak")
    if binary is None:
        print("[bench_runner] scenario_soak binary not found; skipping BENCH_scenario.json")
        return None
    print("[bench_runner] running scenario_soak (all domains) ...", flush=True)
    report = run_scenario(binary, quick)
    result = {
        "schema_version": 1,
        "generated_unix_time": int(time.time()),
        "host": host_info(context),
        "mode": "quick" if quick else "full",
        "exact": report.get("exact", False),
        "scenario": report,
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    n_runs = len(report.get("runs", []))
    print(f"[bench_runner] wrote {out_path} ({n_runs} scenario runs, exact={result['exact']})")
    if not result["exact"]:
        raise SystemExit("scenario soak reported oracle mismatches")
    return result


# Quick-mode routing sweep: small enough for a CI smoke lane while still
# crossing the subgroup-cap saturation point that makes the growth curves
# meaningful.
ROUTING_QUICK_ENV = {
    "DBSP_ROUTING_SUBS": "100000",
    "DBSP_ROUTING_EVENTS": "64",
    # The full-scale default (4096) only saturates around a million
    # subscriptions; pin a cap the quick population actually fills so the
    # sub-linearity gates measure the saturated regime.
    "DBSP_AGG_SUBGROUPS": "512",
}


def covering_summary(rows):
    """Summarize micro_covering: milliseconds per all-pairs covering sweep
    and per merge_all fixpoint, by subscription count — the quadratic
    baseline the aggregation layer replaces."""
    covering = {}
    merge = {}
    for row in rows:
        name = row.get("name", "")
        parts = name.split("/")
        if len(parts) < 2 or not parts[1].isdigit() or not row.get("ns_per_event"):
            continue
        ms = round(row["ns_per_event"] / 1e6, 3)
        if parts[0] == "BM_CoveringPairs":
            covering[int(parts[1])] = ms
        elif parts[0] == "BM_MergeAll":
            merge[int(parts[1])] = ms
    if not covering and not merge:
        return None
    return {
        "covering_sweep_ms_by_subs": {str(k): v for k, v in sorted(covering.items())},
        "merge_all_ms_by_subs": {str(k): v for k, v in sorted(merge.items())},
    }


def run_routing(binary, quick):
    """Run the micro_routing scale sweep and return its parsed JSON report.
    Raises on a non-zero exit (the binary exits 1 on an oracle mismatch)."""
    env = dict(os.environ)
    if quick:
        env.update(ROUTING_QUICK_ENV)
    start = time.monotonic()
    proc = subprocess.run([binary], capture_output=True, text=True, env=env)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode} (oracle mismatch?)")
    report = json.loads(proc.stdout)
    report["elapsed_seconds"] = round(elapsed, 3)
    return report


def check_routing_gates(report, latency_limit):
    """The tentpole acceptance gates over the routing sweep. Sub-linearity
    is asserted between the top two scales (a 10x population step): the
    advertisement bytes and the per-event admitted-subgroup count must grow
    by well under the population ratio — the subgroup cap plus bounded
    summaries make both nearly flat once the table is large. The latency
    gate compares the aggregated match path against the unaggregated engine
    at the smallest scale (10k subs in the full run)."""
    scales = report.get("scales", [])
    failures = []
    if not report.get("exact", False):
        failures.append("sampled oracle exactness does not hold")
    for scale in scales:
        if scale.get("oracle_mismatches", 1) != 0:
            failures.append(f"oracle mismatches at {scale.get('subs')} subs")
    if len(scales) >= 2:
        lo, hi = scales[-2], scales[-1]
        pop_ratio = hi["subs"] / lo["subs"]
        bytes_ratio = hi["advertised_bytes"] / max(1, lo["advertised_bytes"])
        admitted_ratio = (hi["avg_admitted_subgroups"]
                         / max(1e-9, lo["avg_admitted_subgroups"]))
        print(f"[bench_runner] routing: population x{pop_ratio:.0f} -> "
              f"advertised bytes x{bytes_ratio:.2f}, "
              f"admitted subgroups x{admitted_ratio:.2f}")
        if bytes_ratio > pop_ratio / 2:
            failures.append(
                f"advertised bytes grew x{bytes_ratio:.2f} over a x{pop_ratio:.0f} "
                "population step (not sub-linear)")
        if admitted_ratio > pop_ratio / 2:
            failures.append(
                f"admitted subgroups grew x{admitted_ratio:.2f} over a "
                f"x{pop_ratio:.0f} population step (not sub-linear)")
    baseline = report.get("baseline", {})
    if scales and baseline.get("match_us_per_event") and latency_limit > 0:
        aggregated = scales[0]["match_us_per_event"]
        unaggregated = baseline["match_us_per_event"]
        print(f"[bench_runner] routing: {baseline.get('subs')}-sub match "
              f"aggregated {aggregated:.1f}us vs unaggregated {unaggregated:.1f}us")
        if aggregated > unaggregated * latency_limit:
            failures.append(
                f"aggregated match is {aggregated / unaggregated:.2f}x the "
                f"unaggregated path at {baseline.get('subs')} subs "
                f"(limit {latency_limit}x)")
    return failures


def write_routing_json(build_dir, out_path, quick, context, latency_limit):
    routing_binary = find_binary(build_dir, "micro_routing")
    if routing_binary is None:
        print("[bench_runner] micro_routing binary not found; skipping BENCH_routing.json")
        return None
    covering_rows = []
    covering_binary = find_binary(build_dir, "micro_covering")
    if covering_binary is not None:
        print("[bench_runner] running micro_covering ...", flush=True)
        covering_rows, _ = run_micro(covering_binary, quick)
    print("[bench_runner] running micro_routing scale sweep ...", flush=True)
    report = run_routing(routing_binary, quick)
    failures = check_routing_gates(report, latency_limit)
    result = {
        "schema_version": 1,
        "generated_unix_time": int(time.time()),
        "host": host_info(context),
        "mode": "quick" if quick else "full",
        "exact": report.get("exact", False),
        "routing": report,
        "covering_baseline": covering_summary(covering_rows),
        "benchmarks": covering_rows,
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {out_path} "
          f"({len(report.get('scales', []))} scales, exact={result['exact']})")
    if failures:
        raise SystemExit("routing gates failed: " + "; ".join(failures))
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default=None, help="default: <build-dir>/BENCH_micro.json")
    parser.add_argument(
        "--scenario-out",
        default=None,
        help="default: <build-dir>/BENCH_scenario.json",
    )
    parser.add_argument(
        "--store-out",
        default=None,
        help="default: <build-dir>/BENCH_store.json",
    )
    parser.add_argument(
        "--net-out",
        default=None,
        help="default: <build-dir>/BENCH_net.json",
    )
    parser.add_argument(
        "--routing-out",
        default=None,
        help="default: <build-dir>/BENCH_routing.json",
    )
    parser.add_argument(
        "--routing-latency-limit",
        type=float,
        default=2.0,
        help="fail when the aggregated match path is more than this factor "
        "slower than the unaggregated engine at the smallest routing scale "
        "(0 disables the gate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: short min-time and only the small benchmark args",
    )
    parser.add_argument(
        "--api-overhead-limit",
        type=float,
        default=10.0,
        help="fail when the PubSub facade is more than this %% slower than the "
        "direct engine call (documented contract: <= 5%%; the default leaves "
        "headroom for runner noise; 0 disables the gate)",
    )
    parser.add_argument(
        "--metrics-overhead-limit",
        type=float,
        default=10.0,
        help="fail when publishing with the metrics registry live is more than "
        "this %% slower than with metrics disabled (documented contract: "
        "<= 5%%; the default leaves headroom for runner noise; 0 disables "
        "the gate)",
    )
    parser.add_argument(
        "--trace-overhead-limit",
        type=float,
        default=10.0,
        help="fail when publishing with per-event tracing live is more than "
        "this %% slower than with tracing disabled (documented contract: "
        "<= 5%% at the default 1-in-8 sampling; the default leaves headroom "
        "for runner noise; 0 disables the gate)",
    )
    args = parser.parse_args()
    out_path = args.out or os.path.join(args.build_dir, "BENCH_micro.json")
    scenario_out = args.scenario_out or os.path.join(args.build_dir, "BENCH_scenario.json")
    store_out = args.store_out or os.path.join(args.build_dir, "BENCH_store.json")
    net_out = args.net_out or os.path.join(args.build_dir, "BENCH_net.json")
    routing_out = args.routing_out or os.path.join(args.build_dir, "BENCH_routing.json")

    benchmarks = []
    context = {}
    missing = []
    for name in MICRO_BENCHES:
        binary = find_binary(args.build_dir, name)
        if binary is None:
            missing.append(name)
            continue
        print(f"[bench_runner] running {name} ...", flush=True)
        rows, ctx = run_micro(binary, args.quick)
        benchmarks.extend(rows)
        context = context or ctx
    if missing:
        raise SystemExit(
            f"missing benchmark binaries {missing}; build with -DDBSP_BUILD_BENCH=ON "
            "and Google Benchmark installed"
        )

    fig1_binary = find_binary(args.build_dir, "fig1a_time_centralized")
    fig1 = None
    if fig1_binary is not None:
        print("[bench_runner] running scaled-down fig1a sweep ...", flush=True)
        fig1 = run_fig1(fig1_binary)

    result = {
        "schema_version": 1,
        "generated_unix_time": int(time.time()),
        "host": host_info(context),
        "mode": "quick" if args.quick else "full",
        "benchmarks": benchmarks,
        "sharded": sharded_speedup(benchmarks),
        "api_overhead": api_overhead(benchmarks),
        "metrics": metrics_overhead(benchmarks),
        "trace": trace_overhead(benchmarks),
        "fig1_smoke": fig1,
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {out_path} ({len(benchmarks)} benchmark rows)")

    overhead = result["api_overhead"]
    if overhead is not None and args.api_overhead_limit > 0:
        worst = max(overhead["facade_overhead_pct"].values())
        print(f"[bench_runner] api_overhead: worst facade overhead {worst:+.2f}%")
        if worst > args.api_overhead_limit:
            raise SystemExit(
                f"PubSub facade is {worst:.2f}% slower than the direct engine "
                f"call (limit {args.api_overhead_limit}%; contract <= 5%)"
            )

    metrics = result["metrics"]
    if metrics is not None and metrics["overhead_pct"]:
        worst = max(metrics["overhead_pct"].values())
        scrape = metrics.get("scrape_cost_us")
        print(f"[bench_runner] metrics_overhead: worst publish overhead "
              f"{worst:+.2f}%, scrape_cost_us={scrape}")
        if args.metrics_overhead_limit > 0 and worst > args.metrics_overhead_limit:
            raise SystemExit(
                f"publishing with metrics on is {worst:.2f}% slower than with "
                f"metrics off (limit {args.metrics_overhead_limit}%; "
                "contract <= 5%)"
            )

    trace = result["trace"]
    if trace is not None and trace["overhead_pct"]:
        worst = max(trace["overhead_pct"].values())
        print(f"[bench_runner] trace_overhead: worst publish overhead "
              f"{worst:+.2f}%, ring_record_ns={trace.get('ring_record_ns')}, "
              f"snapshot_cost_us={trace.get('snapshot_cost_us')}")
        if args.trace_overhead_limit > 0 and worst > args.trace_overhead_limit:
            raise SystemExit(
                f"publishing with tracing on is {worst:.2f}% slower than with "
                f"tracing off (limit {args.trace_overhead_limit}%; "
                "contract <= 5% at default 1-in-8 sampling)"
            )

    num_cpus = context.get("num_cpus")
    if num_cpus is not None and num_cpus < 4:
        print(f"[bench_runner] WARNING: only {num_cpus} CPUs visible; "
              "overhead ratios and sharded speedups are unreliable on "
              "machines with fewer than 4 cores", file=sys.stderr)

    write_store_json(args.build_dir, store_out, args.quick, context)
    write_net_json(args.build_dir, net_out, args.quick, context)
    write_routing_json(args.build_dir, routing_out, args.quick, context,
                       args.routing_latency_limit)
    write_scenario_json(args.build_dir, scenario_out, args.quick, context)


if __name__ == "__main__":
    main()
