#!/usr/bin/env python3
"""Negative-compile harness proving the thread-safety annotations are armed.

The DBSP_* macros (src/common/thread_annotations.hpp) expand to nothing on
GCC, so a build passing says nothing about lock discipline unless clang's
-Wthread-safety actually *fires* on violations. This harness compiles each
fixture in tests/thread_safety_fixtures/ with clang:

  * ``bad_*.cpp``  must FAIL, and the diagnostics must come from the
    thread-safety group (an unrelated syntax error does not count) — this
    is the negative-compile check;
  * ``good_*.cpp`` must compile CLEAN — the sanctioned idioms (MutexLock,
    REQUIRES contracts, assert_held-in-lambda, CondVar::wait) never fight
    the analysis.

Registered as a CTest (``thread_safety_negative_compile``) when the
configured compiler is Clang; tier-1 on GCC skips it (the macros are no-ops
there by design).

Usage: check_annotations.py --compiler clang++ --include src FIXTURE_DIR
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

TSA_FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
             "-Werror=thread-safety"]


def compile_fixture(compiler: str, include: Path, fixture: Path):
    command = [compiler, *TSA_FLAGS, f"-I{include}", str(fixture)]
    proc = subprocess.run(command, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True,
                        help="clang++ binary to drive")
    parser.add_argument("--include", required=True, type=Path,
                        help="include root (the repo's src/ directory)")
    parser.add_argument("fixtures", type=Path,
                        help="directory of bad_*.cpp / good_*.cpp fixtures")
    args = parser.parse_args()

    fixtures = sorted(args.fixtures.glob("*.cpp"))
    if not fixtures:
        print(f"check_annotations: no fixtures in {args.fixtures}",
              file=sys.stderr)
        return 2

    failures = []
    for fixture in fixtures:
        returncode, stderr = compile_fixture(args.compiler, args.include, fixture)
        if fixture.name.startswith("bad_"):
            if returncode == 0:
                failures.append(f"{fixture.name}: compiled CLEAN — the "
                                f"thread-safety annotations are not firing")
            elif "thread-safety" not in stderr:
                failures.append(
                    f"{fixture.name}: failed for the wrong reason (no "
                    f"thread-safety diagnostic):\n{stderr}")
            else:
                print(f"  {fixture.name}: rejected by -Wthread-safety (good)")
        elif fixture.name.startswith("good_"):
            if returncode != 0:
                failures.append(f"{fixture.name}: sanctioned locking idiom "
                                f"rejected:\n{stderr}")
            else:
                print(f"  {fixture.name}: compiles clean (good)")
        else:
            failures.append(f"{fixture.name}: fixture name must start with "
                            f"bad_ or good_")

    if failures:
        print("check_annotations: FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_annotations: OK ({len(fixtures)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
