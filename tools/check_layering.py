#!/usr/bin/env python3
"""Machine-enforced module layering for the dbsp source tree.

Replaces the old advisory grep in CI with a real checker over the include
graph. Three gates, all fatal:

1. **Module DAG** — every `#include "module/..."` edge inside `src/` must be
   declared in ALLOWED_DEPS below, which mirrors the "Depends on" column of
   the module map in docs/ARCHITECTURE.md. A new cross-module dependency is
   a one-line diff here *and* in the doc table — deliberate, reviewed, never
   accidental.

2. **File-level acyclicity** — the concrete include graph of `src/` must be
   a DAG. The module graph alone cannot prove this: `scenario/` builds on
   the public umbrella (`dbsp/dbsp.hpp`) while the umbrella re-exports
   `scenario/workload_domain.hpp`, a sanctioned module-level back edge that
   is only sound because no *file* cycle exists. This gate keeps it that
   way.

3. **API surface** — `examples/` are end-user code: each example must
   include `dbsp/dbsp.hpp` and may include nothing else from the tree.
   (`tests/` and `bench/` intentionally reach into internals and are
   exempt.)

Usage: tools/check_layering.py [repo_root]   (exit 0 = clean)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Direct allowed dependencies per module (docs/ARCHITECTURE.md module map).
# A module may always include itself; nothing else is implicit.
ALLOWED_DEPS: dict[str, set[str]] = {
    "common": set(),
    # The metrics/tracing substrate: registry, histograms, exposition.
    # Depends only on common so every other module may instrument itself.
    "obs": {"common"},
    "event": {"common"},
    "subscription": {"common", "event"},
    "filter": {"common", "event", "subscription"},
    # routing/codec.hpp serializes trees for histogram/stats persistence.
    "selectivity": {"common", "event", "subscription", "routing"},
    # Subscription aggregation: bounded per-dimension summaries + subgroup
    # clustering. Scores dimensions with selectivity's EventStats.
    "agg": {"common", "event", "subscription", "filter", "selectivity", "obs"},
    # routing/messages.hpp carries subgroup summaries (aggregated routing)
    # and the per-event trace context (obs) overlay hops propagate.
    "routing": {"common", "event", "subscription", "agg", "obs"},
    "core": {"common", "event", "subscription", "filter", "selectivity", "obs",
             "agg"},
    "broker": {"common", "event", "subscription", "core", "routing", "agg",
               "obs"},
    "workload": {"common", "event", "subscription"},
    "experiment": {"common", "core", "selectivity", "broker", "workload", "api"},
    # scenario is built entirely on the public API: the umbrella header is
    # its only route to the engine — plus the net edge for the sockets
    # transport (run_sockets drives a NetServer over real loopback TCP).
    # core/filter/store are deliberately NOT allowed here.
    "scenario": {"common", "event", "subscription", "workload", "dbsp", "net",
                 "obs"},
    "store": {"common", "event", "subscription", "core", "routing",
              "selectivity", "obs"},
    "api": {"common", "event", "subscription", "core", "selectivity", "store",
            "obs", "agg"},
    # The network edge of the daemon: wire protocol + epoll server + client.
    # Sits on the public facade (api) and the codec; nothing inside src/ may
    # include net except scenario's sockets transport — the daemon and CLI
    # mains live outside src/ in daemon/, and tests/bench are exempt.
    "net": {"common", "event", "subscription", "routing", "store", "api", "obs"},
    # The umbrella re-exports the public surface; it sits above everything.
    "dbsp": {
        "api", "broker", "common", "event", "obs", "routing", "scenario",
        "selectivity", "store", "subscription",
    },
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def quoted_includes(path: Path) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = INCLUDE_RE.match(line)
        if match:
            out.append((lineno, match.group(1)))
    return out


def check_module_dag(src: Path, errors: list[str]) -> None:
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        module = path.relative_to(src).parts[0]
        if module not in ALLOWED_DEPS:
            errors.append(f"{path}: module '{module}' missing from "
                          f"ALLOWED_DEPS in tools/check_layering.py")
            continue
        for lineno, target in quoted_includes(path):
            target_module = target.split("/", 1)[0]
            if target_module not in ALLOWED_DEPS:
                continue  # not a module-qualified include (e.g. a local header)
            if target_module == module:
                continue
            if target_module not in ALLOWED_DEPS[module]:
                errors.append(
                    f"{path}:{lineno}: layering violation: '{module}' may not "
                    f"include '{target_module}/' (include \"{target}\"); allowed: "
                    f"{sorted(ALLOWED_DEPS[module]) or 'nothing'} — see the "
                    f"module map in docs/ARCHITECTURE.md")


def check_file_acyclicity(src: Path, errors: list[str]) -> None:
    graph: dict[str, list[str]] = {}
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = str(path.relative_to(src))
        graph[rel] = [target for _, target in quoted_includes(path)
                      if (src / target).is_file()]

    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack_trace: list[str] = []

    def visit(node: str) -> bool:
        color[node] = GRAY
        stack_trace.append(node)
        for dep in graph.get(node, ()):
            if color.get(dep, BLACK) == GRAY:
                cycle = stack_trace[stack_trace.index(dep):] + [dep]
                errors.append("include cycle: " + " -> ".join(cycle))
                return False
            if color.get(dep, BLACK) == WHITE and not visit(dep):
                return False
        stack_trace.pop()
        color[node] = BLACK
        return True

    for node in graph:
        if color[node] == WHITE and not visit(node):
            return  # one cycle is enough to fail; avoid cascading reports


def check_api_surface(root: Path, errors: list[str]) -> None:
    examples = root / "examples"
    if not examples.is_dir():
        return
    for path in sorted(examples.glob("*.cpp")):
        includes = [target for _, target in quoted_includes(path)]
        if "dbsp/dbsp.hpp" not in includes:
            errors.append(f"{path}: examples must include \"dbsp/dbsp.hpp\" "
                          f"(the public umbrella header)")
        for lineno, target in quoted_includes(path):
            if target != "dbsp/dbsp.hpp":
                errors.append(
                    f"{path}:{lineno}: examples are end-user code and may only "
                    f"include \"dbsp/dbsp.hpp\", not \"{target}\"")


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"check_layering: no src/ under {root}", file=sys.stderr)
        return 2

    errors: list[str] = []
    check_module_dag(src, errors)
    check_file_acyclicity(src, errors)
    check_api_surface(root, errors)

    if errors:
        print(f"check_layering: {len(errors)} violation(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"check_layering: OK ({len(list(src.rglob('*.hpp')))} headers, "
          f"{len(list(src.rglob('*.cpp')))} sources, "
          f"{len(ALLOWED_DEPS)} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
