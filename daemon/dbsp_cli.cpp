/// \file
/// dbsp-cli — operator client for dbspd.
///
///   dbsp-cli [--host H] [--port P] <command> [args]
///
/// Commands:
///   ping [count]            round-trip latency check (default 1)
///   stats                   print the server's NetStats counters
///   metrics [--table]       print the server's full metrics scrape as
///                           JSON, or as aligned name/labels/value columns
///   traces                  print the server's flight-recorder traces as
///                           JSON (same shape as GET /traces)
///   publish a=v [b=v ...]   publish one event; values are parsed against
///                           the server's schema types
///   subscribe '<dsl>'       register a filter and stream notifications
///                           until --max N arrive (default: forever)
///   adopt <id>              re-claim a recovered subscription and stream
///   smoke <n>               open n concurrent connections, ping each,
///                           then close them all (the 1k-connection check)
///
/// Exit status: 0 success, 1 server/protocol error, 2 usage error.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "event/event.hpp"
#include "net/client.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"

namespace {

using dbsp::net::DbspClient;

int usage() {
  std::fprintf(stderr,
               "usage: dbsp-cli [--host H] [--port P] <command> [args]\n"
               "  ping [count] | stats | metrics [--table] | traces | publish "
               "a=v... | subscribe '<dsl>' [--max N] | adopt <id> [--max N] | "
               "smoke <n>\n");
  return 2;
}

int fail(const dbsp::Status& status) {
  std::fprintf(stderr, "dbsp-cli: %s\n", status.to_string().c_str());
  return 1;
}

void raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

/// Parses "attr=value" against the schema's declared type for attr.
dbsp::Result<std::pair<dbsp::AttributeId, dbsp::Value>> parse_pair(
    const dbsp::Schema& schema, const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return dbsp::Status::error(dbsp::ErrorCode::kInvalidArgument,
                               "expected attr=value, got '" + text + "'");
  }
  const std::string name = text.substr(0, eq);
  const std::string raw = text.substr(eq + 1);
  const auto attr = schema.find(name);
  if (!attr.has_value()) {
    return dbsp::Status::error(dbsp::ErrorCode::kNotFound,
                               "unknown attribute '" + name + "'");
  }
  try {
    switch (schema.type(*attr)) {
      case dbsp::ValueType::Int:
        return std::pair(*attr, dbsp::Value(std::int64_t(std::stoll(raw))));
      case dbsp::ValueType::Double:
        return std::pair(*attr, dbsp::Value(std::stod(raw)));
      case dbsp::ValueType::Bool:
        return std::pair(*attr, dbsp::Value(raw == "true" || raw == "1"));
      case dbsp::ValueType::String:
        return std::pair(*attr, dbsp::Value(raw));
    }
  } catch (const std::exception&) {
    // fall through to the error below
  }
  return dbsp::Status::error(dbsp::ErrorCode::kInvalidArgument,
                             "cannot parse value '" + raw + "' for '" + name + "'");
}

/// Renders one series' value column: counters/gauges as numbers (integral
/// ones without a trailing ".000000"), histograms as count/sum/mean.
std::string metric_value_cell(const dbsp::obs::MetricSnapshot& m) {
  char buf[96];
  if (m.kind == dbsp::obs::MetricKind::kHistogram) {
    const auto& h = m.histogram;
    const double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    std::snprintf(buf, sizeof(buf), "count=%llu sum=%.3f mean=%.3f",
                  static_cast<unsigned long long>(h.count), h.sum, mean);
    return buf;
  }
  if (m.value == static_cast<double>(static_cast<long long>(m.value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(m.value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", m.value);
  }
  return buf;
}

/// `metrics --table`: one aligned row per series next to the raw JSON and
/// Prometheus forms — the human-skimmable view.
void print_metrics_table(const dbsp::obs::MetricsSnapshot& snapshot) {
  std::vector<std::array<std::string, 3>> rows;
  rows.push_back({"NAME", "LABELS", "VALUE"});
  for (const auto& m : snapshot.metrics) {
    std::string labels;
    for (const auto& [k, v] : m.labels) {
      if (!labels.empty()) labels += ",";
      labels += k + "=" + v;
    }
    if (labels.empty()) labels = "-";
    rows.push_back({m.name, std::move(labels), metric_value_cell(m)});
  }
  std::size_t width[2] = {0, 0};
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < 2; ++c) width[c] = std::max(width[c], row[c].size());
  }
  for (const auto& row : rows) {
    std::printf("%-*s  %-*s  %s\n", static_cast<int>(width[0]), row[0].c_str(),
                static_cast<int>(width[1]), row[1].c_str(), row[2].c_str());
  }
}

int stream_notifications(DbspClient& client, long long max) {
  long long seen = 0;
  while (max < 0 || seen < max) {
    auto n = client.next_notification(/*timeout_ms=*/-1);
    if (!n.ok()) return fail(n.status());
    if (!n.value().has_value()) continue;
    std::printf("notify sub=%llu seq=%llu %s\n",
                static_cast<unsigned long long>(n.value()->subscription),
                static_cast<unsigned long long>(n.value()->seq),
                n.value()->event.to_string(client.schema()).c_str());
    std::fflush(stdout);
    ++seen;
  }
  return 0;
}

int run_smoke(const std::string& host, std::uint16_t port, std::size_t n) {
  raise_nofile_limit();
  std::vector<DbspClient> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = DbspClient::connect(host, port, /*timeout_ms=*/15000);
    if (!c.ok()) {
      std::fprintf(stderr, "dbsp-cli: smoke connect %zu/%zu: %s\n", i + 1, n,
                   c.status().to_string().c_str());
      return 1;
    }
    clients.push_back(std::move(c).value());
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto pong = clients[i].ping(i);
    if (!pong.ok()) return fail(pong.status());
    if (pong.value() != i) {
      std::fprintf(stderr, "dbsp-cli: smoke ping %zu echoed %llu\n", i,
                   static_cast<unsigned long long>(pong.value()));
      return 1;
    }
  }
  std::printf("smoke ok: %zu connections alive and answering\n", n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (const char* env_host = std::getenv("DBSP_NET_HOST")) host = env_host;  // NOLINT(concurrency-mt-unsafe)
  if (const char* env_port = std::getenv("DBSP_NET_PORT")) {  // NOLINT(concurrency-mt-unsafe)
    port = static_cast<std::uint16_t>(std::atoi(env_port));
  }

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else {
      break;
    }
  }
  if (i >= argc || port == 0) return usage();
  const std::string command = argv[i++];

  // smoke manages its own connections.
  if (command == "smoke") {
    if (i >= argc) return usage();
    return run_smoke(host, port, static_cast<std::size_t>(std::atoll(argv[i])));
  }

  auto connected = DbspClient::connect(host, port);
  if (!connected.ok()) return fail(connected.status());
  DbspClient client = std::move(connected).value();

  if (command == "ping") {
    const long long count = i < argc ? std::atoll(argv[i]) : 1;
    for (long long k = 0; k < count; ++k) {
      auto pong = client.ping(static_cast<std::uint64_t>(k));
      if (!pong.ok()) return fail(pong.status());
    }
    std::printf("pong x%lld\n", count);
    return 0;
  }

  if (command == "stats") {
    auto s = client.stats();
    if (!s.ok()) return fail(s.status());
    const auto& v = s.value();
    std::printf("connections=%llu accepted=%llu rejected=%llu\n"
                "frames_received=%llu frames_sent=%llu\n"
                "bytes_received=%llu bytes_sent=%llu\n"
                "protocol_errors=%llu slow_consumer_disconnects=%llu\n"
                "subscriptions=%llu notifications_enqueued=%llu\n"
                "events_published=%llu notifications_delivered=%llu\n"
                "write_queue_high_water=%llu draining=%llu\n",
                static_cast<unsigned long long>(v.connections),
                static_cast<unsigned long long>(v.connections_accepted),
                static_cast<unsigned long long>(v.connections_rejected),
                static_cast<unsigned long long>(v.frames_received),
                static_cast<unsigned long long>(v.frames_sent),
                static_cast<unsigned long long>(v.bytes_received),
                static_cast<unsigned long long>(v.bytes_sent),
                static_cast<unsigned long long>(v.protocol_errors),
                static_cast<unsigned long long>(v.slow_consumer_disconnects),
                static_cast<unsigned long long>(v.subscriptions),
                static_cast<unsigned long long>(v.notifications_enqueued),
                static_cast<unsigned long long>(v.events_published),
                static_cast<unsigned long long>(v.notifications_delivered),
                static_cast<unsigned long long>(v.write_queue_high_water),
                static_cast<unsigned long long>(v.draining));
    return 0;
  }

  if (command == "metrics") {
    auto s = client.metrics();
    if (!s.ok()) return fail(s.status());
    if (i < argc && std::strcmp(argv[i], "--table") == 0) {
      print_metrics_table(s.value());
      return 0;
    }
    std::printf("%s\n", dbsp::obs::to_json(s.value()).c_str());
    return 0;
  }

  if (command == "traces") {
    auto t = client.traces();
    if (!t.ok()) return fail(t.status());
    std::printf("%s\n",
                dbsp::obs::traces_json(t.value().traces,
                                       t.value().recorded_total,
                                       t.value().dropped_total)
                    .c_str());
    return 0;
  }

  if (command == "publish") {
    if (i >= argc) return usage();
    dbsp::Event event;
    for (; i < argc; ++i) {
      auto pair = parse_pair(client.schema(), argv[i]);
      if (!pair.ok()) return fail(pair.status());
      event.set(pair.value().first, std::move(pair.value().second));
    }
    auto matched = client.publish(event);
    if (!matched.ok()) return fail(matched.status());
    std::printf("published: matched %llu subscription(s)\n",
                static_cast<unsigned long long>(matched.value()));
    return 0;
  }

  if (command == "subscribe" || command == "adopt") {
    if (i >= argc) return usage();
    const std::string target = argv[i++];
    long long max = -1;
    if (i + 1 < argc && std::strcmp(argv[i], "--max") == 0) {
      max = std::atoll(argv[i + 1]);
    }
    auto id = command == "subscribe"
                  ? client.subscribe(std::string_view(target))
                  : client.adopt(static_cast<std::uint64_t>(std::atoll(target.c_str())));
    if (!id.ok()) return fail(id.status());
    std::printf("subscribed id=%llu\n",
                static_cast<unsigned long long>(id.value()));
    std::fflush(stdout);
    return stream_notifications(client, max);
  }

  std::fprintf(stderr, "dbsp-cli: unknown command '%s'\n", command.c_str());
  return usage();
}
