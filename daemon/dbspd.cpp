/// \file
/// dbspd — the networked broker daemon. Fronts a dbsp::PubSub (optionally
/// durable via --store) with the net::NetServer TCP edge.
///
///   dbspd [--host H] [--port P] [--domain auction|stock|iot]
///         [--store DIR] [--pruning] [--drain-timeout-ms N]
///         [--metrics-port P] [--trace-dump PATH]
///
/// Unset options fall back to the DBSP_NET_* environment knobs (see
/// README). SIGTERM/SIGINT trigger a graceful drain: stop accepting,
/// flush every client's delivery queue, checkpoint the store, exit 0. A
/// second signal (or SIGQUIT) kills immediately — the crash path the
/// warm-restart tests exercise. SIGUSR1 dumps the flight recorder's
/// current traces to --trace-dump (default dbsp_traces.json) without
/// disturbing service.
///
/// Diagnostics go to stderr as structured key=value lines (obs/log.hpp,
/// level from DBSP_LOG_LEVEL); the stdout "listening"/"metrics" readiness
/// lines are a stable interface scripts wait for.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/resource.h>

#include "api/pubsub.hpp"
#include "net/server.hpp"
#include "obs/log.hpp"
#include "scenario/workload_domain.hpp"

namespace {

dbsp::net::NetServer* g_server = nullptr;
std::atomic<int> g_signals{0};

void on_signal(int sig) {
  if (g_server == nullptr) return;
  if (sig == SIGUSR1) {
    g_server->request_trace_dump_async();
    return;
  }
  const int prior = g_signals.fetch_add(1, std::memory_order_relaxed);
  const bool drain = sig != SIGQUIT && prior == 0;
  g_server->request_stop_async(drain);
}

void raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--domain auction|stock|iot]\n"
               "          [--store DIR] [--pruning] [--drain-timeout-ms N]\n"
               "          [--metrics-port P] [--trace-dump PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dbsp::net::NetServerOptions options = dbsp::net::NetServerOptions::from_env();
  std::string domain = "auction";
  std::string store_dir;
  bool pruning = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--domain") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      domain = v;
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      store_dir = v;
    } else if (arg == "--pruning") {
      pruning = true;
    } else if (arg == "--drain-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.drain_timeout_ms = std::atoi(v);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.metrics_port = std::atoi(v);
    } else if (arg == "--trace-dump") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.trace_dump_path = v;
    } else if (arg == "--help" || arg == "-h") {
      (void)usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "dbspd: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  raise_nofile_limit();

  std::unique_ptr<dbsp::WorkloadDomain> workload;
  try {
    workload = dbsp::make_workload(domain);
  } catch (const std::invalid_argument& e) {
    dbsp::obs::LogEvent(dbsp::obs::LogLevel::kError, "dbspd", "bad domain")
        .kv("error", e.what());
    return 2;
  }

  dbsp::PubSubOptions pubsub_options;
  pubsub_options.pruning = pruning;

  std::optional<dbsp::PubSub> pubsub;
  if (!store_dir.empty()) {
    dbsp::StoreOptions store;
    store.directory = store_dir;
    store.schema = workload->schema();
    auto opened = dbsp::PubSub::open(std::move(store), pubsub_options);
    if (!opened.ok()) {
      dbsp::obs::LogEvent(dbsp::obs::LogLevel::kError, "dbspd", "open store failed")
          .kv("store", store_dir)
          .kv("error", opened.status().to_string());
      return 1;
    }
    pubsub.emplace(std::move(opened).value());
    dbsp::obs::LogEvent(dbsp::obs::LogLevel::kInfo, "dbspd", "store recovered")
        .kv("store", store_dir)
        .kv("subscriptions",
            static_cast<std::uint64_t>(pubsub->subscription_count()));
  } else {
    pubsub.emplace(workload->schema(), pubsub_options);
  }

  auto server =
      dbsp::net::NetServer::start(std::move(*pubsub), std::move(options));
  if (!server.ok()) {
    dbsp::obs::LogEvent(dbsp::obs::LogLevel::kError, "dbspd", "start failed")
        .kv("error", server.status().to_string());
    return 1;
  }
  g_server = server.value().get();

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGQUIT, &sa, nullptr);
  ::sigaction(SIGUSR1, &sa, nullptr);

  // The readiness line CI scripts wait for (stdout, flushed).
  std::printf("dbspd listening on %s:%u (domain=%s%s%s)\n",
              server.value()->options().host.c_str(), server.value()->port(),
              domain.c_str(), store_dir.empty() ? "" : ", store=",
              store_dir.c_str());
  if (server.value()->metrics_port() != 0) {
    std::printf("dbspd metrics on http://%s:%u/metrics\n",
                server.value()->options().host.c_str(),
                server.value()->metrics_port());
  }
  std::fflush(stdout);

  server.value()->wait();
  const auto stats = server.value()->stats();
  dbsp::obs::LogEvent(dbsp::obs::LogLevel::kInfo, "dbspd", "stopped")
      .kv("accepted", stats.connections_accepted)
      .kv("frames", stats.frames_received)
      .kv("published", stats.events_published)
      .kv("delivered", stats.notifications_delivered)
      .kv("protocol_errors", stats.protocol_errors)
      .kv("slow_disconnects", stats.slow_consumer_disconnects);
  g_server = nullptr;
  return 0;
}
