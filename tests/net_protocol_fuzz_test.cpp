// Frame-level fuzz of the dbspd wire protocol against a live NetServer on
// loopback TCP: truncated frames, splits at every byte boundary, hostile
// length prefixes (zero / 0xFFFFFFFF), garbage magic/version/type bytes,
// seeded bit-flips, and raw garbage streams. The server must answer a
// protocol-error frame or close the connection cleanly — never crash,
// hang, or leak (the ASan CI lane runs this suite). After every hostile
// exchange a fresh client proves the daemon is still alive and exact.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "api/pubsub.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "routing/codec.hpp"
#include "test_util.hpp"

namespace dbsp::net {
namespace {

using test::MiniDomain;
using Bytes = std::vector<std::uint8_t>;

/// A raw (non-protocol-aware) connection for injecting arbitrary bytes.
struct RawConn {
  Socket sock;
  FrameAssembler fa;

  static RawConn open(std::uint16_t port) {
    auto s = tcp_connect("127.0.0.1", port, 5000);
    EXPECT_TRUE(s.ok()) << s.status().to_string();
    return RawConn{std::move(s).value(), FrameAssembler()};
  }

  void send(const Bytes& bytes) {
    // The peer may legally close mid-send (after a protocol error), so a
    // failed send is not a test failure.
    (void)send_all(sock.fd(), bytes);
  }

  /// Next complete frame, or nullopt on EOF/timeout.
  std::optional<Bytes> read_frame(int timeout_ms = 3000) {
    while (true) {
      auto frame = fa.next();
      if (frame.has_value()) return frame;
      auto readable = wait_readable(sock.fd(), timeout_ms);
      if (!readable.ok() || readable.value() == 0) return std::nullopt;
      std::uint8_t buf[4096];
      auto got = recv_some(sock.fd(), buf);
      if (!got.ok() || got.value() == 0) return std::nullopt;
      fa.push(std::span<const std::uint8_t>(buf, got.value()));
    }
  }

  /// True when the server closed this connection (EOF within the timeout),
  /// reading (and discarding) any frames it sent first.
  bool closed_by_server(int timeout_ms = 5000) {
    while (true) {
      auto readable = wait_readable(sock.fd(), timeout_ms);
      if (!readable.ok() || readable.value() == 0) return false;
      std::uint8_t buf[4096];
      auto got = recv_some(sock.fd(), buf);
      if (!got.ok()) return false;
      if (got.value() == 0) return true;  // clean EOF
    }
  }
};

MsgType frame_type(const Bytes& body) {
  WireReader r(body);
  (void)decode_wire_header(r);
  return checked_msg_type(r.get_u8());
}

class NetProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniDomain dom(6, 50);
    schema_ = dom.schema();
    NetServerOptions options;
    options.max_frame_bytes = 64 * 1024;
    auto server = NetServer::start(PubSub(schema_), options);
    ASSERT_TRUE(server.ok()) << server.status().to_string();
    server_ = std::move(server).value();
  }

  /// The daemon must still answer a fresh, well-behaved client exactly.
  void expect_alive() {
    auto client = DbspClient::connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    auto pong = client.value().ping(0xC0FFEE);
    ASSERT_TRUE(pong.ok()) << pong.status().to_string();
    EXPECT_EQ(pong.value(), 0xC0FFEEu);
  }

  Schema schema_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetProtocolFuzzTest, TruncatedFramesAtEveryPrefixLength) {
  const Bytes ping = make_u64_frame(MsgType::kPing, 42);
  for (std::size_t cut = 0; cut < ping.size(); ++cut) {
    RawConn conn = RawConn::open(server_->port());
    conn.send(Bytes(ping.begin(), ping.begin() + static_cast<std::ptrdiff_t>(cut)));
    conn.sock.close();  // abandon mid-frame
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, SplitWritesAtEveryByteBoundaryStillAnswered) {
  const Bytes ping = make_u64_frame(MsgType::kPing, 99);
  for (std::size_t cut = 1; cut < ping.size(); ++cut) {
    RawConn conn = RawConn::open(server_->port());
    conn.send(Bytes(ping.begin(), ping.begin() + static_cast<std::ptrdiff_t>(cut)));
    conn.send(Bytes(ping.begin() + static_cast<std::ptrdiff_t>(cut), ping.end()));
    auto reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value()) << "cut=" << cut;
    EXPECT_EQ(frame_type(*reply), MsgType::kPong) << "cut=" << cut;
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, ByteAtATimeWriteStillAnswered) {
  const Bytes ping = make_u64_frame(MsgType::kPing, 7);
  RawConn conn = RawConn::open(server_->port());
  for (const std::uint8_t b : ping) conn.send(Bytes{b});
  auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(frame_type(*reply), MsgType::kPong);
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, ZeroLengthPrefixGetsErrorAndClose) {
  RawConn conn = RawConn::open(server_->port());
  conn.send(Bytes{0, 0, 0, 0});
  EXPECT_TRUE(conn.closed_by_server());
  expect_alive();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetProtocolFuzzTest, OversizedLengthPrefixGetsErrorAndClose) {
  RawConn conn = RawConn::open(server_->port());
  conn.send(Bytes{0xFF, 0xFF, 0xFF, 0xFF});
  auto reply = conn.read_frame();
  if (reply.has_value()) {
    EXPECT_EQ(frame_type(*reply), MsgType::kError);
  }
  EXPECT_TRUE(conn.closed_by_server());
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, BadMagicByteGetsErrorAndClose) {
  WireWriter body;
  body.put_u8(0xAB);  // not kWireMagic
  body.put_u8(1);
  body.put_u8(static_cast<std::uint8_t>(MsgType::kPing));
  body.put_u64(1);
  Bytes wire;
  append_frame(wire, body.bytes());
  RawConn conn = RawConn::open(server_->port());
  conn.send(wire);
  auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(frame_type(*reply), MsgType::kError);
  EXPECT_TRUE(conn.closed_by_server());
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, GarbageVersionByteGetsErrorNotCrash) {
  for (const std::uint8_t version : {std::uint8_t{0}, std::uint8_t{2},
                                     std::uint8_t{99}, std::uint8_t{255}}) {
    WireWriter body;
    body.put_u8(kWireMagic);
    body.put_u8(version);
    body.put_u8(static_cast<std::uint8_t>(MsgType::kPing));
    body.put_u64(1);
    Bytes wire;
    append_frame(wire, body.bytes());
    RawConn conn = RawConn::open(server_->port());
    conn.send(wire);
    auto reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value()) << "version=" << int(version);
    EXPECT_EQ(frame_type(*reply), MsgType::kError) << "version=" << int(version);
    EXPECT_TRUE(conn.closed_by_server());
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, UnknownMessageTypeGetsErrorAndClose) {
  // 11 is the first unassigned request verb (kTraces = 10 is valid).
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{11},
                                  std::uint8_t{63}, std::uint8_t{200}}) {
    WireWriter body;
    encode_wire_header(body);
    body.put_u8(type);
    Bytes wire;
    append_frame(wire, body.bytes());
    RawConn conn = RawConn::open(server_->port());
    conn.send(wire);
    auto reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value()) << "type=" << int(type);
    EXPECT_EQ(frame_type(*reply), MsgType::kError) << "type=" << int(type);
    EXPECT_TRUE(conn.closed_by_server());
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, TrailingBytesAfterPayloadGetError) {
  WireWriter body;
  encode_wire_header(body);
  body.put_u8(static_cast<std::uint8_t>(MsgType::kPing));
  body.put_u64(1);
  body.put_u8(0xEE);  // one byte too many
  Bytes wire;
  append_frame(wire, body.bytes());
  RawConn conn = RawConn::open(server_->port());
  conn.send(wire);
  auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(frame_type(*reply), MsgType::kError);
  EXPECT_TRUE(conn.closed_by_server());
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, SeededBitFlipsNeverCrashTheServer) {
  MiniDomain dom(6, 50);
  std::mt19937_64 rng(2024);
  WireWriter payload;
  encode_tree(*dom.random_tree(rng, 5, 0.2), payload);
  const Bytes subscribe = make_frame(MsgType::kSubscribe, payload);

  for (int round = 0; round < 60; ++round) {
    Bytes mutated = subscribe;
    std::uniform_int_distribution<std::size_t> pos_dist(0, mutated.size() - 1);
    std::uniform_int_distribution<int> bit_dist(0, 7);
    std::uniform_int_distribution<int> flips_dist(1, 4);
    // Keep the length prefix intact so the mutation lands in the body —
    // prefix damage is covered by the dedicated length-prefix tests.
    for (int f = flips_dist(rng); f > 0; --f) {
      std::size_t pos = pos_dist(rng);
      if (pos < 4) pos = 4 + pos % (mutated.size() - 4);
      mutated[pos] ^= static_cast<std::uint8_t>(1u << bit_dist(rng));
    }
    RawConn conn = RawConn::open(server_->port());
    conn.send(mutated);
    // Any of: a subscribe reply (the flip kept the tree decodable), an
    // error frame, or a close. Never a crash or a hang.
    (void)conn.read_frame(2000);
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, RandomGarbageStreamsNeverCrashTheServer) {
  std::mt19937_64 rng(777);
  for (int round = 0; round < 40; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(1, 2000);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    Bytes garbage(len_dist(rng));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(byte_dist(rng));
    RawConn conn = RawConn::open(server_->port());
    conn.send(garbage);
    (void)conn.read_frame(500);
  }
  expect_alive();
}

TEST_F(NetProtocolFuzzTest, ApplicationErrorKeepsConnectionUsable) {
  // A structurally valid tree naming an attribute the schema does not
  // have: rejected at the validation edge with kError, connection lives.
  auto client = DbspClient::connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const auto bad = Node::leaf(Predicate(AttributeId(999), Op::Eq, Value(1)));
  auto id = client.value().subscribe(*bad);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), ErrorCode::kInvalidArgument);
  // Same connection still answers.
  auto pong = client.value().ping(5);
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
  EXPECT_EQ(pong.value(), 5u);
}

TEST_F(NetProtocolFuzzTest, StatsCountProtocolErrors) {
  const auto before = server_->stats().protocol_errors;
  RawConn conn = RawConn::open(server_->port());
  conn.send(Bytes{0, 0, 0, 0});
  EXPECT_TRUE(conn.closed_by_server());
  EXPECT_GT(server_->stats().protocol_errors, before);
}

}  // namespace
}  // namespace dbsp::net
