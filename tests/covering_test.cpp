#include "routing/covering.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/candidates.hpp"
#include "subscription/parser.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class ImplicationTest : public ::testing::Test {
 protected:
  MiniDomain dom_{2, 100};
  Schema strings_;
  AttributeId name_ = strings_.add_attribute("name", ValueType::String);

  [[nodiscard]] Predicate num(Op op, std::int64_t v) const {
    return Predicate(dom_.attr(0), op, Value(v));
  }
};

TEST_F(ImplicationTest, ReflexiveAndAttributeMismatch) {
  EXPECT_TRUE(implies(num(Op::Lt, 5), num(Op::Lt, 5)));
  EXPECT_FALSE(implies(num(Op::Lt, 5), Predicate(dom_.attr(1), Op::Lt, Value(5))));
}

TEST_F(ImplicationTest, EqImpliesAnythingItSatisfies) {
  EXPECT_TRUE(implies(num(Op::Eq, 5), num(Op::Lt, 10)));
  EXPECT_TRUE(implies(num(Op::Eq, 5), num(Op::Le, 5)));
  EXPECT_TRUE(implies(num(Op::Eq, 5), num(Op::Ne, 6)));
  EXPECT_TRUE(implies(num(Op::Eq, 5), Predicate(dom_.attr(0), Value(1), Value(9))));
  EXPECT_FALSE(implies(num(Op::Eq, 5), num(Op::Gt, 5)));
}

TEST_F(ImplicationTest, InImpliesOnlyIfAllMembersDo) {
  const Predicate in(dom_.attr(0), {Value(2), Value(4)});
  EXPECT_TRUE(implies(in, num(Op::Lt, 5)));
  EXPECT_FALSE(implies(in, num(Op::Lt, 4)));
  EXPECT_TRUE(implies(in, Predicate(dom_.attr(0), {Value(1), Value(2), Value(4)})));
  EXPECT_FALSE(implies(in, Predicate(dom_.attr(0), {Value(2), Value(5)})));
}

TEST_F(ImplicationTest, IntervalContainment) {
  EXPECT_TRUE(implies(num(Op::Lt, 5), num(Op::Lt, 10)));
  EXPECT_TRUE(implies(num(Op::Lt, 5), num(Op::Le, 5)));
  EXPECT_FALSE(implies(num(Op::Le, 5), num(Op::Lt, 5)));
  EXPECT_TRUE(implies(num(Op::Gt, 10), num(Op::Ge, 10)));
  EXPECT_FALSE(implies(num(Op::Ge, 10), num(Op::Gt, 10)));
  EXPECT_TRUE(implies(Predicate(dom_.attr(0), Value(3), Value(7)), num(Op::Lt, 8)));
  EXPECT_TRUE(implies(Predicate(dom_.attr(0), Value(3), Value(7)),
                      Predicate(dom_.attr(0), Value(2), Value(8))));
  EXPECT_FALSE(implies(Predicate(dom_.attr(0), Value(3), Value(9)), num(Op::Lt, 8)));
  EXPECT_FALSE(implies(num(Op::Lt, 10), Predicate(dom_.attr(0), Value(0), Value(20))));
}

TEST_F(ImplicationTest, DegenerateBetweenActsAsEq) {
  const Predicate point(dom_.attr(0), Value(5), Value(5));
  EXPECT_TRUE(implies(point, num(Op::Eq, 5)));
  EXPECT_TRUE(implies(point, num(Op::Le, 5)));
  EXPECT_TRUE(implies(num(Op::Eq, 5), point));
}

TEST_F(ImplicationTest, NeTargets) {
  EXPECT_TRUE(implies(num(Op::Lt, 5), num(Op::Ne, 7)));
  EXPECT_FALSE(implies(num(Op::Lt, 5), num(Op::Ne, 3)));
  EXPECT_TRUE(implies(num(Op::Ne, 7), num(Op::Ne, 7)));
  EXPECT_FALSE(implies(num(Op::Ne, 7), num(Op::Ne, 8)));
  EXPECT_FALSE(implies(num(Op::Ne, 7), num(Op::Lt, 100)));  // unbounded
}

TEST_F(ImplicationTest, StringPatterns) {
  const Predicate pre_sci(name_, Op::Prefix, Value("science"));
  const Predicate pre_s(name_, Op::Prefix, Value("sci"));
  EXPECT_TRUE(implies(pre_sci, pre_s));
  EXPECT_FALSE(implies(pre_s, pre_sci));
  EXPECT_TRUE(implies(pre_sci, Predicate(name_, Op::Contains, Value("enc"))));
  const Predicate suf(name_, Op::Suffix, Value("fiction"));
  EXPECT_TRUE(implies(suf, Predicate(name_, Op::Suffix, Value("ion"))));
  EXPECT_TRUE(implies(suf, Predicate(name_, Op::Contains, Value("fict"))));
  EXPECT_TRUE(implies(Predicate(name_, Op::Contains, Value("abcd")),
                      Predicate(name_, Op::Contains, Value("bc"))));
  EXPECT_FALSE(implies(Predicate(name_, Op::Contains, Value("bc")),
                       Predicate(name_, Op::Contains, Value("abcd"))));
  EXPECT_TRUE(implies(Predicate(name_, Op::Eq, Value("science")), pre_s));
}

TEST_F(ImplicationTest, SoundnessOnRandomPairs) {
  // implies(p, q) = true must mean: every value satisfying p satisfies q.
  MiniDomain dom(1, 30);
  std::mt19937_64 rng(8);
  std::size_t positives = 0;
  for (int round = 0; round < 3000; ++round) {
    const Predicate p = dom.random_predicate(rng);
    const Predicate q = dom.random_predicate(rng);
    if (!implies(p, q)) continue;
    ++positives;
    for (std::int64_t v = -5; v < 35; ++v) {
      if (p.matches_value(Value(v))) {
        ASSERT_TRUE(q.matches_value(Value(v)))
            << p.to_string(dom.schema()) << " => " << q.to_string(dom.schema())
            << " violated at " << v;
      }
    }
  }
  EXPECT_GT(positives, 100u);  // the check is not vacuous
}

class CoveringTest : public ::testing::Test {
 protected:
  CoveringTest() {
    schema_.add_attribute("category", ValueType::String);
    schema_.add_attribute("price", ValueType::Double);
    schema_.add_attribute("year", ValueType::Int);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view s) const {
    return parse_subscription(s, schema_);
  }
};

TEST_F(CoveringTest, ConjunctivityDetection) {
  EXPECT_TRUE(is_conjunctive(*parse("price < 5")));
  EXPECT_TRUE(is_conjunctive(*parse("price < 5 and category = 'art'")));
  EXPECT_FALSE(is_conjunctive(*parse("price < 5 or category = 'art'")));
  EXPECT_FALSE(is_conjunctive(*parse("price < 5 and (year > 1990 or year < 1800)")));
  EXPECT_FALSE(is_conjunctive(*parse("not price < 5")));
}

TEST_F(CoveringTest, BroaderSubscriptionCoversNarrower) {
  const auto broad = parse("price < 50");
  const auto narrow = parse("price < 20 and category = 'art'");
  EXPECT_EQ(covers(*broad, *narrow), std::optional<bool>(true));
  EXPECT_EQ(covers(*narrow, *broad), std::optional<bool>(false));
}

TEST_F(CoveringTest, EqualSubscriptionsCoverEachOther) {
  const auto a = parse("price < 20 and category = 'art'");
  const auto b = parse("category = 'art' and price < 20");
  EXPECT_EQ(covers(*a, *b), std::optional<bool>(true));
  EXPECT_EQ(covers(*b, *a), std::optional<bool>(true));
}

TEST_F(CoveringTest, NonConjunctiveIsOutOfScope) {
  const auto boolean = parse("price < 5 or category = 'art'");
  const auto conj = parse("price < 5");
  EXPECT_EQ(covers(*boolean, *conj), std::nullopt);
  EXPECT_EQ(covers(*conj, *boolean), std::nullopt);
}

TEST_F(CoveringTest, PrunedConjunctionCoversOriginal) {
  // "Pruning as an extension of covering": the pruned entry must cover the
  // subscription it was derived from.
  const auto original = parse("price < 20 and category = 'art' and year > 1990");
  Subscription sub(SubscriptionId(0), original->clone());
  std::mt19937_64 rng(3);
  while (true) {
    const auto candidates = enumerate_prunings(sub.root());
    if (candidates.empty()) break;
    apply_pruning(sub, candidates[rng() % candidates.size()]);
    EXPECT_EQ(covers(sub.root(), *original), std::optional<bool>(true));
  }
}

TEST_F(CoveringTest, CoveringSoundOnRandomConjunctions) {
  MiniDomain dom(4, 20);
  std::mt19937_64 rng(21);
  const auto events = dom.random_events(rng, 400);

  auto random_conjunction = [&](std::size_t preds) {
    std::vector<std::unique_ptr<Node>> parts;
    for (std::size_t i = 0; i < preds; ++i) {
      parts.push_back(Node::leaf(dom.random_predicate(rng)));
    }
    return parts.size() == 1 ? std::move(parts.front()) : Node::and_(std::move(parts));
  };

  std::size_t positives = 0;
  for (int round = 0; round < 1500; ++round) {
    const auto a = random_conjunction(1 + rng() % 3);
    const auto b = random_conjunction(1 + rng() % 4);
    const auto result = covers(*a, *b);
    ASSERT_TRUE(result.has_value());
    if (!*result) continue;
    ++positives;
    for (const auto& e : events) {
      if (b->evaluate_event(e)) {
        ASSERT_TRUE(a->evaluate_event(e))
            << a->to_string(dom.schema()) << " claimed to cover "
            << b->to_string(dom.schema());
      }
    }
  }
  EXPECT_GT(positives, 20u);
}

}  // namespace
}  // namespace dbsp
