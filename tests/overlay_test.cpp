#include "broker/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "subscription/parser.hpp"

namespace dbsp {
namespace {

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() {
    schema_.add_attribute("topic", ValueType::String);
    schema_.add_attribute("price", ValueType::Double);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> tree(std::string_view s) const {
    return parse_subscription(s, schema_);
  }

  [[nodiscard]] Event event(std::string_view topic, double price) const {
    return EventBuilder(schema_).with("topic", std::string(topic)).with("price", price).build();
  }
};

TEST_F(OverlayTest, TopologyHelpers) {
  EXPECT_EQ(Overlay::line(5).size(), 4u);
  EXPECT_EQ(Overlay::star(5).size(), 4u);
  EXPECT_THROW(Overlay(schema_, 3, {{0, 1}, {1, 2}, {2, 0}}), std::invalid_argument);
  EXPECT_THROW(Overlay(schema_, 0, {}), std::invalid_argument);
}

TEST_F(OverlayTest, SubscriptionFloodsToAllBrokers) {
  Overlay overlay(schema_, 5, Overlay::line(5));
  overlay.subscribe(BrokerId(0), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  for (std::uint32_t b = 0; b < 5; ++b) {
    EXPECT_TRUE(overlay.broker(BrokerId(b)).table().contains(SubscriptionId(1)))
        << "broker " << b;
  }
  // Remote everywhere except the home broker.
  EXPECT_EQ(overlay.broker(BrokerId(0)).table().local_count(), 1u);
  EXPECT_EQ(overlay.broker(BrokerId(4)).table().remote_count(), 1u);
  // 4 subscribe messages crossed the 4 links exactly once each.
  EXPECT_EQ(overlay.network().total().control_messages, 4u);
}

TEST_F(OverlayTest, EventRoutedOnlyTowardInterestedBroker) {
  Overlay overlay(schema_, 5, Overlay::line(5));
  overlay.subscribe(BrokerId(4), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.network().reset_stats();

  // Publish at broker 0: must traverse all 4 links to reach broker 4.
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.network().total().event_messages, 4u);
  EXPECT_EQ(overlay.total_notifications(), 1u);

  // Non-matching event leaves the wire silent.
  overlay.network().reset_stats();
  overlay.publish(BrokerId(0), event("y", 1.0));
  EXPECT_EQ(overlay.network().total().event_messages, 0u);
  EXPECT_EQ(overlay.total_notifications(), 1u);
}

TEST_F(OverlayTest, EventStopsAtClosestInterestedSegment) {
  Overlay overlay(schema_, 5, Overlay::line(5));
  overlay.subscribe(BrokerId(1), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.network().reset_stats();
  overlay.publish(BrokerId(0), event("x", 1.0));
  // Only the 0-1 link is used; brokers 2..4 never see the event.
  EXPECT_EQ(overlay.network().total().event_messages, 1u);
  EXPECT_EQ(overlay.network().link(BrokerId(1), BrokerId(2)).event_messages, 0u);
}

TEST_F(OverlayTest, LocalDeliveryWithoutNetworkTraffic) {
  Overlay overlay(schema_, 3, Overlay::line(3));
  overlay.subscribe(BrokerId(1), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.network().reset_stats();
  overlay.publish(BrokerId(1), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 1u);
  EXPECT_EQ(overlay.network().total().event_messages, 0u);
}

TEST_F(OverlayTest, MultipleSubscribersDeduplicatePerLink) {
  Overlay overlay(schema_, 3, Overlay::line(3));
  // Two subscriptions at broker 2, both matching the same event.
  overlay.subscribe(BrokerId(2), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.subscribe(BrokerId(2), ClientId(2), SubscriptionId(2), tree("price < 10"));
  overlay.network().reset_stats();
  overlay.publish(BrokerId(0), event("x", 5.0));
  // One copy per link despite two matching remote subscriptions.
  EXPECT_EQ(overlay.network().total().event_messages, 2u);
  EXPECT_EQ(overlay.total_notifications(), 2u);
}

TEST_F(OverlayTest, NotificationLogRecordsSubscriberAndEvent) {
  Overlay overlay(schema_, 2, Overlay::line(2));
  overlay.set_record_notifications(true);
  overlay.subscribe(BrokerId(1), ClientId(1), SubscriptionId(7), tree("topic = 'x'"));
  const auto seq = overlay.publish(BrokerId(0), event("x", 1.0));
  const auto& log = overlay.broker(BrokerId(1)).notification_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, SubscriptionId(7));
  EXPECT_EQ(log[0].second, seq);
}

TEST_F(OverlayTest, StarTopologyRoutesThroughHub) {
  Overlay overlay(schema_, 4, Overlay::star(4));
  overlay.subscribe(BrokerId(3), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.network().reset_stats();
  overlay.publish(BrokerId(1), event("x", 1.0));
  // Leaf 1 -> hub 0 -> leaf 3: two hops.
  EXPECT_EQ(overlay.network().total().event_messages, 2u);
  EXPECT_EQ(overlay.total_notifications(), 1u);
}

TEST_F(OverlayTest, UnsubscribeFloodsAndStopsDelivery) {
  Overlay overlay(schema_, 4, Overlay::line(4));
  overlay.subscribe(BrokerId(3), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 1u);

  overlay.unsubscribe(BrokerId(3), SubscriptionId(1));
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_FALSE(overlay.broker(BrokerId(b)).table().contains(SubscriptionId(1)));
    EXPECT_EQ(overlay.broker(BrokerId(b)).engine().subscription_count(), 0u);
  }

  overlay.network().reset_stats();
  overlay.reset_metrics();
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 0u);
  EXPECT_EQ(overlay.network().total().event_messages, 0u);
}

TEST_F(OverlayTest, UnsubscribeLeavesOtherSubscriptionsIntact) {
  Overlay overlay(schema_, 3, Overlay::line(3));
  overlay.subscribe(BrokerId(2), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.subscribe(BrokerId(2), ClientId(2), SubscriptionId(2), tree("topic = 'x'"));
  overlay.unsubscribe(BrokerId(2), SubscriptionId(1));
  overlay.reset_metrics();
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 1u);
  // The unsubscribe flood crossed each link exactly once.
  EXPECT_EQ(overlay.broker(BrokerId(0)).table().size(), 1u);
}

TEST_F(OverlayTest, UnsubscribeOfUnknownOrRemoteThrows) {
  Overlay overlay(schema_, 2, Overlay::line(2));
  overlay.subscribe(BrokerId(0), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  EXPECT_THROW(overlay.unsubscribe(BrokerId(0), SubscriptionId(9)),
               std::invalid_argument);
  // Broker 1 only has a remote copy; unsubscribe must happen at the home broker.
  EXPECT_THROW(overlay.unsubscribe(BrokerId(1), SubscriptionId(1)),
               std::invalid_argument);
}

// --- Aggregated routing (subgroup-summary advertisements) ------------------

TEST_F(OverlayTest, AggregatedOverlayDeliversExactlyLikePlain) {
  Overlay plain(schema_, 4, Overlay::line(4));
  Overlay aggregated(schema_, 4, Overlay::line(4));
  aggregated.enable_aggregation();
  plain.set_record_notifications(true);
  aggregated.set_record_notifications(true);

  const char* filters[] = {"topic = 'x'", "price < 10", "topic = 'y' and price > 5",
                           "price >= 2 and price <= 8", "not (topic = 'x')"};
  for (std::uint32_t i = 0; i < 20; ++i) {
    const BrokerId home(i % 4);
    plain.subscribe(home, ClientId(i), SubscriptionId(i), tree(filters[i % 5]));
    aggregated.subscribe(home, ClientId(i), SubscriptionId(i), tree(filters[i % 5]));
  }

  const char* topics[] = {"x", "y", "z"};
  for (std::uint32_t i = 0; i < 30; ++i) {
    const Event e = event(topics[i % 3], static_cast<double>(i % 12));
    plain.publish(BrokerId(i % 4), e);
    aggregated.publish(BrokerId(i % 4), e);
  }

  EXPECT_GT(plain.total_notifications(), 0u);
  EXPECT_EQ(aggregated.total_notifications(), plain.total_notifications());
  for (std::uint32_t b = 0; b < 4; ++b) {
    auto lhs = plain.broker(BrokerId(b)).notification_log();
    auto rhs = aggregated.broker(BrokerId(b)).notification_log();
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs) << "broker " << b;
  }
}

TEST_F(OverlayTest, AggregatedAdvertisementsSaveControlBytes) {
  // 200 subscriptions over 10 distinct filter shapes: the plain overlay
  // floods every tree to every link, the aggregated overlay advertises one
  // bounded summary per subgroup and stays silent when an arrival does not
  // change its subgroup's summary — the fig1b-style network saving.
  const auto subscribe_all = [&](Overlay& overlay) {
    for (std::uint32_t i = 0; i < 200; ++i) {
      overlay.subscribe(BrokerId(0), ClientId(i), SubscriptionId(i),
                        tree("topic = 'x' and price < " + std::to_string(i % 10)));
    }
  };

  Overlay plain(schema_, 4, Overlay::line(4));
  subscribe_all(plain);
  const std::uint64_t plain_bytes = plain.network().total().bytes;

  Overlay aggregated(schema_, 4, Overlay::line(4));
  aggregated.enable_aggregation();
  subscribe_all(aggregated);
  const std::uint64_t aggregated_bytes = aggregated.network().total().bytes;

  EXPECT_LT(aggregated_bytes, plain_bytes);
  EXPECT_LT(aggregated_bytes, plain_bytes / 4);  // an order-of-shape saving
  // Remote brokers hold no per-subscription state, only learned summaries.
  EXPECT_EQ(aggregated.broker(BrokerId(3)).table().size(), 0u);

  // Delivery still works through the learned summaries.
  aggregated.publish(BrokerId(3), event("x", 1.0));
  EXPECT_GT(aggregated.total_notifications(), 0u);
}

TEST_F(OverlayTest, AggregatedEventRoutingSkipsUninterestedLinks) {
  Overlay overlay(schema_, 5, Overlay::line(5));
  overlay.enable_aggregation();
  overlay.subscribe(BrokerId(4), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.network().reset_stats();

  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.network().total().event_messages, 4u);
  EXPECT_EQ(overlay.total_notifications(), 1u);

  // The learned summary rejects a non-matching topic at the source broker.
  overlay.network().reset_stats();
  overlay.publish(BrokerId(0), event("y", 1.0));
  EXPECT_EQ(overlay.network().total().event_messages, 0u);
  EXPECT_EQ(overlay.total_notifications(), 1u);
}

TEST_F(OverlayTest, AggregatedUnsubscribeRetractsAndStopsDelivery) {
  Overlay overlay(schema_, 3, Overlay::line(3));
  overlay.enable_aggregation();
  overlay.subscribe(BrokerId(2), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 1u);

  overlay.unsubscribe(BrokerId(2), SubscriptionId(1));
  overlay.network().reset_stats();
  overlay.reset_metrics();
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_EQ(overlay.total_notifications(), 0u);
  // The emptied subgroup was retracted, so the event stays off the wire.
  EXPECT_EQ(overlay.network().total().event_messages, 0u);
}

TEST_F(OverlayTest, AggregationRequiresEmptyBrokers) {
  Overlay overlay(schema_, 2, Overlay::line(2));
  overlay.subscribe(BrokerId(0), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  EXPECT_THROW(overlay.enable_aggregation(), std::logic_error);
}

TEST_F(OverlayTest, ResetMetricsClearsBrokerCounters) {
  Overlay overlay(schema_, 2, Overlay::line(2));
  overlay.subscribe(BrokerId(1), ClientId(1), SubscriptionId(1), tree("topic = 'x'"));
  overlay.publish(BrokerId(0), event("x", 1.0));
  EXPECT_GT(overlay.total_notifications(), 0u);
  overlay.reset_metrics();
  EXPECT_EQ(overlay.total_notifications(), 0u);
  EXPECT_EQ(overlay.network().total().messages, 0u);
  EXPECT_DOUBLE_EQ(overlay.total_filter_seconds(), 0.0);
}

}  // namespace
}  // namespace dbsp
