#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "subscription/parser.hpp"

namespace dbsp {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    schema_.add_attribute("a", ValueType::Int);  // leaf sel 0.1
    schema_.add_attribute("b", ValueType::Int);  // leaf sel 0.5
    schema_.add_attribute("c", ValueType::Int);  // leaf sel 0.9
    estimator_ = std::make_unique<SelectivityEstimator>(
        LeafSelectivityFn([](const Predicate& p) {
          switch (p.attribute().value()) {
            case 0: return 0.1;
            case 1: return 0.5;
            default: return 0.9;
          }
        }));
  }

  [[nodiscard]] std::unique_ptr<Subscription> sub(std::uint32_t id,
                                                  std::string_view text) const {
    return std::make_unique<Subscription>(SubscriptionId(id),
                                          parse_subscription(text, schema_));
  }

  [[nodiscard]] PruningEngine engine(PruneDimension dim,
                                     CountingMatcher* matcher = nullptr) const {
    PruneEngineConfig cfg;
    cfg.dimension = dim;
    return PruningEngine(*estimator_, cfg, matcher);
  }

  Schema schema_;
  std::unique_ptr<SelectivityEstimator> estimator_;
};

TEST_F(EngineTest, TotalPossibleSumsSubscriptionCapacities) {
  auto e = engine(PruneDimension::NetworkLoad);
  auto s1 = sub(1, "a=1 and b=2 and c=3");          // 2 prunings
  auto s2 = sub(2, "a=1 and (b=2 or c=3)");         // 1 pruning
  auto s3 = sub(3, "a=1");                          // 0 prunings
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  e.register_subscription(*s3);
  EXPECT_EQ(e.total_possible(), 3u);
  EXPECT_EQ(e.prune(100), 3u);  // exhausts
  EXPECT_FALSE(e.prune_one());
  EXPECT_EQ(e.performed(), 3u);
}

TEST_F(EngineTest, NetworkDimensionPrunesLeastSelectiveFirst) {
  auto e = engine(PruneDimension::NetworkLoad);
  // Pruning c (sel 0.9) from s1 degrades little; pruning a (sel 0.1) from
  // s2 degrades a lot. The engine must pick s1's pruning first.
  auto s1 = sub(1, "a=1 and c=2");
  auto s2 = sub(2, "a=3 and b=4");
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  ASSERT_TRUE(e.prune_one());
  ASSERT_EQ(e.history().size(), 1u);
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(1));
  // s1 lost the c conjunct (kept the selective a).
  EXPECT_EQ(s1->root().to_string(schema_), "a = 1");
}

TEST_F(EngineTest, MemoryDimensionPrunesBiggestValidSubtreeFirst) {
  auto e = engine(PruneDimension::MemoryUsage);
  auto s1 = sub(1, "a=1 and b=2");                      // small win
  auto s2 = sub(2, "a=3 and (b=4 or b=5 or b=6 or b=7)");  // big Or group
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  ASSERT_TRUE(e.prune_one());
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(2));
  EXPECT_EQ(s2->root().to_string(schema_), "a = 3");
}

TEST_F(EngineTest, ThroughputDimensionPreservesPmin) {
  auto e = engine(PruneDimension::Throughput);
  // s1: pruning inside the or-group keeps pmin at 2 (Δeff = 0).
  // s2: any pruning drops pmin 2 -> 1 (Δeff = -1).
  auto s1 = sub(1, "a=1 and (b=2 or (b=3 and c=4))");
  auto s2 = sub(2, "a=5 and b=6");
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  ASSERT_TRUE(e.prune_one());
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(1));
  EXPECT_DOUBLE_EQ(e.history()[0].scores.eff_improvement, 0.0);
}

TEST_F(EngineTest, TieBrokenBySecondaryDimension) {
  // With an all-1.0 leaf estimator every pruning has zero selectivity
  // degradation, so the network order must fall through to its secondary
  // dimension (throughput): s2's pruning keeps pmin (Δeff = 0) while s1's
  // lowers it (Δeff = -1) — s2 must win even though it registered later.
  const SelectivityEstimator ones(
      LeafSelectivityFn([](const Predicate&) { return 1.0; }));
  PruneEngineConfig cfg;
  cfg.dimension = PruneDimension::NetworkLoad;
  PruningEngine e(ones, cfg);
  auto s1 = sub(1, "a=5 and b=6");
  auto s2 = sub(2, "a=1 and (b=2 or (b=3 and c=4))");
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  const auto best1 = e.peek_best(SubscriptionId(1));
  const auto best2 = e.peek_best(SubscriptionId(2));
  ASSERT_TRUE(best1 && best2);
  ASSERT_DOUBLE_EQ(best1->sel_degradation, best2->sel_degradation);
  ASSERT_TRUE(e.prune_one());
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(2));
  EXPECT_DOUBLE_EQ(e.history()[0].scores.eff_improvement, 0.0);
}

TEST_F(EngineTest, QueueReinsertsNextBestAfterPrune) {
  auto e = engine(PruneDimension::NetworkLoad);
  auto s = sub(1, "a=1 and b=2 and c=3");
  e.register_subscription(*s);
  // First pruning removes c (cheapest), then b, keeping the most selective.
  ASSERT_TRUE(e.prune_one());
  EXPECT_EQ(s->root().to_string(schema_), "(a = 1 and b = 2)");
  ASSERT_TRUE(e.prune_one());
  EXPECT_EQ(s->root().to_string(schema_), "a = 1");
  EXPECT_FALSE(e.prune_one());
}

TEST_F(EngineTest, HistoryScoresAreMonotoneForNetworkDimension) {
  // Greedy best-first on a fixed baseline: within one subscription the
  // successive degradations (vs original) are non-decreasing.
  auto e = engine(PruneDimension::NetworkLoad);
  auto s = sub(1, "a=1 and b=2 and c=3 and c=4 and b=5");
  e.register_subscription(*s);
  e.prune(100);
  for (std::size_t i = 1; i < e.history().size(); ++i) {
    EXPECT_GE(e.history()[i].scores.sel_degradation,
              e.history()[i - 1].scores.sel_degradation - 1e-12);
  }
}

TEST_F(EngineTest, UnregisterDropsPendingPrunings) {
  auto e = engine(PruneDimension::NetworkLoad);
  auto s1 = sub(1, "a=1 and b=2");
  auto s2 = sub(2, "b=3 and c=4");
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  e.unregister_subscription(SubscriptionId(2));
  EXPECT_EQ(e.prune(100), 1u);  // only s1's pruning runs
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(1));
}

TEST_F(EngineTest, DuplicateRegistrationThrows) {
  auto e = engine(PruneDimension::NetworkLoad);
  auto s = sub(1, "a=1 and b=2");
  e.register_subscription(*s);
  EXPECT_THROW(e.register_subscription(*s), std::invalid_argument);
}

TEST_F(EngineTest, MatcherStaysInSyncDuringPruning) {
  CountingMatcher matcher(schema_);
  auto e = engine(PruneDimension::MemoryUsage, &matcher);
  auto s1 = sub(1, "a=1 and b=2 and c=3");
  auto s2 = sub(2, "a=1 and (b=4 or c=5)");
  matcher.add(*s1);
  matcher.add(*s2);
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  const auto before = matcher.association_count();
  e.prune(100);
  EXPECT_LT(matcher.association_count(), before);

  // After full pruning both subscriptions are single predicates and the
  // matcher must agree with direct evaluation.
  Event ev;
  ev.set(schema_.at("a"), Value(1));
  std::vector<SubscriptionId> out;
  matcher.match(ev, out);
  std::size_t direct = 0;
  if (s1->matches(ev)) ++direct;
  if (s2->matches(ev)) ++direct;
  EXPECT_EQ(out.size(), direct);
}

TEST_F(EngineTest, CustomTieBreakOrderIsHonored) {
  PruneEngineConfig cfg;
  cfg.dimension = PruneDimension::NetworkLoad;
  cfg.order = std::array<PruneDimension, 3>{PruneDimension::NetworkLoad,
                                            PruneDimension::MemoryUsage,
                                            PruneDimension::Throughput};
  PruningEngine e(*estimator_, cfg);
  EXPECT_EQ(e.config().effective_order()[1], PruneDimension::MemoryUsage);
}

TEST_F(EngineTest, PruneUntilRespectsNetworkBudget) {
  // a(0.1) and b(0.5) and c(0.9): pruning c degrades by ~0.05 (avg
  // component), pruning b by 0.4+, pruning a by 0.8+. A small budget must
  // stop after the cheap pruning.
  auto e = engine(PruneDimension::NetworkLoad);
  auto s = sub(1, "a=1 and b=2 and c=3");
  e.register_subscription(*s);
  const auto first = e.next_primary_rating();
  ASSERT_TRUE(first.has_value());
  const std::size_t done = e.prune_until(*first + 1e-9);
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(s->root().to_string(schema_), "(a = 1 and b = 2)");
  // A generous budget exhausts everything.
  EXPECT_EQ(e.prune_until(1.0), 1u);
  EXPECT_FALSE(e.next_primary_rating().has_value());
}

TEST_F(EngineTest, PruneUntilRespectsMemoryBudget) {
  auto e = engine(PruneDimension::MemoryUsage);
  // s2's or-group pruning saves far more bytes than s1's leaf pruning.
  auto s1 = sub(1, "a=1 and b=2");
  auto s2 = sub(2, "a=3 and (b=4 or b=5 or b=6 or b=7)");
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  // Budget: only prunings saving >= 100 bytes — exactly the or-group cut.
  const std::size_t done = e.prune_until(100.0);
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(2));
  EXPECT_GE(e.history()[0].scores.mem_improvement, 100.0);
  // The remaining candidates all save less than the budget.
  const auto next = e.peek_best(SubscriptionId(1));
  ASSERT_TRUE(next.has_value());
  EXPECT_LT(next->mem_improvement, 100.0);
}

TEST_F(EngineTest, PruneUntilThroughputBudgetStopsAtPminLoss) {
  auto e = engine(PruneDimension::Throughput);
  auto s1 = sub(1, "a=1 and (b=2 or (b=3 and c=4))");  // Δeff = 0 available
  auto s2 = sub(2, "a=5 and b=6");                     // only Δeff = -1
  e.register_subscription(*s1);
  e.register_subscription(*s2);
  // Budget Δ≈eff >= 0: performs only pmin-preserving prunings.
  const std::size_t done = e.prune_until(0.0);
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(e.history()[0].sub, SubscriptionId(1));
}

TEST_F(EngineTest, OriginalProfileIsStableAcrossPrunings) {
  auto e = engine(PruneDimension::NetworkLoad);
  auto s = sub(1, "a=1 and b=2 and c=3");
  e.register_subscription(*s);
  const auto* orig = e.original_profile(SubscriptionId(1));
  ASSERT_NE(orig, nullptr);
  const double avg0 = orig->sel.avg;
  const auto pmin0 = orig->pmin;
  e.prune(2);
  EXPECT_DOUBLE_EQ(e.original_profile(SubscriptionId(1))->sel.avg, avg0);
  EXPECT_EQ(e.original_profile(SubscriptionId(1))->pmin, pmin0);
  EXPECT_EQ(e.original_profile(SubscriptionId(42)), nullptr);
}

}  // namespace
}  // namespace dbsp
