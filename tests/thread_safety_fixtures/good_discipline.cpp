// Positive fixture: the full annotated-locking vocabulary used by the real
// code — MutexLock scopes, REQUIRES contracts, assert_held() inside a
// lambda running under a caller-held lock, and CondVar waits — must compile
// *clean* under clang -Wthread-safety -Werror. Together with the bad_*
// fixtures this pins both directions: violations fire, the idioms don't.

#include <deque>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void push(int value) DBSP_EXCLUDES(mutex_) {
    {
      dbsp::MutexLock lock(mutex_);
      items_.push_back(value);
    }
    cv_.notify_one();
  }

  int pop_blocking() DBSP_EXCLUDES(mutex_) {
    dbsp::MutexLock lock(mutex_);
    while (items_.empty()) cv_.wait(mutex_);
    const int front = items_.front();
    items_.pop_front();
    return front;
  }

  // The lambda-under-held-lock idiom: TSA analyzes lambdas as separate
  // functions, so the lambda re-asserts the capability it inherits.
  template <class Fn>
  void with_size(Fn&& fn) DBSP_EXCLUDES(mutex_) {
    dbsp::MutexLock lock(mutex_);
    auto body = [this] {
      mutex_.assert_held();  // runs only under the caller's lock
      return items_.size();
    };
    fn(body());
  }

 private:
  void drain() DBSP_REQUIRES(mutex_) { items_.clear(); }

  dbsp::Mutex mutex_;
  dbsp::CondVar cv_;
  std::deque<int> items_ DBSP_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Queue queue;
  queue.push(1);
  queue.with_size([](std::size_t) {});
  return queue.pop_blocking() == 1 ? 0 : 1;
}
