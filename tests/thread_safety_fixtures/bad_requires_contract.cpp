// Negative-compile fixture: calling a DBSP_REQUIRES function without
// holding the named mutex must be rejected by clang -Wthread-safety
// (tools/check_annotations.py asserts this TU FAILS to compile). This is
// the contract shape PubSubCore uses for log_to_store/dispatch/build_snapshot.

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Table {
 public:
  void insert_locked(int key) DBSP_REQUIRES(mutex_) { last_key_ = key; }

  void insert(int key) {
    // BUG under test: the REQUIRES contract demands mutex_ held here.
    insert_locked(key);
  }

 private:
  dbsp::Mutex mutex_;
  int last_key_ DBSP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table table;
  table.insert(7);
  return 0;
}
