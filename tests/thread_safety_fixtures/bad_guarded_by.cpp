// Negative-compile fixture: touching a DBSP_GUARDED_BY member without the
// lock must be rejected by clang -Wthread-safety (tools/check_annotations.py
// asserts this TU FAILS to compile, proving the annotation layer is armed —
// a silently inert macro set would pass everywhere and protect nothing).

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment_unlocked() {
    // BUG under test: no MutexLock — writing a guarded member lock-free.
    ++value_;
  }

 private:
  dbsp::Mutex mutex_;
  int value_ DBSP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_unlocked();
  return 0;
}
