// The WorkloadDomain interface and the two new domains (stock ticker, IoT
// telemetry): registry, determinism, schema conformance, and the domain-
// specific traffic shapes (bursty prices, narrow sensor subscriptions,
// flash-crowd templates).

#include "scenario/workload_domain.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace dbsp {
namespace {

std::vector<std::string> tree_strings(WorkloadDomain& domain, std::uint64_t stream,
                                      std::size_t n, bool flash = false) {
  auto source = flash ? domain.flash_subscriptions(stream) : domain.subscriptions(stream);
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(source->next()->to_string(domain.schema()));
  }
  return out;
}

TEST(WorkloadDomainTest, RegistryKnowsAllThreeDomains) {
  ASSERT_EQ(workload_names().size(), 3u);
  for (const auto name : workload_names()) {
    const auto domain = make_workload(name);
    EXPECT_EQ(domain->name(), name);
    EXPECT_GT(domain->schema().attribute_count(), 0u);
  }
  EXPECT_THROW((void)make_workload("telegraph"), std::invalid_argument);
}

TEST(WorkloadDomainTest, StreamsAreDeterministicAndIndependent) {
  for (const auto name : workload_names()) {
    const auto domain = make_workload(name);

    EXPECT_EQ(tree_strings(*domain, 1, 20), tree_strings(*domain, 1, 20))
        << name << ": same stream must replay identically";
    EXPECT_NE(tree_strings(*domain, 1, 20), tree_strings(*domain, 7, 20))
        << name << ": distinct streams must differ";
    EXPECT_EQ(tree_strings(*domain, 4, 10, true), tree_strings(*domain, 4, 10, true))
        << name << ": flash stream must replay identically";

    auto a = domain->events(2);
    auto b = domain->events(2);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(a->next().to_string(domain->schema()),
                b->next().to_string(domain->schema()));
    }
  }
}

TEST(WorkloadDomainTest, EventsConformToSchemaAndSubscriptionsEvaluate) {
  for (const auto name : workload_names()) {
    const auto domain = make_workload(name);
    const Schema& schema = domain->schema();

    auto events = domain->events(2)->generate(300);
    for (const Event& e : events) {
      ASSERT_GT(e.size(), 0u);
      for (const auto& [attr, value] : e.pairs()) {
        ASSERT_LT(attr.value(), schema.attribute_count());
        // Int attributes may carry Int only; Double may not carry String...
        const ValueType declared = schema.type(attr);
        EXPECT_EQ(value.type(), declared)
            << name << ": attribute " << schema.name(attr);
      }
    }

    auto subs = domain->subscriptions(1);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < 80; ++i) {
      const auto tree = subs->next();
      ASSERT_NE(tree, nullptr);
      ASSERT_FALSE(tree->is_constant());
      EXPECT_GE(tree->leaf_count(), 1u);
      for (const Event& e : events) matches += tree->evaluate_event(e) ? 1u : 0u;
    }
    // The population is selective but not dead: someone matches something.
    EXPECT_GT(matches, 0u) << name;
  }
}

TEST(StockDomainTest, BurstRegimesConcentrateTheTape) {
  StockConfig config;
  config.symbols = 200;
  config.burst_probability = 0.01;
  const StockDomain domain(config);
  StockEventGenerator gen(domain, 2);

  std::size_t burst_ticks = 0;
  std::set<std::string> symbols_seen;
  std::size_t halted = 0;
  for (int i = 0; i < 6000; ++i) {
    const Event e = gen.next();
    if (gen.in_burst()) ++burst_ticks;
    symbols_seen.insert(e.find(domain.symbol)->as_string());
    if (e.find(domain.halted)->as_bool()) ++halted;
  }
  EXPECT_GT(burst_ticks, 0u) << "no burst regime in 6000 events";
  EXPECT_GT(symbols_seen.size(), 50u);  // Zipf, but not degenerate
  EXPECT_GT(halted, 0u);                // extreme moves trip the breaker
}

TEST(StockDomainTest, SubscriptionsAreNumericHeavy) {
  const StockDomain domain{StockConfig{}};
  StockSubscriptionGenerator gen(domain, 1);
  std::size_t numeric_leaves = 0;
  std::size_t total_leaves = 0;
  for (int i = 0; i < 100; ++i) {
    const auto g = gen.next();
    g.tree->for_each_leaf([&](const Node& leaf) {
      ++total_leaves;
      const auto type = domain.schema().type(leaf.predicate().attribute());
      if (type == ValueType::Int || type == ValueType::Double) ++numeric_leaves;
    });
  }
  // The defining trait vs the auction domain: mostly numeric predicates.
  EXPECT_GT(numeric_leaves * 2, total_leaves);
}

TEST(StockDomainTest, FlashTemplateTargetsTheHottestSymbol) {
  const StockDomain domain{StockConfig{}};
  StockSubscriptionGenerator gen(domain, 9);
  const std::string& hot = domain.symbols()[0];
  for (int i = 0; i < 30; ++i) {
    auto tree = gen.hot_tree();
    bool anchored = false;
    tree->for_each_leaf([&](const Node& leaf) {
      if (leaf.predicate().attribute() == domain.symbol &&
          leaf.predicate().op() == Op::Eq &&
          leaf.predicate().operand().as_string() == hot) {
        anchored = true;
      }
    });
    EXPECT_TRUE(anchored);
  }
}

TEST(IotDomainTest, NarrowSubscriptionsAndPeriodicReadings) {
  IotConfig config;
  config.devices = 500;
  const IotDomain domain(config);

  // Readings stay within each sensor kind's declared range.
  IotEventGenerator gen(domain, 2);
  for (int i = 0; i < 2000; ++i) {
    const Event e = gen.next();
    const auto& kind = e.find(domain.sensor)->as_string();
    const auto range = domain.reading_range(kind);
    const double reading = e.find(domain.reading)->numeric();
    EXPECT_GE(reading, range.lo) << kind;
    EXPECT_LE(reading, range.hi) << kind;
    const double battery = e.find(domain.battery)->numeric();
    EXPECT_GE(battery, 0.0);
    EXPECT_LE(battery, 100.0);
  }

  // mware-style narrowness: the typical subscription pins an equality
  // anchor (device / region / sensor) next to its numeric condition.
  IotSubscriptionGenerator subs(domain, 1);
  std::size_t anchored = 0;
  for (int i = 0; i < 100; ++i) {
    const auto g = subs.next();
    bool has_eq_anchor = false;
    g.tree->for_each_leaf([&](const Node& leaf) {
      const auto attr = leaf.predicate().attribute();
      if (leaf.predicate().op() == Op::Eq &&
          (attr == domain.device || attr == domain.region || attr == domain.sensor)) {
        has_eq_anchor = true;
      }
    });
    anchored += has_eq_anchor ? 1u : 0u;
  }
  EXPECT_GT(anchored, 80u);
}

TEST(IotDomainTest, FlashTemplateTargetsTheHottestRegion) {
  const IotDomain domain{IotConfig{}};
  IotSubscriptionGenerator gen(domain, 9);
  for (int i = 0; i < 20; ++i) {
    auto tree = gen.hot_tree();
    bool anchored = false;
    tree->for_each_leaf([&](const Node& leaf) {
      if (leaf.predicate().attribute() == domain.region &&
          leaf.predicate().operand().as_string() == domain.regions()[0]) {
        anchored = true;
      }
    });
    EXPECT_TRUE(anchored);
  }
}

}  // namespace
}  // namespace dbsp
