// Property tests: the CountingMatcher must agree with the NaiveMatcher
// (direct tree evaluation) on arbitrary subscription corpora and event
// streams — including NOT-bearing subscriptions (pmin = 0 paths) and
// after arbitrary pruning/reindex churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/candidates.hpp"
#include "filter/counting_matcher.hpp"
#include "filter/naive_matcher.hpp"
#include "test_util.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

struct Corpus {
  std::vector<std::unique_ptr<Subscription>> subs;
};

Corpus make_corpus(const MiniDomain& dom, std::mt19937_64& rng, std::size_t n,
                   double not_prob) {
  Corpus c;
  std::uniform_int_distribution<std::size_t> leaves(1, 9);
  for (std::size_t i = 0; i < n; ++i) {
    c.subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
        dom.random_tree(rng, leaves(rng), not_prob)));
  }
  return c;
}

std::vector<SubscriptionId> sorted_match(CountingMatcher& m, const Event& e) {
  std::vector<SubscriptionId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SubscriptionId> sorted_match(const NaiveMatcher& m, const Event& e) {
  std::vector<SubscriptionId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

class MatcherEquivalence : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MatcherEquivalence, CountingEqualsNaive) {
  const auto [seed, not_prob] = GetParam();
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  Corpus corpus = make_corpus(dom, rng, 120, not_prob);

  CountingMatcher counting(dom.schema());
  NaiveMatcher naive;
  for (auto& s : corpus.subs) {
    counting.add(*s);
    naive.add(*s);
  }
  for (const auto& e : dom.random_events(rng, 250)) {
    EXPECT_EQ(sorted_match(counting, e), sorted_match(naive, e));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MatcherEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.25)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_not" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(MatcherEquivalenceChurn, EquivalenceHoldsUnderPruningAndRemoval) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(4242);
  Corpus corpus = make_corpus(dom, rng, 80, 0.15);

  CountingMatcher counting(dom.schema());
  NaiveMatcher naive;
  for (auto& s : corpus.subs) {
    counting.add(*s);
    naive.add(*s);
  }

  std::vector<bool> alive(corpus.subs.size(), true);
  for (int round = 0; round < 30; ++round) {
    // Random churn: prune a random subscription or remove one.
    for (int k = 0; k < 5; ++k) {
      const auto i = static_cast<std::size_t>(rng() % corpus.subs.size());
      if (!alive[i]) continue;
      Subscription& s = *corpus.subs[i];
      if (rng() % 4 == 0) {
        counting.remove(s);
        naive.remove(s.id());
        alive[i] = false;
        continue;
      }
      const auto candidates = enumerate_prunings(s.root());
      if (candidates.empty()) continue;
      const auto& path = candidates[rng() % candidates.size()];
      apply_pruning(s, path);
      counting.reindex(s);
    }
    for (const auto& e : dom.random_events(rng, 40)) {
      ASSERT_EQ(sorted_match(counting, e), sorted_match(naive, e)) << "round " << round;
    }
  }
}

TEST(MatcherEquivalenceAuction, RealWorkloadAgreesWithNaive) {
  // The full auction workload (all operators incl. strings, In, Between).
  WorkloadConfig cfg;
  cfg.seed = 7;
  cfg.titles = 200;
  cfg.authors = 80;
  cfg.not_probability = 0.1;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator sub_gen(domain);
  AuctionEventGenerator event_gen(domain);

  CountingMatcher counting(domain.schema());
  NaiveMatcher naive;
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < 400; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    counting.add(*subs.back());
    naive.add(*subs.back());
  }
  for (const auto& e : event_gen.generate(300)) {
    EXPECT_EQ(sorted_match(counting, e), sorted_match(naive, e));
  }
}

}  // namespace
}  // namespace dbsp
