// Property tests: the CountingMatcher must agree with the NaiveMatcher
// (direct tree evaluation) on arbitrary subscription corpora and event
// streams — including NOT-bearing subscriptions (pmin = 0 paths) and
// after arbitrary pruning/reindex churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/candidates.hpp"
#include "filter/counting_matcher.hpp"
#include "filter/dnf_matcher.hpp"
#include "filter/naive_matcher.hpp"
#include "test_util.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

using test::Corpus;
using test::make_corpus;
using test::MiniDomain;

std::vector<SubscriptionId> sorted_match(CountingMatcher& m, const Event& e) {
  std::vector<SubscriptionId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SubscriptionId> sorted_match(const NaiveMatcher& m, const Event& e) {
  std::vector<SubscriptionId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

class MatcherEquivalence : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MatcherEquivalence, CountingEqualsNaive) {
  const auto [seed, not_prob] = GetParam();
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  Corpus corpus = make_corpus(dom, rng, 120, not_prob);

  CountingMatcher counting(dom.schema());
  NaiveMatcher naive;
  for (auto& s : corpus.subs) {
    counting.add(*s);
    naive.add(*s);
  }
  for (const auto& e : dom.random_events(rng, 250)) {
    EXPECT_EQ(sorted_match(counting, e), sorted_match(naive, e));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MatcherEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.25)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_not" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(MatcherEquivalenceChurn, EquivalenceHoldsUnderPruningAndRemoval) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(4242);
  Corpus corpus = make_corpus(dom, rng, 80, 0.15);

  CountingMatcher counting(dom.schema());
  NaiveMatcher naive;
  for (auto& s : corpus.subs) {
    counting.add(*s);
    naive.add(*s);
  }

  std::vector<bool> alive(corpus.subs.size(), true);
  for (int round = 0; round < 30; ++round) {
    // Random churn: prune a random subscription or remove one.
    for (int k = 0; k < 5; ++k) {
      const auto i = static_cast<std::size_t>(rng() % corpus.subs.size());
      if (!alive[i]) continue;
      Subscription& s = *corpus.subs[i];
      if (rng() % 4 == 0) {
        counting.remove(s);
        naive.remove(s.id());
        alive[i] = false;
        continue;
      }
      const auto candidates = enumerate_prunings(s.root());
      if (candidates.empty()) continue;
      const auto& path = candidates[rng() % candidates.size()];
      apply_pruning(s, path);
      counting.reindex(s);
    }
    for (const auto& e : dom.random_events(rng, 40)) {
      ASSERT_EQ(sorted_match(counting, e), sorted_match(naive, e)) << "round " << round;
    }
  }
}

TEST(MatcherRemoveParity, UniformRemoveByIdAcrossAllThreeMatchers) {
  // All three matchers expose remove(SubscriptionId) with identical
  // semantics: removing an id unregisters exactly that subscription, and
  // removing an unknown id throws std::out_of_range.
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(909);
  Corpus corpus = make_corpus(dom, rng, 100, /*not_prob=*/0.0);  // DNF-convertible

  CountingMatcher counting(dom.schema());
  DnfMatcher dnf(dom.schema());
  NaiveMatcher naive;
  for (auto& s : corpus.subs) {
    counting.add(*s);
    ASSERT_TRUE(dnf.add(*s));
    naive.add(*s);
  }

  // Remove every third subscription through the uniform id-based API.
  std::vector<bool> alive(corpus.subs.size(), true);
  for (std::size_t i = 0; i < corpus.subs.size(); i += 3) {
    const SubscriptionId id = corpus.subs[i]->id();
    counting.remove(id);
    dnf.remove(id);
    naive.remove(id);
    alive[i] = false;
  }
  EXPECT_EQ(counting.subscription_count(), naive.subscription_count());
  EXPECT_EQ(dnf.subscription_count(), naive.subscription_count());

  // A second remove of the same id is out-of-range on every matcher.
  const SubscriptionId gone = corpus.subs[0]->id();
  EXPECT_THROW(counting.remove(gone), std::out_of_range);
  EXPECT_THROW(dnf.remove(gone), std::out_of_range);
  EXPECT_THROW(naive.remove(gone), std::out_of_range);
  EXPECT_FALSE(counting.contains(gone));
  EXPECT_FALSE(dnf.contains(gone));
  EXPECT_FALSE(naive.contains(gone));

  // Post-removal match sets agree and never contain a removed id.
  for (const auto& e : dom.random_events(rng, 100)) {
    std::vector<SubscriptionId> from_dnf;
    dnf.match(e, from_dnf);
    std::sort(from_dnf.begin(), from_dnf.end());
    const auto expected = sorted_match(naive, e);
    EXPECT_EQ(sorted_match(counting, e), expected);
    EXPECT_EQ(from_dnf, expected);
    for (const auto id : expected) EXPECT_TRUE(alive[id.value()]);
  }
}

TEST(MatcherEquivalenceAuction, RealWorkloadAgreesWithNaive) {
  // The full auction workload (all operators incl. strings, In, Between).
  WorkloadConfig cfg;
  cfg.seed = 7;
  cfg.titles = 200;
  cfg.authors = 80;
  cfg.not_probability = 0.1;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator sub_gen(domain);
  AuctionEventGenerator event_gen(domain);

  CountingMatcher counting(domain.schema());
  NaiveMatcher naive;
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < 400; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    counting.add(*subs.back());
    naive.add(*subs.back());
  }
  for (const auto& e : event_gen.generate(300)) {
    EXPECT_EQ(sorted_match(counting, e), sorted_match(naive, e));
  }
}

}  // namespace
}  // namespace dbsp
