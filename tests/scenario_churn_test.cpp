// Scenario subsystem: randomized subscribe/unsubscribe/prune/publish
// interleavings checked against NaiveMatcher on fresh trees, the
// ScenarioRunner soak (churn + flash crowd + pruning) on all three
// domains at N ∈ {1, 4} shards, and the overlay variant asserting the
// notification log is exact after churn.

#include "scenario/scenario_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "broker/overlay.hpp"
#include "core/pruning_set.hpp"
#include "filter/naive_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

// --- Randomized interleavings against a naive oracle -----------------------

class InterleavingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterleavingTest, RandomOpsMatchNaiveMatcherOnFreshTrees) {
  const std::size_t shards = GetParam();
  MiniDomain dom;
  std::mt19937_64 rng(1234 + shards);
  const SelectivityEstimator estimator([](const Predicate&) { return 0.5; });

  ShardedEngine engine(dom.schema(), {.shards = shards});
  PruneEngineConfig config;
  ShardedPruningSet set(engine, estimator, config);

  // The naive oracle evaluates the *current* (possibly pruned) trees
  // directly; a second oracle holds fresh clones of the original trees so
  // the superset property of pruning stays checked too.
  NaiveMatcher naive;
  std::vector<std::unique_ptr<Subscription>> live;
  std::map<SubscriptionId::value_type, std::unique_ptr<Node>> originals;
  std::uint32_t next_id = 0;

  auto subscribe = [&] {
    std::uniform_int_distribution<std::size_t> leaves(1, 8);
    auto tree = dom.random_tree(rng, leaves(rng), 0.15);
    originals[next_id] = tree->clone();
    auto sub = std::make_unique<Subscription>(SubscriptionId(next_id++), std::move(tree));
    engine.add(*sub);
    naive.add(*sub);
    set.add(*sub);
    live.push_back(std::move(sub));
  };
  for (std::size_t i = 0; i < 60; ++i) subscribe();

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::size_t published = 0;
  for (std::size_t op = 0; op < 1500; ++op) {
    const double u = coin(rng);
    if (u < 0.25) {
      subscribe();
    } else if (u < 0.45 && !live.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t idx = pick(rng);
      const SubscriptionId id = live[idx]->id();
      ASSERT_TRUE(set.remove(id));
      engine.remove(id);
      naive.remove(id);
      originals.erase(id.value());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (u < 0.65) {
      set.prune(1);
    } else {
      const Event event = dom.random_event(rng);
      ++published;
      std::vector<SubscriptionId> got;
      engine.match(event, got);
      std::vector<SubscriptionId> expected;
      naive.match(event, expected);
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "engine/naive divergence after " << op << " ops";

      // Pruning only generalizes: every original-tree match must survive.
      for (const auto& [id, tree] : originals) {
        if (tree->evaluate_event(event)) {
          ASSERT_TRUE(std::binary_search(got.begin(), got.end(), SubscriptionId(id)))
              << "pruned subscription " << id << " lost a match";
        }
      }
    }
  }
  ASSERT_GT(published, 100u);
  // The interleaving exercised incremental maintenance, not rebuilds.
  EXPECT_EQ(set.maintenance().full_rescores, 0u);
  EXPECT_GT(set.maintenance().releases, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, InterleavingTest, ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param);
                         });

// --- ScenarioRunner soaks ---------------------------------------------------

class ScenarioSoakTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {};

TEST_P(ScenarioSoakTest, CentralizedSoakIsExactUnderChurnFlashCrowdAndPruning) {
  const auto [name, shards] = GetParam();
  const auto domain = make_workload(name);
  ScenarioConfig config = ScenarioConfig::soak(250, 120);
  config.shards = shards;
  config.drift_threshold = 60;
  config.training_events = 500;
  config.check_every = 1;

  ScenarioRunner runner(*domain, config);
  const ScenarioReport report = runner.run();

  EXPECT_EQ(report.mode, "centralized");
  EXPECT_EQ(report.shards, shards);
  ASSERT_EQ(report.phases.size(), 4u);
  EXPECT_TRUE(report.exact()) << report.total_mismatches() << " oracle mismatches";
  EXPECT_EQ(report.total_mismatches(), 0u);
  EXPECT_GT(report.total_churn_ops(), 0u);
  // The flash-crowd phase grows the population; the drain phase shrinks it.
  EXPECT_GT(report.phases[2].subscribes, report.phases[0].subscribes);
  EXPECT_GT(report.phases[3].unsubscribes, report.phases[3].subscribes);
  // Pruning ran and its maintenance stayed incremental.
  EXPECT_GT(report.maintenance.admissions,
            static_cast<std::uint64_t>(config.initial_subscriptions));
  EXPECT_GT(report.maintenance.releases, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Domains, ScenarioSoakTest,
    ::testing::Combine(::testing::Values("auction", "stock", "iot"),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ScenarioDriftTest, DriftTriggerFiresUnderChurnAndChurnAloneNeverRebuilds) {
  const auto domain = make_workload("stock");
  ScenarioConfig config = ScenarioConfig::soak(200, 150);
  config.training_events = 400;
  config.check_every = 4;

  // Armed drift trigger: heavy churn must eventually retrain + rescore.
  config.drift_threshold = 40;
  ScenarioReport with_drift = ScenarioRunner(*domain, config).run();
  EXPECT_TRUE(with_drift.exact());
  EXPECT_GT(with_drift.maintenance.full_rescores, 0u);

  // Disarmed: the same churn performs zero full rebuilds — admissions and
  // releases alone carry the maintenance (the no-rebuild-on-churn proof).
  config.drift_threshold = 0;
  ScenarioReport no_drift = ScenarioRunner(*domain, config).run();
  EXPECT_TRUE(no_drift.exact());
  EXPECT_EQ(no_drift.maintenance.full_rescores, 0u);
  EXPECT_GT(no_drift.maintenance.admissions, 200u);
  EXPECT_GT(no_drift.maintenance.releases, 0u);
}

TEST(ScenarioOverlayTest, NotificationLogIsExactAfterChurn) {
  for (const char* name : {"auction", "iot"}) {
    const auto domain = make_workload(name);
    ScenarioConfig config = ScenarioConfig::soak(120, 80);
    config.brokers = 3;
    config.shards = 2;
    config.drift_threshold = 50;
    config.training_events = 400;

    const ScenarioReport report = ScenarioRunner(*domain, config).run();
    EXPECT_EQ(report.mode, "overlay");
    EXPECT_TRUE(report.exact())
        << name << ": " << report.total_mismatches() << " event(s) mis-delivered";
    EXPECT_GT(report.total_churn_ops(), 0u);
    EXPECT_GT(report.maintenance.releases, 0u);  // broker auto-release worked
  }
}

TEST(ScenarioOverlayTest, BrokerKeepsAttachedPruningSetInSyncUnderChurn) {
  // Direct wiring check, without the runner: remote subscriptions arriving
  // and leaving through the overlay are admitted to / released from the
  // attached per-broker pruning sets automatically.
  MiniDomain dom;
  std::mt19937_64 rng(5);
  const SelectivityEstimator estimator([](const Predicate&) { return 0.5; });
  Overlay overlay(dom.schema(), 3, Overlay::line(3), {}, {.shards = 2});

  for (std::uint32_t i = 0; i < 12; ++i) {
    overlay.subscribe(BrokerId(i % 3), ClientId(i), SubscriptionId(i),
                      dom.random_tree(rng, 4));
  }
  PruneEngineConfig config;
  std::vector<ShardedPruningSet*> sets;
  for (std::uint32_t b = 0; b < 3; ++b) {
    sets.push_back(&overlay.broker(BrokerId(b)).enable_pruning(estimator, config));
  }

  // A new subscription at broker 0 becomes remote at brokers 1 and 2 and
  // must be admitted there without any manual bookkeeping.
  overlay.subscribe(BrokerId(0), ClientId(100), SubscriptionId(100),
                    dom.random_tree(rng, 4));
  EXPECT_FALSE(sets[0]->tracks(SubscriptionId(100)));  // local at 0: unpruned
  EXPECT_TRUE(sets[1]->tracks(SubscriptionId(100)));
  EXPECT_TRUE(sets[2]->tracks(SubscriptionId(100)));

  // Unsubscribing releases the pruning state everywhere (the old footgun).
  overlay.unsubscribe(BrokerId(0), SubscriptionId(100));
  for (const auto& set : sets) EXPECT_FALSE(set->tracks(SubscriptionId(100)));
  overlay.unsubscribe(BrokerId(1), SubscriptionId(1));
  for (const auto& set : sets) EXPECT_FALSE(set->tracks(SubscriptionId(1)));

  // Pruning still runs cleanly after the churn. Broker 2 released both
  // subscriptions (remote there); broker 1 only #100 (#1 was its local).
  for (const auto& set : sets) set->prune_to_fraction(1.0);
  EXPECT_EQ(sets[2]->maintenance().releases, 2u);
  EXPECT_EQ(sets[1]->maintenance().releases, 1u);
}

}  // namespace
}  // namespace dbsp
