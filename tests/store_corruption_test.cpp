// Corrupt-store fuzzing: truncate and bit-flip the WAL and snapshot files
// at random offsets and assert PubSub::open() always returns a clean
// Status (or a smaller-but-consistent store when the damage lands on a
// record boundary) — never a crash, hang, or out-of-bounds read. The CI
// sanitizer job runs this suite under ASan/UBSan, which is where the
// "never UB on corrupt input" contract is actually proven.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <random>
#include <vector>

#include "api/pubsub.hpp"
#include "store/format.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

namespace fs = std::filesystem;
using test::MiniDomain;

class CorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pristine_ = fs::temp_directory_path() / "dbsp_corrupt_pristine";
    scratch_ = fs::temp_directory_path() / "dbsp_corrupt_scratch";
    fs::remove_all(pristine_);
    fs::remove_all(scratch_);

    // A store with real history in both files: a checkpointed snapshot
    // (subscriptions + trained stats + pruning) and a non-empty WAL tail
    // (more churn and prunings after the checkpoint).
    MiniDomain dom;
    std::mt19937_64 rng(97);
    StoreOptions store;
    store.directory = pristine_.string();
    store.schema = dom.schema();
    store.snapshot_every = 1 << 20;  // manual checkpoints only
    PubSubOptions options;
    options.engine.shards = 2;
    options.pruning = true;
    auto opened = PubSub::open(std::move(store), options);
    ASSERT_TRUE(opened.ok()) << opened.status().to_string();

    std::optional<PubSub> pubsub(std::move(opened).value());
    std::vector<SubscriptionHandle> live;
    ASSERT_TRUE(pubsub->train(dom.random_events(rng, 300)).ok());
    for (int i = 0; i < 30; ++i) {
      auto handle = pubsub->subscribe(dom.random_tree(rng, 6, 0.2), {});
      ASSERT_TRUE(handle.ok());
      live.push_back(std::move(handle).value());
    }
    (void)pubsub->prune_to_fraction(0.5).value();
    ASSERT_TRUE(pubsub->checkpoint().ok());
    for (int i = 0; i < 20; ++i) {
      auto handle = pubsub->subscribe(dom.random_tree(rng, 5, 0.2), {});
      ASSERT_TRUE(handle.ok());
      live.push_back(std::move(handle).value());
    }
    for (int i = 0; i < 8; ++i) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    (void)pubsub->prune_to_fraction(0.6).value();
    // Upper bound for sanity checks below: truncating WAL unsubscribes can
    // legitimately resurrect registrations, but nothing can exceed every
    // subscribe ever logged (30 snapshotted + 20 in the WAL tail).
    max_live_ = 50;
    pubsub.reset();  // crash-style shutdown: WAL tail stays populated
    live.clear();

    schema_ = dom.schema();
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(pristine_, ec);
    fs::remove_all(scratch_, ec);
  }

  /// Copies the pristine store into the scratch directory.
  void reset_scratch() {
    fs::remove_all(scratch_);
    fs::create_directories(scratch_);
    for (const char* name : {"snapshot.dbsp", "wal.dbsp"}) {
      fs::copy_file(pristine_ / name, scratch_ / name);
    }
  }

  /// Opens the scratch store; the one hard requirement is "no crash". When
  /// it opens cleanly (damage on a record boundary, or in the discarded
  /// WAL-tail region) the recovered table must still be usable and no
  /// larger than the pristine one.
  void open_and_check(const std::string& context) {
    StoreOptions store;
    store.directory = scratch_.string();
    store.schema = schema_;
    PubSubOptions options;
    options.pruning = true;
    auto reopened = PubSub::open(std::move(store), options);
    if (!reopened.ok()) {
      EXPECT_TRUE(reopened.status().code() == ErrorCode::kDataLoss ||
                  reopened.status().code() == ErrorCode::kIoError)
          << context << ": " << reopened.status().to_string();
      return;
    }
    PubSub recovered = std::move(reopened).value();
    EXPECT_LE(recovered.subscription_count(), max_live_) << context;
    MiniDomain dom;  // identical construction = identical schema
    std::mt19937_64 rng(5);
    for (int i = 0; i < 5; ++i) {
      (void)recovered.publish(dom.random_event(rng));
    }
  }

  fs::path pristine_;
  fs::path scratch_;
  Schema schema_;
  std::size_t max_live_ = 0;
};

TEST_F(CorruptionFixture, TruncationsNeverCrash) {
  std::mt19937_64 rng(1234);
  for (const char* name : {"wal.dbsp", "snapshot.dbsp"}) {
    const auto original =
        store::read_file((pristine_ / name).string());
    for (int trial = 0; trial < 40; ++trial) {
      reset_scratch();
      const std::size_t cut =
          std::uniform_int_distribution<std::size_t>(0, original.size())(rng);
      std::vector<std::uint8_t> bytes(original.begin(),
                                      original.begin() + static_cast<std::ptrdiff_t>(cut));
      store::write_file_atomic((scratch_ / name).string(), bytes, false);
      open_and_check(std::string(name) + " truncated to " + std::to_string(cut));
    }
  }
}

TEST_F(CorruptionFixture, BitFlipsNeverCrash) {
  std::mt19937_64 rng(4321);
  for (const char* name : {"wal.dbsp", "snapshot.dbsp"}) {
    const auto original =
        store::read_file((pristine_ / name).string());
    ASSERT_FALSE(original.empty());
    for (int trial = 0; trial < 60; ++trial) {
      reset_scratch();
      auto bytes = original;
      const std::size_t at =
          std::uniform_int_distribution<std::size_t>(0, bytes.size() - 1)(rng);
      const int bit = std::uniform_int_distribution<int>(0, 7)(rng);
      bytes[at] ^= static_cast<std::uint8_t>(1u << bit);
      store::write_file_atomic((scratch_ / name).string(), bytes, false);
      open_and_check(std::string(name) + " bit flip at " + std::to_string(at));
    }
  }
}

TEST_F(CorruptionFixture, BothFilesMissingBytesSimultaneously) {
  std::mt19937_64 rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    reset_scratch();
    for (const char* name : {"wal.dbsp", "snapshot.dbsp"}) {
      auto bytes = store::read_file((scratch_ / name).string());
      const std::size_t cut =
          std::uniform_int_distribution<std::size_t>(0, bytes.size())(rng);
      bytes.resize(cut);
      store::write_file_atomic((scratch_ / name).string(), bytes, false);
    }
    open_and_check("both files truncated");
  }
}

}  // namespace
}  // namespace dbsp
