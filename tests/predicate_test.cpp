#include "subscription/predicate.hpp"

#include <gtest/gtest.h>

namespace dbsp {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() {
    price_ = schema_.add_attribute("price", ValueType::Double);
    cat_ = schema_.add_attribute("category", ValueType::String);
    year_ = schema_.add_attribute("year", ValueType::Int);
  }

  Schema schema_;
  AttributeId price_, cat_, year_;
};

TEST_F(PredicateTest, Eq) {
  const Predicate p(cat_, Op::Eq, Value("art"));
  EXPECT_TRUE(p.matches_value(Value("art")));
  EXPECT_FALSE(p.matches_value(Value("music")));
  EXPECT_FALSE(p.matches_value(Value(5)));
}

TEST_F(PredicateTest, NeMatchesDifferentValueButNotMissingAttribute) {
  const Predicate p(cat_, Op::Ne, Value("art"));
  EXPECT_FALSE(p.matches_value(Value("art")));
  EXPECT_TRUE(p.matches_value(Value("music")));
  const Event empty;
  EXPECT_FALSE(p.matches(empty));  // missing attribute never fulfills
}

TEST_F(PredicateTest, OrderedOperators) {
  const Predicate lt(price_, Op::Lt, Value(10.0));
  const Predicate le(price_, Op::Le, Value(10.0));
  const Predicate gt(price_, Op::Gt, Value(10.0));
  const Predicate ge(price_, Op::Ge, Value(10.0));
  EXPECT_TRUE(lt.matches_value(Value(9.99)));
  EXPECT_FALSE(lt.matches_value(Value(10.0)));
  EXPECT_TRUE(le.matches_value(Value(10.0)));
  EXPECT_FALSE(le.matches_value(Value(10.01)));
  EXPECT_TRUE(gt.matches_value(Value(10.5)));
  EXPECT_FALSE(gt.matches_value(Value(10.0)));
  EXPECT_TRUE(ge.matches_value(Value(10.0)));
  EXPECT_FALSE(ge.matches_value(Value(9.0)));
}

TEST_F(PredicateTest, OrderedAcceptsIntValuesNumerically) {
  const Predicate lt(price_, Op::Lt, Value(10.0));
  EXPECT_TRUE(lt.matches_value(Value(std::int64_t{9})));
  EXPECT_FALSE(lt.matches_value(Value(std::int64_t{11})));
}

TEST_F(PredicateTest, BetweenInclusiveAndOperandSwap) {
  const Predicate p(year_, Value(1990), Value(2000));
  EXPECT_TRUE(p.matches_value(Value(1990)));
  EXPECT_TRUE(p.matches_value(Value(2000)));
  EXPECT_TRUE(p.matches_value(Value(1995)));
  EXPECT_FALSE(p.matches_value(Value(1989)));
  EXPECT_FALSE(p.matches_value(Value(2001)));

  const Predicate swapped(year_, Value(2000), Value(1990));
  EXPECT_TRUE(swapped.matches_value(Value(1995)));
  EXPECT_TRUE(swapped.equals(p));
}

TEST_F(PredicateTest, InDeduplicatesAndSortsOperands) {
  const Predicate p(cat_, {Value("b"), Value("a"), Value("b")});
  EXPECT_EQ(p.operands().size(), 2u);
  EXPECT_TRUE(p.matches_value(Value("a")));
  EXPECT_TRUE(p.matches_value(Value("b")));
  EXPECT_FALSE(p.matches_value(Value("c")));
  // Operand order does not affect identity.
  const Predicate q(cat_, {Value("a"), Value("b")});
  EXPECT_TRUE(p.equals(q));
  EXPECT_EQ(p.hash(), q.hash());
}

TEST_F(PredicateTest, StringOperators) {
  const Predicate prefix(cat_, Op::Prefix, Value("sci"));
  const Predicate suffix(cat_, Op::Suffix, Value("ion"));
  const Predicate contains(cat_, Op::Contains, Value("ct"));
  EXPECT_TRUE(prefix.matches_value(Value("science")));
  EXPECT_FALSE(prefix.matches_value(Value("fiction")));
  EXPECT_TRUE(suffix.matches_value(Value("fiction")));
  EXPECT_FALSE(suffix.matches_value(Value("fictional")));
  EXPECT_TRUE(contains.matches_value(Value("fiction")));
  EXPECT_FALSE(contains.matches_value(Value("drama")));
  // Non-string values never match string operators.
  EXPECT_FALSE(prefix.matches_value(Value(5)));
}

TEST_F(PredicateTest, MatchesEventLooksUpAttribute) {
  Event e;
  e.set(price_, Value(5.0));
  EXPECT_TRUE(Predicate(price_, Op::Lt, Value(10.0)).matches(e));
  EXPECT_FALSE(Predicate(cat_, Op::Eq, Value("art")).matches(e));
}

TEST_F(PredicateTest, EqualityRequiresSameAttributeOpAndOperands) {
  const Predicate a(price_, Op::Lt, Value(10.0));
  EXPECT_TRUE(a.equals(Predicate(price_, Op::Lt, Value(10.0))));
  EXPECT_FALSE(a.equals(Predicate(price_, Op::Le, Value(10.0))));
  EXPECT_FALSE(a.equals(Predicate(price_, Op::Lt, Value(11.0))));
  EXPECT_FALSE(a.equals(Predicate(year_, Op::Lt, Value(10.0))));
}

TEST_F(PredicateTest, WrongConstructorThrows) {
  EXPECT_THROW(Predicate(price_, Op::Between, Value(1.0)), std::invalid_argument);
  EXPECT_THROW(Predicate(price_, Op::In, Value(1.0)), std::invalid_argument);
  EXPECT_THROW(Predicate(cat_, std::vector<Value>{}), std::invalid_argument);
}

TEST_F(PredicateTest, SizeBytesReflectsOperands) {
  const Predicate one(price_, Op::Lt, Value(10.0));
  const Predicate two(year_, Value(1990), Value(2000));
  const Predicate str(cat_, Op::Eq, Value(std::string(64, 'x')));
  EXPECT_GT(two.size_bytes(), one.size_bytes());
  EXPECT_GT(str.size_bytes(), one.size_bytes());
}

TEST_F(PredicateTest, ToString) {
  EXPECT_EQ(Predicate(price_, Op::Lt, Value(10.0)).to_string(schema_), "price < 10");
  EXPECT_EQ(Predicate(year_, Value(1990), Value(2000)).to_string(schema_),
            "year between 1990 and 2000");
  EXPECT_EQ(Predicate(cat_, {Value("a"), Value("b")}).to_string(schema_),
            "category in ('a', 'b')");
}

}  // namespace
}  // namespace dbsp
