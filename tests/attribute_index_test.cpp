#include "filter/attribute_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "test_util.hpp"

namespace dbsp {
namespace {

class AttributeIndexTest : public ::testing::Test {
 protected:
  test::MiniDomain dom_{1, 50};

  [[nodiscard]] std::vector<PredicateId> collect(const AttributeIndex& idx,
                                                 Value v) const {
    std::vector<PredicateId> out;
    idx.collect(v, out);
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST_F(AttributeIndexTest, EqualityProbe) {
  AttributeIndex idx;
  const Predicate p5(dom_.attr(0), Op::Eq, Value(5));
  const Predicate p6(dom_.attr(0), Op::Eq, Value(6));
  idx.insert(PredicateId(0), p5);
  idx.insert(PredicateId(1), p6);
  EXPECT_EQ(collect(idx, Value(5)), std::vector<PredicateId>{PredicateId(0)});
  EXPECT_EQ(collect(idx, Value(6)), std::vector<PredicateId>{PredicateId(1)});
  EXPECT_TRUE(collect(idx, Value(7)).empty());
}

TEST_F(AttributeIndexTest, OrderedThresholds) {
  AttributeIndex idx;
  idx.insert(PredicateId(0), Predicate(dom_.attr(0), Op::Lt, Value(10)));
  idx.insert(PredicateId(1), Predicate(dom_.attr(0), Op::Le, Value(10)));
  idx.insert(PredicateId(2), Predicate(dom_.attr(0), Op::Gt, Value(10)));
  idx.insert(PredicateId(3), Predicate(dom_.attr(0), Op::Ge, Value(10)));

  const auto at9 = collect(idx, Value(9));
  EXPECT_EQ(at9, (std::vector<PredicateId>{PredicateId(0), PredicateId(1)}));
  const auto at10 = collect(idx, Value(10));
  EXPECT_EQ(at10, (std::vector<PredicateId>{PredicateId(1), PredicateId(3)}));
  const auto at11 = collect(idx, Value(11));
  EXPECT_EQ(at11, (std::vector<PredicateId>{PredicateId(2), PredicateId(3)}));
}

TEST_F(AttributeIndexTest, BetweenStabbing) {
  AttributeIndex idx;
  idx.insert(PredicateId(0), Predicate(dom_.attr(0), Value(5), Value(10)));
  idx.insert(PredicateId(1), Predicate(dom_.attr(0), Value(8), Value(20)));
  EXPECT_TRUE(collect(idx, Value(4)).empty());
  EXPECT_EQ(collect(idx, Value(5)), std::vector<PredicateId>{PredicateId(0)});
  EXPECT_EQ(collect(idx, Value(9)),
            (std::vector<PredicateId>{PredicateId(0), PredicateId(1)}));
  EXPECT_EQ(collect(idx, Value(15)), std::vector<PredicateId>{PredicateId(1)});
  EXPECT_TRUE(collect(idx, Value(21)).empty());
}

TEST_F(AttributeIndexTest, InExpandsMembers) {
  AttributeIndex idx;
  const Predicate p(dom_.attr(0), {Value(1), Value(3), Value(5)});
  idx.insert(PredicateId(0), p);
  EXPECT_EQ(collect(idx, Value(3)), std::vector<PredicateId>{PredicateId(0)});
  EXPECT_TRUE(collect(idx, Value(2)).empty());
  idx.remove(PredicateId(0), p);
  EXPECT_TRUE(collect(idx, Value(3)).empty());
  EXPECT_EQ(idx.size(), 0u);
}

TEST_F(AttributeIndexTest, NeAndStringOpsUseScanList) {
  Schema s;
  const auto name = s.add_attribute("name", ValueType::String);
  AttributeIndex idx;
  const Predicate ne(name, Op::Ne, Value("art"));
  const Predicate prefix(name, Op::Prefix, Value("sci"));
  idx.insert(PredicateId(0), ne);
  idx.insert(PredicateId(1), prefix);
  std::vector<PredicateId> out;
  idx.collect(Value("science"), out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<PredicateId>{PredicateId(0), PredicateId(1)}));
  out.clear();
  idx.collect(Value("art"), out);
  EXPECT_TRUE(out.empty());
}

TEST_F(AttributeIndexTest, RemoveUnknownThrows) {
  AttributeIndex idx;
  const Predicate p(dom_.attr(0), Op::Eq, Value(5));
  EXPECT_THROW(idx.remove(PredicateId(0), p), std::logic_error);
  idx.insert(PredicateId(0), p);
  EXPECT_THROW(idx.remove(PredicateId(1), Predicate(dom_.attr(0), Op::Eq, Value(5))),
               std::logic_error);
}

TEST_F(AttributeIndexTest, RandomizedAgainstBruteForce) {
  // 300 random predicates; collect() must return exactly the predicates
  // whose matches_value() holds, for every probe value.
  std::mt19937_64 rng(77);
  AttributeIndex idx;
  std::vector<Predicate> preds;
  for (std::uint32_t i = 0; i < 300; ++i) {
    preds.push_back(dom_.random_predicate(rng));
    idx.insert(PredicateId(i), preds.back());
  }
  for (std::int64_t v = -2; v < 55; ++v) {
    std::vector<PredicateId> expected;
    for (std::uint32_t i = 0; i < preds.size(); ++i) {
      if (preds[i].matches_value(Value(v))) expected.push_back(PredicateId(i));
    }
    auto actual = collect(idx, Value(v));
    EXPECT_EQ(actual, expected) << "probe v=" << v;
  }
}

TEST_F(AttributeIndexTest, RandomizedInsertRemoveChurn) {
  std::mt19937_64 rng(123);
  AttributeIndex idx;
  std::vector<std::optional<Predicate>> live(200);
  for (int round = 0; round < 2000; ++round) {
    const auto slot = static_cast<std::uint32_t>(rng() % live.size());
    if (live[slot]) {
      idx.remove(PredicateId(slot), *live[slot]);
      live[slot].reset();
    } else {
      live[slot] = dom_.random_predicate(rng);
      idx.insert(PredicateId(slot), *live[slot]);
    }
  }
  // Final consistency sweep.
  for (std::int64_t v = 0; v < 50; ++v) {
    std::vector<PredicateId> expected;
    for (std::uint32_t i = 0; i < live.size(); ++i) {
      if (live[i] && live[i]->matches_value(Value(v))) expected.push_back(PredicateId(i));
    }
    EXPECT_EQ(collect(idx, Value(v)), expected) << "probe v=" << v;
  }
}

}  // namespace
}  // namespace dbsp
