#include <gtest/gtest.h>

#include "event/event.hpp"
#include "event/schema.hpp"

namespace dbsp {
namespace {

TEST(SchemaTest, InternsAttributesDensely) {
  Schema s;
  const auto a = s.add_attribute("price", ValueType::Double);
  const auto b = s.add_attribute("category", ValueType::String);
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(s.attribute_count(), 2u);
  EXPECT_EQ(s.name(a), "price");
  EXPECT_EQ(s.type(b), ValueType::String);
}

TEST(SchemaTest, ReAddingSameTypeIsIdempotent) {
  Schema s;
  const auto a = s.add_attribute("price", ValueType::Double);
  EXPECT_EQ(s.add_attribute("price", ValueType::Double), a);
  EXPECT_EQ(s.attribute_count(), 1u);
}

TEST(SchemaTest, ConflictingTypeThrows) {
  Schema s;
  s.add_attribute("price", ValueType::Double);
  EXPECT_THROW(s.add_attribute("price", ValueType::String), std::invalid_argument);
}

TEST(SchemaTest, FindAndAt) {
  Schema s;
  const auto a = s.add_attribute("x", ValueType::Int);
  EXPECT_EQ(s.find("x"), a);
  EXPECT_FALSE(s.find("y").has_value());
  EXPECT_EQ(s.at("x"), a);
  EXPECT_THROW((void)s.at("y"), std::out_of_range);
}

TEST(EventTest, SetFindAndOverwrite) {
  Schema s;
  const auto price = s.add_attribute("price", ValueType::Double);
  const auto cat = s.add_attribute("category", ValueType::String);
  Event e;
  e.set(cat, Value("fiction"));
  e.set(price, Value(9.5));
  ASSERT_NE(e.find(price), nullptr);
  EXPECT_TRUE(e.find(price)->equals(Value(9.5)));
  e.set(price, Value(12.0));
  EXPECT_TRUE(e.find(price)->equals(Value(12.0)));
  EXPECT_EQ(e.size(), 2u);
  EXPECT_EQ(e.find(AttributeId(99)), nullptr);
}

TEST(EventTest, PairsStaySortedByAttribute) {
  Schema s;
  const auto a0 = s.add_attribute("a0", ValueType::Int);
  const auto a1 = s.add_attribute("a1", ValueType::Int);
  const auto a2 = s.add_attribute("a2", ValueType::Int);
  Event e;
  e.set(a2, Value(2));
  e.set(a0, Value(0));
  e.set(a1, Value(1));
  ASSERT_EQ(e.pairs().size(), 3u);
  EXPECT_EQ(e.pairs()[0].first, a0);
  EXPECT_EQ(e.pairs()[1].first, a1);
  EXPECT_EQ(e.pairs()[2].first, a2);
}

TEST(EventTest, BuilderUsesSchemaNames) {
  Schema s;
  s.add_attribute("price", ValueType::Double);
  s.add_attribute("category", ValueType::String);
  const Event e = EventBuilder(s).with("price", 3.5).with("category", "art").build();
  EXPECT_TRUE(e.find(s.at("price"))->equals(Value(3.5)));
  EXPECT_TRUE(e.find(s.at("category"))->equals(Value("art")));
}

TEST(EventTest, BuilderThrowsOnUnknownAttribute) {
  Schema s;
  EventBuilder b(s);
  EXPECT_THROW(b.with("nope", 1), std::out_of_range);
}

TEST(EventTest, WireSizeGrowsWithContent) {
  Schema s;
  s.add_attribute("a", ValueType::Int);
  s.add_attribute("b", ValueType::String);
  const Event small = EventBuilder(s).with("a", 1).build();
  const Event large =
      EventBuilder(s).with("a", 1).with("b", std::string(200, 'y')).build();
  EXPECT_GT(large.wire_size_bytes(), small.wire_size_bytes());
}

TEST(EventTest, ToStringListsAttributes) {
  Schema s;
  s.add_attribute("price", ValueType::Double);
  const Event e = EventBuilder(s).with("price", 2.5).build();
  EXPECT_EQ(e.to_string(s), "{price=2.5}");
}

}  // namespace
}  // namespace dbsp
