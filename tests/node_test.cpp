#include "subscription/node.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class NodeTest : public ::testing::Test {
 protected:
  MiniDomain dom_;

  [[nodiscard]] std::unique_ptr<Node> leaf(std::size_t attr, Op op,
                                           std::int64_t v) const {
    return Node::leaf(Predicate(dom_.attr(attr), op, Value(v)));
  }
};

TEST_F(NodeTest, FactoriesAndKinds) {
  auto l = leaf(0, Op::Eq, 5);
  EXPECT_EQ(l->kind(), NodeKind::Leaf);
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(leaf(0, Op::Eq, 1));
  cs.push_back(leaf(1, Op::Eq, 2));
  auto a = Node::and_(std::move(cs));
  EXPECT_EQ(a->kind(), NodeKind::And);
  EXPECT_EQ(a->children().size(), 2u);
  auto n = Node::not_(std::move(a));
  EXPECT_EQ(n->kind(), NodeKind::Not);
  EXPECT_TRUE(Node::constant(true)->is_constant());
  EXPECT_EQ(Node::constant(false)->kind(), NodeKind::False);
}

TEST_F(NodeTest, FactoryPreconditions) {
  EXPECT_THROW(Node::and_({}), std::invalid_argument);
  EXPECT_THROW(Node::or_({}), std::invalid_argument);
  EXPECT_THROW(Node::not_(nullptr), std::invalid_argument);
}

TEST_F(NodeTest, EvaluateEventRespectsBooleanStructure) {
  // (a0 = 1 and a1 < 5) or not (a2 >= 3)
  std::vector<std::unique_ptr<Node>> and_children;
  and_children.push_back(leaf(0, Op::Eq, 1));
  and_children.push_back(leaf(1, Op::Lt, 5));
  std::vector<std::unique_ptr<Node>> or_children;
  or_children.push_back(Node::and_(std::move(and_children)));
  or_children.push_back(Node::not_(leaf(2, Op::Ge, 3)));
  const auto tree = Node::or_(std::move(or_children));

  Event yes_and;
  yes_and.set(dom_.attr(0), Value(1));
  yes_and.set(dom_.attr(1), Value(4));
  yes_and.set(dom_.attr(2), Value(9));
  EXPECT_TRUE(tree->evaluate_event(yes_and));

  Event yes_not;
  yes_not.set(dom_.attr(0), Value(0));
  yes_not.set(dom_.attr(1), Value(9));
  yes_not.set(dom_.attr(2), Value(1));
  EXPECT_TRUE(tree->evaluate_event(yes_not));

  Event no;
  no.set(dom_.attr(0), Value(0));
  no.set(dom_.attr(1), Value(9));
  no.set(dom_.attr(2), Value(5));
  EXPECT_FALSE(tree->evaluate_event(no));
}

TEST_F(NodeTest, CloneIsDeepAndEqual) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto tree = dom_.random_tree(rng, 8, 0.2);
    const auto copy = tree->clone();
    EXPECT_TRUE(tree->equals(*copy));
    EXPECT_NE(tree.get(), copy.get());
    EXPECT_EQ(tree->size_bytes(), copy->size_bytes());
    EXPECT_EQ(tree->pmin(), copy->pmin());
  }
}

TEST_F(NodeTest, ResolvePaths) {
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(leaf(0, Op::Eq, 1));
  cs.push_back(Node::not_(leaf(1, Op::Eq, 2)));
  const auto tree = Node::and_(std::move(cs));
  EXPECT_EQ(tree->resolve({}), tree.get());
  EXPECT_EQ(tree->resolve({0})->kind(), NodeKind::Leaf);
  EXPECT_EQ(tree->resolve({1})->kind(), NodeKind::Not);
  EXPECT_EQ(tree->resolve({1, 0})->kind(), NodeKind::Leaf);
  EXPECT_EQ(tree->resolve({2}), nullptr);
  EXPECT_EQ(tree->resolve({0, 0}), nullptr);
}

TEST_F(NodeTest, PminLeafAndConnectives) {
  EXPECT_EQ(leaf(0, Op::Eq, 1)->pmin(), 1u);

  std::vector<std::unique_ptr<Node>> and_cs;
  and_cs.push_back(leaf(0, Op::Eq, 1));
  and_cs.push_back(leaf(1, Op::Eq, 2));
  and_cs.push_back(leaf(2, Op::Eq, 3));
  EXPECT_EQ(Node::and_(std::move(and_cs))->pmin(), 3u);

  std::vector<std::unique_ptr<Node>> or_cs;
  or_cs.push_back(leaf(0, Op::Eq, 1));
  std::vector<std::unique_ptr<Node>> inner;
  inner.push_back(leaf(1, Op::Eq, 2));
  inner.push_back(leaf(2, Op::Eq, 3));
  or_cs.push_back(Node::and_(std::move(inner)));
  EXPECT_EQ(Node::or_(std::move(or_cs))->pmin(), 1u);  // min over children
}

TEST_F(NodeTest, PminOfNotIsZero) {
  // NOT can be satisfied by the absence of fulfilled predicates.
  EXPECT_EQ(Node::not_(leaf(0, Op::Eq, 1))->pmin(), 0u);
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(leaf(0, Op::Eq, 1));
  cs.push_back(Node::not_(leaf(1, Op::Eq, 2)));
  EXPECT_EQ(Node::and_(std::move(cs))->pmin(), 1u);  // 1 + 0
}

TEST_F(NodeTest, PminConstants) {
  EXPECT_EQ(Node::constant(true)->pmin(), 0u);
  EXPECT_EQ(Node::constant(false)->pmin(), Node::kPminUnsatisfiable);
}

TEST_F(NodeTest, SizeBytesModel) {
  // Model: 16/node + 8/child slot + predicate payload.
  const auto l = leaf(0, Op::Eq, 1);
  const std::size_t leaf_bytes = l->size_bytes();
  EXPECT_EQ(leaf_bytes, 16 + Predicate(dom_.attr(0), Op::Eq, Value(1)).size_bytes());
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(leaf(0, Op::Eq, 1));
  cs.push_back(leaf(1, Op::Eq, 2));
  const auto a = Node::and_(std::move(cs));
  EXPECT_EQ(a->size_bytes(), 16 + 2 * 8 + 2 * leaf_bytes);
}

TEST_F(NodeTest, LeafAndNodeCounts) {
  std::mt19937_64 rng(11);
  const auto tree = dom_.random_tree(rng, 9);
  EXPECT_EQ(tree->leaf_count(), 9u);
  EXPECT_GE(tree->node_count(), 9u);
  std::size_t visited = 0;
  tree->for_each_leaf([&](const Node& n) {
    EXPECT_EQ(n.kind(), NodeKind::Leaf);
    ++visited;
  });
  EXPECT_EQ(visited, 9u);
}

// --- simplify -------------------------------------------------------------

TEST_F(NodeTest, SimplifyFoldsConstantsInAnd) {
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(Node::constant(true));
  cs.push_back(leaf(0, Op::Eq, 1));
  cs.push_back(leaf(1, Op::Eq, 2));
  auto s = simplify(Node::and_(std::move(cs)));
  EXPECT_EQ(s->kind(), NodeKind::And);
  EXPECT_EQ(s->children().size(), 2u);

  std::vector<std::unique_ptr<Node>> cs2;
  cs2.push_back(Node::constant(false));
  cs2.push_back(leaf(0, Op::Eq, 1));
  EXPECT_EQ(simplify(Node::and_(std::move(cs2)))->kind(), NodeKind::False);
}

TEST_F(NodeTest, SimplifyFoldsConstantsInOr) {
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(Node::constant(false));
  cs.push_back(leaf(0, Op::Eq, 1));
  auto s = simplify(Node::or_(std::move(cs)));
  EXPECT_EQ(s->kind(), NodeKind::Leaf);  // single survivor hoisted

  std::vector<std::unique_ptr<Node>> cs2;
  cs2.push_back(Node::constant(true));
  cs2.push_back(leaf(0, Op::Eq, 1));
  EXPECT_EQ(simplify(Node::or_(std::move(cs2)))->kind(), NodeKind::True);
}

TEST_F(NodeTest, SimplifyHoistsSingleChild) {
  std::vector<std::unique_ptr<Node>> inner;
  inner.push_back(leaf(0, Op::Eq, 1));
  inner.push_back(Node::constant(true));
  std::vector<std::unique_ptr<Node>> outer;
  outer.push_back(Node::and_(std::move(inner)));
  outer.push_back(leaf(1, Op::Eq, 2));
  auto s = simplify(Node::and_(std::move(outer)));
  // Inner and(leaf, true) -> leaf; outer stays binary and flat.
  EXPECT_EQ(s->kind(), NodeKind::And);
  ASSERT_EQ(s->children().size(), 2u);
  EXPECT_EQ(s->children()[0]->kind(), NodeKind::Leaf);
}

TEST_F(NodeTest, SimplifyFlattensNestedSameKind) {
  std::vector<std::unique_ptr<Node>> inner;
  inner.push_back(leaf(0, Op::Eq, 1));
  inner.push_back(leaf(1, Op::Eq, 2));
  std::vector<std::unique_ptr<Node>> outer;
  outer.push_back(Node::and_(std::move(inner)));
  outer.push_back(leaf(2, Op::Eq, 3));
  auto s = simplify(Node::and_(std::move(outer)));
  EXPECT_EQ(s->kind(), NodeKind::And);
  EXPECT_EQ(s->children().size(), 3u);
  for (const auto& c : s->children()) EXPECT_EQ(c->kind(), NodeKind::Leaf);
}

TEST_F(NodeTest, SimplifyEliminatesDoubleNegation) {
  auto s = simplify(Node::not_(Node::not_(leaf(0, Op::Eq, 1))));
  EXPECT_EQ(s->kind(), NodeKind::Leaf);
  EXPECT_EQ(simplify(Node::not_(Node::constant(true)))->kind(), NodeKind::False);
  EXPECT_EQ(simplify(Node::not_(Node::constant(false)))->kind(), NodeKind::True);
}

TEST_F(NodeTest, SimplifyPreservesSemantics) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 50; ++round) {
    auto raw = dom_.random_tree(rng, 7, 0.25);
    auto copy = raw->clone();
    auto simplified = simplify(std::move(copy));
    const auto events = dom_.random_events(rng, 64);
    for (const auto& e : events) {
      EXPECT_EQ(raw->evaluate_event(e), simplified->evaluate_event(e));
    }
  }
}

TEST_F(NodeTest, ToStringRendersBooleanStructure) {
  std::vector<std::unique_ptr<Node>> cs;
  cs.push_back(leaf(0, Op::Lt, 5));
  cs.push_back(Node::not_(leaf(1, Op::Eq, 2)));
  const auto tree = Node::or_(std::move(cs));
  EXPECT_EQ(tree->to_string(dom_.schema()), "(a0 < 5 or not (a1 = 2))");
}

}  // namespace
}  // namespace dbsp
