// End-to-end distributed correctness: pruning remote routing entries must
// never change which notifications subscribers receive — it may only add
// transit traffic — across all three dimensions and pruning depths.

#include <gtest/gtest.h>

#include <algorithm>

#include "broker/overlay.hpp"
#include "core/pruning_set.hpp"
#include "core/sharded_engine.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

struct Harness {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  // Declared before the overlay: brokers that enable_pruning() reference
  // the estimator, so it must be destroyed after them.
  std::unique_ptr<EventStats> stats;
  std::unique_ptr<SelectivityEstimator> estimator;
  std::unique_ptr<Overlay> overlay;
  std::vector<Event> events;

  explicit Harness(std::size_t brokers, std::size_t subs, std::size_t events_n) {
    cfg.seed = 77;
    cfg.titles = 300;
    cfg.authors = 120;
    domain = std::make_unique<AuctionDomain>(cfg);
    stats = std::make_unique<EventStats>(domain->schema());
    AuctionEventGenerator training(*domain, 3);
    for (int i = 0; i < 3000; ++i) stats->observe(training.next());
    stats->finalize();
    estimator = std::make_unique<SelectivityEstimator>(*stats);
    overlay = std::make_unique<Overlay>(domain->schema(), brokers,
                                        Overlay::line(brokers));
    AuctionSubscriptionGenerator sub_gen(*domain);
    for (std::uint32_t i = 0; i < subs; ++i) {
      overlay->subscribe(BrokerId(i % brokers), ClientId(i), SubscriptionId(i),
                         sub_gen.next_tree());
    }
    AuctionEventGenerator event_gen(*domain, 2);
    events = event_gen.generate(events_n);
  }

  [[nodiscard]] std::vector<std::pair<SubscriptionId, std::uint64_t>> run() {
    overlay->reset_metrics();
    overlay->set_record_notifications(true);
    std::uint64_t base_seq = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto seq = overlay->publish(
          BrokerId(static_cast<BrokerId::value_type>(i % overlay->broker_count())),
          events[i]);
      if (i == 0) base_seq = seq;  // seqs are global; normalize per run
    }
    std::vector<std::pair<SubscriptionId, std::uint64_t>> all;
    for (std::size_t b = 0; b < overlay->broker_count(); ++b) {
      const auto& log = overlay->broker(BrokerId(static_cast<BrokerId::value_type>(b)))
                            .notification_log();
      for (const auto& [sub, seq] : log) all.emplace_back(sub, seq - base_seq);
    }
    std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second < y.second;
      return x.first < y.first;
    });
    return all;
  }
};

class DistributedPruning : public ::testing::TestWithParam<PruneDimension> {};

TEST_P(DistributedPruning, NotificationsInvariantUnderPruning) {
  Harness setup(3, 300, 150);
  const auto baseline = setup.run();
  const auto baseline_messages = setup.overlay->network().total().event_messages;

  PruneEngineConfig cfg;
  cfg.dimension = GetParam();
  std::vector<ShardedPruningSet*> sets;
  for (std::size_t b = 0; b < setup.overlay->broker_count(); ++b) {
    Broker& broker = setup.overlay->broker(BrokerId(static_cast<BrokerId::value_type>(b)));
    sets.push_back(&broker.enable_pruning(*setup.estimator, cfg));
  }

  std::uint64_t last_messages = baseline_messages;
  for (const double fraction : {0.3, 0.7, 1.0}) {
    for (ShardedPruningSet* set : sets) set->prune_to_fraction(fraction);
    const auto pruned_run = setup.run();
    EXPECT_EQ(pruned_run, baseline)
        << "notifications changed at fraction " << fraction;
    const auto messages = setup.overlay->network().total().event_messages;
    EXPECT_GE(messages, last_messages) << "network load shrank after pruning";
    last_messages = messages;
  }
  // Full pruning strictly reduced remote routing state.
  EXPECT_LT(setup.overlay->total_remote_associations(), 300u * 2u * 2u);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, DistributedPruning,
                         ::testing::Values(PruneDimension::NetworkLoad,
                                           PruneDimension::MemoryUsage,
                                           PruneDimension::Throughput),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DistributedPruningMetrics, MemoryDimensionShrinksAssociationsFastest) {
  // At a small pruning budget the memory heuristic must reduce remote
  // associations at least as much as the other two dimensions.
  std::size_t reductions[3] = {0, 0, 0};
  const PruneDimension dims[] = {PruneDimension::NetworkLoad,
                                 PruneDimension::MemoryUsage,
                                 PruneDimension::Throughput};
  for (int d = 0; d < 3; ++d) {
    Harness setup(3, 400, 1);
    const std::size_t before = setup.overlay->total_remote_associations();
    PruneEngineConfig cfg;
    cfg.dimension = dims[d];
    for (std::size_t b = 0; b < setup.overlay->broker_count(); ++b) {
      Broker& broker =
          setup.overlay->broker(BrokerId(static_cast<BrokerId::value_type>(b)));
      broker.enable_pruning(*setup.estimator, cfg).prune_to_fraction(0.2);
    }
    reductions[d] = before - setup.overlay->total_remote_associations();
  }
  EXPECT_GE(reductions[1], reductions[0]);
  EXPECT_GE(reductions[1], reductions[2]);
}

}  // namespace
}  // namespace dbsp
