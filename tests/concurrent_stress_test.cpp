// Cross-thread interleaving stress for the concurrency contracts the
// static-analysis layer annotates: the internally serialized PubSub facade
// (publish vs. subscribe/unsubscribe vs. pruning maintenance), the durable
// store's single-writer discipline, handle release races, and ThreadPool
// construction/shutdown ordering.
//
// These tests are the workload of the TSan CI lane (DBSP_SANITIZE=thread):
// under ThreadSanitizer any facade path that escapes the mutex shows up as
// a data race here. They also run in the normal suite, where they still
// verify linearizable end states (counts, oracle agreement, recovery).
// Iteration counts are deliberately modest — TSan runs 5-15x slower — and
// scale with DBSP_STRESS_SCALE for soak runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/pubsub.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

namespace fs = std::filesystem;

std::size_t stress_scale() {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      1, env_int("DBSP_STRESS_SCALE", 1)));
}

/// Self-cleaning unique temp directory (same idiom as store_test).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::temp_directory_path() /
            ("dbsp_stress_" + tag + "_" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

PubSubOptions pruning_options(std::size_t shards) {
  PubSubOptions options;
  options.engine.shards = shards;
  options.engine.backend = MatcherBackend::Counting;
  options.pruning = true;
  return options;
}

// --- PubSub facade: publish vs. churn vs. maintenance ----------------------

// The tentpole race: publishers stream batches through match_batch (which
// fans out on the engine's internal pool) while other threads churn the
// subscription table and run pruning maintenance — all through the public
// surface, all serialized by the facade mutex. Afterwards the table must be
// exactly the survivors, and dispatch must agree with the per-subscription
// tree oracle.
TEST(ConcurrentStress, PublishChurnAndPruneRaceCleanly) {
  const std::size_t scale = stress_scale();
  test::MiniDomain dom(6, 20);
  PubSub pubsub(dom.schema(), pruning_options(4));

  std::mt19937_64 seed_rng(2026);
  {
    std::vector<Event> sample = dom.random_events(seed_rng, 256);
    pubsub.train(sample).expect_ok();
  }

  // A stable base population that survives the whole test, counting its own
  // notifications (callbacks run under the facade lock, but keep the
  // counters atomic anyway — the test should not depend on that detail).
  auto base_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::vector<SubscriptionHandle> base;
  for (int i = 0; i < 48; ++i) {
    auto result = pubsub.subscribe(
        dom.random_tree(seed_rng, 5, 0.2),
        [base_hits](const Notification&) { base_hits->fetch_add(1); });
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    base.push_back(std::move(result).value());
  }

  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> churned{0};
  std::atomic<std::uint64_t> prunings{0};

  const std::size_t publish_rounds = 24 * scale;
  const std::size_t churn_rounds = 48 * scale;
  const std::size_t maintenance_rounds = 16 * scale;

  std::vector<std::thread> threads;

  // Two publishers: single-event and batched dispatch.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(100 + t);
      for (std::size_t round = 0; round < publish_rounds; ++round) {
        if (t == 0) {
          published.fetch_add(pubsub.publish(dom.random_event(rng)));
        } else {
          std::vector<Event> batch = dom.random_events(rng, 8);
          published.fetch_add(pubsub.publish_batch(batch));
        }
      }
    });
  }

  // Two churners: subscribe, keep a small working set, release the oldest.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(200 + t);
      std::vector<SubscriptionHandle> mine;
      for (std::size_t round = 0; round < churn_rounds; ++round) {
        auto result = pubsub.subscribe(dom.random_tree(rng, 4, 0.1));
        ASSERT_TRUE(result.ok()) << result.status().to_string();
        mine.push_back(std::move(result).value());
        if (mine.size() > 6) {
          Status released = mine.front().release();
          ASSERT_TRUE(released.ok()) << released.to_string();
          mine.erase(mine.begin());
          churned.fetch_add(1);
        }
      }
      // Drop the working set through ~SubscriptionHandle while publishers
      // are still running — the RAII unsubscribe path must serialize too.
      churned.fetch_add(mine.size());
    });
  }

  // One maintenance thread: prune, watch the drift trigger, retrain.
  threads.emplace_back([&] {
    std::mt19937_64 rng(300);
    for (std::size_t round = 0; round < maintenance_rounds; ++round) {
      auto pruned = pubsub.prune_to_fraction(0.8);
      ASSERT_TRUE(pruned.ok()) << pruned.status().to_string();
      prunings.fetch_add(pruned.value());
      if (pubsub.drift_pending()) {
        std::vector<Event> sample = dom.random_events(rng, 64);
        pubsub.train(sample).expect_ok();
        pubsub.rescore_all().expect_ok();
      }
    }
  });

  // One reader: introspection entry points race against everything above.
  threads.emplace_back([&] {
    for (std::size_t round = 0; round < churn_rounds; ++round) {
      (void)pubsub.subscription_count();
      (void)pubsub.pruning_stats();
      (void)pubsub.association_count();
      (void)pubsub.notifications_delivered();
      for (const auto& handle : base) {
        ASSERT_TRUE(handle.active());
      }
    }
  });

  for (auto& thread : threads) thread.join();

  // Linearizable end state: exactly the base population remains.
  EXPECT_EQ(pubsub.subscription_count(), base.size());
  EXPECT_GT(churned.load(), 0u);

  // Dispatch agrees with the direct tree-evaluation oracle.
  std::mt19937_64 check_rng(999);
  for (int i = 0; i < 5; ++i) {
    const Event probe = dom.random_event(check_rng);
    std::size_t oracle = 0;
    for (const SubscriptionId id : pubsub.subscription_ids()) {
      auto matched = pubsub.matches(id, probe);
      ASSERT_TRUE(matched.ok()) << matched.status().to_string();
      oracle += matched.value() ? 1 : 0;
    }
    EXPECT_EQ(pubsub.publish(probe), oracle);
  }
  // Every notification counted by the facade was observed by some caller:
  // publish/publish_batch return values and the base callbacks line up.
  EXPECT_GE(pubsub.notifications_delivered(), published.load());
  EXPECT_GE(pubsub.notifications_delivered(), base_hits->load());
}

// Handles released concurrently from many threads (disjoint slices) while a
// publisher keeps the matching path hot. Every release must succeed exactly
// once and the table must end empty.
TEST(ConcurrentStress, HandleReleaseRaces) {
  test::MiniDomain dom(4, 12);
  PubSub pubsub(dom.schema(), pruning_options(2));

  std::mt19937_64 rng(7);
  constexpr std::size_t kSubs = 64;
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kSubs);
  for (std::size_t i = 0; i < kSubs; ++i) {
    auto result = pubsub.subscribe(dom.random_tree(rng, 3));
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    handles.push_back(std::move(result).value());
  }

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::mt19937_64 prng(77);
    while (!stop.load()) {
      (void)pubsub.publish(dom.random_event(prng));
    }
  });

  constexpr std::size_t kReleasers = 4;
  std::vector<std::thread> releasers;
  for (std::size_t t = 0; t < kReleasers; ++t) {
    releasers.emplace_back([&, t] {
      for (std::size_t i = t; i < kSubs; i += kReleasers) {
        Status released = handles[i].release();
        ASSERT_TRUE(released.ok()) << released.to_string();
      }
    });
  }
  for (auto& thread : releasers) thread.join();
  stop.store(true);
  publisher.join();

  EXPECT_EQ(pubsub.subscription_count(), 0u);
  for (const auto& handle : handles) {
    EXPECT_FALSE(handle.attached());
  }
}

// --- Durable store: multi-threaded churn through PubSub::open --------------

// Subscribe/unsubscribe/checkpoint from several threads against one durable
// PubSub: every WAL append runs under the facade mutex (the store is
// single-writer by contract). Afterwards reopen the directory and verify
// the recovered table equals the survivors — the WAL interleaving must be a
// linearization of the concurrent history.
TEST(ConcurrentStress, DurableChurnRecoversExactSurvivors) {
  const std::size_t scale = stress_scale();
  test::MiniDomain dom(5, 16);
  TempDir dir("durable");

  StoreOptions store;
  store.directory = dir.str();
  store.schema = dom.schema();
  store.snapshot_every = 64;  // force auto-checkpoints mid-churn

  std::vector<SubscriptionId> survivors;
  // Declared before the PubSub scope: handles that outlive their PubSub are
  // inert no-ops, so the survivors they claim stay registered in the store.
  std::mutex kept_mutex;
  std::vector<SubscriptionHandle> kept_pool;
  {
    auto opened = PubSub::open(store, pruning_options(2));
    ASSERT_TRUE(opened.ok()) << opened.status().to_string();
    PubSub pubsub = std::move(opened).value();
    ASSERT_TRUE(pubsub.durable());

    {
      std::mt19937_64 rng(11);
      std::vector<Event> sample = dom.random_events(rng, 128);
      pubsub.train(sample).expect_ok();
    }

    const std::size_t churn_rounds = 40 * scale;
    std::vector<std::thread> threads;

    // Three churners, each keeping every third subscription it makes.
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng(500 + t);
        std::vector<SubscriptionHandle> kept;
        for (std::size_t round = 0; round < churn_rounds; ++round) {
          auto result = pubsub.subscribe(dom.random_tree(rng, 4, 0.1));
          ASSERT_TRUE(result.ok()) << result.status().to_string();
          SubscriptionHandle handle = std::move(result).value();
          if (round % 3 == 0) {
            kept.push_back(std::move(handle));
          } else {
            Status released = handle.release();
            ASSERT_TRUE(released.ok()) << released.to_string();
          }
        }
        // Park the kept handles in the shared pool so their destructors
        // (which would unsubscribe) run only after the PubSub is gone.
        std::lock_guard<std::mutex> guard(kept_mutex);
        for (auto& handle : kept) kept_pool.push_back(std::move(handle));
      });
    }

    // One checkpointer + publisher thread.
    threads.emplace_back([&] {
      std::mt19937_64 rng(900);
      for (std::size_t round = 0; round < 10 * scale; ++round) {
        std::vector<Event> batch = dom.random_events(rng, 4);
        (void)pubsub.publish_batch(batch);
        Status checkpointed = pubsub.checkpoint();
        ASSERT_TRUE(checkpointed.ok()) << checkpointed.to_string();
      }
    });

    for (auto& thread : threads) thread.join();

    ASSERT_TRUE(pubsub.durable());
    survivors = pubsub.subscription_ids();
    EXPECT_EQ(survivors.size(), kept_pool.size());

    // Destroy the PubSub *before* the kept handles: a handle dropped after
    // its PubSub is a no-op, so the survivors stay in the store.
  }
  kept_pool.clear();

  // Recovery: the reopened table is exactly the survivor set.
  store.create_if_missing = false;
  auto reopened = PubSub::open(store, pruning_options(2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened->subscription_ids(), survivors);
  const StoreStats stats = reopened->store_stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_FALSE(stats.recovered_torn_tail);
}

// --- ThreadPool lifecycle ---------------------------------------------------

// Regression for shutdown ordering: construct/submit/destroy in a tight
// loop. The destructor must drain the queue (every submitted task runs) and
// join cleanly even when destruction races freshly submitted work.
TEST(ConcurrentStress, ThreadPoolConstructDestroyLoop) {
  const std::size_t scale = stress_scale();
  for (std::size_t round = 0; round < 20 * scale; ++round) {
    std::atomic<std::uint64_t> ran{0};
    {
      ThreadPool pool(3);
      for (int i = 0; i < 32; ++i) {
        (void)pool.submit([&ran] { ran.fetch_add(1); });
      }
      // No wait: the destructor is responsible for draining.
    }
    EXPECT_EQ(ran.load(), 32u) << "round " << round;
  }
}

// Many threads submitting into one pool, including from inside pool tasks
// (the nested-submit path a careless shutdown protocol deadlocks on).
TEST(ConcurrentStress, ThreadPoolConcurrentSubmitters) {
  const std::size_t scale = stress_scale();
  for (std::size_t round = 0; round < 4 * scale; ++round) {
    std::atomic<std::uint64_t> ran{0};
    std::vector<std::future<void>> nested;
    std::mutex nested_mutex;
    {
      ThreadPool pool(4);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 16; ++i) {
            auto future = pool.submit([&] {
              ran.fetch_add(1);
              // Every fourth task submits a child task from a worker.
              if (ran.load() % 4 == 0) {
                auto child = pool.submit([&ran] { ran.fetch_add(1); });
                std::lock_guard<std::mutex> guard(nested_mutex);
                nested.push_back(std::move(child));
              }
            });
            future.wait();
          }
        });
      }
      for (auto& thread : submitters) thread.join();
      for (auto& future : nested) future.wait();
    }
    EXPECT_GE(ran.load(), 48u);
  }
}

}  // namespace
}  // namespace dbsp
