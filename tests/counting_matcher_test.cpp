#include "filter/counting_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/candidates.hpp"
#include "subscription/parser.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

class CountingMatcherTest : public ::testing::Test {
 protected:
  CountingMatcherTest() {
    schema_.add_attribute("price", ValueType::Double);
    schema_.add_attribute("category", ValueType::String);
    schema_.add_attribute("year", ValueType::Int);
  }

  [[nodiscard]] std::unique_ptr<Subscription> sub(std::uint32_t id,
                                                  std::string_view text) const {
    return std::make_unique<Subscription>(SubscriptionId(id),
                                          parse_subscription(text, schema_));
  }

  [[nodiscard]] std::vector<SubscriptionId> match(CountingMatcher& m,
                                                  const Event& e) const {
    std::vector<SubscriptionId> out;
    m.match(e, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  Schema schema_;
};

TEST_F(CountingMatcherTest, MatchesConjunction) {
  CountingMatcher m(schema_);
  auto s = sub(1, "category = 'art' and price < 10");
  m.add(*s);
  const Event hit = EventBuilder(schema_).with("category", "art").with("price", 5.0).build();
  const Event miss = EventBuilder(schema_).with("category", "art").with("price", 15.0).build();
  EXPECT_EQ(match(m, hit), std::vector<SubscriptionId>{SubscriptionId(1)});
  EXPECT_TRUE(match(m, miss).empty());
}

TEST_F(CountingMatcherTest, SharedPredicateEvaluatedOnceAndCountedPerSub) {
  CountingMatcher m(schema_);
  auto s1 = sub(1, "price < 10 and category = 'art'");
  auto s2 = sub(2, "price < 10 and year > 1990");
  m.add(*s1);
  m.add(*s2);
  EXPECT_EQ(m.live_predicates(), 3u);    // price<10 deduplicated
  EXPECT_EQ(m.association_count(), 4u);  // 2 per subscription

  const Event e = EventBuilder(schema_)
                      .with("price", 5.0)
                      .with("category", "art")
                      .with("year", 2000)
                      .build();
  const auto hits = match(m, e);
  EXPECT_EQ(hits, (std::vector<SubscriptionId>{SubscriptionId(1), SubscriptionId(2)}));
}

TEST_F(CountingMatcherTest, PminTriggerSkipsHopelessSubscriptions) {
  CountingMatcher m(schema_);
  auto s = sub(1, "category = 'art' and price < 10 and year > 1990");  // pmin = 3
  m.add(*s);
  m.reset_counters();
  // Only one predicate can be fulfilled -> no tree evaluation at all.
  const Event e = EventBuilder(schema_).with("category", "art").build();
  EXPECT_TRUE(match(m, e).empty());
  EXPECT_EQ(m.counters().tree_evaluations, 0u);
  EXPECT_EQ(m.counters().counter_increments, 1u);
}

TEST_F(CountingMatcherTest, OrLowersPmin) {
  CountingMatcher m(schema_);
  auto s = sub(1, "category = 'art' or (price < 10 and year > 1990)");  // pmin = 1
  m.add(*s);
  const Event e = EventBuilder(schema_).with("category", "art").build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(1)});
}

TEST_F(CountingMatcherTest, NotSubscriptionsAreAlwaysEvaluated) {
  CountingMatcher m(schema_);
  auto s = sub(1, "not category = 'art'");  // pmin = 0
  m.add(*s);
  m.reset_counters();
  const Event other = EventBuilder(schema_).with("category", "music").build();
  EXPECT_EQ(match(m, other), std::vector<SubscriptionId>{SubscriptionId(1)});
  const Event art = EventBuilder(schema_).with("category", "art").build();
  EXPECT_TRUE(match(m, art).empty());
  EXPECT_EQ(m.counters().tree_evaluations, 2u);  // evaluated on every event
}

TEST_F(CountingMatcherTest, RemoveReleasesEverything) {
  CountingMatcher m(schema_);
  auto s1 = sub(1, "price < 10 and category = 'art'");
  auto s2 = sub(2, "price < 10");
  m.add(*s1);
  m.add(*s2);
  m.remove(*s1);
  EXPECT_EQ(m.subscription_count(), 1u);
  EXPECT_EQ(m.live_predicates(), 1u);
  EXPECT_EQ(m.association_count(), 1u);
  const Event e = EventBuilder(schema_).with("price", 5.0).with("category", "art").build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(2)});
  EXPECT_FALSE(m.contains(SubscriptionId(1)));
}

TEST_F(CountingMatcherTest, ReindexAfterPruningKeepsMatcherConsistent) {
  CountingMatcher m(schema_);
  auto s = sub(1, "category = 'art' and price < 10");
  m.add(*s);
  EXPECT_EQ(m.associations_of(SubscriptionId(1)), 2u);

  // Prune the category conjunct (path {0}).
  apply_pruning(*s, {0});
  m.reindex(*s);
  EXPECT_EQ(m.associations_of(SubscriptionId(1)), 1u);
  EXPECT_EQ(m.live_predicates(), 1u);

  // Now generalized: matches regardless of category.
  const Event e = EventBuilder(schema_).with("category", "music").with("price", 5.0).build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(1)});
}

TEST_F(CountingMatcherTest, DuplicateAddAndUnknownQueriesThrow) {
  CountingMatcher m(schema_);
  auto s = sub(1, "price < 10");
  m.add(*s);
  EXPECT_THROW(m.add(*s), std::invalid_argument);
  EXPECT_THROW((void)m.associations_of(SubscriptionId(9)), std::out_of_range);
}

TEST_F(CountingMatcherTest, DuplicateLeafPredicateSharesOneAssociation) {
  CountingMatcher m(schema_);
  // price < 10 appears in two leaves of one subscription; it is interned
  // once (a single pred/sub association) but both leaves resolve to it.
  auto s = sub(1, "price < 10 or (price < 10 and year > 1990)");
  m.add(*s);
  EXPECT_EQ(m.associations_of(SubscriptionId(1)), 2u);  // price<10, year>1990
  const Event e = EventBuilder(schema_).with("price", 5.0).build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(1)});
}

TEST_F(CountingMatcherTest, DuplicatedPredicateAdvancesCounterPerLeaf) {
  CountingMatcher m(schema_);
  // Regression: pmin counts fulfilled *leaf occurrences*. year > 1990 sits
  // in two leaves (inside the or-group and as a conjunct); pmin = 3, but
  // only two distinct predicates can fire. The counter must advance by the
  // leaf refcount or this match is missed.
  auto s = sub(1, "(category = 'art' or year > 1990) and year > 1990 and price < 10");
  m.add(*s);
  EXPECT_EQ(s->root().pmin(), 3u);
  const Event e = EventBuilder(schema_).with("year", 2000).with("price", 5.0).build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(1)});

  // And after pruning the or-group, the leaf refcount drops back to 1.
  apply_pruning(*s, {0});
  m.reindex(*s);
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(1)});
  const Event miss = EventBuilder(schema_).with("year", 1980).with("price", 5.0).build();
  EXPECT_TRUE(match(m, miss).empty());
}

TEST_F(CountingMatcherTest, CountersAccumulateAndReset) {
  CountingMatcher m(schema_);
  auto s = sub(1, "price < 10");
  m.add(*s);
  const Event e = EventBuilder(schema_).with("price", 5.0).build();
  std::vector<SubscriptionId> out;
  m.match(e, out);
  m.match(e, out);
  EXPECT_EQ(m.counters().events, 2u);
  EXPECT_EQ(m.counters().matches, 2u);
  m.reset_counters();
  EXPECT_EQ(m.counters().events, 0u);
}

TEST_F(CountingMatcherTest, SlotRecyclingAfterRemoveAdd) {
  CountingMatcher m(schema_);
  auto s1 = sub(1, "price < 10");
  m.add(*s1);
  m.remove(*s1);
  auto s2 = sub(2, "year > 1990");
  m.add(*s2);
  const Event e = EventBuilder(schema_).with("price", 5.0).with("year", 2000).build();
  EXPECT_EQ(match(m, e), std::vector<SubscriptionId>{SubscriptionId(2)});
}

}  // namespace
}  // namespace dbsp
