// FrameAssembler: incremental length-prefixed framing over an arbitrary
// byte stream. The contract under test: a frame split at *any* byte
// boundary — even inside the 4-byte length prefix — resumes cleanly on the
// next push(); zero and over-limit length prefixes throw WireError before
// the alleged payload is buffered.

#include "routing/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace dbsp {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes frame_of(const Bytes& payload) {
  Bytes out;
  append_frame(out, payload);
  return out;
}

Bytes payload_of(std::size_t n, std::uint8_t seed = 7) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return p;
}

TEST(FrameAssembler, RoundTripsOneFrame) {
  const Bytes payload = payload_of(10);
  FrameAssembler fa;
  fa.push(frame_of(payload));
  const auto got = fa.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(fa.next().has_value());
  EXPECT_EQ(fa.buffered_bytes(), 0u);
}

TEST(FrameAssembler, ResumesAfterSplitAtEveryByteBoundary) {
  const Bytes payload = payload_of(23);
  const Bytes wire = frame_of(payload);
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameAssembler fa;
    fa.push(std::span<const std::uint8_t>(wire.data(), cut));
    if (cut < wire.size()) {
      EXPECT_FALSE(fa.next().has_value()) << "cut=" << cut;
    }
    fa.push(std::span<const std::uint8_t>(wire.data() + cut, wire.size() - cut));
    const auto got = fa.next();
    ASSERT_TRUE(got.has_value()) << "cut=" << cut;
    EXPECT_EQ(*got, payload) << "cut=" << cut;
    EXPECT_FALSE(fa.next().has_value());
  }
}

TEST(FrameAssembler, RandomChunkingPreservesFrameSequence) {
  std::mt19937_64 rng(1234);
  std::vector<Bytes> payloads;
  Bytes wire;
  for (std::size_t i = 0; i < 64; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 300);
    payloads.push_back(payload_of(len(rng), static_cast<std::uint8_t>(i)));
    append_frame(wire, payloads.back());
  }

  for (int round = 0; round < 20; ++round) {
    FrameAssembler fa;
    std::size_t pos = 0;
    std::size_t decoded = 0;
    std::uniform_int_distribution<std::size_t> chunk(1, 97);
    while (pos < wire.size() || decoded < payloads.size()) {
      if (pos < wire.size()) {
        const std::size_t n = std::min(chunk(rng), wire.size() - pos);
        fa.push(std::span<const std::uint8_t>(wire.data() + pos, n));
        pos += n;
      }
      while (true) {
        const auto got = fa.next();
        if (!got.has_value()) break;
        ASSERT_LT(decoded, payloads.size());
        EXPECT_EQ(*got, payloads[decoded]) << "frame " << decoded;
        ++decoded;
      }
    }
    EXPECT_EQ(decoded, payloads.size());
    EXPECT_EQ(fa.buffered_bytes(), 0u);
  }
}

TEST(FrameAssembler, ZeroLengthPrefixThrows) {
  FrameAssembler fa;
  fa.push(Bytes{0, 0, 0, 0});
  EXPECT_THROW((void)fa.next(), WireError);
}

TEST(FrameAssembler, OversizedLengthPrefixThrowsBeforeBuffering) {
  FrameAssembler fa(/*max_frame_bytes=*/64);
  // 0xFFFFFFFF little-endian: the hostile "please allocate 4 GiB" prefix.
  fa.push(Bytes{0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_THROW((void)fa.next(), WireError);
}

TEST(FrameAssembler, JustOverLimitThrowsAtLimitAccepted) {
  FrameAssembler fa(/*max_frame_bytes=*/16);
  const Bytes ok = payload_of(16);
  Bytes wire;
  append_frame(wire, ok, 16);
  fa.push(wire);
  const auto got = fa.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ok);

  // 17 > limit: the length prefix alone must trip the error.
  FrameAssembler fb(/*max_frame_bytes=*/16);
  fb.push(Bytes{17, 0, 0, 0});
  EXPECT_THROW((void)fb.next(), WireError);
}

TEST(FrameAssembler, PartialPrefixIsNotAFrame) {
  FrameAssembler fa;
  fa.push(Bytes{5, 0});  // half a length prefix
  EXPECT_FALSE(fa.next().has_value());
  EXPECT_EQ(fa.buffered_bytes(), 2u);
  fa.push(Bytes{0, 0});  // prefix complete: expecting 5 payload bytes
  EXPECT_FALSE(fa.next().has_value());
  fa.push(payload_of(5));
  const auto got = fa.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 5u);
}

TEST(AppendFrame, RejectsEmptyAndOversizedPayloads) {
  Bytes out;
  EXPECT_THROW(append_frame(out, Bytes{}), WireError);
  EXPECT_THROW(append_frame(out, payload_of(33), /*max_frame_bytes=*/32),
               WireError);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dbsp
