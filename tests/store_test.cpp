// Durable state store: WAL/snapshot round-trips, PubSub::open() recovery
// exactness (the crash-equivalence contract, asserted at shards {1, 8}),
// pruning accounting continuity, checkpoint truncation, statistics
// persistence, adopt() semantics, broker warm restart, and the
// ScenarioRunner kill-and-recover phase.

#include "store/state_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "api/pubsub.hpp"
#include "broker/overlay.hpp"
#include "scenario/scenario_runner.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

namespace fs = std::filesystem;
using test::MiniDomain;

/// Unique scratch directory removed (with everything in it) on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dbsp_" + tag + "_" + std::to_string(counter++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

PubSubOptions pruning_options(std::size_t shards) {
  PubSubOptions options;
  options.engine.shards = shards;
  options.pruning = true;
  return options;
}

StoreOptions store_at(const TempDir& dir, const Schema& schema) {
  StoreOptions store;
  store.directory = dir.str();
  store.schema = schema;
  return store;
}

using Sink = std::shared_ptr<std::vector<SubscriptionId>>;

PubSub::Callback collector(Sink sink) {
  return [sink](const Notification& n) { sink->push_back(n.subscription); };
}

/// Claims every recovered registration with a collecting callback. The
/// handles must be destroyed only *after* the PubSub (crash order) unless
/// unsubscribing is intended.
std::vector<SubscriptionHandle> adopt_all(PubSub& pubsub, const Sink& sink) {
  std::vector<SubscriptionHandle> handles;
  for (const SubscriptionId id : pubsub.subscription_ids()) {
    auto handle = pubsub.adopt(id, collector(sink));
    EXPECT_TRUE(handle.ok()) << handle.status().to_string();
    handles.push_back(std::move(handle).value());
  }
  return handles;
}

/// Engine-path match set of one probe publish (callbacks fire in ascending
/// id order, so the sink comes back sorted).
std::vector<SubscriptionId> probe(PubSub& pubsub, const Sink& sink,
                                  const Event& event) {
  sink->clear();
  (void)pubsub.publish(event);
  return *sink;
}

/// Direct-tree-evaluation match set (the correctness oracle).
std::vector<SubscriptionId> oracle_matches(const PubSub& pubsub, const Event& event) {
  std::vector<SubscriptionId> out;
  for (const SubscriptionId id : pubsub.subscription_ids()) {
    if (pubsub.matches(id, event).value()) out.push_back(id);
  }
  return out;
}

// --- WAL / snapshot layer ----------------------------------------------------

TEST(StoreWalTest, AppendAndReadBack) {
  TempDir dir("wal");
  fs::create_directories(dir.path());
  const std::string path = (dir.path() / "wal.dbsp").string();
  MiniDomain dom;
  std::mt19937_64 rng(7);

  auto writer = store::WalWriter::create(path, 42, /*sync=*/false);
  const auto tree = dom.random_tree(rng, 5);
  WireWriter sub_record;
  store::encode_subscribe(SubscriptionId(3), *tree, sub_record);
  writer->append(sub_record.bytes());
  WireWriter unsub_record;
  store::encode_unsubscribe(SubscriptionId(9), unsub_record);
  writer->append(unsub_record.bytes());
  WireWriter prune_record;
  store::encode_prune(SubscriptionId(3), *tree, prune_record);
  writer->append(prune_record.bytes());
  EXPECT_EQ(writer->records_appended(), 3u);
  writer.reset();

  const store::WalContents wal = store::read_wal(path);
  EXPECT_EQ(wal.epoch, 42u);
  ASSERT_EQ(wal.records.size(), 3u);
  EXPECT_EQ(wal.records[0].type, store::RecordType::kSubscribe);
  EXPECT_EQ(wal.records[0].sub, SubscriptionId(3));
  ASSERT_NE(wal.records[0].tree, nullptr);
  EXPECT_TRUE(wal.records[0].tree->equals(*tree));
  EXPECT_EQ(wal.records[1].type, store::RecordType::kUnsubscribe);
  EXPECT_EQ(wal.records[1].sub, SubscriptionId(9));
  EXPECT_EQ(wal.records[2].type, store::RecordType::kPrune);
}

TEST(StoreWalTest, RejectsForeignAndCorruptFiles) {
  TempDir dir("walbad");
  fs::create_directories(dir.path());
  const std::string path = (dir.path() / "wal.dbsp").string();

  // Unknown format version in the header.
  store::write_file_atomic(path, std::vector<std::uint8_t>{kWireMagic, 99, 1},
                           false);
  EXPECT_THROW((void)store::read_wal(path), WireError);

  // Snapshot kind byte in a WAL slot.
  store::write_file_atomic(
      path, std::vector<std::uint8_t>{kWireMagic, kWireFormatVersion, 2}, false);
  EXPECT_THROW((void)store::read_wal(path), store::StoreError);

  // Valid WAL with one flipped payload bit -> checksum mismatch.
  auto writer = store::WalWriter::create(path, 1, false);
  WireWriter record;
  store::encode_unsubscribe(SubscriptionId(5), record);
  writer->append(record.bytes());
  writer.reset();
  auto bytes = store::read_file(path);
  bytes.back() ^= 0x10;
  store::write_file_atomic(path, bytes, false);
  EXPECT_THROW((void)store::read_wal(path), store::StoreError);
}

TEST(StoreSnapshotTest, RoundTripsFullState) {
  TempDir dir("snap");
  fs::create_directories(dir.path());
  const std::string path = (dir.path() / "snapshot.dbsp").string();
  MiniDomain dom;
  std::mt19937_64 rng(13);

  EventStats stats(dom.schema());
  for (const Event& e : dom.random_events(rng, 200)) stats.observe(e);
  stats.finalize();

  const auto t1 = dom.random_tree(rng, 4);
  const auto t2 = dom.random_tree(rng, 7);
  store::SnapshotData data;
  data.schema = &dom.schema();
  data.next_id = 17;
  data.next_seq = 923;
  data.stats = &stats;
  data.subs.push_back({SubscriptionId(2), 5, 1, t1.get()});
  data.subs.push_back({SubscriptionId(11), 9, 0, t2.get()});
  store::write_snapshot(path, 6, data, false);

  const store::LoadedSnapshot snap = store::read_snapshot(path);
  EXPECT_EQ(snap.epoch, 6u);
  EXPECT_EQ(snap.next_id, 17u);
  EXPECT_EQ(snap.next_seq, 923u);
  EXPECT_TRUE(store::schemas_equal(snap.schema, dom.schema()));
  ASSERT_EQ(snap.subs.size(), 2u);
  EXPECT_EQ(snap.subs[0].id, SubscriptionId(2));
  EXPECT_EQ(snap.subs[0].capacity, 5u);
  EXPECT_EQ(snap.subs[0].performed, 1u);
  EXPECT_TRUE(snap.subs[0].tree->equals(*t1));
  EXPECT_TRUE(snap.subs[1].tree->equals(*t2));
  ASSERT_FALSE(snap.stats.empty());

  // The serialized statistics load back to identical selectivities.
  EventStats loaded(dom.schema());
  WireReader reader(snap.stats);
  loaded.load(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(loaded.events_observed(), stats.events_observed());
  for (int i = 0; i < 50; ++i) {
    const Predicate p = dom.random_predicate(rng);
    EXPECT_DOUBLE_EQ(loaded.predicate_selectivity(p),
                     stats.predicate_selectivity(p));
  }
}

// --- PubSub::open ------------------------------------------------------------

TEST(PubSubOpenTest, OpenErrors) {
  MiniDomain dom;
  TempDir dir("errors");

  // No store + create_if_missing off.
  StoreOptions no_create = store_at(dir, dom.schema());
  no_create.create_if_missing = false;
  auto missing = PubSub::open(std::move(no_create));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);

  // A WAL without a snapshot is unrecoverable.
  fs::create_directories(dir.path());
  (void)store::WalWriter::create((dir.path() / "wal.dbsp").string(), 0, false);
  auto orphan = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_FALSE(orphan.ok());
  EXPECT_EQ(orphan.status().code(), ErrorCode::kDataLoss);
  fs::remove(dir.path() / "wal.dbsp");

  // Create a real store, then reopen with a conflicting schema.
  {
    auto created = PubSub::open(store_at(dir, dom.schema()));
    ASSERT_TRUE(created.ok()) << created.status().to_string();
    EXPECT_TRUE(created.value().durable());
  }
  MiniDomain other(3, 50);
  auto mismatch = PubSub::open(store_at(dir, other.schema()));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), ErrorCode::kInvalidArgument);

  // An empty StoreOptions::schema accepts whatever the store holds.
  StoreOptions any_schema;
  any_schema.directory = dir.str();
  auto agnostic = PubSub::open(std::move(any_schema));
  ASSERT_TRUE(agnostic.ok()) << agnostic.status().to_string();
  EXPECT_TRUE(store::schemas_equal(agnostic.value().schema(), dom.schema()));
}

TEST(PubSubOpenTest, ReopenAfterCrashReproducesMatching) {
  MiniDomain dom;
  std::mt19937_64 rng(29);
  TempDir dir("crash");
  const std::vector<Event> probes = dom.random_events(rng, 30);

  Sink sink = std::make_shared<std::vector<SubscriptionId>>();
  std::optional<PubSub> pubsub;
  std::vector<SubscriptionHandle> live;

  auto opened = PubSub::open(store_at(dir, dom.schema()), pruning_options(2));
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  pubsub.emplace(std::move(opened).value());
  EXPECT_FALSE(pubsub->store_stats().recovered);

  for (int i = 0; i < 80; ++i) {
    auto handle = pubsub->subscribe(dom.random_tree(rng, 5, 0.2), collector(sink));
    ASSERT_TRUE(handle.ok()) << handle.status().to_string();
    live.push_back(std::move(handle).value());
  }
  // Churn some of them away so the WAL carries unsubscribes too.
  for (int i = 0; i < 20; ++i) {
    const std::size_t victim =
        static_cast<std::size_t>(rng()) % live.size();
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const std::size_t live_before = pubsub->subscription_count();
  ASSERT_EQ(live_before, 60u);

  std::vector<std::vector<SubscriptionId>> matched_before;
  for (const Event& e : probes) matched_before.push_back(probe(*pubsub, sink, e));

  // Crash: no checkpoint, no clean shutdown. Handles become inert.
  pubsub.reset();
  live.clear();

  // Recovery must reproduce matching at *any* shard count: the store holds
  // the table, sharding is runtime layout (match results are shard-count
  // invariant by the engine's contract).
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    auto reopened = PubSub::open(store_at(dir, dom.schema()),
                                 pruning_options(shards));
    ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
    pubsub.emplace(std::move(reopened).value());
    EXPECT_TRUE(pubsub->store_stats().recovered);
    EXPECT_GT(pubsub->store_stats().replayed_records, 0u);
    EXPECT_EQ(pubsub->subscription_count(), live_before);
    EXPECT_EQ(pubsub->shard_count(), shards);

    live = adopt_all(*pubsub, sink);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(probe(*pubsub, sink, probes[i]), matched_before[i])
          << "probe " << i << " at " << shards << " shards";
      EXPECT_EQ(oracle_matches(*pubsub, probes[i]), matched_before[i]);
    }
    pubsub.reset();  // crash again; next iteration recovers the same state
    live.clear();
  }
}

TEST(PubSubOpenTest, PruneTrainAndAccountingSurviveCrash) {
  MiniDomain dom;
  std::mt19937_64 rng(31);
  TempDir dir("prune");
  const std::vector<Event> probes = dom.random_events(rng, 25);

  Sink sink = std::make_shared<std::vector<SubscriptionId>>();
  std::optional<PubSub> pubsub;
  std::vector<SubscriptionHandle> live;

  auto opened = PubSub::open(store_at(dir, dom.schema()), pruning_options(2));
  ASSERT_TRUE(opened.ok());
  pubsub.emplace(std::move(opened).value());
  ASSERT_TRUE(pubsub->train(dom.random_events(rng, 500)).ok());
  for (int i = 0; i < 50; ++i) {
    auto handle = pubsub->subscribe(dom.random_tree(rng, 7, 0.15), collector(sink));
    ASSERT_TRUE(handle.ok());
    live.push_back(std::move(handle).value());
  }
  const std::size_t pruned = pubsub->prune_to_fraction(0.5).value();
  EXPECT_GT(pruned, 0u);

  const auto stats_before = pubsub->pruning_stats();
  std::vector<std::string> texts_before;
  for (const SubscriptionId id : pubsub->subscription_ids()) {
    texts_before.push_back(pubsub->subscription_text(id).value());
  }
  std::vector<std::vector<SubscriptionId>> matched_before;
  for (const Event& e : probes) matched_before.push_back(probe(*pubsub, sink, e));

  pubsub.reset();  // crash
  live.clear();

  auto reopened = PubSub::open(store_at(dir, dom.schema()), pruning_options(2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  pubsub.emplace(std::move(reopened).value());

  // The pruned trees, the engine matching, and the pruning accounting all
  // continue where the crashed process stopped.
  std::vector<std::string> texts_after;
  for (const SubscriptionId id : pubsub->subscription_ids()) {
    texts_after.push_back(pubsub->subscription_text(id).value());
  }
  EXPECT_EQ(texts_after, texts_before);
  const auto stats_after = pubsub->pruning_stats();
  EXPECT_EQ(stats_after.performed, stats_before.performed);
  EXPECT_EQ(stats_after.total_possible, stats_before.total_possible);
  EXPECT_EQ(stats_after.tracked, stats_before.tracked);

  live = adopt_all(*pubsub, sink);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(probe(*pubsub, sink, probes[i]), matched_before[i]) << "probe " << i;
  }

  // Statistics survived (a train-checkpoint record): pruning more without
  // retraining keeps producing valid decisions, and match semantics stay
  // oracle-exact afterwards.
  (void)pubsub->prune_to_fraction(0.6).value();
  for (const Event& e : probes) {
    EXPECT_EQ(probe(*pubsub, sink, e), oracle_matches(*pubsub, e));
  }
  pubsub.reset();
  live.clear();
}

#if defined(__unix__) || defined(__APPLE__)
TEST(PubSubOpenTest, SecondOpenOfLiveStoreIsRefused) {
  MiniDomain dom;
  TempDir dir("lock");

  auto first = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(first.ok()) << first.status().to_string();

  // Two writers sharing one WAL would corrupt it; the flock refuses.
  auto second = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kIoError);

  // Closing the first releases the lock (and so does a process crash).
  { PubSub moved = std::move(first).value(); }
  auto third = PubSub::open(store_at(dir, dom.schema()));
  EXPECT_TRUE(third.ok()) << third.status().to_string();
}
#endif

TEST(PubSubOpenTest, TornWalTailIsTruncatedNotFatal) {
  MiniDomain dom;
  std::mt19937_64 rng(43);
  TempDir dir("torn");

  std::optional<PubSub> pubsub;
  std::vector<SubscriptionHandle> live;
  Sink sink = std::make_shared<std::vector<SubscriptionId>>();

  auto opened = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(opened.ok());
  pubsub.emplace(std::move(opened).value());
  for (int i = 0; i < 20; ++i) {
    auto handle = pubsub->subscribe(dom.random_tree(rng, 4), collector(sink));
    ASSERT_TRUE(handle.ok());
    live.push_back(std::move(handle).value());
  }
  pubsub.reset();  // crash
  live.clear();

  // Simulate a kill mid-append: chop the final frame in half. Recovery
  // must keep the 19-record prefix and truncate the torn bytes away.
  const std::string wal_path = (dir.path() / "wal.dbsp").string();
  auto bytes = store::read_file(wal_path);
  const store::WalContents intact = store::read_wal(wal_path);
  ASSERT_FALSE(intact.torn_tail);
  const std::size_t last_record_at = [&] {
    // Frame offsets: header(3) then len-prefixed records; walk to the last.
    std::size_t pos = 3;
    std::size_t last = pos;
    while (pos < bytes.size()) {
      WireReader fr(std::span<const std::uint8_t>(bytes.data() + pos, 8));
      const std::uint32_t len = fr.get_u32();
      last = pos;
      pos += 8 + len;
    }
    return last;
  }();
  bytes.resize(last_record_at + 5);  // partial frame header + payload start
  store::write_file_atomic(wal_path, bytes, false);

  auto reopened = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  pubsub.emplace(std::move(reopened).value());
  EXPECT_TRUE(pubsub->store_stats().recovered_torn_tail);
  EXPECT_EQ(pubsub->subscription_count(), 19u);

  // The truncated log is clean again: appends and another recovery work.
  auto handle = pubsub->subscribe(dom.random_tree(rng, 4), collector(sink));
  ASSERT_TRUE(handle.ok());
  live.push_back(std::move(handle).value());
  pubsub.reset();
  live.clear();
  auto again = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  EXPECT_FALSE(again.value().store_stats().recovered_torn_tail);
  EXPECT_EQ(again.value().subscription_count(), 20u);
}

TEST(PubSubOpenTest, CorruptStaleWalIsDiscardedNotFatal) {
  MiniDomain dom;
  std::mt19937_64 rng(47);
  TempDir dir("stale");

  std::optional<PubSub> pubsub;
  std::vector<SubscriptionHandle> live;
  Sink sink = std::make_shared<std::vector<SubscriptionId>>();

  auto opened = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(opened.ok());
  pubsub.emplace(std::move(opened).value());
  for (int i = 0; i < 15; ++i) {
    auto handle = pubsub->subscribe(dom.random_tree(rng, 4), collector(sink));
    ASSERT_TRUE(handle.ok());
    live.push_back(std::move(handle).value());
  }
  ASSERT_TRUE(pubsub->checkpoint().ok());  // snapshot + WAL now at epoch 1
  pubsub.reset();
  live.clear();

  // Simulate the crash window "snapshot renamed, WAL not yet truncated"
  // with the worst twist: the stale (epoch-0) WAL's obsolete tail is also
  // corrupt. The snapshot fully supersedes it, so recovery must discard
  // it on the epoch alone instead of reporting data loss.
  const std::string wal_path = (dir.path() / "wal.dbsp").string();
  {
    auto stale = store::WalWriter::create(wal_path, 0, false);
    WireWriter record;
    store::encode_unsubscribe(SubscriptionId(3), record);
    stale->append(record.bytes());
    stale->append(record.bytes());
  }
  auto bytes = store::read_file(wal_path);
  bytes.back() ^= 0x40;  // CRC mismatch on the final complete frame
  store::write_file_atomic(wal_path, bytes, false);

  auto reopened = PubSub::open(store_at(dir, dom.schema()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value().subscription_count(), 15u);
  EXPECT_EQ(reopened.value().store_stats().replayed_records, 0u);
  EXPECT_EQ(reopened.value().store_stats().epoch, 1u);
}

TEST(PubSubOpenTest, CheckpointTruncatesWal) {
  MiniDomain dom;
  std::mt19937_64 rng(37);
  TempDir dir("ckpt");

  std::optional<PubSub> pubsub;
  std::vector<SubscriptionHandle> live;
  Sink sink = std::make_shared<std::vector<SubscriptionId>>();

  StoreOptions store = store_at(dir, dom.schema());
  store.snapshot_every = 16;
  auto opened = PubSub::open(std::move(store), pruning_options(1));
  ASSERT_TRUE(opened.ok());
  pubsub.emplace(std::move(opened).value());

  for (int i = 0; i < 100; ++i) {
    auto handle = pubsub->subscribe(dom.random_tree(rng, 4), collector(sink));
    ASSERT_TRUE(handle.ok());
    live.push_back(std::move(handle).value());
  }
  const StoreStats mid = pubsub->store_stats();
  EXPECT_GE(mid.snapshots_written, 5u);  // 100 records / snapshot_every 16
  EXPECT_LT(mid.records_since_checkpoint, 16u);

  // Manual checkpoint: the WAL empties completely.
  ASSERT_TRUE(pubsub->checkpoint().ok());
  const std::size_t count_before = pubsub->subscription_count();
  pubsub.reset();
  live.clear();

  auto reopened = PubSub::open(store_at(dir, dom.schema()), pruning_options(1));
  ASSERT_TRUE(reopened.ok());
  pubsub.emplace(std::move(reopened).value());
  EXPECT_EQ(pubsub->store_stats().replayed_records, 0u);
  EXPECT_EQ(pubsub->store_stats().snapshot_subscriptions, count_before);
  EXPECT_EQ(pubsub->subscription_count(), count_before);
  pubsub.reset();
}

TEST(PubSubOpenTest, AdoptSemantics) {
  MiniDomain dom;
  std::mt19937_64 rng(41);
  PubSub pubsub(dom.schema());  // adopt() also works in-memory

  auto missing = pubsub.adopt(SubscriptionId(123));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);

  // A match-everything filter, so the adopted callback must fire.
  auto subscribed = pubsub.subscribe(
      Node::leaf(Predicate(dom.attr(0), Op::Ge, Value(std::int64_t{0}))));
  ASSERT_TRUE(subscribed.ok());
  SubscriptionHandle original = std::move(subscribed).value();
  const SubscriptionId id = original.id();

  // Adopt attaches a callback to the existing registration.
  Sink sink = std::make_shared<std::vector<SubscriptionId>>();
  auto adopted = pubsub.adopt(id, collector(sink));
  ASSERT_TRUE(adopted.ok());
  SubscriptionHandle handle = std::move(adopted).value();
  EXPECT_TRUE(handle.active());

  EXPECT_EQ(pubsub.publish(dom.random_event(rng)), 1u);
  EXPECT_EQ(*sink, std::vector<SubscriptionId>{id});

  // Releasing the adopted handle unsubscribes; the original claim on the
  // same registration then reports kNotFound (documented single-claim rule).
  EXPECT_TRUE(handle.release().ok());
  EXPECT_FALSE(pubsub.contains(id));
  EXPECT_EQ(original.release().code(), ErrorCode::kNotFound);
}

// The acceptance contract: a durable PubSub and an uninterrupted in-memory
// oracle are driven through one identical randomized churn + pruning +
// retraining history; the durable one crashes mid-way and must come back
// matching the oracle exactly — at 1 and at 8 shards — and stay exact
// through the rest of the churn.
TEST(PubSubOpenTest, RecoveryExactnessUnderRandomizedChurn) {
  MiniDomain dom(6, 24);
  std::mt19937_64 rng(53);
  TempDir dir("exact");

  Sink durable_sink = std::make_shared<std::vector<SubscriptionId>>();
  Sink oracle_sink = std::make_shared<std::vector<SubscriptionId>>();

  std::optional<PubSub> durable;
  std::vector<SubscriptionHandle> durable_live;
  auto opened = PubSub::open(store_at(dir, dom.schema()), pruning_options(2));
  ASSERT_TRUE(opened.ok());
  durable.emplace(std::move(opened).value());

  PubSub oracle(dom.schema(), pruning_options(2));
  std::vector<SubscriptionHandle> oracle_live;

  const std::vector<Event> training = dom.random_events(rng, 400);
  ASSERT_TRUE(durable->train(training).ok());
  ASSERT_TRUE(oracle.train(training).ok());

  std::vector<Event> window;  // shared retraining sample
  const auto step = [&](std::size_t i, PubSub& ps,
                        std::vector<SubscriptionHandle>& live, const Sink& sink,
                        const std::unique_ptr<Node>& tree, double u,
                        const Event& event, bool prune) {
    if (u < 0.45 || live.empty()) {
      auto handle = ps.subscribe(tree->clone(), collector(sink));
      ASSERT_TRUE(handle.ok()) << handle.status().to_string();
      live.push_back(std::move(handle).value());
    } else if (u < 0.75) {
      live.erase(live.begin() +
                 static_cast<std::ptrdiff_t>(i % live.size()));
    }
    if (prune) {
      ASSERT_TRUE(ps.prune_to_fraction(0.6).ok());
    }
    sink->clear();
    (void)ps.publish(event);
  };

  constexpr std::size_t kSteps = 300;
  constexpr std::size_t kCrashAt = 150;
  for (std::size_t i = 0; i < kSteps; ++i) {
    const auto tree = dom.random_tree(rng, 6, 0.2);
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const Event event = dom.random_event(rng);
    window.push_back(event);
    if (window.size() > 64) window.erase(window.begin());
    // Pruning runs only before the crash: afterwards the recovered queues
    // are rebuilt against the recovered trees (re-captured baselines), so
    // pruning *choices* may legitimately differ from the oracle's — the
    // contract is about match results, which stay oracle-checked below.
    const bool prune = i < kCrashAt && i % 7 == 6;
    const bool retrain = i < kCrashAt && i % 41 == 40;
    if (retrain) {
      ASSERT_TRUE(durable->train(window).ok());
      ASSERT_TRUE(oracle.train(window).ok());
      ASSERT_TRUE(durable->rescore_all().ok());
      ASSERT_TRUE(oracle.rescore_all().ok());
    }

    step(i, *durable, durable_live, durable_sink, tree, u, event, prune);
    step(i, oracle, oracle_live, oracle_sink, tree, u, event, prune);
    ASSERT_EQ(*durable_sink, *oracle_sink) << "diverged at step " << i;

    if (i == kCrashAt) {
      // Crash the durable instance. First prove recovery exactness
      // read-only at 1 and 8 shards against the live oracle...
      durable.reset();
      durable_live.clear();
      const std::vector<Event> probes = dom.random_events(rng, 40);
      for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
        // Claims declared before the PubSub: destruction runs in reverse,
        // so the PubSub "crashes" first and the claims turn inert instead
        // of logging unsubscribes into the store.
        std::vector<SubscriptionHandle> claims;
        auto reopened =
            PubSub::open(store_at(dir, dom.schema()), pruning_options(shards));
        ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
        PubSub recovered = std::move(reopened).value();
        ASSERT_EQ(recovered.subscription_count(), oracle.subscription_count());
        claims = adopt_all(recovered, durable_sink);
        for (const Event& e : probes) {
          oracle_sink->clear();
          (void)oracle.publish(e);
          EXPECT_EQ(probe(recovered, durable_sink, e), *oracle_sink)
              << "at " << shards << " shards";
        }
      }
      // ...then continue the churn on a recovered instance for the rest of
      // the run.
      auto continued =
          PubSub::open(store_at(dir, dom.schema()), pruning_options(2));
      ASSERT_TRUE(continued.ok());
      durable.emplace(std::move(continued).value());
      EXPECT_TRUE(durable->store_stats().recovered);
      durable_live = adopt_all(*durable, durable_sink);
      ASSERT_EQ(durable_live.size(), oracle_live.size());
    }
  }
  EXPECT_EQ(durable->subscription_count(), oracle.subscription_count());
  durable.reset();
  durable_live.clear();
}

// --- Broker warm restart -----------------------------------------------------

TEST(BrokerWarmRestartTest, RestoredTableReproducesMatching) {
  MiniDomain dom;
  std::mt19937_64 rng(61);
  Overlay overlay(dom.schema(), 3, Overlay::line(3));

  for (std::uint32_t i = 0; i < 40; ++i) {
    overlay.subscribe(BrokerId(i % 3), ClientId(i), SubscriptionId(i),
                      dom.random_tree(rng, 5, 0.2));
  }
  Broker& original = overlay.broker(BrokerId(1));

  WireWriter saved;
  original.save_table(saved);

  // A replacement broker at the same overlay position, fed only the saved
  // bytes — no re-flooding through the network.
  SimulatedNetwork isolated(3);
  Broker restarted(BrokerId(1), dom.schema(), isolated);
  WireReader reader(saved.bytes());
  restarted.restore_table(reader);
  EXPECT_TRUE(reader.exhausted());

  EXPECT_EQ(restarted.table().size(), original.table().size());
  EXPECT_EQ(restarted.table().local_count(), original.table().local_count());
  for (const Event& e : dom.random_events(rng, 50)) {
    std::vector<SubscriptionId> a;
    std::vector<SubscriptionId> b;
    original.engine().match(e, a);
    restarted.engine().match(e, b);
    EXPECT_EQ(a, b);
  }

  // Restoring into a non-empty broker is a caller bug.
  WireReader again(saved.bytes());
  EXPECT_THROW(restarted.restore_table(again), std::logic_error);
}

// --- ScenarioRunner kill-and-recover -----------------------------------------

TEST(ScenarioKillRecoverTest, SoakStaysOracleExactAcrossCrashes) {
  TempDir dir("scenario");
  const auto domain = make_workload("auction");
  ScenarioConfig config = ScenarioConfig::soak(250, 100);
  config.shards = 2;
  config.check_every = 3;
  config.store_directory = dir.str();
  config.kill_recover_phases = {1, 2};  // mid-churn and mid-flash-crowd
  config.store_snapshot_every = 64;

  const ScenarioReport report = ScenarioRunner(*domain, config).run();
  EXPECT_TRUE(report.exact()) << report.total_mismatches() << " oracle mismatches";
  EXPECT_EQ(report.total_recoveries(), 2u);
  EXPECT_GT(report.phases[1].recovered_subscriptions, 0u);
  EXPECT_GT(report.total_recovery_seconds(), 0.0);
}

}  // namespace
}  // namespace dbsp
