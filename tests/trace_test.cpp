// The per-event tracing core: trace context minting, TraceBuilder span
// collection (parenting, overflow, timing), ScopedSpan gating (null
// builder, detailed_only vs head sampling, early close), the
// FlightRecorder's lock-free ring (round trip, wrap, concurrent
// record/snapshot tear-freedom), two-sided sampling (1-in-N head sampler,
// rolling slowest-K tail admission), the traces JSON rendering, and the
// structured logger (level gating, line format, rate limiting).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"

namespace dbsp::obs {
namespace {

FlightRecorderOptions small_recorder(std::size_t capacity = 16,
                                     std::uint32_t sample_every = 1,
                                     std::size_t slow_k = 4,
                                     std::uint64_t window_ms = 60000) {
  FlightRecorderOptions options;
  options.capacity = capacity;
  options.sample_every = sample_every;
  options.slow_k = slow_k;
  options.window_ms = window_ms;
  return options;
}

// --- TraceContext ------------------------------------------------------------

TEST(TraceContextTest, MintedContextsAreUniqueNonzeroAndCarrySampled) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext ctx = make_trace_context(i % 2 == 0);
    EXPECT_TRUE(ctx.active());
    EXPECT_NE(ctx.trace_id, 0u);
    EXPECT_EQ(ctx.parent_span, 0u);
    EXPECT_EQ(ctx.sampled, i % 2 == 0);
    ids.insert(ctx.trace_id);
  }
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_FALSE(TraceContext{}.active());
}

// --- TraceBuilder ------------------------------------------------------------

TEST(TraceBuilderTest, SpansInheritTheContextParentUnlessOverridden) {
  FlightRecorder recorder(small_recorder());
  TraceContext ctx = make_trace_context(true);
  ctx.parent_span = 77;

  TraceBuilder builder;
  builder.begin(ctx);
  const std::size_t a = builder.open_span(TraceStage::kMatch);
  const std::uint64_t a_id = builder.span_id_of(a);
  ASSERT_NE(a_id, 0u);
  const std::size_t b = builder.open_span(TraceStage::kDispatch, a_id);
  builder.close_span(b, /*detail=*/3);
  builder.close_span(a, /*detail=*/9);
  EXPECT_TRUE(builder.finish(recorder));
  EXPECT_FALSE(builder.active());

  const std::vector<Trace> traces = recorder.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& t = traces[0];
  EXPECT_EQ(t.trace_id, ctx.trace_id);
  EXPECT_EQ(t.parent_span, 77u);
  EXPECT_TRUE(t.sampled);
  EXPECT_GT(t.start_unix_us, 0u);
  ASSERT_EQ(t.spans.size(), 2u);
  // Spans come back sorted by start offset; both opened back to back so
  // find them by stage.
  const TraceSpan& match =
      t.spans[0].stage == TraceStage::kMatch ? t.spans[0] : t.spans[1];
  const TraceSpan& dispatch =
      t.spans[0].stage == TraceStage::kDispatch ? t.spans[0] : t.spans[1];
  EXPECT_EQ(match.parent_span, 77u);    // context parent
  EXPECT_EQ(dispatch.parent_span, a_id);  // explicit override
  EXPECT_EQ(match.detail, 9u);
  EXPECT_EQ(dispatch.detail, 3u);
}

TEST(TraceBuilderTest, SpanOverflowDropsTheExtras) {
  FlightRecorder recorder(small_recorder());
  TraceBuilder builder;
  builder.begin(make_trace_context(true));
  for (std::size_t i = 0; i < TraceBuilder::kMaxSpans + 5; ++i) {
    const std::size_t slot = builder.open_span(TraceStage::kShardMatch);
    if (i < TraceBuilder::kMaxSpans) {
      EXPECT_LT(slot, TraceBuilder::kMaxSpans);
      EXPECT_NE(builder.span_id_of(slot), 0u);
    } else {
      EXPECT_EQ(slot, TraceBuilder::kMaxSpans);
      EXPECT_EQ(builder.span_id_of(slot), 0u);
    }
    builder.close_span(slot);
  }
  EXPECT_TRUE(builder.finish(recorder));
  const std::vector<Trace> traces = recorder.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), TraceBuilder::kMaxSpans);
}

TEST(TraceBuilderTest, FinishWithoutBeginIsInert) {
  FlightRecorder recorder(small_recorder());
  TraceBuilder builder;
  EXPECT_FALSE(builder.finish(recorder));
  EXPECT_EQ(recorder.recorded_total(), 0u);
}

TEST(TraceBuilderTest, AbandonDisarmsWithoutRecording) {
  FlightRecorder recorder(small_recorder());
  TraceBuilder builder;
  builder.begin(make_trace_context(true));
  builder.open_span(TraceStage::kMatch);
  builder.abandon();
  EXPECT_FALSE(builder.finish(recorder));
  EXPECT_EQ(recorder.recorded_total(), 0u);
}

// --- ScopedSpan --------------------------------------------------------------

TEST(ScopedSpanTest, InertOnNullOrInactiveBuilder) {
  {
    ScopedSpan span(nullptr, TraceStage::kMatch);
    EXPECT_EQ(span.span_id(), 0u);
  }
  TraceBuilder builder;  // never begun: inactive
  {
    ScopedSpan span(&builder, TraceStage::kMatch);
    EXPECT_EQ(span.span_id(), 0u);
  }
}

TEST(ScopedSpanTest, DetailedOnlySpansRequireHeadSampling) {
  FlightRecorder recorder(small_recorder());
  TraceBuilder builder;
  builder.begin(make_trace_context(/*sampled=*/false));
  {
    ScopedSpan coarse(&builder, TraceStage::kMatch);
    EXPECT_NE(coarse.span_id(), 0u);
    ScopedSpan detailed(&builder, TraceStage::kShardMatch,
                        /*detailed_only=*/true);
    EXPECT_EQ(detailed.span_id(), 0u);
  }
  // An unsampled trace with an empty slow window is still admitted (the
  // window is underfull), carrying only the coarse span.
  EXPECT_TRUE(builder.finish(recorder));
  const std::vector<Trace> traces = recorder.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].spans.size(), 1u);
  EXPECT_EQ(traces[0].spans[0].stage, TraceStage::kMatch);
}

TEST(ScopedSpanTest, CloseIsIdempotentAndKeepsTheDetail) {
  FlightRecorder recorder(small_recorder());
  TraceBuilder builder;
  builder.begin(make_trace_context(true));
  {
    ScopedSpan span(&builder, TraceStage::kOverlayHop);
    span.set_detail(42);
    span.close();
    span.close();  // second close is a no-op
    EXPECT_EQ(span.span_id(), 0u);  // detached after close
  }
  EXPECT_TRUE(builder.finish(recorder));
  const std::vector<Trace> traces = recorder.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].spans.size(), 1u);
  EXPECT_EQ(traces[0].spans[0].detail, 42u);
}

// --- FlightRecorder ring -----------------------------------------------------

TEST(FlightRecorderTest, RecordSnapshotRoundTripsAllFields) {
  FlightRecorder recorder(small_recorder(4));
  Trace in;
  in.trace_id = 0xDEADBEEFu;
  in.parent_span = 5;
  in.sampled = true;
  in.start_unix_us = 1234567;
  in.duration_us = 89;
  TraceSpan span;
  span.stage = TraceStage::kWalAppend;
  span.span_id = 11;
  span.parent_span = 5;
  span.start_us = 2;
  span.duration_us = 7;
  span.detail = 3;
  in.spans.push_back(span);
  recorder.record(in);

  const std::vector<Trace> out = recorder.snapshot();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].trace_id, in.trace_id);
  EXPECT_EQ(out[0].parent_span, in.parent_span);
  EXPECT_EQ(out[0].sampled, in.sampled);
  EXPECT_EQ(out[0].start_unix_us, in.start_unix_us);
  EXPECT_EQ(out[0].duration_us, in.duration_us);
  ASSERT_EQ(out[0].spans.size(), 1u);
  EXPECT_EQ(out[0].spans[0].stage, span.stage);
  EXPECT_EQ(out[0].spans[0].span_id, span.span_id);
  EXPECT_EQ(out[0].spans[0].parent_span, span.parent_span);
  EXPECT_EQ(out[0].spans[0].start_us, span.start_us);
  EXPECT_EQ(out[0].spans[0].duration_us, span.duration_us);
  EXPECT_EQ(out[0].spans[0].detail, span.detail);
  EXPECT_EQ(recorder.recorded_total(), 1u);
  EXPECT_EQ(recorder.dropped_total(), 0u);
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestCapacityTraces) {
  FlightRecorder recorder(small_recorder(4));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Trace t;
    t.trace_id = i;
    t.start_unix_us = i;
    recorder.record(t);
  }
  EXPECT_EQ(recorder.recorded_total(), 10u);
  const std::vector<Trace> out = recorder.snapshot();
  ASSERT_EQ(out.size(), 4u);
  // Oldest first, and only the newest four survive the wrap.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].trace_id, 7 + i);
  }
}

TEST(FlightRecorderTest, HeadSamplerIsExactlyOneInN) {
  FlightRecorder recorder(small_recorder(4, /*sample_every=*/4));
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (recorder.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(recorder.sample_every(), 4u);
}

TEST(FlightRecorderTest, TailAdmissionKeepsTheSlowestK) {
  FlightRecorder recorder(small_recorder(16, 1, /*slow_k=*/2));
  // Underfull window admits everything.
  EXPECT_TRUE(recorder.admit_slow(1000));
  EXPECT_TRUE(recorder.admit_slow(2000));
  // Threshold is now the Kth largest (1000): faster traces are rejected,
  // slower ones admitted and the threshold climbs.
  EXPECT_FALSE(recorder.admit_slow(10));
  EXPECT_TRUE(recorder.admit_slow(5000));
  EXPECT_FALSE(recorder.admit_slow(1500));  // below the new Kth (2000)
  EXPECT_TRUE(recorder.admit_slow(2000));   // ties are admitted
}

TEST(FlightRecorderTest, UnsampledFastFinishIsDroppedOnceWindowIsFull) {
  FlightRecorder recorder(small_recorder(16, 1, /*slow_k=*/1));
  ASSERT_TRUE(recorder.admit_slow(50000));  // raise the threshold
  TraceBuilder builder;
  builder.begin(make_trace_context(/*sampled=*/false));
  // finish() measures ~0 us — far below the 50 ms threshold.
  EXPECT_FALSE(builder.finish(recorder));
  EXPECT_EQ(recorder.recorded_total(), 0u);

  builder.begin(make_trace_context(/*sampled=*/true));
  EXPECT_TRUE(builder.finish(recorder));  // head-sampled: kept regardless
  EXPECT_EQ(recorder.recorded_total(), 1u);
}

TEST(FlightRecorderTest, ConcurrentRecordAndSnapshotNeverTearEntries) {
  FlightRecorder recorder(small_recorder(32));
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 3000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Trace& t : recorder.snapshot()) {
        // A torn entry would mix words from two writers; every writer
        // stamps trace_id == duration_us == its spans' detail.
        ASSERT_EQ(t.trace_id, t.duration_us);
        for (const TraceSpan& s : t.spans) ASSERT_EQ(s.detail, t.trace_id);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 1; i <= kPerWriter; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(w) * kPerWriter + i;
        Trace t;
        t.trace_id = id;
        t.duration_us = id;
        t.start_unix_us = id;
        TraceSpan s;
        s.span_id = id;
        s.detail = id;
        t.spans.assign(3, s);
        recorder.record(t);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.recorded_total() + recorder.dropped_total(),
            kWriters * kPerWriter);
}

// --- JSON --------------------------------------------------------------------

TEST(TracesJsonTest, RendersIdsAsDecimalStringsWithTotals) {
  Trace t;
  t.trace_id = 18446744073709551615ULL;  // u64 max: must not go through double
  t.parent_span = 7;
  t.sampled = true;
  t.start_unix_us = 1000;
  t.duration_us = 55;
  TraceSpan s;
  s.stage = TraceStage::kServerDispatch;
  s.span_id = 9;
  s.parent_span = 7;
  s.start_us = 1;
  s.duration_us = 2;
  s.detail = 3;
  t.spans.push_back(s);

  const std::string json = traces_json({t}, /*recorded_total=*/5,
                                       /*dropped_total=*/1);
  EXPECT_NE(json.find("\"trace_id\": \"18446744073709551615\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"server_dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\": \"9\""), std::string::npos);
  EXPECT_NE(json.find("\"sampled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"recorded_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_total\": 1"), std::string::npos);
}

TEST(TracesJsonTest, EmptyRecorderRendersAnEmptyTraceList) {
  FlightRecorder recorder(small_recorder(4));
  EXPECT_EQ(traces_json(recorder),
            "{\"traces\": [], \"recorded_total\": 0, \"dropped_total\": 0}");
}

TEST(TracesJsonTest, EveryStageHasADistinctName) {
  std::set<std::string> names;
  for (int s = 0; s <= static_cast<int>(TraceStage::kOverlayHop); ++s) {
    names.insert(to_string(static_cast<TraceStage>(s)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(TraceStage::kOverlayHop) + 1);
  EXPECT_EQ(names.count("unknown"), 0u);
}

// --- Structured logger -------------------------------------------------------

TEST(LogTest, ParseLevelRoundTripsAndFallsBack) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("nonsense", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_STREQ(to_string(LogLevel::kError), "error");
}

TEST(LogTest, EventEmitsOneStructuredLine) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  LogEvent(LogLevel::kWarn, "test", "hello world")
      .kv("key", "value")
      .kv("n", 42)
      .kv("flag", true);
  const std::string line = testing::internal::GetCapturedStderr();
  set_log_level(prior);
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
  EXPECT_NE(line.find("level=warn"), std::string::npos) << line;
  EXPECT_NE(line.find("component=test"), std::string::npos) << line;
  EXPECT_NE(line.find("msg=\"hello world\""), std::string::npos) << line;
  EXPECT_NE(line.find("key=value"), std::string::npos) << line;
  EXPECT_NE(line.find("n=42"), std::string::npos) << line;
  EXPECT_NE(line.find("flag=true"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LogTest, BelowLevelEventsAreInert) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  LogEvent(LogLevel::kInfo, "test", "dropped").kv("k", 1);
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prior);
  EXPECT_TRUE(out.empty()) << out;
}

TEST(LogTest, RateLimitCapsEmissionsPerSecond) {
  LogRateLimit rate(/*max_per_sec=*/2);
  int allowed = 0;
  for (int i = 0; i < 10; ++i) {
    if (rate.allow()) ++allowed;
  }
  // 2 per wall second; the loop may straddle one second boundary.
  EXPECT_GE(allowed, 2);
  EXPECT_LE(allowed, 4);
  EXPECT_EQ(rate.suppressed(), static_cast<std::uint64_t>(10 - allowed));
}

}  // namespace
}  // namespace dbsp::obs
