#include "core/candidates.hpp"

#include <gtest/gtest.h>

#include <random>

#include "subscription/parser.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class CandidatesTest : public ::testing::Test {
 protected:
  CandidatesTest() {
    schema_.add_attribute("a", ValueType::Int);
    schema_.add_attribute("b", ValueType::Int);
    schema_.add_attribute("c", ValueType::Int);
    schema_.add_attribute("d", ValueType::Int);
    schema_.add_attribute("e", ValueType::Int);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view s) const {
    return parse_subscription(s, schema_);
  }
};

TEST_F(CandidatesTest, InternalPruningsClosedForm) {
  // And(p1,p2,p3): each child removable, last one stays -> 2.
  EXPECT_EQ(internal_prunings(*parse("a=1 and b=2 and c=3")), 2u);
  // Single predicate: nothing to prune.
  EXPECT_EQ(internal_prunings(*parse("a=1")), 0u);
  // Or children are not removable.
  EXPECT_EQ(internal_prunings(*parse("a=1 or b=2")), 0u);
  // And(p, Or(p,p)): the Or group counts as one removable unit -> 1.
  EXPECT_EQ(internal_prunings(*parse("a=1 and (b=2 or c=3)")), 1u);
  // And(p, Or(p, And(p,p))): inner And gives 1, then group removable -> 2.
  EXPECT_EQ(internal_prunings(*parse("a=1 and (b=2 or (c=3 and d=4))")), 2u);
  // Or of two And groups: only inside the groups -> (2-1)+(2-1) = 2.
  EXPECT_EQ(internal_prunings(*parse("(a=1 and b=2) or (c=3 and d=4)")), 2u);
}

TEST_F(CandidatesTest, InternalPruningsWithNegation) {
  // not(a or b): Or under odd NOTs is conjunctive -> children removable -> 1.
  EXPECT_EQ(internal_prunings(*parse("not (a=1 or b=2)")), 1u);
  // not(a and b): And under NOT is disjunctive -> nothing removable.
  EXPECT_EQ(internal_prunings(*parse("not (a=1 and b=2)")), 0u);
  // a and not(b or c): 1 (the not-group) + 1 (inside) ... careful:
  // children of root And: a, not(b or c) -> both removable (2-1 = 1 each
  // budget) plus inside not: 1. Total = (0+1) + (1+1) - 1 = 2.
  EXPECT_EQ(internal_prunings(*parse("a=1 and not (b=2 or c=3)")), 2u);
}

TEST_F(CandidatesTest, EnumerateRespectsConjunctiveParents) {
  const auto tree = parse("a=1 and (b=2 or c=3)");
  const auto paths = enumerate_prunings(*tree);
  // Valid: leaf a (path {0}) and the whole Or group (path {1}).
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (Node::Path{0}));
  EXPECT_EQ(paths[1], (Node::Path{1}));
}

TEST_F(CandidatesTest, BottomUpRestrictionHidesOuterCandidates) {
  const auto tree = parse("a=1 and (b=2 or (c=3 and d=4))");
  const auto restricted = enumerate_prunings(*tree, /*bottom_up=*/true);
  // Valid: a (path {0}); c and d inside the inner And; NOT the Or group
  // (it still contains valid prunings).
  std::vector<Node::Path> expected = {{0}, {1, 1, 0}, {1, 1, 1}};
  EXPECT_EQ(restricted, expected);

  const auto unrestricted = enumerate_prunings(*tree, /*bottom_up=*/false);
  // Additionally the whole Or group at {1}.
  EXPECT_EQ(unrestricted.size(), 4u);
}

TEST_F(CandidatesTest, IsPrunableChild) {
  const auto tree = parse("a=1 and (b=2 or c=3)");
  EXPECT_TRUE(is_prunable_child(*tree, {0}));
  EXPECT_TRUE(is_prunable_child(*tree, {1}));
  EXPECT_FALSE(is_prunable_child(*tree, {}));      // root
  EXPECT_FALSE(is_prunable_child(*tree, {1, 0}));  // Or child
  EXPECT_FALSE(is_prunable_child(*tree, {9}));     // out of range
}

TEST_F(CandidatesTest, SimulatePruningRemovesConjunct) {
  const auto tree = parse("a=1 and b=2 and c=3");
  const auto pruned = simulate_pruning(*tree, {1});
  EXPECT_TRUE(pruned->equals(*parse("a=1 and c=3")));
}

TEST_F(CandidatesTest, SimulatePruningHoistsLastSibling) {
  const auto tree = parse("a=1 and b=2");
  const auto pruned = simulate_pruning(*tree, {0});
  EXPECT_TRUE(pruned->equals(*parse("b=2")));
}

TEST_F(CandidatesTest, SimulatePruningCollapsesOrGroup) {
  const auto tree = parse("a=1 and (b=2 or c=3)");
  const auto pruned = simulate_pruning(*tree, {1});
  EXPECT_TRUE(pruned->equals(*parse("a=1")));
}

TEST_F(CandidatesTest, SimulatePruningNegativePolarityUsesFalse) {
  // not(a or b): pruning b must yield not(a) — replacement constant FALSE.
  const auto tree = parse("not (a=1 or b=2)");
  const auto pruned = simulate_pruning(*tree, {0, 1});
  EXPECT_TRUE(pruned->equals(*parse("not a=1")));
}

TEST_F(CandidatesTest, InvalidTargetsThrow) {
  const auto tree = parse("a=1 or b=2");
  EXPECT_THROW(simulate_pruning(*tree, {0}), std::invalid_argument);
  EXPECT_THROW(simulate_pruning(*tree, {}), std::invalid_argument);
}

TEST_F(CandidatesTest, ApplyPruningBumpsGeneration) {
  Subscription sub(SubscriptionId(1), parse("a=1 and b=2"));
  const auto gen = sub.generation();
  apply_pruning(sub, {0});
  EXPECT_EQ(sub.generation(), gen + 1);
  EXPECT_TRUE(sub.root().equals(*parse("b=2")));
}

// Property: the number of prunings to exhaustion equals internal_prunings
// regardless of the order in which valid prunings are chosen — this is the
// invariant that makes the paper's x-axis well defined.
class ExhaustionInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustionInvariance, AnyOrderReachesSameCount) {
  MiniDomain dom(6, 20);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::size_t> leaves(2, 12);
  for (int round = 0; round < 40; ++round) {
    const auto tree = dom.random_tree(rng, leaves(rng), 0.2);
    const std::size_t expected = internal_prunings(*tree);

    for (int trial = 0; trial < 3; ++trial) {
      Subscription sub(SubscriptionId(0), tree->clone());
      std::size_t performed = 0;
      while (true) {
        const auto candidates = enumerate_prunings(sub.root());
        if (candidates.empty()) break;
        const auto& path = candidates[rng() % candidates.size()];
        apply_pruning(sub, path);
        ++performed;
        ASSERT_LE(performed, expected + 100) << "runaway pruning";
      }
      EXPECT_EQ(performed, expected)
          << "tree: " << tree->to_string(dom.schema());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustionInvariance, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace dbsp
