#include "subscription/parser.hpp"

#include <gtest/gtest.h>

namespace dbsp {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    schema_.add_attribute("price", ValueType::Double);
    schema_.add_attribute("category", ValueType::String);
    schema_.add_attribute("year", ValueType::Int);
    schema_.add_attribute("signed", ValueType::Bool);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view s) const {
    return parse_subscription(s, schema_);
  }
};

TEST_F(ParserTest, SinglePredicate) {
  const auto t = parse("price < 10");
  ASSERT_EQ(t->kind(), NodeKind::Leaf);
  EXPECT_EQ(t->predicate().op(), Op::Lt);
  EXPECT_TRUE(t->predicate().operand().equals(Value(std::int64_t{10})));
}

TEST_F(ParserTest, AllComparisonOperators) {
  EXPECT_EQ(parse("price = 1")->predicate().op(), Op::Eq);
  EXPECT_EQ(parse("price != 1")->predicate().op(), Op::Ne);
  EXPECT_EQ(parse("price < 1")->predicate().op(), Op::Lt);
  EXPECT_EQ(parse("price <= 1")->predicate().op(), Op::Le);
  EXPECT_EQ(parse("price > 1")->predicate().op(), Op::Gt);
  EXPECT_EQ(parse("price >= 1")->predicate().op(), Op::Ge);
}

TEST_F(ParserTest, ValueTypes) {
  EXPECT_TRUE(parse("price < 9.5")->predicate().operand().equals(Value(9.5)));
  EXPECT_TRUE(parse("price < 1e2")->predicate().operand().equals(Value(100.0)));
  EXPECT_TRUE(parse("category = 'art'")->predicate().operand().equals(Value("art")));
  EXPECT_TRUE(parse("signed = true")->predicate().operand().equals(Value(true)));
  EXPECT_TRUE(parse("signed = FALSE")->predicate().operand().equals(Value(false)));
  EXPECT_TRUE(parse("year >= -5")->predicate().operand().equals(
      Value(std::int64_t{-5})));
}

TEST_F(ParserTest, BetweenAndIn) {
  const auto between = parse("year between 1990 and 2000");
  EXPECT_EQ(between->predicate().op(), Op::Between);
  EXPECT_EQ(between->predicate().operands().size(), 2u);

  const auto in = parse("category in ('art', 'music', 'travel')");
  EXPECT_EQ(in->predicate().op(), Op::In);
  EXPECT_EQ(in->predicate().operands().size(), 3u);
}

TEST_F(ParserTest, StringOperators) {
  EXPECT_EQ(parse("category prefix 'sci'")->predicate().op(), Op::Prefix);
  EXPECT_EQ(parse("category suffix 'ion'")->predicate().op(), Op::Suffix);
  EXPECT_EQ(parse("category contains 'fi'")->predicate().op(), Op::Contains);
  EXPECT_THROW(parse("category prefix 5"), ParseError);
}

TEST_F(ParserTest, PrecedenceAndBindsTighterThanOr) {
  const auto t = parse("price < 5 or price > 100 and category = 'art'");
  ASSERT_EQ(t->kind(), NodeKind::Or);
  ASSERT_EQ(t->children().size(), 2u);
  EXPECT_EQ(t->children()[0]->kind(), NodeKind::Leaf);
  EXPECT_EQ(t->children()[1]->kind(), NodeKind::And);
}

TEST_F(ParserTest, ParenthesesOverridePrecedence) {
  const auto t = parse("(price < 5 or price > 100) and category = 'art'");
  ASSERT_EQ(t->kind(), NodeKind::And);
  EXPECT_EQ(t->children()[0]->kind(), NodeKind::Or);
}

TEST_F(ParserTest, NotParsesAndSimplifies) {
  const auto t = parse("not category = 'art'");
  EXPECT_EQ(t->kind(), NodeKind::Not);
  const auto doubled = parse("not not category = 'art'");
  EXPECT_EQ(doubled->kind(), NodeKind::Leaf);
}

TEST_F(ParserTest, KeywordsAreCaseInsensitive) {
  const auto t = parse("price < 5 AND category = 'art' OR NOT year > 2000");
  EXPECT_EQ(t->kind(), NodeKind::Or);
}

TEST_F(ParserTest, NaryChainsStayFlat) {
  const auto t = parse("price<1 and price<2 and price<3 and price<4");
  ASSERT_EQ(t->kind(), NodeKind::And);
  EXPECT_EQ(t->children().size(), 4u);
}

TEST_F(ParserTest, RoundTripThroughToString) {
  const auto t = parse("(price < 5 or year between 1990 and 2000) and category = 'art'");
  const auto again = parse(t->to_string(schema_));
  EXPECT_TRUE(t->equals(*again));
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  try {
    (void)parse("price <");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.position(), 7u);
  }
  EXPECT_THROW(parse("unknown_attr = 5"), ParseError);
  EXPECT_THROW(parse("price ~ 5"), ParseError);
  EXPECT_THROW(parse("price < 5 garbage"), ParseError);
  EXPECT_THROW(parse("(price < 5"), ParseError);
  EXPECT_THROW(parse("category = 'unterminated"), ParseError);
  EXPECT_THROW(parse("year between 1 2"), ParseError);
  EXPECT_THROW(parse(""), ParseError);
}

TEST_F(ParserTest, EvaluatesAgainstEvents) {
  const auto t = parse("category = 'art' and price between 5 and 10");
  Event hit;
  hit.set(schema_.at("category"), Value("art"));
  hit.set(schema_.at("price"), Value(7.0));
  EXPECT_TRUE(t->evaluate_event(hit));
  Event miss;
  miss.set(schema_.at("category"), Value("art"));
  miss.set(schema_.at("price"), Value(11.0));
  EXPECT_FALSE(t->evaluate_event(miss));
}

}  // namespace
}  // namespace dbsp
