#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/candidates.hpp"
#include "selectivity/exact.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.seed = 42;
  cfg.titles = 300;
  cfg.authors = 100;
  return cfg;
}

TEST(RngTest, ZipfDistributionIsSkewedAndNormalized) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(50));

  Rng rng(1);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / 20000.0, zipf.pmf(0), 0.02);
}

TEST(AuctionEventGenTest, EventsCarryTheFullSchema) {
  const AuctionDomain domain(small_config());
  AuctionEventGenerator gen(domain);
  for (int i = 0; i < 50; ++i) {
    const Event e = gen.next();
    // All but buy_now (present 60%) are mandatory.
    EXPECT_GE(e.size(), domain.schema().attribute_count() - 1);
    ASSERT_NE(e.find(domain.price), nullptr);
    EXPECT_GT(e.find(domain.price)->numeric(), 0.0);
    ASSERT_NE(e.find(domain.year), nullptr);
    EXPECT_LE(e.find(domain.year)->as_int(), 2006);
    ASSERT_NE(e.find(domain.condition), nullptr);
  }
}

TEST(AuctionEventGenTest, DeterministicPerSeedAndStream) {
  const AuctionDomain domain(small_config());
  AuctionEventGenerator a(domain, 5);
  AuctionEventGenerator b(domain, 5);
  AuctionEventGenerator c(domain, 6);
  bool any_difference = false;
  for (int i = 0; i < 20; ++i) {
    const Event ea = a.next();
    const Event eb = b.next();
    const Event ec = c.next();
    EXPECT_EQ(ea.to_string(domain.schema()), eb.to_string(domain.schema()));
    if (ea.to_string(domain.schema()) != ec.to_string(domain.schema())) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);  // distinct streams decorrelate
}

TEST(AuctionEventGenTest, PricesFollowSkewedDistribution) {
  const AuctionDomain domain(small_config());
  AuctionEventGenerator gen(domain);
  std::size_t below20 = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Event e = gen.next();
    if (e.find(domain.price)->numeric() < 20.0) ++below20;
  }
  // Log-normal(2.7, 0.9): median ~14.9, so well over half below 20.
  EXPECT_GT(below20, n / 2);
  EXPECT_LT(below20, n);
}

TEST(AuctionSubGenTest, TreesAreValidSimplifiedAndPrunable) {
  const AuctionDomain domain(small_config());
  AuctionSubscriptionGenerator gen(domain);
  std::size_t with_capacity = 0;
  for (int i = 0; i < 200; ++i) {
    const auto g = gen.next();
    ASSERT_TRUE(g.tree != nullptr);
    EXPECT_FALSE(g.tree->is_constant());
    EXPECT_GE(g.tree->leaf_count(), 1u);
    if (internal_prunings(*g.tree) > 0) ++with_capacity;
  }
  // The vast majority of subscriptions must support at least one pruning.
  EXPECT_GT(with_capacity, 150u);
}

TEST(AuctionSubGenTest, ClassMixIsRespected) {
  WorkloadConfig cfg = small_config();
  cfg.class_bargain = 1.0;
  cfg.class_collector = 0.0;
  cfg.class_watcher = 0.0;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator gen(domain);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.next().cls, SubscriberClass::BargainHunter);
  }
}

TEST(AuctionSubGenTest, DeterministicPerSeed) {
  const AuctionDomain domain(small_config());
  AuctionSubscriptionGenerator a(domain, 9);
  AuctionSubscriptionGenerator b(domain, 9);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(a.next_tree()->equals(*b.next_tree()));
  }
}

TEST(AuctionSubGenTest, SelectivitySpansOrdersOfMagnitude) {
  const AuctionDomain domain(small_config());
  AuctionSubscriptionGenerator sub_gen(domain);
  AuctionEventGenerator event_gen(domain);
  const auto events = event_gen.generate(3000);

  double min_sel = 1.0;
  double max_sel = 0.0;
  for (int i = 0; i < 150; ++i) {
    const double sel = measured_selectivity(*sub_gen.next_tree(), events);
    min_sel = std::min(min_sel, sel);
    max_sel = std::max(max_sel, sel);
  }
  EXPECT_LT(min_sel, 0.001);  // highly selective subscriptions exist
  EXPECT_GT(max_sel, 0.01);   // and broad ones too
}

TEST(AuctionSubGenTest, NotProbabilityProducesNegations) {
  WorkloadConfig cfg = small_config();
  cfg.not_probability = 1.0;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator gen(domain);
  bool saw_pmin_zero_component = false;
  for (int i = 0; i < 100; ++i) {
    const auto tree = gen.next_tree();
    std::size_t nots = 0;
    const std::function<void(const Node&)> count = [&](const Node& n) {
      if (n.kind() == NodeKind::Not) ++nots;
      for (const auto& c : n.children()) count(*c);
    };
    count(*tree);
    if (nots > 0) saw_pmin_zero_component = true;
  }
  EXPECT_TRUE(saw_pmin_zero_component);
}

}  // namespace
}  // namespace dbsp
