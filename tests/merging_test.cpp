#include "routing/merging.hpp"

#include "routing/covering.hpp"

#include <gtest/gtest.h>

#include <random>

#include "subscription/parser.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class MergePredicatesTest : public ::testing::Test {
 protected:
  MiniDomain dom_{2, 100};

  [[nodiscard]] Predicate num(Op op, std::int64_t v) const {
    return Predicate(dom_.attr(0), op, Value(v));
  }

  /// Exhaustive semantic check: merged == a ∪ b on the probe domain.
  void expect_exact_union(const Predicate& a, const Predicate& b,
                          const Predicate& merged) const {
    for (std::int64_t v = -10; v < 110; ++v) {
      EXPECT_EQ(merged.matches_value(Value(v)),
                a.matches_value(Value(v)) || b.matches_value(Value(v)))
          << "at v=" << v;
    }
  }
};

TEST_F(MergePredicatesTest, DifferentAttributesDontMerge) {
  EXPECT_FALSE(merge_predicates(num(Op::Eq, 1),
                                Predicate(dom_.attr(1), Op::Eq, Value(1)))
                   .has_value());
}

TEST_F(MergePredicatesTest, EqUnionBecomesIn) {
  const auto merged = merge_predicates(num(Op::Eq, 3), num(Op::Eq, 7));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->op(), Op::In);
  expect_exact_union(num(Op::Eq, 3), num(Op::Eq, 7), *merged);
}

TEST_F(MergePredicatesTest, InUnionsMergeAndDeduplicate) {
  const Predicate a(dom_.attr(0), {Value(1), Value(2)});
  const Predicate b(dom_.attr(0), {Value(2), Value(3)});
  const auto merged = merge_predicates(a, b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->operands().size(), 3u);
  expect_exact_union(a, b, *merged);
}

TEST_F(MergePredicatesTest, ContainedRangeCollapsesToWeaker) {
  const auto merged = merge_predicates(num(Op::Lt, 5), num(Op::Lt, 20));
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(merged->equals(num(Op::Lt, 20)));
  expect_exact_union(num(Op::Lt, 5), num(Op::Lt, 20), *merged);
}

TEST_F(MergePredicatesTest, OverlappingBetweensMerge) {
  const Predicate a(dom_.attr(0), Value(10), Value(30));
  const Predicate b(dom_.attr(0), Value(20), Value(50));
  const auto merged = merge_predicates(a, b);
  ASSERT_TRUE(merged.has_value());
  expect_exact_union(a, b, *merged);
}

TEST_F(MergePredicatesTest, DisjointBetweensDontMerge) {
  const Predicate a(dom_.attr(0), Value(10), Value(20));
  const Predicate b(dom_.attr(0), Value(30), Value(50));
  EXPECT_FALSE(merge_predicates(a, b).has_value());
}

TEST_F(MergePredicatesTest, OppositeOpenBoundsDontMerge) {
  // (x < 10) ∪ (x > 5) is the whole line — not a single predicate.
  EXPECT_FALSE(merge_predicates(num(Op::Lt, 10), num(Op::Gt, 5)).has_value());
}

TEST_F(MergePredicatesTest, SoundnessOnRandomPairs) {
  MiniDomain dom(1, 30);
  std::mt19937_64 rng(4);
  std::size_t merged_count = 0;
  for (int round = 0; round < 3000; ++round) {
    const Predicate a = dom.random_predicate(rng);
    const Predicate b = dom.random_predicate(rng);
    const auto merged = merge_predicates(a, b);
    if (!merged) continue;
    ++merged_count;
    for (std::int64_t v = -5; v < 35; ++v) {
      ASSERT_EQ(merged->matches_value(Value(v)),
                a.matches_value(Value(v)) || b.matches_value(Value(v)))
          << a.to_string(dom.schema()) << " + " << b.to_string(dom.schema())
          << " -> " << merged->to_string(dom.schema()) << " at " << v;
    }
  }
  EXPECT_GT(merged_count, 100u);
}

class MergeConjunctionsTest : public ::testing::Test {
 protected:
  MergeConjunctionsTest() {
    schema_.add_attribute("category", ValueType::String);
    schema_.add_attribute("price", ValueType::Double);
    schema_.add_attribute("year", ValueType::Int);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view s) const {
    return parse_subscription(s, schema_);
  }
};

TEST_F(MergeConjunctionsTest, SingleDifferingConjunctMerges) {
  const auto a = parse("category = 'art' and price < 10");
  const auto b = parse("category = 'music' and price < 10");
  const auto merged = merge_conjunctions(*a, *b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE((*merged)->equals(
      *parse("category in ('art', 'music') and price < 10")));
}

TEST_F(MergeConjunctionsTest, ConjunctOrderDoesNotMatter) {
  const auto a = parse("price < 10 and category = 'art'");
  const auto b = parse("category = 'art' and price < 20");
  const auto merged = merge_conjunctions(*a, *b);
  ASSERT_TRUE(merged.has_value());
  // Semantically the merger is b (which covers a); conjunct order is free.
  const auto expected = parse("price < 20 and category = 'art'");
  EXPECT_EQ(covers(**merged, *expected), std::optional<bool>(true));
  EXPECT_EQ(covers(*expected, **merged), std::optional<bool>(true));
}

TEST_F(MergeConjunctionsTest, CoveringPairCollapses) {
  const auto broad = parse("price < 50");
  const auto narrow = parse("price < 20 and category = 'art'");
  const auto merged = merge_conjunctions(*broad, *narrow);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE((*merged)->equals(*broad));
}

TEST_F(MergeConjunctionsTest, TwoDifferencesDontMerge) {
  const auto a = parse("category = 'art' and price < 10");
  const auto b = parse("category = 'music' and price < 20");
  EXPECT_FALSE(merge_conjunctions(*a, *b).has_value());
}

TEST_F(MergeConjunctionsTest, NonConjunctiveRefused) {
  const auto a = parse("category = 'art' or price < 10");
  const auto b = parse("category = 'music' and price < 10");
  EXPECT_FALSE(merge_conjunctions(*a, *b).has_value());
}

TEST_F(MergeConjunctionsTest, MergerIsPerfectOnRandomConjunctions) {
  // Whenever a merger is produced, it must match exactly the union.
  MiniDomain dom(3, 12);
  std::mt19937_64 rng(11);
  const auto events = dom.random_events(rng, 500);
  auto random_conjunction = [&](std::size_t preds) {
    std::vector<std::unique_ptr<Node>> parts;
    for (std::size_t i = 0; i < preds; ++i) {
      parts.push_back(Node::leaf(dom.random_predicate(rng)));
    }
    return parts.size() == 1 ? std::move(parts.front()) : Node::and_(std::move(parts));
  };
  std::size_t merged_count = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto a = random_conjunction(1 + rng() % 3);
    const auto b = random_conjunction(1 + rng() % 3);
    const auto merged = merge_conjunctions(*a, *b);
    if (!merged) continue;
    ++merged_count;
    for (const auto& e : events) {
      ASSERT_EQ((*merged)->evaluate_event(e),
                a->evaluate_event(e) || b->evaluate_event(e))
          << a->to_string(dom.schema()) << "  +  " << b->to_string(dom.schema())
          << "  ->  " << (*merged)->to_string(dom.schema());
    }
  }
  EXPECT_GT(merged_count, 20u);
}

TEST_F(MergeConjunctionsTest, MergeAllReachesFixpoint) {
  const auto a = parse("category = 'art' and price < 10");
  const auto b = parse("category = 'music' and price < 10");
  const auto c = parse("category = 'travel' and price < 10");
  const auto unrelated = parse("year > 1990");
  const auto boolean = parse("year > 1990 or price < 1");
  const auto merged =
      merge_all({a.get(), b.get(), c.get(), unrelated.get(), boolean.get()});
  // a, b, c collapse into one; unrelated and the non-conjunctive pass through
  // (year > 1990 covers the pure conjunction? no: boolean is not conjunctive).
  ASSERT_EQ(merged.size(), 3u);
  bool found_triple = false;
  for (const auto& m : merged) {
    if (m->equals(*parse("category in ('art', 'music', 'travel') and price < 10"))) {
      found_triple = true;
    }
  }
  EXPECT_TRUE(found_triple);
}

}  // namespace
}  // namespace dbsp
