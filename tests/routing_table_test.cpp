#include "routing/routing_table.hpp"

#include <gtest/gtest.h>

#include "subscription/parser.hpp"

namespace dbsp {
namespace {

class RoutingTableTest : public ::testing::Test {
 protected:
  RoutingTableTest() { schema_.add_attribute("a", ValueType::Int); }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> tree() const {
    return parse_subscription("a = 1", schema_);
  }
};

TEST_F(RoutingTableTest, AddLocalAndRemote) {
  RoutingTable t;
  t.add_local(SubscriptionId(1), ClientId(10), tree());
  t.add_remote(SubscriptionId(2), BrokerId(3), tree());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.local_count(), 1u);
  EXPECT_EQ(t.remote_count(), 1u);

  const auto* local = t.find(SubscriptionId(1));
  ASSERT_NE(local, nullptr);
  EXPECT_TRUE(local->local);
  EXPECT_EQ(local->client, ClientId(10));

  const auto* remote = t.find(SubscriptionId(2));
  ASSERT_NE(remote, nullptr);
  EXPECT_FALSE(remote->local);
  EXPECT_EQ(remote->from, BrokerId(3));
}

TEST_F(RoutingTableTest, DuplicateIdThrows) {
  RoutingTable t;
  t.add_local(SubscriptionId(1), ClientId(10), tree());
  EXPECT_THROW(t.add_remote(SubscriptionId(1), BrokerId(0), tree()),
               std::invalid_argument);
}

TEST_F(RoutingTableTest, RemoveReturnsEntry) {
  RoutingTable t;
  t.add_local(SubscriptionId(1), ClientId(10), tree());
  auto removed = t.remove(SubscriptionId(1));
  ASSERT_NE(removed, nullptr);
  EXPECT_TRUE(removed->local);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.local_count(), 0u);
  EXPECT_EQ(t.remove(SubscriptionId(1)), nullptr);
  EXPECT_FALSE(t.contains(SubscriptionId(1)));
}

TEST_F(RoutingTableTest, ForEachVisitsAll) {
  RoutingTable t;
  t.add_local(SubscriptionId(1), ClientId(10), tree());
  t.add_remote(SubscriptionId(2), BrokerId(3), tree());
  t.add_remote(SubscriptionId(3), BrokerId(4), tree());
  std::size_t locals = 0;
  std::size_t remotes = 0;
  t.for_each([&](RoutingTable::Entry& e) { e.local ? ++locals : ++remotes; });
  EXPECT_EQ(locals, 1u);
  EXPECT_EQ(remotes, 2u);
}

TEST_F(RoutingTableTest, SubscriptionAddressesAreStable) {
  // The matcher holds Subscription* across table growth.
  RoutingTable t;
  Subscription& first = t.add_local(SubscriptionId(0), ClientId(0), tree());
  const Subscription* addr = &first;
  for (std::uint32_t i = 1; i < 200; ++i) {
    t.add_remote(SubscriptionId(i), BrokerId(1), tree());
  }
  EXPECT_EQ(t.find(SubscriptionId(0))->sub.get(), addr);
}

}  // namespace
}  // namespace dbsp
