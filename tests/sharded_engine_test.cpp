// ShardedEngine correctness: the match set must be invariant under the
// shard count (N = 1, 2, 8), merge order must be deterministic (sorted
// subscriber ids), batched and single-event dispatch must agree, and the
// engine must behave on the edge cases (empty engine, empty batch, every
// subscription hashed into one shard). Also covers the ThreadPool itself
// and the uniform remove(id) contract of the backends.

#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/candidates.hpp"
#include "filter/naive_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/exact.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::clone_corpus;
using test::Corpus;
using test::make_corpus;
using test::MiniDomain;

std::vector<SubscriptionId> naive_reference(const Corpus& corpus, const Event& e) {
  NaiveMatcher naive;
  for (const auto& s : corpus.subs) naive.add(*s);
  std::vector<SubscriptionId> out;
  naive.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

ShardedEngineOptions counting_options(std::size_t shards) {
  ShardedEngineOptions options;
  options.shards = shards;
  return options;
}

TEST(ShardedEngineTest, ShardCountInvariance) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(101);
  Corpus corpus = make_corpus(dom, rng, 150, 0.25);
  const auto events = dom.random_events(rng, 200);

  const Corpus c1 = clone_corpus(corpus);
  const Corpus c2 = clone_corpus(corpus);
  const Corpus c8 = clone_corpus(corpus);
  ShardedEngine e1(dom.schema(), counting_options(1));
  ShardedEngine e2(dom.schema(), counting_options(2));
  ShardedEngine e8(dom.schema(), counting_options(8));
  for (std::size_t i = 0; i < corpus.subs.size(); ++i) {
    e1.add(*c1.subs[i]);
    e2.add(*c2.subs[i]);
    e8.add(*c8.subs[i]);
  }
  EXPECT_EQ(e1.shard_count(), 1u);
  EXPECT_EQ(e2.shard_count(), 2u);
  EXPECT_EQ(e8.shard_count(), 8u);

  for (const Event& e : events) {
    std::vector<SubscriptionId> m1, m2, m8;
    e1.match(e, m1);
    e2.match(e, m2);
    e8.match(e, m8);
    ASSERT_EQ(m1, m2);
    ASSERT_EQ(m1, m8);
    ASSERT_EQ(m1, naive_reference(corpus, e));
  }
}

TEST(ShardedEngineTest, BatchAgreesWithSingleEventDispatchAndIsSorted) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(202);
  Corpus corpus = make_corpus(dom, rng, 120, 0.2);
  const auto events = dom.random_events(rng, 150);

  ShardedEngine engine(dom.schema(), counting_options(8));
  for (auto& s : corpus.subs) engine.add(*s);

  const auto batch = engine.match_batch(events);
  ASSERT_EQ(batch.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::vector<SubscriptionId> single;
    engine.match(events[i], single);
    EXPECT_EQ(batch[i], single) << "event " << i;
    EXPECT_TRUE(std::is_sorted(batch[i].begin(), batch[i].end()));
    EXPECT_EQ(std::adjacent_find(batch[i].begin(), batch[i].end()), batch[i].end())
        << "duplicate subscriber id";
  }

  // Determinism: a second batched run produces byte-identical results, and
  // the reusable-buffer overload agrees with the allocating one.
  std::vector<std::vector<SubscriptionId>> again;
  engine.match_batch(events, again);
  EXPECT_EQ(batch, again);
}

TEST(ShardedEngineTest, ConcurrentBatchesOnIndependentEnginesAgree) {
  // Two engines over the same subscriptions driven from two threads: safe
  // by the documented guarantee (distinct instances are independent), and
  // a data-race probe under ASan/TSan instrumentation.
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(303);
  Corpus corpus = make_corpus(dom, rng, 100, 0.2);
  const auto events = dom.random_events(rng, 300);

  const Corpus corpus_b = clone_corpus(corpus);
  ShardedEngine a(dom.schema(), counting_options(4));
  ShardedEngine b(dom.schema(), counting_options(4));
  for (std::size_t i = 0; i < corpus.subs.size(); ++i) {
    a.add(*corpus.subs[i]);
    b.add(*corpus_b.subs[i]);
  }

  std::vector<std::vector<SubscriptionId>> ra, rb;
  std::thread ta([&] { a.match_batch(events, ra); });
  std::thread tb([&] { b.match_batch(events, rb); });
  ta.join();
  tb.join();
  EXPECT_EQ(ra, rb);
}

TEST(ShardedEngineTest, EmptyEngineAndEmptyBatch) {
  MiniDomain dom(4, 10);
  ShardedEngine engine(dom.schema(), counting_options(8));
  EXPECT_EQ(engine.subscription_count(), 0u);

  std::mt19937_64 rng(404);
  const auto events = dom.random_events(rng, 10);
  const auto batch = engine.match_batch(events);
  for (const auto& row : batch) EXPECT_TRUE(row.empty());

  const auto empty = engine.match_batch(std::span<const Event>{});
  EXPECT_TRUE(empty.empty());
}

TEST(ShardedEngineTest, AllSubscriptionsInOneShard) {
  // Pick ids that all hash into shard 0 of an 8-shard engine: 7 shards sit
  // idle and the merge degenerates to a copy — results must be unaffected.
  MiniDomain dom(5, 16);
  ShardedEngine engine(dom.schema(), counting_options(8));

  std::vector<SubscriptionId::value_type> ids;
  for (SubscriptionId::value_type v = 0; ids.size() < 40 && v < 100000; ++v) {
    if (engine.shard_of(SubscriptionId(v)) == 0) ids.push_back(v);
  }
  ASSERT_EQ(ids.size(), 40u) << "splitmix64 should reach shard 0 often enough";

  std::mt19937_64 rng(505);
  Corpus corpus;
  for (const auto v : ids) {
    corpus.subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(v), dom.random_tree(rng, 4, 0.2)));
    engine.add(*corpus.subs.back());
  }
  EXPECT_EQ(engine.counting_shard(0).subscription_count(), 40u);

  for (const Event& e : dom.random_events(rng, 100)) {
    std::vector<SubscriptionId> got;
    engine.match(e, got);
    EXPECT_EQ(got, naive_reference(corpus, e));
  }
}

TEST(ShardedEngineTest, RemoveAndContainsAcrossShards) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(606);
  Corpus corpus = make_corpus(dom, rng, 60, 0.1);
  ShardedEngine engine(dom.schema(), counting_options(4));
  for (auto& s : corpus.subs) engine.add(*s);
  EXPECT_EQ(engine.subscription_count(), 60u);

  for (std::size_t i = 0; i < corpus.subs.size(); i += 2) {
    engine.remove(corpus.subs[i]->id());
  }
  EXPECT_EQ(engine.subscription_count(), 30u);
  EXPECT_FALSE(engine.contains(SubscriptionId(0)));
  EXPECT_TRUE(engine.contains(SubscriptionId(1)));
  EXPECT_THROW(engine.remove(SubscriptionId(0)), std::out_of_range);

  for (const Event& e : dom.random_events(rng, 50)) {
    std::vector<SubscriptionId> got;
    engine.match(e, got);
    for (const auto id : got) EXPECT_EQ(id.value() % 2, 1u);
  }
}

TEST(ShardedEngineTest, AllBackendsAgreeOnDnfConvertibleCorpus) {
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(707);
  Corpus corpus = make_corpus(dom, rng, 80, /*not_prob=*/0.0);
  const auto events = dom.random_events(rng, 120);

  ShardedEngineOptions counting = counting_options(4);
  ShardedEngineOptions dnf = counting;
  dnf.backend = MatcherBackend::Dnf;
  ShardedEngineOptions naive = counting;
  naive.backend = MatcherBackend::Naive;

  ShardedEngine ec(dom.schema(), counting);
  ShardedEngine ed(dom.schema(), dnf);
  ShardedEngine en(dom.schema(), naive);
  for (auto& s : corpus.subs) {
    ASSERT_TRUE(ec.add(*s));
    ASSERT_TRUE(ed.add(*s));
    ASSERT_TRUE(en.add(*s));
  }

  const auto bc = ec.match_batch(events);
  const auto bd = ed.match_batch(events);
  const auto bn = en.match_batch(events);
  EXPECT_EQ(bc, bd);
  EXPECT_EQ(bc, bn);

  EXPECT_THROW(static_cast<void>(ed.counting_shard(0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(en.associations_of(corpus.subs[0]->id())),
               std::logic_error);
}

TEST(ShardedEngineTest, PerShardPruningKeepsMatchesASuperset) {
  // Prune every shard to full capacity: the pruned engine must match a
  // superset of the unpruned one (pruning only generalizes filters).
  MiniDomain dom(5, 16);
  std::mt19937_64 rng(808);
  Corpus corpus = make_corpus(dom, rng, 80, 0.0);
  const auto events = dom.random_events(rng, 150);

  ShardedEngine engine(dom.schema(), counting_options(4));
  for (auto& s : corpus.subs) engine.add(*s);
  const auto before = engine.match_batch(events);

  const SelectivityEstimator estimator(
      [&events](const Predicate& p) { return measured_selectivity(p, events); });
  PruneEngineConfig config;
  config.dimension = PruneDimension::MemoryUsage;
  auto pruners =
      make_sharded_pruning_engines(engine, estimator, config, corpus.pointers());
  ASSERT_EQ(pruners.size(), 4u);
  std::size_t performed = 0;
  for (auto& p : pruners) performed += p->prune(p->total_possible());
  EXPECT_GT(performed, 0u);

  const auto after = engine.match_batch(events);
  for (std::size_t e = 0; e < events.size(); ++e) {
    EXPECT_TRUE(std::includes(after[e].begin(), after[e].end(), before[e].begin(),
                              before[e].end()))
        << "pruning lost a match for event " << e;
  }
}

TEST(ShardedEngineTest, ResolveShardCountPrecedence) {
  // Explicit request wins over the environment.
  ASSERT_EQ(setenv("DBSP_SHARDS", "5", 1), 0);
  EXPECT_EQ(resolve_shard_count(3), 3u);
  EXPECT_EQ(resolve_shard_count(0), 5u);
  ASSERT_EQ(unsetenv("DBSP_SHARDS"), 0);
  // Without the knob, auto resolves to hardware concurrency (>= 1).
  EXPECT_GE(resolve_shard_count(0), 1u);
  EXPECT_EQ(resolve_shard_count(0), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);  // single worker: tasks queue up behind each other
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor must run everything before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] {});
  EXPECT_NO_THROW(f.get());
}

}  // namespace
}  // namespace dbsp
