#include <gtest/gtest.h>

#include <random>

#include "selectivity/estimator.hpp"
#include "selectivity/exact.hpp"
#include "selectivity/stats.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : stats_(dom_.schema()) {
    std::mt19937_64 rng(99);
    events_ = dom_.random_events(rng, 4000);
    for (const auto& e : events_) stats_.observe(e);
    stats_.finalize();
  }

  MiniDomain dom_{4, 20};
  EventStats stats_;
  std::vector<Event> events_;
};

TEST_F(StatsTest, EqEstimateTracksUniformFrequency) {
  const Predicate p(dom_.attr(0), Op::Eq, Value(std::int64_t{5}));
  EXPECT_NEAR(stats_.predicate_selectivity(p), 1.0 / 20.0, 0.02);
}

TEST_F(StatsTest, EstimatesMatchMeasuredForEachOperator) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    const Predicate p = dom_.random_predicate(rng);
    const double estimated = stats_.predicate_selectivity(p);
    const double measured = measured_selectivity(p, events_);
    EXPECT_NEAR(estimated, measured, 0.08)
        << "op=" << static_cast<int>(p.op());
  }
}

TEST_F(StatsTest, InAndNeEstimates) {
  const Predicate in_pred(dom_.attr(1), {Value(1), Value(2), Value(3)});
  EXPECT_NEAR(stats_.predicate_selectivity(in_pred), 3.0 / 20.0, 0.03);
  const Predicate ne(dom_.attr(1), Op::Ne, Value(std::int64_t{4}));
  EXPECT_NEAR(stats_.predicate_selectivity(ne), 19.0 / 20.0, 0.03);
}

TEST_F(StatsTest, MissingAttributeHasZeroSelectivity) {
  Schema wide;
  wide.add_attribute("present", ValueType::Int);
  wide.add_attribute("absent", ValueType::Int);
  EventStats stats(wide);
  Event e;
  e.set(wide.at("present"), Value(1));
  for (int i = 0; i < 10; ++i) stats.observe(e);
  stats.finalize();
  EXPECT_DOUBLE_EQ(
      stats.predicate_selectivity(Predicate(wide.at("absent"), Op::Eq, Value(1))), 0.0);
  EXPECT_NEAR(
      stats.predicate_selectivity(Predicate(wide.at("present"), Op::Eq, Value(1))), 1.0,
      1e-9);
}

TEST_F(StatsTest, PresenceScalesConditionalSelectivity) {
  Schema s;
  const auto a = s.add_attribute("a", ValueType::Int);
  EventStats stats(s);
  Event with;
  with.set(a, Value(1));
  const Event without;
  for (int i = 0; i < 50; ++i) stats.observe(with);
  for (int i = 0; i < 50; ++i) stats.observe(without);
  stats.finalize();
  EXPECT_NEAR(stats.predicate_selectivity(Predicate(a, Op::Eq, Value(1))), 0.5, 1e-9);
}

TEST_F(StatsTest, EstimateBeforeFinalizeThrows) {
  EventStats fresh(dom_.schema());
  EXPECT_THROW(
      (void)fresh.predicate_selectivity(Predicate(dom_.attr(0), Op::Eq, Value(1))),
      std::logic_error);
}

TEST_F(StatsTest, StringOperatorEstimatesScanDomain) {
  Schema s;
  const auto name = s.add_attribute("name", ValueType::String);
  EventStats stats(s);
  for (int i = 0; i < 60; ++i) {
    Event e;
    e.set(name, Value("science"));
    stats.observe(e);
  }
  for (int i = 0; i < 40; ++i) {
    Event e;
    e.set(name, Value("history"));
    stats.observe(e);
  }
  stats.finalize();
  EXPECT_NEAR(stats.predicate_selectivity(Predicate(name, Op::Prefix, Value("sci"))),
              0.6, 1e-9);
  EXPECT_NEAR(stats.predicate_selectivity(Predicate(name, Op::Contains, Value("tor"))),
              0.4, 1e-9);
}

// --- Tree-level estimator ---------------------------------------------------

class EstimatorTest : public ::testing::Test {
 protected:
  MiniDomain dom_{4, 20};
};

TEST_F(EstimatorTest, MeasuredSelectivityWithinBoundsWithExactLeaves) {
  // With leaf estimates that are exact (computed on the same event set),
  // the Fréchet interval must contain the measured tree selectivity. 60
  // random trees including NOTs.
  std::mt19937_64 rng(31);
  const auto events = dom_.random_events(rng, 800);
  const SelectivityEstimator estimator(LeafSelectivityFn(
      [&](const Predicate& p) { return measured_selectivity(p, events); }));
  for (int i = 0; i < 60; ++i) {
    const auto tree = dom_.random_tree(rng, 6, 0.2);
    const auto est = estimator.estimate(*tree);
    const double measured = measured_selectivity(*tree, events);
    EXPECT_TRUE(est.contains(measured, 1e-9))
        << "measured=" << measured << " est=[" << est.min << "," << est.avg << ","
        << est.max << "] tree=" << tree->to_string(dom_.schema());
  }
}

TEST_F(EstimatorTest, ExcludingEqualsEstimateOfSimulatedPrune) {
  // estimate_excluding must price a pruning exactly like estimating the
  // actually pruned tree (associativity of the combinators).
  std::mt19937_64 rng(41);
  const SelectivityEstimator estimator(LeafSelectivityFn([&](const Predicate& p) {
    return 0.05 + 0.9 * static_cast<double>(p.hash() % 1000) / 1000.0;
  }));
  // Hand-built: (a and b and (c or d)); exclude the (c or d) subtree.
  auto a = Node::leaf(dom_.random_predicate(rng));
  auto b = Node::leaf(dom_.random_predicate(rng));
  auto c = Node::leaf(dom_.random_predicate(rng));
  auto d = Node::leaf(dom_.random_predicate(rng));
  std::vector<std::unique_ptr<Node>> or_cs;
  or_cs.push_back(std::move(c));
  or_cs.push_back(std::move(d));
  std::vector<std::unique_ptr<Node>> and_cs;
  and_cs.push_back(std::move(a));
  and_cs.push_back(std::move(b));
  and_cs.push_back(Node::or_(std::move(or_cs)));
  const auto tree = Node::and_(std::move(and_cs));

  const Node* skip = tree->children()[2].get();
  const auto excluded = estimator.estimate_excluding(*tree, skip);

  std::vector<std::unique_ptr<Node>> kept;
  kept.push_back(tree->children()[0]->clone());
  kept.push_back(tree->children()[1]->clone());
  const auto pruned = Node::and_(std::move(kept));
  const auto direct = estimator.estimate(*pruned);

  EXPECT_NEAR(excluded.min, direct.min, 1e-12);
  EXPECT_NEAR(excluded.avg, direct.avg, 1e-12);
  EXPECT_NEAR(excluded.max, direct.max, 1e-12);
}

TEST_F(EstimatorTest, NegativePolaritySkipUsesFalse) {
  // not(x and y): pruning y replaces it by TRUE inside the NOT? No —
  // the skip happens in negative polarity, so the estimator must use the
  // generalizing constant FALSE for OR-children / TRUE for AND-children
  // as seen from the tree root. Here: not(x or y) with y skipped must
  // equal not(x).
  const SelectivityEstimator estimator(
      LeafSelectivityFn([](const Predicate&) { return 0.3; }));
  MiniDomain dom(2, 10);
  auto x = Node::leaf(Predicate(dom.attr(0), Op::Eq, Value(1)));
  auto y = Node::leaf(Predicate(dom.attr(1), Op::Eq, Value(2)));
  std::vector<std::unique_ptr<Node>> or_cs;
  or_cs.push_back(std::move(x));
  or_cs.push_back(std::move(y));
  const auto tree = Node::not_(Node::or_(std::move(or_cs)));
  const Node* skip = tree->children()[0]->children()[1].get();
  const auto est = estimator.estimate_excluding(*tree, skip);
  // not(x or FALSE) = not(x): 1 - 0.3 = 0.7.
  EXPECT_NEAR(est.avg, 0.7, 1e-12);
}

TEST_F(EstimatorTest, NullLeafOracleThrows) {
  EXPECT_THROW(SelectivityEstimator{LeafSelectivityFn{}}, std::invalid_argument);
}

}  // namespace
}  // namespace dbsp
