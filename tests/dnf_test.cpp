#include "filter/dnf.hpp"
#include "filter/dnf_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "filter/naive_matcher.hpp"
#include "subscription/parser.hpp"
#include "test_util.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class DnfTest : public ::testing::Test {
 protected:
  DnfTest() {
    schema_.add_attribute("a", ValueType::Int);
    schema_.add_attribute("b", ValueType::Int);
    schema_.add_attribute("c", ValueType::Int);
    schema_.add_attribute("s", ValueType::String);
  }
  Schema schema_;

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view text) const {
    return parse_subscription(text, schema_);
  }
};

TEST_F(DnfTest, NegatePredicateTable) {
  const AttributeId a(0);
  auto single = [](const NegatedPredicate& n) {
    EXPECT_EQ(n.alternatives.size(), 1u);
    EXPECT_EQ(n.alternatives[0].size(), 1u);
    return n.alternatives[0][0];
  };
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Eq, Value(5)))).op(), Op::Ne);
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Ne, Value(5)))).op(), Op::Eq);
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Lt, Value(5)))).op(), Op::Ge);
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Le, Value(5)))).op(), Op::Gt);
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Gt, Value(5)))).op(), Op::Le);
  EXPECT_EQ(single(*negate_predicate(Predicate(a, Op::Ge, Value(5)))).op(), Op::Lt);

  const auto between = negate_predicate(Predicate(a, Value(1), Value(9)));
  ASSERT_TRUE(between.has_value());
  EXPECT_EQ(between->alternatives.size(), 2u);  // < lo OR > hi

  const auto in = negate_predicate(Predicate(a, {Value(1), Value(2)}));
  ASSERT_TRUE(in.has_value());
  ASSERT_EQ(in->alternatives.size(), 1u);
  EXPECT_EQ(in->alternatives[0].size(), 2u);  // != 1 AND != 2

  EXPECT_FALSE(negate_predicate(Predicate(a, Op::Prefix, Value("x"))).has_value());
  EXPECT_FALSE(negate_predicate(Predicate(a, Op::Contains, Value("x"))).has_value());
}

TEST_F(DnfTest, SimpleConversions) {
  const auto leaf = to_dnf(*parse("a = 1"));
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(leaf->conjunctions.size(), 1u);
  EXPECT_EQ(leaf->conjunctions[0].size(), 1u);

  const auto conj = to_dnf(*parse("a = 1 and b = 2 and c = 3"));
  ASSERT_TRUE(conj.has_value());
  EXPECT_EQ(conj->conjunctions.size(), 1u);
  EXPECT_EQ(conj->conjunctions[0].size(), 3u);

  const auto disj = to_dnf(*parse("a = 1 or b = 2"));
  ASSERT_TRUE(disj.has_value());
  EXPECT_EQ(disj->conjunctions.size(), 2u);

  // (a=1 or a=2) and (b=1 or b=2): 2x2 cross product.
  const auto cross = to_dnf(*parse("(a = 1 or a = 2) and (b = 1 or b = 2)"));
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(cross->conjunctions.size(), 4u);
  for (const auto& c : cross->conjunctions) EXPECT_EQ(c.size(), 2u);
}

TEST_F(DnfTest, DuplicatePredicatesCollapseWithinConjunction) {
  const auto dnf = to_dnf(*parse("a = 1 and (a = 1 or b = 2)"));
  ASSERT_TRUE(dnf.has_value());
  // Conjunction {a=1, a=1} collapses to {a=1}.
  const auto smallest = std::min_element(
      dnf->conjunctions.begin(), dnf->conjunctions.end(),
      [](const auto& x, const auto& y) { return x.size() < y.size(); });
  EXPECT_EQ(smallest->size(), 1u);
}

TEST_F(DnfTest, BlowupGuard) {
  // (a in 2 vals or b in 2 vals) conjoined 12 times would be 2^12 = 4096
  // conjunctions; a low cap must refuse.
  std::string text = "(a = 1 or b = 1)";
  for (int i = 2; i <= 12; ++i) {
    text += " and (a = " + std::to_string(i) + " or b = " + std::to_string(i) + ")";
  }
  EXPECT_FALSE(to_dnf(*parse(text), 64).has_value());
  EXPECT_TRUE(to_dnf(*parse(text), 4096).has_value());
}

TEST_F(DnfTest, NegatedStringOperatorIsInconvertible) {
  EXPECT_FALSE(to_dnf(*parse("not s prefix 'x'")).has_value());
  EXPECT_TRUE(to_dnf(*parse("s prefix 'x'")).has_value());  // positive is fine
}

TEST_F(DnfTest, ConversionPreservesSemantics) {
  // Random trees with NOT over numeric predicates (all attributes present
  // in MiniDomain events, satisfying the closed-schema caveat).
  MiniDomain dom(5, 12);
  std::mt19937_64 rng(33);
  std::uniform_int_distribution<std::size_t> leaves(1, 9);
  const auto events = dom.random_events(rng, 300);
  for (int round = 0; round < 80; ++round) {
    const auto tree = dom.random_tree(rng, leaves(rng), 0.3);
    const auto dnf = to_dnf(*tree, 1 << 16);
    ASSERT_TRUE(dnf.has_value());
    for (const auto& e : events) {
      ASSERT_EQ(tree->evaluate_event(e), dnf_matches(*dnf, e))
          << tree->to_string(dom.schema());
    }
  }
}

class DnfMatcherTest : public ::testing::Test {
 protected:
  MiniDomain dom_{5, 12};
};

TEST_F(DnfMatcherTest, AgreesWithNaiveMatcherOnRandomCorpus) {
  std::mt19937_64 rng(44);
  std::uniform_int_distribution<std::size_t> leaves(1, 8);
  DnfMatcher dnf(dom_.schema());
  NaiveMatcher naive;
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < 150; ++i) {
    subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(i), dom_.random_tree(rng, leaves(rng), 0.2)));
    ASSERT_TRUE(dnf.add(*subs.back()));
    naive.add(*subs.back());
  }
  for (const auto& e : dom_.random_events(rng, 300)) {
    std::vector<SubscriptionId> a, b;
    dnf.match(e, a);
    naive.match(e, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TEST_F(DnfMatcherTest, AgreesOnAuctionWorkload) {
  WorkloadConfig cfg;
  cfg.seed = 3;
  cfg.titles = 150;
  cfg.authors = 60;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator gen(domain);
  AuctionEventGenerator events(domain);
  DnfMatcher dnf(domain.schema());
  NaiveMatcher naive;
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < 300; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), gen.next_tree()));
    ASSERT_TRUE(dnf.add(*subs.back()));
    naive.add(*subs.back());
  }
  for (const auto& e : events.generate(200)) {
    std::vector<SubscriptionId> a, b;
    dnf.match(e, a);
    naive.match(e, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TEST_F(DnfMatcherTest, RemoveReleasesState) {
  std::mt19937_64 rng(55);
  DnfMatcher m(dom_.schema());
  Subscription s1(SubscriptionId(1), dom_.random_tree(rng, 6, 0.0));
  Subscription s2(SubscriptionId(2), dom_.random_tree(rng, 6, 0.0));
  ASSERT_TRUE(m.add(s1));
  ASSERT_TRUE(m.add(s2));
  const auto conjs = m.conjunction_count();
  EXPECT_GT(conjs, 0u);
  m.remove(SubscriptionId(1));
  EXPECT_LT(m.conjunction_count(), conjs);
  m.remove(SubscriptionId(2));
  EXPECT_EQ(m.conjunction_count(), 0u);
  EXPECT_EQ(m.predicate_count(), 0u);
  EXPECT_EQ(m.association_count(), 0u);
  EXPECT_THROW(m.remove(SubscriptionId(1)), std::out_of_range);
}

TEST_F(DnfMatcherTest, RejectedSubscriptionLeavesNoState) {
  Schema s;
  s.add_attribute("name", ValueType::String);
  DnfMatcher m(s);
  Subscription bad(SubscriptionId(1),
                   parse_subscription("not name prefix 'x'", s));
  EXPECT_FALSE(m.add(bad));
  EXPECT_EQ(m.predicate_count(), 0u);
  EXPECT_EQ(m.subscription_count(), 0u);
}

TEST_F(DnfMatcherTest, DuplicateAddThrows) {
  std::mt19937_64 rng(66);
  DnfMatcher m(dom_.schema());
  Subscription s(SubscriptionId(1), dom_.random_tree(rng, 4, 0.0));
  ASSERT_TRUE(m.add(s));
  EXPECT_THROW(m.add(s), std::invalid_argument);
}

}  // namespace
}  // namespace dbsp
