#include "filter/predicate_registry.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dbsp {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  test::MiniDomain dom_;
  PredicateRegistry reg_;

  [[nodiscard]] Predicate pred(std::int64_t v) const {
    return Predicate(dom_.attr(0), Op::Eq, Value(v));
  }
};

TEST_F(RegistryTest, DeduplicatesStructurallyEqualPredicates) {
  const auto r1 = reg_.add_reference(pred(5), SubscriptionId(1));
  const auto r2 = reg_.add_reference(pred(5), SubscriptionId(2));
  EXPECT_TRUE(r1.new_predicate);
  EXPECT_FALSE(r2.new_predicate);
  EXPECT_EQ(r1.id, r2.id);
  EXPECT_EQ(reg_.live_predicates(), 1u);
  EXPECT_EQ(reg_.association_count(), 2u);
}

TEST_F(RegistryTest, DistinctPredicatesGetDistinctIds) {
  const auto r1 = reg_.add_reference(pred(5), SubscriptionId(1));
  const auto r2 = reg_.add_reference(pred(6), SubscriptionId(1));
  EXPECT_NE(r1.id, r2.id);
  EXPECT_EQ(reg_.live_predicates(), 2u);
  EXPECT_EQ(reg_.association_count(), 2u);
}

TEST_F(RegistryTest, LeafRefcountWithinOneSubscription) {
  const auto r1 = reg_.add_reference(pred(5), SubscriptionId(1));
  const auto r2 = reg_.add_reference(pred(5), SubscriptionId(1));
  EXPECT_TRUE(r1.new_association);
  EXPECT_FALSE(r2.new_association);
  EXPECT_EQ(reg_.association_count(), 1u);  // one (pred, sub) pair

  auto rel1 = reg_.release_reference(r1.id, SubscriptionId(1));
  EXPECT_FALSE(rel1.association_removed);
  EXPECT_FALSE(rel1.removed_predicate);
  auto rel2 = reg_.release_reference(r1.id, SubscriptionId(1));
  EXPECT_TRUE(rel2.association_removed);
  ASSERT_TRUE(rel2.removed_predicate);
  EXPECT_TRUE(rel2.removed_predicate->equals(pred(5)));
  EXPECT_EQ(reg_.live_predicates(), 0u);
  EXPECT_EQ(reg_.association_count(), 0u);
}

TEST_F(RegistryTest, PredicateSurvivesWhileOtherSubscriptionHoldsIt) {
  const auto r = reg_.add_reference(pred(5), SubscriptionId(1));
  reg_.add_reference(pred(5), SubscriptionId(2));
  auto rel = reg_.release_reference(r.id, SubscriptionId(1));
  EXPECT_TRUE(rel.association_removed);
  EXPECT_FALSE(rel.removed_predicate);
  EXPECT_EQ(reg_.live_predicates(), 1u);
  EXPECT_TRUE(reg_.predicate(r.id).equals(pred(5)));
}

TEST_F(RegistryTest, IdsAreRecycled) {
  const auto r1 = reg_.add_reference(pred(5), SubscriptionId(1));
  reg_.release_reference(r1.id, SubscriptionId(1));
  const auto r2 = reg_.add_reference(pred(9), SubscriptionId(2));
  EXPECT_EQ(r2.id, r1.id);  // freed slot reused
  EXPECT_EQ(reg_.capacity(), 1u);
}

TEST_F(RegistryTest, AssociationsListsSubscriptions) {
  const auto r = reg_.add_reference(pred(5), SubscriptionId(1));
  reg_.add_reference(pred(5), SubscriptionId(7));
  const auto& assocs = reg_.associations(r.id);
  ASSERT_EQ(assocs.size(), 2u);
  EXPECT_EQ(assocs[0].subscription, SubscriptionId(1));
  EXPECT_EQ(assocs[1].subscription, SubscriptionId(7));
}

TEST_F(RegistryTest, FindLocatesInternedPredicate) {
  EXPECT_FALSE(reg_.find(pred(5)).has_value());
  const auto r = reg_.add_reference(pred(5), SubscriptionId(1));
  EXPECT_EQ(reg_.find(pred(5)), r.id);
}

TEST_F(RegistryTest, MisuseThrows) {
  const auto r = reg_.add_reference(pred(5), SubscriptionId(1));
  EXPECT_THROW(reg_.release_reference(r.id, SubscriptionId(99)), std::logic_error);
  reg_.release_reference(r.id, SubscriptionId(1));
  EXPECT_THROW(reg_.release_reference(r.id, SubscriptionId(1)), std::logic_error);
  EXPECT_THROW(static_cast<void>(reg_.predicate(r.id)), std::logic_error);
}

TEST_F(RegistryTest, AssociationCountAcrossManySubsAndPredicates) {
  // 10 subscriptions × 5 predicates each, predicate p shared by sub parity.
  for (std::uint32_t s = 0; s < 10; ++s) {
    for (std::int64_t p = 0; p < 5; ++p) {
      reg_.add_reference(pred(p + (s % 2) * 100), SubscriptionId(s));
    }
  }
  EXPECT_EQ(reg_.live_predicates(), 10u);  // 5 per parity group
  EXPECT_EQ(reg_.association_count(), 50u);
}

}  // namespace
}  // namespace dbsp
