// The fluent filter builder: composition operators, schema/type checking
// through the Status channel, and the builder/parser round-trip — for any
// builder-generated filter f, parse_subscription(f.to_string()) must be
// structurally equal to f.compile() (both sides simplify), including
// precedence-sensitive nestings and string operands that need escaping.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "dbsp/dbsp.hpp"

namespace dbsp {
namespace {

Schema test_schema() {
  Schema s;
  s.add_attribute("price", ValueType::Double);
  s.add_attribute("qty", ValueType::Int);
  s.add_attribute("sym", ValueType::String);
  s.add_attribute("active", ValueType::Bool);
  return s;
}

std::unique_ptr<Node> compile_ok(const Filter& f, const Schema& schema) {
  auto result = f.compile(schema);
  EXPECT_TRUE(result.ok()) << result.status().to_string() << " for " << f.to_string();
  return std::move(result).value();
}

TEST(FilterBuilderTest, LeafOperatorsMatchParserEquivalents) {
  const Schema schema = test_schema();
  const struct {
    Filter filter;
    const char* dsl;
  } cases[] = {
      {where("price").eq(10.5), "price = 10.5"},
      {where("price").ne(10.5), "price != 10.5"},
      {where("qty").lt(7), "qty < 7"},
      {where("qty").le(7), "qty <= 7"},
      {where("qty").gt(7), "qty > 7"},
      {where("qty").ge(7), "qty >= 7"},
      {where("price").between(5, 10), "price between 5 and 10"},
      {where("sym").in({Value("ACME"), Value("INIT")}), "sym in ('ACME', 'INIT')"},
      {where("sym").prefix("AC"), "sym prefix 'AC'"},
      {where("sym").suffix("ME"), "sym suffix 'ME'"},
      {where("sym").contains("CM"), "sym contains 'CM'"},
      {where("active").eq(true), "active = true"},
  };
  for (const auto& c : cases) {
    const auto built = compile_ok(c.filter, schema);
    const auto parsed = parse_subscription(c.dsl, schema);
    EXPECT_TRUE(built->equals(*parsed)) << c.dsl << " vs " << c.filter.to_string();
  }
}

TEST(FilterBuilderTest, CompositionOperatorsAndComposers) {
  const Schema schema = test_schema();
  const Filter f = (where("price").gt(100) && where("sym").eq("ACME")) ||
                   !(where("qty").le(3));
  const auto built = compile_ok(f, schema);
  const auto parsed = parse_subscription(
      "(price > 100 and sym = 'ACME') or not (qty <= 3)", schema);
  EXPECT_TRUE(built->equals(*parsed));

  const Filter composed = all_of({where("price").gt(1), where("qty").lt(5),
                                  any_of({where("sym").eq("A"), where("sym").eq("B")})});
  const auto built2 = compile_ok(composed, schema);
  const auto parsed2 = parse_subscription(
      "price > 1 and qty < 5 and (sym = 'A' or sym = 'B')", schema);
  EXPECT_TRUE(built2->equals(*parsed2));

  // not_of == operator!
  const auto a = compile_ok(not_of(where("qty").gt(2)), schema);
  const auto b = compile_ok(!where("qty").gt(2), schema);
  EXPECT_TRUE(a->equals(*b));

  // Single-element composers collapse to the element.
  const auto single = compile_ok(all_of({where("qty").gt(2)}), schema);
  const auto plain = compile_ok(where("qty").gt(2), schema);
  EXPECT_TRUE(single->equals(*plain));
}

TEST(FilterBuilderTest, ErrorsTravelThroughStatusNotExceptions) {
  const Schema schema = test_schema();

  const auto unknown = where("nope").eq(1).compile(schema);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), ErrorCode::kNotFound);

  const auto type_mismatch = where("price").eq("not a number").compile(schema);
  ASSERT_FALSE(type_mismatch.ok());
  EXPECT_EQ(type_mismatch.status().code(), ErrorCode::kInvalidArgument);

  const auto string_op_on_numeric = where("qty").prefix("x").compile(schema);
  ASSERT_FALSE(string_op_on_numeric.ok());
  EXPECT_EQ(string_op_on_numeric.status().code(), ErrorCode::kInvalidArgument);

  const auto order_on_bool = where("active").lt(true).compile(schema);
  ASSERT_FALSE(order_on_bool.ok());
  EXPECT_EQ(order_on_bool.status().code(), ErrorCode::kInvalidArgument);

  const auto empty_in = where("qty").in({}).compile(schema);
  ASSERT_FALSE(empty_in.ok());
  EXPECT_EQ(empty_in.status().code(), ErrorCode::kInvalidArgument);

  const auto empty = Filter().compile(schema);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), ErrorCode::kInvalidArgument);

  const auto empty_all_of = all_of({}).compile(schema);
  ASSERT_FALSE(empty_all_of.ok());
  EXPECT_EQ(empty_all_of.status().code(), ErrorCode::kInvalidArgument);

  // Composing with an empty filter propagates emptiness.
  EXPECT_FALSE((Filter() && where("qty").gt(1)).valid());
  EXPECT_FALSE((where("qty").gt(1) || Filter()).valid());
  EXPECT_FALSE((!Filter()).valid());

  // Result::value() on an error is a detectable logic error, not UB.
  EXPECT_THROW((void)unknown.value(), std::logic_error);
}

TEST(FilterBuilderTest, ToStringEscapesQuotesSqlStyle) {
  const Schema schema = test_schema();
  const Filter f = where("sym").eq("o'brien's");
  EXPECT_EQ(f.to_string(), "sym = 'o''brien''s'");
  const auto built = compile_ok(f, schema);
  const auto parsed = parse_subscription(f.to_string(), schema);
  EXPECT_TRUE(built->equals(*parsed));
}

// --- Randomized round-trip ---------------------------------------------------

/// Random filter generator over test_schema(): every operator, strings
/// containing quotes/spaces, fractional and negative numbers, arbitrary
/// And/Or/Not nestings up to `depth`.
class RandomFilterGen {
 public:
  explicit RandomFilterGen(std::uint64_t seed) : rng_(seed) {}

  Filter filter(int depth) {
    if (depth <= 0 || chance(0.4)) return leaf();
    switch (pick(3)) {
      case 0: {
        std::vector<Filter> parts;
        const int n = 2 + pick(3);
        parts.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) parts.push_back(filter(depth - 1));
        return chance(0.5) ? all_of(std::move(parts)) : any_of(std::move(parts));
      }
      case 1:
        return chance(0.5) ? (filter(depth - 1) && filter(depth - 1))
                           : (filter(depth - 1) || filter(depth - 1));
      default:
        return !filter(depth - 1);
    }
  }

 private:
  bool chance(double p) { return std::uniform_real_distribution<>(0, 1)(rng_) < p; }
  int pick(int n) { return std::uniform_int_distribution<>(0, n - 1)(rng_); }

  double num() {
    // Mix of integral-looking, fractional, negative and large magnitudes.
    const double base = std::uniform_real_distribution<>(-1e4, 1e4)(rng_);
    return chance(0.3) ? std::round(base) : base;
  }

  std::string str() {
    static const char* pool[] = {"ACME", "a b", "o'brien", "", "x''y", "café",
                                 "INIT-2", "'"};
    return pool[pick(static_cast<int>(std::size(pool)))];
  }

  Filter leaf() {
    switch (pick(4)) {
      case 0: {  // Double attribute
        AttributeRef a = where("price");
        switch (pick(7)) {
          case 0: return a.eq(num());
          case 1: return a.ne(num());
          case 2: return a.lt(num());
          case 3: return a.le(num());
          case 4: return a.gt(num());
          case 5: return a.ge(num());
          default: return a.between(num(), num());
        }
      }
      case 1: {  // Int attribute (mixes Int and Double operands)
        AttributeRef a = where("qty");
        const std::int64_t iv = pick(2000) - 1000;
        switch (pick(4)) {
          case 0: return a.eq(iv);
          case 1: return a.ge(iv);
          case 2: return a.between(iv, num());
          default: {
            std::vector<Value> vals;
            const int n = 1 + pick(4);
            for (int i = 0; i < n; ++i) vals.push_back(Value(std::int64_t(pick(100))));
            return a.in(std::move(vals));
          }
        }
      }
      case 2: {  // String attribute
        AttributeRef a = where("sym");
        switch (pick(6)) {
          case 0: return a.eq(str());
          case 1: return a.ne(str());
          case 2: return a.prefix(str());
          case 3: return a.suffix(str());
          case 4: return a.contains(str());
          default: {
            std::vector<Value> vals;
            const int n = 1 + pick(3);
            for (int i = 0; i < n; ++i) vals.push_back(Value(str()));
            return a.in(std::move(vals));
          }
        }
      }
      default:
        return chance(0.5) ? where("active").eq(chance(0.5)) : where("active").ne(true);
    }
  }

  std::mt19937_64 rng_;
};

TEST(FilterRoundTripTest, RandomizedParseOfToStringEqualsCompile) {
  const Schema schema = test_schema();
  RandomFilterGen gen(20260727);
  for (int i = 0; i < 500; ++i) {
    const Filter f = gen.filter(/*depth=*/4);
    const auto compiled = f.compile(schema);
    ASSERT_TRUE(compiled.ok()) << compiled.status().to_string() << "\n"
                               << f.to_string();
    const std::string text = f.to_string();
    std::unique_ptr<Node> parsed;
    ASSERT_NO_THROW(parsed = parse_subscription(text, schema)) << text;
    EXPECT_TRUE(compiled.value()->equals(*parsed))
        << "round-trip diverged:\n  text:     " << text
        << "\n  compiled: " << compiled.value()->to_string(schema)
        << "\n  parsed:   " << parsed->to_string(schema);
  }
}

TEST(FilterRoundTripTest, RoundTripPreservesMatchingSemantics) {
  // Beyond structure: compiled and re-parsed trees must agree on actual
  // events (catches any future divergence between equals() and matching).
  const Schema schema = test_schema();
  RandomFilterGen gen(77);
  std::mt19937_64 rng(99);
  const char* syms[] = {"ACME", "a b", "o'brien", "INIT-2", "zzz"};
  for (int i = 0; i < 100; ++i) {
    const Filter f = gen.filter(3);
    const auto compiled = f.compile(schema);
    ASSERT_TRUE(compiled.ok());
    const auto parsed = parse_subscription(f.to_string(), schema);
    for (int e = 0; e < 20; ++e) {
      EventBuilder b(schema);
      if (rng() % 4 != 0) {
        b.with("price", std::uniform_real_distribution<>(-1e4, 1e4)(rng));
      }
      if (rng() % 4 != 0) {
        b.with("qty", static_cast<std::int64_t>(rng() % 2000) - 1000);
      }
      if (rng() % 4 != 0) b.with("sym", syms[rng() % std::size(syms)]);
      if (rng() % 4 != 0) b.with("active", rng() % 2 == 0);
      const Event event = b.build();
      EXPECT_EQ(compiled.value()->evaluate_event(event),
                parsed->evaluate_event(event))
          << f.to_string() << " on " << event.to_string(schema);
    }
  }
}

TEST(ParserEscapeTest, DoubledQuoteIsOneQuoteCharacter) {
  const Schema schema = test_schema();
  const auto tree = parse_subscription("sym = 'it''s'", schema);
  Event match = EventBuilder(schema).with("sym", "it's").build();
  Event miss = EventBuilder(schema).with("sym", "its").build();
  EXPECT_TRUE(tree->evaluate_event(match));
  EXPECT_FALSE(tree->evaluate_event(miss));
  // A lone '' is the empty string.
  const auto empty = parse_subscription("sym = ''", schema);
  EXPECT_TRUE(empty->evaluate_event(EventBuilder(schema).with("sym", "").build()));
  // Unterminated literals still error.
  EXPECT_THROW(parse_subscription("sym = 'oops''", schema), ParseError);
}

}  // namespace
}  // namespace dbsp
