#pragma once

// Shared helpers for the dbsp test suite: a compact numeric schema, terse
// tree builders, and seeded random generators for subscription trees and
// events used by the property tests.

#include <memory>
#include <random>
#include <vector>

#include "event/event.hpp"
#include "event/schema.hpp"
#include "subscription/node.hpp"
#include "subscription/predicate.hpp"
#include "subscription/subscription.hpp"

namespace dbsp::test {

/// A small all-numeric schema: attributes a0..a{n-1}, each Int with values
/// drawn from [0, domain). Numeric domains make it easy to construct
/// predicates of any operator with known selectivity.
class MiniDomain {
 public:
  explicit MiniDomain(std::size_t attrs = 6, std::int64_t domain = 20)
      : domain_(domain) {
    for (std::size_t i = 0; i < attrs; ++i) {
      ids_.push_back(schema_.add_attribute("a" + std::to_string(i), ValueType::Int));
    }
  }

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] AttributeId attr(std::size_t i) const { return ids_.at(i); }
  [[nodiscard]] std::size_t attr_count() const { return ids_.size(); }
  [[nodiscard]] std::int64_t domain() const { return domain_; }

  /// Random event with every attribute set uniformly in [0, domain).
  [[nodiscard]] Event random_event(std::mt19937_64& rng) const {
    Event e;
    std::uniform_int_distribution<std::int64_t> dist(0, domain_ - 1);
    for (const auto id : ids_) e.set(id, Value(dist(rng)));
    return e;
  }

  [[nodiscard]] std::vector<Event> random_events(std::mt19937_64& rng,
                                                 std::size_t n) const {
    std::vector<Event> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(random_event(rng));
    return out;
  }

  /// Random comparison predicate over a random attribute.
  [[nodiscard]] Predicate random_predicate(std::mt19937_64& rng) const {
    std::uniform_int_distribution<std::size_t> attr_dist(0, ids_.size() - 1);
    std::uniform_int_distribution<std::int64_t> val_dist(0, domain_ - 1);
    std::uniform_int_distribution<int> op_dist(0, 6);
    const AttributeId attr = ids_[attr_dist(rng)];
    switch (op_dist(rng)) {
      case 0: return Predicate(attr, Op::Eq, Value(val_dist(rng)));
      case 1: return Predicate(attr, Op::Ne, Value(val_dist(rng)));
      case 2: return Predicate(attr, Op::Lt, Value(val_dist(rng)));
      case 3: return Predicate(attr, Op::Le, Value(val_dist(rng)));
      case 4: return Predicate(attr, Op::Gt, Value(val_dist(rng)));
      case 5: return Predicate(attr, Op::Ge, Value(val_dist(rng)));
      default: {
        const auto lo = val_dist(rng);
        const auto hi = val_dist(rng);
        return Predicate(attr, Value(std::min(lo, hi)), Value(std::max(lo, hi)));
      }
    }
  }

  /// Random Boolean tree with `leaves` predicate leaves. `not_prob` wraps
  /// subtrees in NOT with that probability. The returned tree is simplified
  /// and guaranteed non-constant.
  [[nodiscard]] std::unique_ptr<Node> random_tree(std::mt19937_64& rng,
                                                  std::size_t leaves,
                                                  double not_prob = 0.0) const {
    auto tree = simplify(random_subtree(rng, leaves, not_prob));
    if (tree->is_constant()) {
      return Node::leaf(random_predicate(rng));  // degenerate fallback
    }
    return tree;
  }

 private:
  [[nodiscard]] std::unique_ptr<Node> random_subtree(std::mt19937_64& rng,
                                                     std::size_t leaves,
                                                     double not_prob) const {
    std::unique_ptr<Node> result;
    if (leaves <= 1) {
      result = Node::leaf(random_predicate(rng));
    } else {
      // Split the leaf budget into 2..min(4, leaves) children.
      std::uniform_int_distribution<std::size_t> arity_dist(
          2, std::min<std::size_t>(4, leaves));
      const std::size_t arity = arity_dist(rng);
      std::vector<std::size_t> budget(arity, 1);
      for (std::size_t extra = leaves - arity; extra > 0; --extra) {
        std::uniform_int_distribution<std::size_t> pick(0, arity - 1);
        ++budget[pick(rng)];
      }
      std::vector<std::unique_ptr<Node>> children;
      children.reserve(arity);
      for (const std::size_t b : budget) {
        children.push_back(random_subtree(rng, b, not_prob));
      }
      const bool is_and = std::bernoulli_distribution(0.55)(rng);
      result = is_and ? Node::and_(std::move(children))
                      : Node::or_(std::move(children));
    }
    if (std::bernoulli_distribution(not_prob)(rng)) {
      result = Node::not_(std::move(result));
    }
    return result;
  }

  Schema schema_;
  std::vector<AttributeId> ids_;
  std::int64_t domain_;
};

/// A randomly generated subscription corpus with dense ids 0..n-1.
struct Corpus {
  std::vector<std::unique_ptr<Subscription>> subs;

  [[nodiscard]] std::vector<Subscription*> pointers() const {
    std::vector<Subscription*> out;
    out.reserve(subs.size());
    for (const auto& s : subs) out.push_back(s.get());
    return out;
  }
};

/// Random corpus of `n` subscriptions over `dom`, each with 1..max_leaves
/// predicate leaves and NOT nodes with probability `not_prob`.
[[nodiscard]] inline Corpus make_corpus(const MiniDomain& dom, std::mt19937_64& rng,
                                        std::size_t n, double not_prob,
                                        std::size_t max_leaves = 9) {
  Corpus c;
  std::uniform_int_distribution<std::size_t> leaves(1, max_leaves);
  for (std::size_t i = 0; i < n; ++i) {
    c.subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
        dom.random_tree(rng, leaves(rng), not_prob)));
  }
  return c;
}

/// Deep copy of a corpus (same ids, cloned trees). Needed whenever the same
/// logical corpus is registered with more than one counting-based matcher,
/// because a counting matcher stamps its predicate ids into the tree leaves.
[[nodiscard]] inline Corpus clone_corpus(const Corpus& corpus) {
  Corpus c;
  c.subs.reserve(corpus.subs.size());
  for (const auto& s : corpus.subs) {
    c.subs.push_back(std::make_unique<Subscription>(s->id(), s->root().clone()));
  }
  return c;
}

/// Set of events matched by a tree — for superset/equivalence assertions.
[[nodiscard]] inline std::vector<std::size_t> matching_indices(
    const Node& tree, const std::vector<Event>& events) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (tree.evaluate_event(events[i])) out.push_back(i);
  }
  return out;
}

/// True iff `sub` (indices of a matching set) is a subset of `super`.
[[nodiscard]] inline bool is_subset(const std::vector<std::size_t>& sub,
                                    const std::vector<std::size_t>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace dbsp::test
