#include "routing/codec.hpp"

#include <gtest/gtest.h>

#include <random>

#include "test_util.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

template <class T, class Enc, class Dec>
T round_trip(const T& input, Enc encode, Dec decode) {
  WireWriter w;
  encode(input, w);
  WireReader r(w.bytes());
  T output = decode(r);
  EXPECT_TRUE(r.exhausted()) << "trailing bytes after decode";
  return output;
}

TEST(CodecTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_f64(-3.25e17);
  w.put_string("hello wire");
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get_f64(), -3.25e17);
  EXPECT_EQ(r.get_string(), "hello wire");
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecTest, ValuesOfAllTypesRoundTrip) {
  for (const Value& v : {Value(std::int64_t{-42}), Value(2.5), Value("books"),
                         Value(std::string()), Value(true), Value(false)}) {
    const Value back = round_trip(
        v, [](const Value& x, WireWriter& w) { encode_value(x, w); },
        [](WireReader& r) { return decode_value(r); });
    EXPECT_TRUE(v.equals(back)) << v.to_string();
    EXPECT_EQ(v.type(), back.type());
  }
}

TEST(CodecTest, EventRoundTrip) {
  MiniDomain dom(6, 100);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 30; ++i) {
    const Event e = dom.random_event(rng);
    const Event back = round_trip(
        e, [](const Event& x, WireWriter& w) { encode_event(x, w); },
        [](WireReader& r) { return decode_event(r); });
    ASSERT_EQ(e.size(), back.size());
    for (const auto& [attr, value] : e.pairs()) {
      ASSERT_NE(back.find(attr), nullptr);
      EXPECT_TRUE(back.find(attr)->equals(value));
    }
  }
}

TEST(CodecTest, PredicatesOfAllOperatorsRoundTrip) {
  MiniDomain dom(3, 50);
  Schema strings;
  const auto name = strings.add_attribute("name", ValueType::String);
  std::vector<Predicate> preds = {
      Predicate(dom.attr(0), Op::Eq, Value(5)),
      Predicate(dom.attr(0), Op::Ne, Value(5)),
      Predicate(dom.attr(1), Op::Lt, Value(2.5)),
      Predicate(dom.attr(1), Op::Le, Value(2.5)),
      Predicate(dom.attr(1), Op::Gt, Value(2.5)),
      Predicate(dom.attr(1), Op::Ge, Value(2.5)),
      Predicate(dom.attr(2), Value(1), Value(9)),
      Predicate(dom.attr(2), {Value(1), Value(3), Value(7)}),
      Predicate(name, Op::Prefix, Value("sci")),
      Predicate(name, Op::Suffix, Value("ion")),
      Predicate(name, Op::Contains, Value("fi")),
  };
  for (const auto& p : preds) {
    const Predicate back = round_trip(
        p, [](const Predicate& x, WireWriter& w) { encode_predicate(x, w); },
        [](WireReader& r) { return decode_predicate(r); });
    EXPECT_TRUE(p.equals(back)) << static_cast<int>(p.op());
  }
}

TEST(CodecTest, RandomTreesRoundTripStructurally) {
  MiniDomain dom(5, 20);
  std::mt19937_64 rng(17);
  for (int i = 0; i < 60; ++i) {
    const auto tree = dom.random_tree(rng, 1 + i % 10, 0.25);
    WireWriter w;
    encode_tree(*tree, w);
    EXPECT_EQ(w.size(), encoded_size(*tree));
    WireReader r(w.bytes());
    const auto back = decode_tree(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_TRUE(tree->equals(*back));
  }
}

TEST(CodecTest, AuctionWorkloadTreesRoundTrip) {
  WorkloadConfig cfg;
  cfg.titles = 100;
  cfg.authors = 50;
  cfg.not_probability = 0.1;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator gen(domain);
  AuctionEventGenerator events(domain);
  for (int i = 0; i < 100; ++i) {
    const auto tree = gen.next_tree();
    WireWriter w;
    encode_tree(*tree, w);
    WireReader r(w.bytes());
    const auto back = decode_tree(r);
    EXPECT_TRUE(tree->equals(*back));
    // Semantics preserved too, not just structure.
    const Event e = events.next();
    EXPECT_EQ(tree->evaluate_event(e), back->evaluate_event(e));
  }
}

TEST(CodecTest, TruncatedInputThrows) {
  MiniDomain dom(2, 10);
  const auto tree = Node::leaf(Predicate(dom.attr(0), Op::Eq, Value(5)));
  WireWriter w;
  encode_tree(*tree, w);
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    WireReader r(std::span(w.bytes().data(), cut));
    EXPECT_THROW(static_cast<void>(decode_tree(r)), WireError) << "cut=" << cut;
  }
}

TEST(CodecTest, MalformedTagsThrow) {
  {
    std::vector<std::uint8_t> bad = {9};  // unknown node tag
    WireReader r(bad);
    EXPECT_THROW(static_cast<void>(decode_tree(r)), WireError);
  }
  {
    std::vector<std::uint8_t> bad = {1, 0, 0};  // And with zero children
    WireReader r(bad);
    EXPECT_THROW(static_cast<void>(decode_tree(r)), WireError);
  }
  {
    std::vector<std::uint8_t> bad = {7};  // unknown value tag
    WireReader r(bad);
    EXPECT_THROW(static_cast<void>(decode_value(r)), WireError);
  }
}

TEST(CodecTest, ConstantNodesRefuseToEncode) {
  WireWriter w;
  const auto t = Node::constant(true);
  EXPECT_THROW(encode_tree(*t, w), WireError);
}

TEST(CodecTest, EncodedSizeTracksPayload) {
  MiniDomain dom(2, 10);
  Event small;
  small.set(dom.attr(0), Value(1));
  Event big = small;
  big.set(dom.attr(1), Value(std::string(500, 'x')));
  EXPECT_GT(encoded_size(big), encoded_size(small) + 500);
}

}  // namespace
}  // namespace dbsp
