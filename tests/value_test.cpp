#include "event/value.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dbsp {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(std::int64_t{5}).type(), ValueType::Int);
  EXPECT_EQ(Value(5).type(), ValueType::Int);
  EXPECT_EQ(Value(5.0).type(), ValueType::Double);
  EXPECT_EQ(Value("abc").type(), ValueType::String);
  EXPECT_EQ(Value(std::string("abc")).type(), ValueType::String);
  EXPECT_EQ(Value(true).type(), ValueType::Bool);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(20).equals(Value(20.0)));
  EXPECT_TRUE(Value(20.0).equals(Value(20)));
  EXPECT_FALSE(Value(20).equals(Value(20.5)));
  EXPECT_TRUE(Value(20).equals(Value(20)));
}

TEST(ValueTest, TypeMismatchNeverEqualNorLess) {
  EXPECT_FALSE(Value("5").equals(Value(5)));
  EXPECT_FALSE(Value(true).equals(Value(1)));
  EXPECT_FALSE(Value("5").less(Value(5)));
  EXPECT_FALSE(Value(5).less(Value("5")));
}

TEST(ValueTest, NumericOrdering) {
  EXPECT_TRUE(Value(3).less(Value(3.5)));
  EXPECT_FALSE(Value(3.5).less(Value(3)));
  EXPECT_TRUE(Value(-1.0).less(Value(0)));
  EXPECT_FALSE(Value(3).less(Value(3.0)));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_TRUE(Value("abc").less(Value("abd")));
  EXPECT_FALSE(Value("b").less(Value("a")));
}

TEST(ValueTest, BoolOrdering) {
  EXPECT_TRUE(Value(false).less(Value(true)));
  EXPECT_FALSE(Value(true).less(Value(false)));
  EXPECT_FALSE(Value(true).less(Value(true)));
}

TEST(ValueTest, KeyLessIsStrictWeakOrderAcrossTypes) {
  // Numeric < string < bool by rank; within a rank the natural order.
  EXPECT_TRUE(Value(7).key_less(Value("a")));
  EXPECT_TRUE(Value("a").key_less(Value(true)));
  EXPECT_FALSE(Value(true).key_less(Value(7)));
  EXPECT_FALSE(Value(7).key_less(Value(7.0)));
  EXPECT_FALSE(Value(7.0).key_less(Value(7)));
}

TEST(ValueTest, HashConsistentWithNumericEquality) {
  EXPECT_EQ(Value(20).hash(), Value(20.0).hash());
  std::unordered_set<Value> set;
  set.insert(Value(20));
  EXPECT_EQ(set.count(Value(20.0)), 1u);
  set.insert(Value("x"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value("hi").to_string(), "'hi'");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(false).to_string(), "false");
}

TEST(ValueTest, SizeBytesCountsLongStringPayload) {
  const Value small("ab");
  const Value big(std::string(100, 'x'));
  EXPECT_GT(big.size_bytes(), small.size_bytes());
  EXPECT_GE(big.size_bytes(), sizeof(Value) + 100);
}

}  // namespace
}  // namespace dbsp
