#include "selectivity/estimate.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dbsp {
namespace {

void expect_valid(const SelectivityEstimate& e) {
  EXPECT_GE(e.min, 0.0);
  EXPECT_LE(e.max, 1.0);
  EXPECT_LE(e.min, e.avg + 1e-12);
  EXPECT_LE(e.avg, e.max + 1e-12);
}

TEST(SelectivityEstimateTest, PointClampsAndCollapses) {
  const auto p = SelectivityEstimate::point(0.3);
  EXPECT_DOUBLE_EQ(p.min, 0.3);
  EXPECT_DOUBLE_EQ(p.avg, 0.3);
  EXPECT_DOUBLE_EQ(p.max, 0.3);
  EXPECT_DOUBLE_EQ(SelectivityEstimate::point(-0.5).avg, 0.0);
  EXPECT_DOUBLE_EQ(SelectivityEstimate::point(1.5).avg, 1.0);
}

TEST(SelectivityEstimateTest, AndUsesFrechetBoundsAndIndependence) {
  const auto a = SelectivityEstimate::point(0.8);
  const auto b = SelectivityEstimate::point(0.7);
  const auto c = a.and_with(b);
  EXPECT_DOUBLE_EQ(c.min, 0.5);       // 0.8 + 0.7 - 1
  EXPECT_DOUBLE_EQ(c.avg, 0.56);      // 0.8 * 0.7
  EXPECT_DOUBLE_EQ(c.max, 0.7);       // min(0.8, 0.7)
  expect_valid(c);

  const auto d = SelectivityEstimate::point(0.2).and_with(SelectivityEstimate::point(0.3));
  EXPECT_DOUBLE_EQ(d.min, 0.0);  // Fréchet lower bound truncates at 0
}

TEST(SelectivityEstimateTest, OrUsesFrechetBoundsAndInclusionExclusion) {
  const auto a = SelectivityEstimate::point(0.2);
  const auto b = SelectivityEstimate::point(0.3);
  const auto c = a.or_with(b);
  EXPECT_DOUBLE_EQ(c.min, 0.3);              // max
  EXPECT_DOUBLE_EQ(c.avg, 1.0 - 0.8 * 0.7);  // independence
  EXPECT_DOUBLE_EQ(c.max, 0.5);              // sum
  expect_valid(c);

  const auto d = SelectivityEstimate::point(0.8).or_with(SelectivityEstimate::point(0.9));
  EXPECT_DOUBLE_EQ(d.max, 1.0);  // Fréchet upper bound truncates at 1
}

TEST(SelectivityEstimateTest, NegationSwapsAndComplements) {
  const SelectivityEstimate e{0.2, 0.5, 0.9};
  const auto n = e.negated();
  EXPECT_DOUBLE_EQ(n.min, 0.1);
  EXPECT_DOUBLE_EQ(n.avg, 0.5);
  EXPECT_DOUBLE_EQ(n.max, 0.8);
  const auto back = n.negated();
  EXPECT_DOUBLE_EQ(back.min, e.min);
  EXPECT_DOUBLE_EQ(back.max, e.max);
}

TEST(SelectivityEstimateTest, IdentityElements) {
  const auto p = SelectivityEstimate::point(0.42);
  const auto a = p.and_with(SelectivityEstimate::always());
  EXPECT_DOUBLE_EQ(a.min, p.min);
  EXPECT_DOUBLE_EQ(a.avg, p.avg);
  EXPECT_DOUBLE_EQ(a.max, p.max);
  const auto o = p.or_with(SelectivityEstimate::never());
  EXPECT_DOUBLE_EQ(o.min, p.min);
  EXPECT_DOUBLE_EQ(o.avg, p.avg);
  EXPECT_DOUBLE_EQ(o.max, p.max);
}

TEST(SelectivityEstimateTest, CombinatorsAreAssociative) {
  // Łukasiewicz t-norm (min), product (avg) and min (max) are associative,
  // so flattened and nested conjunctions price identically — the property
  // that makes estimate_excluding() consistent with simplify().
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    const auto a = SelectivityEstimate::point(u(rng));
    const auto b = SelectivityEstimate::point(u(rng));
    const auto c = SelectivityEstimate::point(u(rng));
    for (const bool conj : {true, false}) {
      const auto left = conj ? a.and_with(b).and_with(c) : a.or_with(b).or_with(c);
      const auto right = conj ? a.and_with(b.and_with(c)) : a.or_with(b.or_with(c));
      EXPECT_NEAR(left.min, right.min, 1e-12);
      EXPECT_NEAR(left.avg, right.avg, 1e-12);
      EXPECT_NEAR(left.max, right.max, 1e-12);
    }
  }
}

TEST(SelectivityEstimateTest, RandomCompositionsStayValid) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 500; ++i) {
    auto acc = SelectivityEstimate::point(u(rng));
    for (int j = 0; j < 6; ++j) {
      const auto next = SelectivityEstimate::point(u(rng));
      switch (i % 3) {
        case 0: acc = acc.and_with(next); break;
        case 1: acc = acc.or_with(next); break;
        default: acc = acc.negated().and_with(next); break;
      }
      expect_valid(acc);
    }
  }
}

TEST(SelectivityEstimateTest, DegradationIsMaxComponentIncrease) {
  const SelectivityEstimate orig{0.1, 0.2, 0.3};
  const SelectivityEstimate pruned{0.15, 0.45, 0.5};
  EXPECT_DOUBLE_EQ(selectivity_degradation(orig, pruned), 0.25);  // avg gap
  EXPECT_DOUBLE_EQ(selectivity_degradation(orig, orig), 0.0);
}

TEST(SelectivityEstimateTest, ContainsInterval) {
  const SelectivityEstimate e{0.2, 0.3, 0.4};
  EXPECT_TRUE(e.contains(0.2));
  EXPECT_TRUE(e.contains(0.4));
  EXPECT_TRUE(e.contains(0.35));
  EXPECT_FALSE(e.contains(0.1));
  EXPECT_FALSE(e.contains(0.5));
}

}  // namespace
}  // namespace dbsp
