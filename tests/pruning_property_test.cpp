// The central safety property of subscription pruning (§2.2): a pruned
// subscription must match a *superset* of the events the original matched,
// at every step of any pruning sequence, for any tree shape including
// negation. Routing stays correct exactly because of this invariant.

#include <gtest/gtest.h>

#include <random>

#include "core/candidates.hpp"
#include "test_util.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;
using test::is_subset;
using test::matching_indices;

class GeneralizationProperty : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GeneralizationProperty, EveryPruningStepGeneralizes) {
  const auto [seed, not_prob] = GetParam();
  MiniDomain dom(5, 12);
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  const auto events = dom.random_events(rng, 300);

  std::uniform_int_distribution<std::size_t> leaves(2, 10);
  for (int round = 0; round < 30; ++round) {
    const auto original = dom.random_tree(rng, leaves(rng), not_prob);
    const auto original_matches = matching_indices(*original, events);

    Subscription sub(SubscriptionId(0), original->clone());
    auto previous_matches = original_matches;
    while (true) {
      const auto candidates = enumerate_prunings(sub.root());
      if (candidates.empty()) break;
      apply_pruning(sub, candidates[rng() % candidates.size()]);

      const auto current_matches = matching_indices(sub.root(), events);
      // Monotone growth step by step, hence also vs the original.
      ASSERT_TRUE(is_subset(previous_matches, current_matches))
          << "pruning specialized the subscription\noriginal: "
          << original->to_string(dom.schema())
          << "\npruned:   " << sub.root().to_string(dom.schema());
      previous_matches = current_matches;
      ASSERT_FALSE(sub.root().is_constant());
    }
    ASSERT_TRUE(is_subset(original_matches, previous_matches));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GeneralizationProperty,
    ::testing::Combine(::testing::Values(101, 202, 303),
                       ::testing::Values(0.0, 0.3)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_not" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(GeneralizationAuction, AuctionWorkloadGeneralizesUnderPruning) {
  WorkloadConfig cfg;
  cfg.seed = 13;
  cfg.titles = 150;
  cfg.authors = 60;
  cfg.not_probability = 0.1;
  const AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator sub_gen(domain);
  AuctionEventGenerator event_gen(domain);
  const auto events = event_gen.generate(400);

  std::mt19937_64 rng(5);
  for (int i = 0; i < 60; ++i) {
    const auto tree = sub_gen.next_tree();
    std::vector<std::size_t> before;
    for (std::size_t k = 0; k < events.size(); ++k) {
      if (tree->evaluate_event(events[k])) before.push_back(k);
    }
    Subscription sub(SubscriptionId(0), tree->clone());
    while (true) {
      const auto candidates = enumerate_prunings(sub.root());
      if (candidates.empty()) break;
      apply_pruning(sub, candidates[rng() % candidates.size()]);
    }
    std::vector<std::size_t> after;
    for (std::size_t k = 0; k < events.size(); ++k) {
      if (sub.root().evaluate_event(events[k])) after.push_back(k);
    }
    EXPECT_TRUE(is_subset(before, after));
  }
}

TEST(PruningStructure, PminNeverIncreasesOnNotFreeTrees) {
  // Without negation, the generalizing operator only removes conjuncts, so
  // pmin is non-increasing — the decline the throughput heuristic
  // Δ≈eff = pmin(sy) - pmin(sx) fights by preferring pmin-preserving cuts.
  MiniDomain dom(5, 12);
  std::mt19937_64 rng(606);
  std::uniform_int_distribution<std::size_t> leaves(2, 10);
  for (int round = 0; round < 50; ++round) {
    Subscription sub(SubscriptionId(0), dom.random_tree(rng, leaves(rng), 0.0));
    std::uint32_t last = sub.root().pmin();
    while (true) {
      const auto candidates = enumerate_prunings(sub.root());
      if (candidates.empty()) break;
      apply_pruning(sub, candidates[rng() % candidates.size()]);
      const std::uint32_t now = sub.root().pmin();
      EXPECT_LE(now, last);
      last = now;
    }
  }
}

TEST(PruningStructure, PminCanIncreaseThroughDoubleNegation) {
  // With negation, pruning can *raise* pmin: collapsing a double negation
  // turns a pmin-0 NOT component back into positive predicates. This is
  // why the paper remarks Δ≈eff(sx, sy) > 0 is possible (§3.3).
  MiniDomain dom(2, 12);
  // not(a or not(b)): pmin = 0.
  auto a = Node::leaf(Predicate(dom.attr(0), Op::Eq, Value(1)));
  auto b = Node::leaf(Predicate(dom.attr(1), Op::Eq, Value(2)));
  std::vector<std::unique_ptr<Node>> or_cs;
  or_cs.push_back(std::move(a));
  or_cs.push_back(Node::not_(std::move(b)));
  Subscription sub(SubscriptionId(0), Node::not_(Node::or_(std::move(or_cs))));
  EXPECT_EQ(sub.root().pmin(), 0u);

  // Pruning `a` (negative polarity -> FALSE) leaves not(not(b)) = b.
  apply_pruning(sub, {0, 0});
  EXPECT_EQ(sub.root().kind(), NodeKind::Leaf);
  EXPECT_EQ(sub.root().pmin(), 1u);  // increased: evaluated less often
}

TEST(PruningStructure, MemoryStrictlyDecreasesEachStep) {
  MiniDomain dom(5, 12);
  std::mt19937_64 rng(707);
  std::uniform_int_distribution<std::size_t> leaves(2, 10);
  for (int round = 0; round < 50; ++round) {
    Subscription sub(SubscriptionId(0), dom.random_tree(rng, leaves(rng), 0.2));
    std::size_t last = sub.root().size_bytes();
    while (true) {
      const auto candidates = enumerate_prunings(sub.root());
      if (candidates.empty()) break;
      apply_pruning(sub, candidates[rng() % candidates.size()]);
      const std::size_t now = sub.root().size_bytes();
      EXPECT_LT(now, last);
      last = now;
    }
  }
}

}  // namespace
}  // namespace dbsp
