// Tests for the subscription-aggregation layer (src/agg/): per-operator
// summary soundness and tightness, widening-cap behavior, Boolean
// composition, the no-false-negative property of aggregated matching
// against direct tree evaluation (through ShardedEngine at shards {1, 8}),
// incremental-churn vs rebuild-from-scratch equivalence, and the
// drift-style rescore trigger.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "agg/aggregator.hpp"
#include "agg/summary.hpp"
#include "core/sharded_engine.hpp"
#include "selectivity/stats.hpp"
#include "test_util.hpp"

namespace dbsp::agg {
namespace {

using test::MiniDomain;

std::unique_ptr<Node> leaf(AttributeId attr, Op op, Value value) {
  return Node::leaf(Predicate(attr, op, std::move(value)));
}

Event event_with(AttributeId attr, Value value) {
  Event e;
  e.set(attr, std::move(value));
  return e;
}

// ---------------------------------------------------------------------------
// DimensionSummary: per-operator build soundness (+ tightness where the
// operator admits an exact summary).

class SummaryOperatorTest : public ::testing::Test {
 protected:
  MiniDomain dom_;
  AttributeId a0_ = dom_.attr(0);
  SummaryLimits limits_;

  // Soundness: every value the tree admits, the summary must admit; and if
  // the tree matches an event lacking the attribute, may_match_without()
  // must hold. Returns the summary for additional tightness assertions.
  DimensionSummary check_sound(const Node& tree) {
    const DimensionSummary s =
        DimensionSummary::summarize(tree, a0_, /*numeric=*/true, limits_, nullptr);
    for (std::int64_t v = -5; v < dom_.domain() + 5; ++v) {
      if (tree.evaluate_event(event_with(a0_, Value(v)))) {
        EXPECT_TRUE(s.admits_value(Value(v))) << "false negative at " << v;
      }
    }
    if (tree.evaluate_event(Event{})) {
      EXPECT_TRUE(s.may_match_without());
    }
    return s;
  }
};

TEST_F(SummaryOperatorTest, EqIsExactPoint) {
  const auto s = check_sound(*leaf(a0_, Op::Eq, Value(5)));
  EXPECT_TRUE(s.admits_value(Value(5)));
  EXPECT_FALSE(s.admits_value(Value(4)));
  EXPECT_FALSE(s.admits_value(Value(6)));
  EXPECT_FALSE(s.may_match_without());
}

TEST_F(SummaryOperatorTest, LtLeGtGeAreSoundHalfLines) {
  // Summaries are closed-interval: a strict bound keeps its endpoint (one
  // admissible false positive at the boundary), everything beyond rejects.
  const auto lt = check_sound(*leaf(a0_, Op::Lt, Value(5)));
  EXPECT_TRUE(lt.admits_value(Value(4)));
  EXPECT_FALSE(lt.admits_value(Value(6)));

  const auto le = check_sound(*leaf(a0_, Op::Le, Value(5)));
  EXPECT_TRUE(le.admits_value(Value(5)));
  EXPECT_FALSE(le.admits_value(Value(6)));

  const auto gt = check_sound(*leaf(a0_, Op::Gt, Value(5)));
  EXPECT_TRUE(gt.admits_value(Value(6)));
  EXPECT_FALSE(gt.admits_value(Value(4)));

  const auto ge = check_sound(*leaf(a0_, Op::Ge, Value(5)));
  EXPECT_TRUE(ge.admits_value(Value(5)));
  EXPECT_FALSE(ge.admits_value(Value(4)));
}

TEST_F(SummaryOperatorTest, BetweenIsExactSegment) {
  const auto s =
      check_sound(*Node::leaf(Predicate(a0_, Value(3), Value(7))));
  EXPECT_TRUE(s.admits_value(Value(3)));
  EXPECT_TRUE(s.admits_value(Value(7)));
  EXPECT_FALSE(s.admits_value(Value(2)));
  EXPECT_FALSE(s.admits_value(Value(8)));
}

TEST_F(SummaryOperatorTest, NeIsSound) { check_sound(*leaf(a0_, Op::Ne, Value(5))); }

TEST_F(SummaryOperatorTest, NotWidensToUniverse) {
  const auto s = check_sound(*Node::not_(leaf(a0_, Op::Eq, Value(5))));
  // An event without a0 matches NOT(a0 == 5), so absence must be admitted.
  EXPECT_TRUE(s.may_match_without());
}

TEST_F(SummaryOperatorTest, UnconstrainedDimensionIsUniverse) {
  // Tree constrains a1 only; projected onto a0 it admits everything.
  const auto s = DimensionSummary::summarize(*leaf(dom_.attr(1), Op::Eq, Value(5)),
                                             a0_, true, limits_, nullptr);
  EXPECT_TRUE(s.unconstrained());
  EXPECT_TRUE(s.admits_value(Value(17)));
  EXPECT_TRUE(s.may_match_without());
}

TEST_F(SummaryOperatorTest, AndMeetsOrJoins) {
  // (a0 >= 3) AND (a0 <= 7): the meet is exactly [3, 7].
  std::vector<std::unique_ptr<Node>> and_children;
  and_children.push_back(leaf(a0_, Op::Ge, Value(3)));
  and_children.push_back(leaf(a0_, Op::Le, Value(7)));
  const auto meet = check_sound(*Node::and_(std::move(and_children)));
  EXPECT_FALSE(meet.admits_value(Value(2)));
  EXPECT_TRUE(meet.admits_value(Value(5)));
  EXPECT_FALSE(meet.admits_value(Value(8)));

  // (a0 == 1) OR (a0 == 9): the join admits both points, rejects between.
  std::vector<std::unique_ptr<Node>> or_children;
  or_children.push_back(leaf(a0_, Op::Eq, Value(1)));
  or_children.push_back(leaf(a0_, Op::Eq, Value(9)));
  const auto join = check_sound(*Node::or_(std::move(or_children)));
  EXPECT_TRUE(join.admits_value(Value(1)));
  EXPECT_TRUE(join.admits_value(Value(9)));
  EXPECT_FALSE(join.admits_value(Value(5)));
}

TEST_F(SummaryOperatorTest, IntervalCapMergesButStaysSound) {
  // 6 isolated points under a 4-interval cap: segments merge, every
  // original point stays admitted, and the widening is counted.
  std::vector<std::unique_ptr<Node>> children;
  for (const std::int64_t v : {0, 3, 6, 9, 12, 15}) {
    children.push_back(leaf(a0_, Op::Eq, Value(v)));
  }
  const auto tree = Node::or_(std::move(children));
  std::size_t widenings = 0;
  const auto s = DimensionSummary::summarize(*tree, a0_, true, limits_, &widenings);
  EXPECT_LE(s.intervals().size(), limits_.max_intervals);
  EXPECT_GE(widenings, 1u);
  for (const std::int64_t v : {0, 3, 6, 9, 12, 15}) {
    EXPECT_TRUE(s.admits_value(Value(v))) << v;
  }
}

TEST(SummaryCategoricalTest, ValueCapWidensToAny) {
  Schema schema;
  const AttributeId attr = schema.add_attribute("title", ValueType::String);
  std::vector<std::unique_ptr<Node>> children;
  for (const char* v : {"a", "b", "c", "d"}) {
    children.push_back(Node::leaf(Predicate(attr, Op::Eq, Value(v))));
  }
  const auto tree = Node::or_(std::move(children));

  SummaryLimits tight;
  tight.max_values = 2;
  std::size_t widenings = 0;
  const auto s =
      DimensionSummary::summarize(*tree, attr, /*numeric=*/false, tight, &widenings);
  EXPECT_TRUE(s.all_values());
  EXPECT_GE(widenings, 1u);
  EXPECT_TRUE(s.admits_value(Value("zzz")));  // widened: anything admitted

  SummaryLimits roomy;
  roomy.max_values = 16;
  const auto exact =
      DimensionSummary::summarize(*tree, attr, false, roomy, nullptr);
  EXPECT_FALSE(exact.all_values());
  EXPECT_EQ(exact.values().size(), 4u);
  EXPECT_TRUE(exact.admits_value(Value("c")));
  EXPECT_FALSE(exact.admits_value(Value("zzz")));
}

TEST(SummarySetTest, AdmitsMirrorsTreeOnMissingAttributes) {
  MiniDomain dom;
  // a0 == 5 AND a1 <= 3: an event lacking a0 can never match.
  std::vector<std::unique_ptr<Node>> children;
  children.push_back(leaf(dom.attr(0), Op::Eq, Value(5)));
  children.push_back(leaf(dom.attr(1), Op::Le, Value(3)));
  const auto tree = Node::and_(std::move(children));

  const std::vector<AttributeId> dims{dom.attr(0), dom.attr(1)};
  const auto set =
      SummarySet::summarize(*tree, dims, dom.schema(), SummaryLimits{}, nullptr);

  Event match;
  match.set(dom.attr(0), Value(5));
  match.set(dom.attr(1), Value(2));
  EXPECT_TRUE(set.admits(match));

  EXPECT_FALSE(set.admits(event_with(dom.attr(1), Value(2))));  // a0 absent
  EXPECT_FALSE(set.admits(event_with(dom.attr(0), Value(4))));  // wrong value
}

TEST(SummarySetTest, JoinReportsChangeAndWidens) {
  MiniDomain dom;
  const std::vector<AttributeId> dims{dom.attr(0)};
  const SummaryLimits limits;
  auto a = SummarySet::summarize(*leaf(dom.attr(0), Op::Eq, Value(1)), dims,
                                 dom.schema(), limits, nullptr);
  const auto b = SummarySet::summarize(*leaf(dom.attr(0), Op::Eq, Value(9)), dims,
                                       dom.schema(), limits, nullptr);
  EXPECT_TRUE(a.join(b, limits, nullptr));
  EXPECT_TRUE(a.admits(event_with(dom.attr(0), Value(1))));
  EXPECT_TRUE(a.admits(event_with(dom.attr(0), Value(9))));
  // Joining the same set again is a no-op.
  EXPECT_FALSE(a.join(b, limits, nullptr));
}

// ---------------------------------------------------------------------------
// No-false-negative property: aggregated matching through the engine equals
// direct tree evaluation, at shards 1 and 8, under events with missing
// attributes and NOT-heavy trees.

std::vector<SubscriptionId> oracle_matches(const test::Corpus& corpus,
                                           const Event& event) {
  std::vector<SubscriptionId> out;
  for (const auto& sub : corpus.subs) {
    if (sub->matches(event)) out.push_back(sub->id());
  }
  return out;
}

Event sparse_event(const MiniDomain& dom, std::mt19937_64& rng) {
  Event e;
  std::uniform_int_distribution<std::int64_t> dist(0, dom.domain() - 1);
  std::bernoulli_distribution keep(0.8);
  for (std::size_t i = 0; i < dom.attr_count(); ++i) {
    if (keep(rng)) e.set(dom.attr(i), Value(dist(rng)));
  }
  return e;
}

TEST(AggregatedMatchingTest, NoFalseNegativesAcrossShardCounts) {
  MiniDomain dom;
  std::mt19937_64 rng(7);
  const auto corpus = test::make_corpus(dom, rng, 300, /*not_prob=*/0.2);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    // Cloned corpus per engine: the counting matcher stamps predicate ids
    // into the tree leaves, so one tree may live in only one engine.
    const auto clone = test::clone_corpus(corpus);
    ShardedEngineOptions options;
    options.shards = shards;
    // Disable the cost-based fallback so every event exercises the probe —
    // the no-false-negative contract is what this test checks.
    options.agg_fallback_pct = 0;
    ShardedEngine engine(dom.schema(), options);
    AggregatorOptions agg_options;
    agg_options.max_subgroups = 32;  // small cap: force folding + widening
    SubscriptionAggregator aggregator(dom.schema(), agg_options);
    engine.attach_aggregation(&aggregator);
    for (const auto& sub : clone.subs) ASSERT_TRUE(engine.add(*sub));
    ASSERT_EQ(aggregator.subscription_count(), clone.subs.size());

    std::vector<SubscriptionId> got;
    std::mt19937_64 event_rng(99);
    for (std::size_t i = 0; i < 400; ++i) {
      const Event event = sparse_event(dom, event_rng);
      got.clear();
      engine.match(event, got);
      EXPECT_EQ(got, oracle_matches(corpus, event)) << "shards=" << shards;
    }
    const auto counters = aggregator.counters();
    EXPECT_EQ(counters.events_probed, 400u);
    EXPECT_GT(counters.subgroups_skipped, 0u);  // the probe actually prunes
  }
}

// ---------------------------------------------------------------------------
// Incremental churn vs rebuild-from-scratch equivalence.

TEST(AggregatorChurnTest, ChurnedStateMatchesRebuildFromScratch) {
  MiniDomain dom;
  std::mt19937_64 rng(21);
  auto corpus = test::make_corpus(dom, rng, 240, 0.1);

  AggregatorOptions options;
  options.max_subgroups = 48;
  SubscriptionAggregator churned(dom.schema(), options);
  for (const auto& sub : corpus.subs) churned.add(*sub);
  for (std::size_t i = 0; i < corpus.subs.size(); i += 2) {
    churned.remove(corpus.subs[i]->id());  // every even id departs
  }
  EXPECT_GT(churned.counters().subgroup_rebuilds, 0u);  // removal bursts tighten

  SubscriptionAggregator fresh(dom.schema(), options);
  for (std::size_t i = 1; i < corpus.subs.size(); i += 2) fresh.add(*corpus.subs[i]);
  ASSERT_EQ(churned.subscription_count(), fresh.subscription_count());

  // Matching is exact on both sides regardless of history...
  std::mt19937_64 event_rng(5);
  std::vector<SubscriptionId> a;
  std::vector<SubscriptionId> b;
  for (std::size_t i = 0; i < 200; ++i) {
    const Event event = sparse_event(dom, event_rng);
    a.clear();
    b.clear();
    churned.match(event, a);
    fresh.match(event, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }

  // ...and once the dimension choice is aligned (identical stats over the
  // identical live member set), a full rebuild erases the churn history
  // entirely: both sides re-cluster the same surviving members in id
  // order, so the subgroup structure converges exactly.
  EventStats stats(dom.schema());
  std::mt19937_64 stat_rng(77);
  for (std::size_t i = 0; i < 500; ++i) stats.observe(dom.random_event(stat_rng));
  stats.finalize();
  churned.train(stats);
  fresh.train(stats);
  ASSERT_EQ(churned.dimensions(), fresh.dimensions());
  churned.rebuild();
  fresh.rebuild();
  ASSERT_EQ(churned.subgroup_slots(), fresh.subgroup_slots());
  EXPECT_EQ(churned.subgroup_count(), fresh.subgroup_count());
  EXPECT_EQ(churned.advertised_bytes(), fresh.advertised_bytes());
  for (std::size_t g = 0; g < churned.subgroup_slots(); ++g) {
    const SummarySet* x = churned.subgroup_summary(g);
    const SummarySet* y = fresh.subgroup_summary(g);
    ASSERT_EQ(x == nullptr, y == nullptr) << "slot " << g;
    if (x != nullptr) {
      EXPECT_TRUE(x->equals(*y)) << "slot " << g;
    }
  }
}

TEST(AggregatorChurnTest, RefreshAfterInPlaceGeneralization) {
  MiniDomain dom;
  Subscription sub(SubscriptionId(1), leaf(dom.attr(0), Op::Eq, Value(5)));
  SubscriptionAggregator aggregator(dom.schema());
  aggregator.add(sub);

  const Event far = event_with(dom.attr(0), Value(17));
  std::vector<SubscriptionId> out;
  aggregator.match(far, out);
  EXPECT_TRUE(out.empty());

  // Pruning generalizes the tree in place; refresh() must widen the
  // subgroup summary so the new admissions are not lost.
  sub.replace_root(
      Node::leaf(Predicate(dom.attr(0), Value(0), Value(dom.domain()))));
  aggregator.refresh(sub);
  aggregator.match(far, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front(), SubscriptionId(1));
}

// ---------------------------------------------------------------------------
// Drift-style rescore trigger + trained re-aggregation.

TEST(AggregatorDriftTest, MutationThresholdTripsAndTrainClears) {
  MiniDomain dom;
  std::mt19937_64 rng(3);
  auto corpus = test::make_corpus(dom, rng, 40, 0.0);

  AggregatorOptions options;
  options.rescore_threshold = 10;
  SubscriptionAggregator aggregator(dom.schema(), options);
  for (std::size_t i = 0; i < 9; ++i) aggregator.add(*corpus.subs[i]);
  EXPECT_FALSE(aggregator.rescore_pending());
  aggregator.add(*corpus.subs[9]);
  EXPECT_TRUE(aggregator.rescore_pending());

  EventStats stats(dom.schema());
  std::mt19937_64 event_rng(8);
  for (std::size_t i = 0; i < 500; ++i) stats.observe(dom.random_event(event_rng));
  stats.finalize();
  aggregator.train(stats);
  EXPECT_FALSE(aggregator.rescore_pending());
  EXPECT_EQ(aggregator.dimensions().size(),
            std::min<std::size_t>(options.dimensions, dom.attr_count()));

  // A second wave of arrivals re-arms the trigger...
  for (std::size_t i = 10; i < 20; ++i) aggregator.add(*corpus.subs[i]);
  EXPECT_TRUE(aggregator.rescore_pending());
  aggregator.train(stats);
  EXPECT_FALSE(aggregator.rescore_pending());

  // ...and removals count as mutations too.
  for (std::size_t i = 0; i < 10; ++i) aggregator.remove(corpus.subs[i]->id());
  EXPECT_TRUE(aggregator.rescore_pending());
  aggregator.train(stats);
  EXPECT_FALSE(aggregator.rescore_pending());

  // Matching stays exact across retrains: exactly the surviving members
  // (ids 10..19) are delivered.
  std::vector<SubscriptionId> got;
  for (std::size_t i = 0; i < 100; ++i) {
    const Event event = sparse_event(dom, event_rng);
    got.clear();
    aggregator.match(event, got);
    std::sort(got.begin(), got.end());
    std::vector<SubscriptionId> expected;
    for (std::size_t s = 10; s < 20; ++s) {
      if (corpus.subs[s]->matches(event)) expected.push_back(corpus.subs[s]->id());
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(AggregatorDriftTest, TrainedDimensionsRebuildSubgroups) {
  MiniDomain dom;
  std::mt19937_64 rng(13);
  auto corpus = test::make_corpus(dom, rng, 120, 0.0);
  SubscriptionAggregator aggregator(dom.schema());
  for (const auto& sub : corpus.subs) aggregator.add(*sub);
  const std::uint64_t generation = aggregator.rebuild_generation();

  // Heavily skewed stats: a0 is almost always present with one hot value,
  // making its predicates unselective — training must be able to change
  // the dimension ranking, and any change bumps the rebuild generation.
  EventStats stats(dom.schema());
  std::mt19937_64 event_rng(4);
  for (std::size_t i = 0; i < 500; ++i) {
    Event e = dom.random_event(event_rng);
    e.set(dom.attr(0), Value(1));
    stats.observe(e);
  }
  stats.finalize();
  aggregator.train(stats);
  if (aggregator.rebuild_generation() != generation) {
    EXPECT_GT(aggregator.counters().full_rebuilds, 0u);
  }

  // Exactness is preserved either way.
  std::vector<SubscriptionId> got;
  for (std::size_t i = 0; i < 100; ++i) {
    const Event event = sparse_event(dom, event_rng);
    got.clear();
    aggregator.match(event, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, oracle_matches(corpus, event));
  }
}

}  // namespace
}  // namespace dbsp::agg
