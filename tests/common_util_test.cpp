// Unit tests for the common utilities: env knob parsing must reject
// malformed/overflowing values, and Rng must hard-reject inverted ranges
// (not just assert) because the alternative is UB in Release builds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/env.hpp"
#include "common/rng.hpp"

namespace dbsp {
namespace {

constexpr const char* kVar = "DBSP_COMMON_UTIL_TEST_VAR";

class EnvIntTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }

  static std::int64_t parse(const char* value, std::int64_t fallback) {
    ::setenv(kVar, value, 1);
    return env_int(kVar, fallback);
  }
};

TEST_F(EnvIntTest, ParsesPlainIntegers) {
  EXPECT_EQ(parse("100", -1), 100);
  EXPECT_EQ(parse("-42", -1), -42);
  EXPECT_EQ(parse("0", -1), 0);
  EXPECT_EQ(parse("+7", -1), 7);
}

TEST_F(EnvIntTest, UnsetOrEmptyFallsBack) {
  ::unsetenv(kVar);
  EXPECT_EQ(env_int(kVar, 55), 55);
  EXPECT_EQ(parse("", 55), 55);
}

TEST_F(EnvIntTest, AllowsSurroundingWhitespace) {
  EXPECT_EQ(parse(" 100", -1), 100);
  EXPECT_EQ(parse("100 ", -1), 100);
  EXPECT_EQ(parse("\t100\n", -1), 100);
}

TEST_F(EnvIntTest, RejectsTrailingGarbage) {
  EXPECT_EQ(parse("100abc", 55), 55);
  EXPECT_EQ(parse("100 abc", 55), 55);
  EXPECT_EQ(parse("12.5", 55), 55);
  EXPECT_EQ(parse("0x10", 55), 55);
  EXPECT_EQ(parse("abc", 55), 55);
}

TEST_F(EnvIntTest, RejectsOverflow) {
  EXPECT_EQ(parse("9223372036854775807", -1),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse("9223372036854775808", 55), 55);
  EXPECT_EQ(parse("-9223372036854775809", 55), 55);
  EXPECT_EQ(parse("99999999999999999999999999", 55), 55);
}

TEST(EnvBoolTest, RecognizesTruthyStrings) {
  ::setenv(kVar, "yes", 1);
  EXPECT_TRUE(env_bool(kVar, false));
  ::setenv(kVar, "0", 1);
  EXPECT_FALSE(env_bool(kVar, true));
  ::unsetenv(kVar);
  EXPECT_TRUE(env_bool(kVar, true));
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1234);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntThrowsOnInvertedRange) {
  Rng rng(1234);
  EXPECT_THROW((void)rng.uniform_int(5, 1), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(0, -1), std::invalid_argument);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

}  // namespace
}  // namespace dbsp
