// Adversarial decoding tests: every truncated or malformed wire buffer must
// surface as a WireError, never as a crash, hang, or silently wrong object.
// This suite is the one the CI sanitizer job leans on hardest.

#include "routing/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

using Bytes = std::vector<std::uint8_t>;

Bytes encode_sample_event() {
  MiniDomain dom(4, 100);
  std::mt19937_64 rng(11);
  WireWriter w;
  encode_event(dom.random_event(rng), w);
  return w.bytes();
}

Bytes encode_sample_predicate() {
  WireWriter w;
  encode_predicate(Predicate(AttributeId(3), Value(1), Value(9)), w);
  return w.bytes();
}

Bytes encode_sample_tree() {
  MiniDomain dom(5, 20);
  std::mt19937_64 rng(29);
  WireWriter w;
  encode_tree(*dom.random_tree(rng, 6, 0.25), w);
  return w.bytes();
}

// The wire format is self-delimiting with explicit counts, so no strict
// prefix of a valid encoding is itself a valid encoding: decoding any
// truncation must throw rather than read out of bounds.
template <class Decode>
void expect_all_truncations_throw(const Bytes& valid, Decode decode) {
  for (std::size_t len = 0; len < valid.size(); ++len) {
    WireReader r(std::span<const std::uint8_t>(valid.data(), len));
    EXPECT_THROW((void)decode(r), WireError) << "prefix length " << len;
  }
}

TEST(CodecRobustnessTest, TruncatedEventsThrow) {
  expect_all_truncations_throw(encode_sample_event(),
                               [](WireReader& r) { return decode_event(r); });
}

TEST(CodecRobustnessTest, TruncatedPredicatesThrow) {
  expect_all_truncations_throw(
      encode_sample_predicate(), [](WireReader& r) { return decode_predicate(r); });
}

TEST(CodecRobustnessTest, TruncatedTreesThrow) {
  expect_all_truncations_throw(encode_sample_tree(),
                               [](WireReader& r) { return decode_tree(r); });
}

TEST(CodecRobustnessTest, ReaderPrimitivesCheckBounds) {
  const Bytes three = {1, 2, 3};
  WireReader r(three);
  EXPECT_THROW((void)r.get_u32(), WireError);
  EXPECT_THROW((void)r.get_u64(), WireError);
  EXPECT_THROW((void)r.get_f64(), WireError);
  EXPECT_THROW((void)r.get_string(), WireError);
  EXPECT_EQ(r.get_u8(), 1);  // failed reads must not consume input
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(CodecRobustnessTest, UnknownValueTagThrows) {
  for (const std::uint8_t tag : {std::uint8_t{4}, std::uint8_t{0xff}}) {
    const Bytes buf = {tag, 0, 0, 0, 0, 0, 0, 0, 0};
    WireReader r(buf);
    EXPECT_THROW((void)decode_value(r), WireError) << int(tag);
  }
}

TEST(CodecRobustnessTest, OversizedStringLengthThrows) {
  WireWriter w;
  w.put_u8(2);                 // string value tag
  w.put_u32(0xffffffffu);      // length far beyond the buffer
  w.put_u8('x');
  WireReader r(w.bytes());
  EXPECT_THROW((void)decode_value(r), WireError);
}

TEST(CodecRobustnessTest, OversizedEventCountThrows) {
  WireWriter w;
  w.put_u16(0xffff);  // 65535 attributes announced, none present
  WireReader r(w.bytes());
  EXPECT_THROW((void)decode_event(r), WireError);
}

TEST(CodecRobustnessTest, UnknownOperatorByteThrows) {
  for (const std::uint8_t op : {std::uint8_t{11}, std::uint8_t{0xc8}}) {
    WireWriter w;
    w.put_u32(1);   // attribute
    w.put_u8(op);   // operator beyond Op::Contains
    w.put_u16(1);   // one operand
    encode_value(Value(std::int64_t{5}), w);
    WireReader r(w.bytes());
    EXPECT_THROW((void)decode_predicate(r), WireError) << int(op);
  }
}

TEST(CodecRobustnessTest, WrongOperandCountsThrow) {
  const auto pred_with_operands = [](Op op, std::uint16_t count) {
    WireWriter w;
    w.put_u32(1);
    w.put_u8(static_cast<std::uint8_t>(op));
    w.put_u16(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      encode_value(Value(std::int64_t{i}), w);
    }
    return w.bytes();
  };
  for (const auto& [op, count] :
       std::vector<std::pair<Op, std::uint16_t>>{{Op::Between, 1},
                                                 {Op::Between, 3},
                                                 {Op::Eq, 0},
                                                 {Op::Eq, 2},
                                                 {Op::In, 0},
                                                 {Op::Prefix, 0}}) {
    const Bytes buf = pred_with_operands(op, count);
    WireReader r(buf);
    EXPECT_THROW((void)decode_predicate(r), WireError)
        << to_string(op) << " with " << count << " operands";
  }
}

TEST(CodecRobustnessTest, OversizedOperandCountThrows) {
  WireWriter w;
  w.put_u32(1);
  w.put_u8(static_cast<std::uint8_t>(Op::In));
  w.put_u16(0xffff);  // 65535 operands announced, none present
  WireReader r(w.bytes());
  EXPECT_THROW((void)decode_predicate(r), WireError);
}

TEST(CodecRobustnessTest, UnknownNodeTagThrows) {
  for (const std::uint8_t tag : {std::uint8_t{4}, std::uint8_t{0x7f}}) {
    const Bytes buf = {tag};
    WireReader r(buf);
    EXPECT_THROW((void)decode_tree(r), WireError) << int(tag);
  }
}

TEST(CodecRobustnessTest, ZeroChildConnectivesThrow) {
  for (const std::uint8_t tag : {std::uint8_t{1}, std::uint8_t{2}}) {  // and, or
    const Bytes buf = {tag, 0, 0};  // count u16 == 0
    WireReader r(buf);
    EXPECT_THROW((void)decode_tree(r), WireError) << int(tag);
  }
}

TEST(CodecRobustnessTest, OversizedChildCountThrows) {
  const Bytes buf = {1, 0xff, 0xff};  // AND with 65535 children, none present
  WireReader r(buf);
  EXPECT_THROW((void)decode_tree(r), WireError);
}

TEST(CodecRobustnessTest, DeeplyNestedTreeThrowsInsteadOfOverflowingStack) {
  Bytes buf(100000, 3);  // 100k nested NOT tags
  WireReader r(buf);
  EXPECT_THROW((void)decode_tree(r), WireError);
}

TEST(CodecRobustnessTest, WireHeaderRoundTrips) {
  WireWriter w;
  encode_wire_header(w);
  ASSERT_EQ(w.size(), kWireHeaderBytes);
  WireReader r(w.bytes());
  EXPECT_EQ(decode_wire_header(r), kWireFormatVersion);
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecRobustnessTest, WireHeaderRejectsBadMagic) {
  const Bytes buf = {0x00, kWireFormatVersion};
  WireReader r(buf);
  EXPECT_THROW((void)decode_wire_header(r), WireError);
}

TEST(CodecRobustnessTest, WireHeaderRejectsUnknownVersions) {
  // Version 0 and every version newer than this build must be refused: a
  // future format bump may change any payload encoding, so decoding past
  // the header would misparse. 1..kWireFormatVersion stay accepted.
  for (int version = 0; version <= 255; ++version) {
    const Bytes buf = {kWireMagic, static_cast<std::uint8_t>(version)};
    WireReader r(buf);
    if (version >= 1 && version <= kWireFormatVersion) {
      EXPECT_EQ(decode_wire_header(r), version);
    } else {
      EXPECT_THROW((void)decode_wire_header(r), WireError) << version;
    }
  }
}

TEST(CodecRobustnessTest, TruncatedWireHeaderThrows) {
  WireWriter w;
  encode_wire_header(w);
  expect_all_truncations_throw(
      w.bytes(), [](WireReader& r) { return decode_wire_header(r); });
}

TEST(CodecRobustnessTest, ValidBuffersStillDecodeAfterHardening) {
  const Bytes event = encode_sample_event();
  WireReader re(event);
  EXPECT_NO_THROW((void)decode_event(re));
  EXPECT_TRUE(re.exhausted());

  const Bytes tree = encode_sample_tree();
  WireReader rt(tree);
  EXPECT_NO_THROW((void)decode_tree(rt));
  EXPECT_TRUE(rt.exhausted());
}

}  // namespace
}  // namespace dbsp
