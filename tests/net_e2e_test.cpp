// End-to-end tests of the dbspd daemon core over real loopback TCP:
// multi-client fan-out checked against a naive oracle, slow-reader
// backpressure (bounded write queues -> slow-consumer disconnect), clean
// disconnects releasing subscriptions, daemon kill -> warm restart via
// PubSub::open() with clients re-adopting their ids, graceful drain
// delivering every in-flight notification, and a full sockets-mode
// scenario soak (churn + flash crowd + kill-and-recover) staying
// oracle-exact across the wire. The TSan CI lane runs this suite to race
// the io thread against the test thread's stats()/stop() surface.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/pubsub.hpp"
#include "net/client.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "scenario/scenario_runner.hpp"
#include "test_util.hpp"

namespace dbsp::net {
namespace {

namespace fs = std::filesystem;
using test::MiniDomain;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dbsp_net_" + tag + "_" + std::to_string(counter++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::unique_ptr<NetServer> start_server(PubSub pubsub,
                                        NetServerOptions options = {}) {
  auto server = NetServer::start(std::move(pubsub), options);
  EXPECT_TRUE(server.ok()) << server.status().to_string();
  return std::move(server).value();
}

DbspClient connect_to(const NetServer& server) {
  auto client = DbspClient::connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().to_string();
  return std::move(client).value();
}

/// Polls `cond` for up to ~5s (the io thread applies disconnects async).
template <class Cond>
bool eventually(Cond&& cond) {
  for (int i = 0; i < 500; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(NetE2eTest, MultiClientFanOutMatchesNaiveOracle) {
  MiniDomain dom(6, 30);
  auto server = start_server(PubSub(dom.schema()));

  // Four subscriber clients, each holding several subscriptions; oracle
  // clones stay on the test side.
  struct Entry {
    std::uint64_t id;
    std::unique_ptr<Node> tree;
  };
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kSubsPerClient = 8;
  std::mt19937_64 rng(42);
  std::vector<DbspClient> subscribers;
  std::vector<std::vector<Entry>> entries(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    subscribers.push_back(connect_to(*server));
    for (std::size_t s = 0; s < kSubsPerClient; ++s) {
      auto tree = dom.random_tree(rng, 4, 0.2);
      auto id = subscribers[c].subscribe(*tree);
      ASSERT_TRUE(id.ok()) << id.status().to_string();
      entries[c].push_back(Entry{id.value(), std::move(tree)});
    }
  }
  DbspClient publisher = connect_to(*server);

  for (int ev = 0; ev < 200; ++ev) {
    const Event event = dom.random_event(rng);
    auto matched = publisher.publish(event);
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();

    std::uint64_t total_expected = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      std::vector<std::uint64_t> expected;
      for (const Entry& e : entries[c]) {
        if (e.tree->evaluate_event(event)) expected.push_back(e.id);
      }
      total_expected += expected.size();
      std::vector<std::uint64_t> got;
      for (std::size_t k = 0; k < expected.size(); ++k) {
        auto n = subscribers[c].next_notification(5000);
        ASSERT_TRUE(n.ok()) << n.status().to_string();
        ASSERT_TRUE(n.value().has_value())
            << "client " << c << " missing notification " << k;
        got.push_back(n.value()->subscription);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "client " << c << " event " << ev;
      // And no strays beyond the expected count.
      auto extra = subscribers[c].next_notification(0);
      ASSERT_TRUE(extra.ok());
      EXPECT_FALSE(extra.value().has_value()) << "client " << c;
    }
    EXPECT_EQ(matched.value(), total_expected);
  }
}

TEST(NetE2eTest, SlowReaderHitsBoundedQueueAndIsDisconnected) {
  // Blob schema: each notification carries ~64 KiB, so an unread consumer
  // overruns kernel buffers and then the server-side bounded queue fast.
  Schema schema;
  const AttributeId x = schema.add_attribute("x", ValueType::Int);
  const AttributeId blob = schema.add_attribute("blob", ValueType::String);
  NetServerOptions options;
  options.max_write_queue_bytes = 256 * 1024;
  auto server = start_server(PubSub(schema), options);

  DbspClient slow = connect_to(*server);
  const auto match_all = Node::leaf(Predicate(x, Op::Ge, Value(0)));
  auto id = slow.subscribe(*match_all);
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  DbspClient publisher = connect_to(*server);
  Event event;
  event.set(x, Value(1));
  event.set(blob, Value(std::string(64 * 1024, 'b')));
  bool disconnected = false;
  for (int i = 0; i < 400 && !disconnected; ++i) {
    auto matched = publisher.publish(event);
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
    disconnected = server->stats().slow_consumer_disconnects > 0;
  }
  EXPECT_TRUE(disconnected) << "bounded write queue never tripped";
  // The disconnect released the subscription; the daemon stays healthy.
  EXPECT_TRUE(eventually([&] { return server->stats().subscriptions == 0; }));
  auto pong = publisher.ping(1);
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
}

TEST(NetE2eTest, CleanDisconnectReleasesSubscriptions) {
  MiniDomain dom(4, 20);
  auto server = start_server(PubSub(dom.schema()));
  std::mt19937_64 rng(7);
  {
    DbspClient client = connect_to(*server);
    for (int i = 0; i < 3; ++i) {
      auto id = client.subscribe(*dom.random_tree(rng, 3));
      ASSERT_TRUE(id.ok()) << id.status().to_string();
    }
    EXPECT_EQ(server->stats().subscriptions, 3u);
  }  // client destroyed -> clean close
  EXPECT_TRUE(eventually([&] { return server->stats().subscriptions == 0; }));
}

TEST(NetE2eTest, KillRestartWarmAndReAdoptStaysExact) {
  MiniDomain dom(5, 25);
  TempDir dir("warm");
  const auto open_pubsub = [&] {
    StoreOptions store;
    store.directory = dir.str();
    store.schema = dom.schema();
    auto opened = PubSub::open(std::move(store));
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    return std::move(opened).value();
  };

  std::mt19937_64 rng(99);
  struct Entry {
    std::uint64_t id;
    std::unique_ptr<Node> tree;
  };
  std::vector<Entry> live;

  auto server = start_server(open_pubsub());
  {
    DbspClient subscriber = connect_to(*server);
    for (int i = 0; i < 6; ++i) {
      auto tree = dom.random_tree(rng, 4, 0.25);
      auto id = subscriber.subscribe(*tree);
      ASSERT_TRUE(id.ok()) << id.status().to_string();
      live.push_back(Entry{id.value(), std::move(tree)});
    }
    // Kill: no drain, no checkpoint, no client goodbye. The WAL already
    // holds every acknowledged subscribe, so nothing is lost — and the
    // kill must NOT unsubscribe anyone (only clean disconnects do).
    server->stop(/*drain=*/false);
  }

  server = start_server(open_pubsub());
  EXPECT_EQ(server->stats().subscriptions, live.size());

  DbspClient subscriber = connect_to(*server);
  DbspClient publisher = connect_to(*server);
  for (const Entry& e : live) {
    auto adopted = subscriber.adopt(e.id);
    ASSERT_TRUE(adopted.ok()) << adopted.status().to_string();
    EXPECT_EQ(adopted.value(), e.id);
  }
  // Adopting an id someone owns is refused.
  DbspClient thief = connect_to(*server);
  auto stolen = thief.adopt(live.front().id);
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(), ErrorCode::kFailedPrecondition);

  for (int ev = 0; ev < 120; ++ev) {
    const Event event = dom.random_event(rng);
    auto matched = publisher.publish(event);
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
    std::vector<std::uint64_t> expected;
    for (const Entry& e : live) {
      if (e.tree->evaluate_event(event)) expected.push_back(e.id);
    }
    std::vector<std::uint64_t> got;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      auto n = subscriber.next_notification(5000);
      ASSERT_TRUE(n.ok()) << n.status().to_string();
      ASSERT_TRUE(n.value().has_value());
      got.push_back(n.value()->subscription);
    }
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "event " << ev;
    EXPECT_EQ(matched.value(), expected.size());
  }
}

TEST(NetE2eTest, GracefulDrainDeliversQueuedNotifications) {
  MiniDomain dom(4, 10);
  auto server = start_server(PubSub(dom.schema()));

  DbspClient subscriber = connect_to(*server);
  const auto match_all = Node::leaf(Predicate(dom.attr(0), Op::Ge, Value(0)));
  auto id = subscriber.subscribe(*match_all);
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  DbspClient publisher = connect_to(*server);
  constexpr int kEvents = 200;
  std::mt19937_64 rng(3);
  for (int i = 0; i < kEvents; ++i) {
    auto matched = publisher.publish(dom.random_event(rng));
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
    ASSERT_EQ(matched.value(), 1u);
  }

  // Graceful drain with the subscriber having read nothing: every queued
  // notification must be flushed before the server closes.
  server->stop(/*drain=*/true);

  int received = 0;
  for (; received < kEvents; ++received) {
    auto n = subscriber.next_notification(5000);
    if (!n.ok() || !n.value().has_value()) break;
  }
  EXPECT_EQ(received, kEvents);
}

/// Minimal HTTP GET against the metrics endpoint over the raw socket
/// helpers (the server closes after one response, so read to EOF).
std::string http_get(std::uint16_t port, const std::string& target) {
  auto sock = tcp_connect("127.0.0.1", port, 5000);
  if (!sock.ok()) return {};
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
  if (!send_all(sock.value().fd(),
                std::span(reinterpret_cast<const std::uint8_t*>(req.data()),
                          req.size()))
           .ok()) {
    return {};
  }
  std::string out;
  std::uint8_t chunk[4096];
  while (true) {
    auto readable = wait_readable(sock.value().fd(), 5000);
    if (!readable.ok() || readable.value() == 0) break;
    auto got = recv_some(sock.value().fd(), chunk);
    if (!got.ok() || got.value() == 0) break;
    out.append(reinterpret_cast<const char*>(chunk), got.value());
  }
  return out;
}

/// The value of one exposition line ("series value"), or -1 when absent.
double prom_value(const std::string& text, const std::string& series) {
  const std::string needle = "\n" + series + " ";
  const auto at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::stod(text.substr(at + needle.size()));
}

TEST(NetE2eTest, MetricsVerbHttpAndFacadeAgree) {
  // The three-export contract: PubSub::metrics(), the kMetrics verb, and
  // GET /metrics must report identical facade counters for a quiesced
  // deterministic workload — and all three must answer during load.
  MiniDomain dom(5, 20);
  PubSubOptions options;
  options.engine.shards = 2;
  options.metrics_sample = 1;
  NetServerOptions net;
  net.metrics_port = 0;  // ephemeral
  auto server = start_server(PubSub(dom.schema(), options), net);
  ASSERT_NE(server->metrics_port(), 0);

  std::mt19937_64 rng(11);
  DbspClient subscriber = connect_to(*server);
  for (int i = 0; i < 5; ++i) {
    auto id = subscriber.subscribe(*dom.random_tree(rng, 3));
    ASSERT_TRUE(id.ok()) << id.status().to_string();
  }
  DbspClient publisher = connect_to(*server);
  constexpr std::uint64_t kEvents = 150;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    auto matched = publisher.publish(dom.random_event(rng));
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
    if (i % 50 == 25) {
      // Scrapes during active publish load answer on both channels.
      auto verb = publisher.metrics();
      ASSERT_TRUE(verb.ok()) << verb.status().to_string();
      EXPECT_FALSE(verb.value().metrics.empty());
      EXPECT_NE(http_get(server->metrics_port(), "/metrics").find("200 OK"),
                std::string::npos);
    }
  }

  // Quiesced (the last publish reply is in): the facade-owned series must
  // agree exactly across all three exports. Net-edge frame/byte counters
  // are excluded — the scrapes themselves advance them.
  const obs::MetricsSnapshot facade = server->pubsub()->metrics();
  auto verb = publisher.metrics();
  ASSERT_TRUE(verb.ok()) << verb.status().to_string();
  const std::string http = http_get(server->metrics_port(), "/metrics");
  ASSERT_NE(http.find("200 OK"), std::string::npos);
  EXPECT_NE(http.find(obs::prometheus_content_type()), std::string::npos);

  const auto agree = [&](const std::string& name) {
    const double f = facade.value(name);
    EXPECT_EQ(verb.value().value(name), f) << name;
    EXPECT_EQ(prom_value(http, name), f) << name;
  };
  agree("dbsp_publishes_total");
  agree("dbsp_events_total");
  agree("dbsp_matches_total");
  agree("dbsp_match_events_total");
  agree("dbsp_subscriptions");
  agree("dbsp_net_events_published_total");
  EXPECT_EQ(facade.value("dbsp_publishes_total"),
            static_cast<double>(kEvents));
  EXPECT_EQ(facade.value("dbsp_net_events_published_total"),
            static_cast<double>(kEvents));
  EXPECT_EQ(facade.value("dbsp_subscriptions"), 5.0);

  // Per-shard match histograms in all three exports: every published
  // event visits every shard exactly once.
  for (int shard = 0; shard < 2; ++shard) {
    const obs::Labels labels = {{"shard", std::to_string(shard)}};
    const obs::MetricSnapshot* fm = facade.find("dbsp_shard_match_us", labels);
    ASSERT_NE(fm, nullptr) << "shard " << shard;
    EXPECT_EQ(fm->histogram.count, kEvents);
    const obs::MetricSnapshot* vm =
        verb.value().find("dbsp_shard_match_us", labels);
    ASSERT_NE(vm, nullptr) << "shard " << shard;
    EXPECT_EQ(vm->histogram.count, fm->histogram.count);
    EXPECT_EQ(prom_value(http, "dbsp_shard_match_us_count{shard=\"" +
                                   std::to_string(shard) + "\"}"),
              static_cast<double>(fm->histogram.count));
  }

  // WAL lag and the net write-queue high-water are visible everywhere
  // (zero-valued here: non-durable store, fast consumer).
  EXPECT_NE(facade.find("dbsp_wal_lag_records"), nullptr);
  EXPECT_NE(verb.value().find("dbsp_wal_lag_records"), nullptr);
  EXPECT_GE(prom_value(http, "dbsp_wal_lag_records"), 0.0);
  EXPECT_NE(facade.find("dbsp_net_write_queue_high_water_bytes"), nullptr);
  EXPECT_NE(verb.value().find("dbsp_net_write_queue_high_water_bytes"),
            nullptr);
  EXPECT_GE(prom_value(http, "dbsp_net_write_queue_high_water_bytes"), 0.0);

  // NetStats parity: the registry's net series mirror the legacy struct.
  const NetStats stats = server->stats();
  EXPECT_EQ(verb.value().value("dbsp_net_events_published_total"),
            static_cast<double>(stats.events_published));
  EXPECT_EQ(verb.value().value("dbsp_net_subscriptions"),
            static_cast<double>(stats.subscriptions));

  // Anything but GET /metrics is a 404.
  EXPECT_NE(http_get(server->metrics_port(), "/other").find("404"),
            std::string::npos);
}

TEST(NetE2eTest, HttpMetricsKeepsServingDuringGracefulDrain) {
  // Big notifications against an unread subscriber build real pending
  // write-queue bytes; a graceful drain then has work to flush, and the
  // HTTP endpoint must keep answering while it does.
  Schema schema;
  const AttributeId x = schema.add_attribute("x", ValueType::Int);
  const AttributeId blob = schema.add_attribute("blob", ValueType::String);
  NetServerOptions net;
  net.metrics_port = 0;
  net.drain_timeout_ms = 20000;
  net.max_write_queue_bytes = 64u << 20;  // hold, don't disconnect
  auto server = start_server(PubSub(schema), net);

  DbspClient slow = connect_to(*server);
  const auto match_all = Node::leaf(Predicate(x, Op::Ge, Value(0)));
  auto id = slow.subscribe(*match_all);
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  DbspClient publisher = connect_to(*server);
  Event event;
  event.set(x, Value(1));
  event.set(blob, Value(std::string(64 * 1024, 'b')));
  constexpr int kEvents = 100;
  for (int i = 0; i < kEvents; ++i) {
    auto matched = publisher.publish(event);
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
  }

  server->request_stop_async(/*drain=*/true);
  // ~6 MiB of unread notifications cannot fit the kernel buffers, so the
  // drain stays in progress until the subscriber reads; meanwhile the
  // scrape endpoint answers with the draining gauge raised.
  ASSERT_TRUE(eventually([&] {
    return prom_value(http_get(server->metrics_port(), "/metrics"),
                      "dbsp_net_draining") == 1.0;
  }));
  const std::string http = http_get(server->metrics_port(), "/metrics");
  EXPECT_NE(http.find("200 OK"), std::string::npos);
  EXPECT_EQ(prom_value(http, "dbsp_net_events_published_total"),
            static_cast<double>(kEvents));

  int received = 0;
  for (; received < kEvents; ++received) {
    auto n = slow.next_notification(10000);
    if (!n.ok() || !n.value().has_value()) break;
  }
  EXPECT_EQ(received, kEvents);
  server->wait();
  EXPECT_FALSE(server->running());
}

TEST(NetE2eTest, HealthzAndBuildinfoAnswerOnTheMetricsPort) {
  Schema schema;
  schema.add_attribute("x", ValueType::Int);
  NetServerOptions net;
  net.metrics_port = 0;
  auto server = start_server(PubSub(schema), net);
  ASSERT_NE(server->metrics_port(), 0);

  const std::string health = http_get(server->metrics_port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"draining\": 0"), std::string::npos) << health;
  EXPECT_NE(health.find("\"uptime_s\": "), std::string::npos) << health;
  EXPECT_NE(health.find("\"connections\": "), std::string::npos) << health;

  const std::string build = http_get(server->metrics_port(), "/buildinfo");
  EXPECT_NE(build.find("200 OK"), std::string::npos) << build;
  EXPECT_NE(build.find("\"name\": \"dbspd\""), std::string::npos) << build;
  EXPECT_NE(build.find("\"wire_format_version\": "), std::string::npos)
      << build;
}

TEST(NetE2eTest, TracesAgreeAcrossFacadeVerbAndHttp) {
  // The three-export contract for traces: PubSub::traces()/traces_json(),
  // the kTraces verb, and GET /traces must all serve the same flight
  // recorder — same entries, same trace ids, same spans.
  Schema schema;
  const AttributeId x = schema.add_attribute("x", ValueType::Int);
  PubSubOptions options;
  options.trace.sample_every = 1;  // every publish head-sampled
  options.trace.capacity = 512;
  options.trace.slow_k = 4;
  options.trace.window_ms = 60000;
  NetServerOptions net;
  net.metrics_port = 0;
  auto server = start_server(PubSub(schema, options), net);
  ASSERT_NE(server->metrics_port(), 0);

  DbspClient subscriber = connect_to(*server);
  const auto match_all = Node::leaf(Predicate(x, Op::Ge, Value(0)));
  auto id = subscriber.subscribe(*match_all);
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  // A traced publisher: every request carries an active sampled context,
  // so the server records a server_dispatch entry joining the same trace.
  DbspClient publisher = connect_to(*server);
  publisher.attach_trace_recorder(
      std::make_shared<obs::FlightRecorder>(options.trace));

  Event event;
  event.set(x, Value(7));
  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    auto matched = publisher.publish(event);
    ASSERT_TRUE(matched.ok()) << matched.status().to_string();
    EXPECT_EQ(matched.value(), 1u);
  }
  for (int i = 0; i < kEvents; ++i) {
    auto n = subscriber.next_notification(5000);
    ASSERT_TRUE(n.ok()) << n.status().to_string();
    ASSERT_TRUE(n.value().has_value()) << "notification " << i;
  }

  // Quiesce: the delivery entries land asynchronously after the socket
  // flush; wait for the recorder to go stable.
  const auto recorder = server->pubsub()->trace_recorder();
  ASSERT_NE(recorder, nullptr);
  std::uint64_t prev = 0;
  ASSERT_TRUE(eventually([&] {
    const std::uint64_t now = recorder->recorded_total();
    const bool stable = now > 0 && now == prev;
    prev = now;
    return stable;
  }));

  const std::vector<obs::Trace> facade = server->pubsub()->traces();
  const std::string facade_json = server->pubsub()->traces_json();
  auto verb = publisher.traces();
  ASSERT_TRUE(verb.ok()) << verb.status().to_string();
  const std::string http = http_get(server->metrics_port(), "/traces");
  ASSERT_NE(http.find("200 OK"), std::string::npos);
  ASSERT_FALSE(facade.empty());

  // Same entry set everywhere (nothing records between the three pulls).
  EXPECT_EQ(verb.value().traces.size(), facade.size());
  EXPECT_EQ(verb.value().recorded_total, recorder->recorded_total());
  EXPECT_EQ(verb.value().dropped_total, recorder->dropped_total());

  // Pick the slowest entry and find the same one (trace id, span count,
  // span ids, stage names) through the wire verb.
  const obs::Trace* slow = &facade[0];
  for (const obs::Trace& t : facade) {
    if (t.duration_us > slow->duration_us) slow = &t;
  }
  ASSERT_FALSE(slow->spans.empty());
  const auto stages = [](const obs::Trace& t) {
    std::vector<std::string> names;
    names.reserve(t.spans.size());
    for (const obs::TraceSpan& s : t.spans) {
      names.emplace_back(obs::to_string(s.stage));
    }
    return names;
  };
  const obs::Trace* over_wire = nullptr;
  for (const obs::Trace& t : verb.value().traces) {
    if (t.trace_id == slow->trace_id && t.spans.size() == slow->spans.size() &&
        t.spans[0].span_id == slow->spans[0].span_id) {
      over_wire = &t;
    }
  }
  ASSERT_NE(over_wire, nullptr);
  EXPECT_EQ(stages(*over_wire), stages(*slow));
  EXPECT_EQ(over_wire->duration_us, slow->duration_us);
  EXPECT_EQ(over_wire->parent_span, slow->parent_span);
  EXPECT_EQ(over_wire->sampled, slow->sampled);

  // Both JSON exports carry that trace — same id, same number of entries.
  const std::string id_token =
      "\"trace_id\": \"" + std::to_string(slow->trace_id) + "\"";
  const auto count_occurrences = [](const std::string& hay,
                                    const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size())) {
      ++count;
    }
    return count;
  };
  EXPECT_GE(count_occurrences(facade_json, id_token), 1u);
  EXPECT_EQ(count_occurrences(http, id_token),
            count_occurrences(facade_json, id_token));
  for (const std::string& name : stages(*slow)) {
    EXPECT_NE(http.find("\"stage\": \"" + name + "\""), std::string::npos)
        << name;
  }

  // End-to-end span coverage: across the entries of that trace the server
  // saw the dispatch, the match, and the delivery out the socket.
  std::set<std::string> across;
  for (const obs::Trace& t : facade) {
    if (t.trace_id != slow->trace_id) continue;
    for (const obs::TraceSpan& s : t.spans) {
      across.insert(obs::to_string(s.stage));
    }
  }
  for (const char* required : {"server_dispatch", "match", "dispatch",
                               "queue_wait", "socket_write"}) {
    EXPECT_EQ(across.count(required), 1u) << required;
  }
  // And the client side of the same trace sits in the publisher's
  // recorder under the same trace id.
  bool client_side = false;
  for (const obs::Trace& t : publisher.trace_recorder()->snapshot()) {
    if (t.trace_id != slow->trace_id) continue;
    for (const obs::TraceSpan& s : t.spans) {
      client_side |= s.stage == obs::TraceStage::kClientRequest;
    }
  }
  EXPECT_TRUE(client_side);
}

TEST(NetE2eTest, SocketsScenarioSoakIsExact) {
  // The full soak across the wire: churn + flash crowd + kill-and-recover
  // over loopback TCP, every delivery checked against the naive oracle.
  const auto domain = make_workload("auction");
  TempDir dir("soak");
  ScenarioConfig config = ScenarioConfig::soak(120, 80);
  config.transport = ScenarioTransport::kSockets;
  config.pruning = false;
  config.check_every = 1;
  config.store_directory = dir.str();
  config.kill_recover_phases = {2};
  ScenarioRunner runner(*domain, config);
  const ScenarioReport report = runner.run();
  EXPECT_EQ(report.mode, "sockets");
  EXPECT_TRUE(report.exact()) << report.total_mismatches() << " mismatches";
  EXPECT_EQ(report.total_recoveries(), 1u);
  EXPECT_GT(report.total_events(), 0u);
}

TEST(NetE2eTest, TracedSocketsSoakStaysExactWithTwoSidedSpans) {
  // The soak with tracing armed on both sides: every publish carries a
  // sampled context, the oracle must stay exact (tracing cannot perturb
  // matching), and every sampled trace must have spans on both the client
  // and the server side of the wire.
  const auto domain = make_workload("auction");
  ScenarioConfig config = ScenarioConfig::soak(100, 60);
  config.transport = ScenarioTransport::kSockets;
  config.pruning = false;
  config.check_every = 1;
  config.tracing = true;
  config.trace.sample_every = 1;  // every publish sampled: full coverage
  // Both rings must hold the whole soak without wrapping: the server side
  // records one entry per delivery on top of the per-publish entries.
  config.trace.capacity = 16384;
  config.trace.slow_k = 8;
  config.trace.window_ms = 60000;
  ScenarioRunner runner(*domain, config);
  const ScenarioReport report = runner.run();
  EXPECT_EQ(report.mode, "sockets");
  EXPECT_TRUE(report.exact()) << report.total_mismatches() << " mismatches";
  EXPECT_GT(report.total_events(), 0u);

  // Every publish was traced and head-sampled...
  EXPECT_EQ(report.traced_publishes, report.total_events());
  EXPECT_EQ(report.sampled_publishes, report.traced_publishes);
  // ...the client recorder kept an entry for each (ring is big enough)...
  EXPECT_GE(report.client_traces, report.sampled_publishes);
  EXPECT_GE(report.server_traces, report.sampled_publishes);
  // ...and every sampled trace id has entries on *both* sides.
  EXPECT_EQ(report.joined_traces, report.sampled_publishes);
  // The subscriber measured publish-to-notification latency.
  EXPECT_GT(report.e2e_latency_samples, 0u);
}

TEST(NetE2eTest, SocketsTransportRejectsPruning) {
  const auto domain = make_workload("auction");
  ScenarioConfig config = ScenarioConfig::soak(10, 10);
  config.transport = ScenarioTransport::kSockets;
  config.pruning = true;
  ScenarioRunner runner(*domain, config);
  EXPECT_THROW((void)runner.run(), std::logic_error);
}

}  // namespace
}  // namespace dbsp::net
