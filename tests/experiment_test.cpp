#include <gtest/gtest.h>

#include <sstream>

#include "experiment/centralized.hpp"
#include "experiment/distributed.hpp"
#include "experiment/series.hpp"

namespace dbsp {
namespace {

CentralizedConfig tiny_centralized() {
  CentralizedConfig cfg;
  cfg.workload.seed = 11;
  cfg.workload.titles = 200;
  cfg.workload.authors = 80;
  cfg.subscriptions = 400;
  cfg.events = 150;
  cfg.training_events = 1500;
  cfg.fractions = {0.0, 0.5, 1.0};
  return cfg;
}

TEST(CentralizedExperimentTest, ProducesMonotoneMetrics) {
  const auto result = run_centralized(tiny_centralized(), PruneDimension::NetworkLoad);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_GT(result.total_possible_prunings, 0u);

  // Pruning progress follows the requested fractions.
  EXPECT_EQ(result.points[0].prunings_performed, 0u);
  EXPECT_EQ(result.points[2].prunings_performed, result.total_possible_prunings);

  // Matching volume grows monotonically (generalization) and associations
  // shrink monotonically.
  EXPECT_LE(result.points[0].matching_fraction, result.points[1].matching_fraction);
  EXPECT_LE(result.points[1].matching_fraction, result.points[2].matching_fraction);
  EXPECT_GE(result.points[0].associations, result.points[1].associations);
  EXPECT_GE(result.points[1].associations, result.points[2].associations);
  EXPECT_DOUBLE_EQ(result.points[0].association_reduction, 0.0);
  EXPECT_GT(result.points[2].association_reduction, 0.0);
}

TEST(CentralizedExperimentTest, DimensionsDiverge) {
  const auto cfg = tiny_centralized();
  const auto net = run_centralized(cfg, PruneDimension::NetworkLoad);
  const auto mem = run_centralized(cfg, PruneDimension::MemoryUsage);
  // Identical workload: same total pruning capacity and same baseline.
  EXPECT_EQ(net.total_possible_prunings, mem.total_possible_prunings);
  EXPECT_EQ(net.points[0].matches, mem.points[0].matches);
  // At 50% pruning the network heuristic forwards no more events than the
  // memory heuristic (its defining property).
  EXPECT_LE(net.points[1].matching_fraction, mem.points[1].matching_fraction);
  // And the memory heuristic reduced associations at least as much.
  EXPECT_GE(mem.points[1].association_reduction,
            net.points[1].association_reduction - 1e-12);
}

TEST(DistributedExperimentTest, RunsAndKeepsNotificationsInvariant) {
  DistributedConfig cfg;
  cfg.workload.seed = 23;
  cfg.workload.titles = 200;
  cfg.workload.authors = 80;
  cfg.brokers = 3;
  cfg.subscriptions = 240;
  cfg.events = 90;
  cfg.training_events = 1200;
  cfg.fractions = {0.0, 0.5, 1.0};

  // run_distributed throws if notifications change across fractions.
  const auto result = run_distributed(cfg, PruneDimension::NetworkLoad);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_GT(result.total_possible_prunings, 0u);
  EXPECT_DOUBLE_EQ(result.points[0].network_increase, 0.0);
  EXPECT_GE(result.points[2].network_increase, result.points[0].network_increase);
  EXPECT_GE(result.points[2].association_reduction,
            result.points[0].association_reduction);
  for (const auto& p : result.points) {
    EXPECT_EQ(p.notifications, result.baseline_notifications);
  }
}

TEST(SeriesTest, FractionGridCoversUnitInterval) {
  const auto grid = fraction_grid(0.25);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  const auto coarse = fraction_grid(0.4);
  EXPECT_DOUBLE_EQ(coarse.back(), 1.0);  // 1.0 appended even off-grid
}

TEST(SeriesTest, PrintFigureEmitsTableAndCsv) {
  Series s1{"A", {{0.0, 1.0}, {0.5, 2.0}}};
  Series s2{"B", {{0.0, 3.0}, {0.5, 4.0}}};
  std::ostringstream os;
  print_figure(os, "Demo figure", "x", "metric", {s1, s2});
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo figure"), std::string::npos);
  EXPECT_NE(out.find("csv,x,A,B"), std::string::npos);
  EXPECT_NE(out.find("csv,0.5,2,4"), std::string::npos);
}

}  // namespace
}  // namespace dbsp
