#include "broker/simnet.hpp"

#include <gtest/gtest.h>

namespace dbsp {
namespace {

Message event_message(std::uint64_t seq = 0) {
  Message m;
  m.type = Message::Type::Event;
  m.event_seq = seq;
  return m;
}

TEST(SimNetTest, ConnectAndNeighbors) {
  SimulatedNetwork net(3);
  net.connect(BrokerId(0), BrokerId(1));
  net.connect(BrokerId(1), BrokerId(2));
  EXPECT_TRUE(net.connected(BrokerId(0), BrokerId(1)));
  EXPECT_TRUE(net.connected(BrokerId(1), BrokerId(0)));
  EXPECT_FALSE(net.connected(BrokerId(0), BrokerId(2)));
  EXPECT_EQ(net.neighbors(BrokerId(1)).size(), 2u);
  net.connect(BrokerId(0), BrokerId(1));  // idempotent
  EXPECT_EQ(net.neighbors(BrokerId(0)).size(), 1u);
}

TEST(SimNetTest, InvalidLinksThrow) {
  SimulatedNetwork net(2);
  EXPECT_THROW(net.connect(BrokerId(0), BrokerId(0)), std::invalid_argument);
  EXPECT_THROW(net.connect(BrokerId(0), BrokerId(5)), std::out_of_range);
  EXPECT_THROW(net.send(BrokerId(0), BrokerId(1), event_message()),
               std::invalid_argument);
}

TEST(SimNetTest, FifoDelivery) {
  SimulatedNetwork net(2);
  net.connect(BrokerId(0), BrokerId(1));
  net.send(BrokerId(0), BrokerId(1), event_message(1));
  net.send(BrokerId(1), BrokerId(0), event_message(2));
  EXPECT_FALSE(net.idle());
  auto d1 = net.pop();
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->message.event_seq, 1u);
  EXPECT_EQ(d1->from, BrokerId(0));
  EXPECT_EQ(d1->to, BrokerId(1));
  auto d2 = net.pop();
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->message.event_seq, 2u);
  EXPECT_TRUE(net.idle());
  EXPECT_FALSE(net.pop().has_value());
}

TEST(SimNetTest, TrafficAccounting) {
  SimulatedNetwork net(2);
  net.connect(BrokerId(0), BrokerId(1));
  net.send(BrokerId(0), BrokerId(1), event_message());
  Message sub;
  sub.type = Message::Type::Subscribe;
  net.send(BrokerId(0), BrokerId(1), std::move(sub));

  EXPECT_EQ(net.total().messages, 2u);
  EXPECT_EQ(net.total().event_messages, 1u);
  EXPECT_EQ(net.total().control_messages, 1u);
  EXPECT_GT(net.total().bytes, 0u);
  EXPECT_GT(net.total().wire_seconds, 0.0);
  EXPECT_EQ(net.link(BrokerId(0), BrokerId(1)).messages, 2u);
  EXPECT_EQ(net.link(BrokerId(1), BrokerId(0)).messages, 0u);

  net.reset_stats();
  EXPECT_EQ(net.total().messages, 0u);
  EXPECT_EQ(net.link(BrokerId(0), BrokerId(1)).messages, 0u);
}

TEST(SimNetTest, WireSecondsScaleWithBandwidth) {
  SimulatedNetwork::Config slow;
  slow.bandwidth_bytes_per_sec = 1000.0;
  slow.latency_sec = 0.0;
  SimulatedNetwork net(2, slow);
  net.connect(BrokerId(0), BrokerId(1));
  Message m = event_message();
  m.event.set(AttributeId(0), Value(std::string(1000, 'x')));
  net.send(BrokerId(0), BrokerId(1), std::move(m));
  EXPECT_GT(net.total().wire_seconds, 1.0);  // >1000 bytes over 1 kB/s
}

}  // namespace
}  // namespace dbsp
