#include "selectivity/histogram.hpp"

#include <gtest/gtest.h>

namespace dbsp {
namespace {

TEST(NumericHistogramTest, UniformDataFractions) {
  NumericHistogram h(32);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i));
  h.finalize();
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_NEAR(h.fraction_less(500.0), 0.5, 0.05);
  EXPECT_NEAR(h.fraction_less(250.0), 0.25, 0.05);
  EXPECT_NEAR(h.fraction_between(250.0, 750.0), 0.5, 0.05);
  EXPECT_DOUBLE_EQ(h.fraction_less(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_less(2000.0), 1.0);
}

TEST(NumericHistogramTest, EmptyHistogram) {
  NumericHistogram h;
  h.finalize();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_less(5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(0.0, 10.0), 0.0);
}

TEST(NumericHistogramTest, SingleValue) {
  NumericHistogram h;
  for (int i = 0; i < 10; ++i) h.add(7.0);
  h.finalize();
  EXPECT_DOUBLE_EQ(h.fraction_less(7.0), 0.0);
  EXPECT_NEAR(h.fraction_less_equal(7.0), 0.0, 0.05);  // interpolated edge
  EXPECT_DOUBLE_EQ(h.fraction_less(8.0), 1.0);
}

TEST(NumericHistogramTest, BetweenDegenerateRanges) {
  NumericHistogram h;
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  h.finalize();
  EXPECT_DOUBLE_EQ(h.fraction_between(5.0, 4.0), 0.0);  // hi < lo
  EXPECT_GE(h.fraction_between(0.0, 9.0), 0.9);
}

TEST(NumericHistogramTest, SkewedDataRespectsMass) {
  NumericHistogram h(64);
  for (int i = 0; i < 900; ++i) h.add(1.0);
  for (int i = 0; i < 100; ++i) h.add(100.0);
  h.finalize();
  EXPECT_NEAR(h.fraction_less(50.0), 0.9, 0.02);
  // The point mass at 100 sits at the far edge of the last bin; query from
  // an empty region so uniform-within-bin interpolation cannot smear it.
  EXPECT_NEAR(h.fraction_between(90.0, 101.0), 0.1, 0.02);
}

TEST(ValueCountsTest, ExactFractions) {
  ValueCounts vc;
  for (int i = 0; i < 70; ++i) vc.add(Value("a"));
  for (int i = 0; i < 30; ++i) vc.add(Value("b"));
  EXPECT_EQ(vc.total(), 100u);
  EXPECT_DOUBLE_EQ(vc.fraction_equal(Value("a")), 0.7);
  EXPECT_DOUBLE_EQ(vc.fraction_equal(Value("b")), 0.3);
  EXPECT_DOUBLE_EQ(vc.fraction_equal(Value("c")), 0.0);
}

TEST(ValueCountsTest, NumericKeysUnifyIntAndDouble) {
  ValueCounts vc;
  vc.add(Value(20));
  vc.add(Value(20.0));
  EXPECT_DOUBLE_EQ(vc.fraction_equal(Value(20)), 1.0);
  EXPECT_EQ(vc.distinct_tracked(), 1u);
}

TEST(ValueCountsTest, OverflowSpreadsMassOverUntrackedValues) {
  ValueCounts vc(/*max_distinct=*/4);
  for (int i = 0; i < 4; ++i) vc.add(Value(std::int64_t{i}));
  for (int i = 100; i < 110; ++i) vc.add(Value(std::int64_t{i}));  // 10 overflow
  EXPECT_EQ(vc.total(), 14u);
  // Tracked values exact.
  EXPECT_DOUBLE_EQ(vc.fraction_equal(Value(0)), 1.0 / 14.0);
  // Untracked values share the overflow mass.
  const double overflow_each = vc.fraction_equal(Value(105));
  EXPECT_GT(overflow_each, 0.0);
  EXPECT_LT(overflow_each, 10.0 / 14.0);
}

TEST(ValueCountsTest, ForEachVisitsTrackedValues) {
  ValueCounts vc;
  vc.add(Value("x"));
  vc.add(Value("x"));
  vc.add(Value("y"));
  std::size_t visited = 0;
  std::uint64_t total = 0;
  vc.for_each([&](const Value&, std::uint64_t count) {
    ++visited;
    total += count;
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace dbsp
