// The PubSub facade and its RAII subscription handles: publish/dispatch
// semantics, the Status/Result error channel, and — the lifetime matrix —
// moved-from handles, double release, handles outliving the PubSub (a
// detectable error, never UB), and automatic pruning-state release on
// handle drop under 1 and 8 shards.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dbsp/dbsp.hpp"

namespace dbsp {
namespace {

Schema market_schema() {
  Schema s;
  s.add_attribute("sym", ValueType::String);
  s.add_attribute("price", ValueType::Double);
  s.add_attribute("volume", ValueType::Int);
  return s;
}

Event tick(const PubSub& pubsub, const char* sym, double price,
           std::int64_t volume) {
  return pubsub.event()
      .with("sym", sym)
      .with("price", price)
      .with("volume", volume)
      .build();
}

TEST(PubSubTest, SubscribePublishDispatchesCallbacksInIdOrder) {
  PubSub pubsub(market_schema());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> log;
  const auto record = [&log](const Notification& n) {
    log.emplace_back(n.subscription.value(), n.seq);
  };

  auto acme = pubsub.subscribe(where("sym").eq("ACME"), record).value();
  auto cheap = pubsub.subscribe("price < 50", record).value();
  auto silent = pubsub.subscribe(where("volume").gt(0)).value();  // no callback
  EXPECT_EQ(pubsub.subscription_count(), 3u);
  EXPECT_NE(acme.id(), cheap.id());

  EXPECT_EQ(pubsub.publish(tick(pubsub, "ACME", 10.0, 100)), 3u);
  ASSERT_EQ(log.size(), 2u);  // the silent subscription matched but had no callback
  EXPECT_EQ(log[0].first, acme.id().value());
  EXPECT_EQ(log[1].first, cheap.id().value());
  EXPECT_EQ(log[0].second, log[1].second);

  log.clear();
  EXPECT_EQ(pubsub.publish(tick(pubsub, "INIT", 80.0, 5)), 1u);  // silent only
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(pubsub.notifications_delivered(), 4u);
}

TEST(PubSubTest, PublishBatchMatchesSingleEventDispatch) {
  PubSub pubsub(market_schema());
  std::vector<std::uint64_t> seqs;
  auto h = pubsub.subscribe(where("price").ge(100),
                            [&seqs](const Notification& n) { seqs.push_back(n.seq); })
               .value();
  const std::vector<Event> events = {
      tick(pubsub, "A", 150.0, 1), tick(pubsub, "B", 50.0, 2),
      tick(pubsub, "C", 100.0, 3)};
  EXPECT_EQ(pubsub.publish_batch(events), 2u);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0] + 2, seqs[1]);  // events 0 and 2 of the batch
}

TEST(PubSubTest, ErrorChannelInsteadOfThrows) {
  PubSub pubsub(market_schema());

  const auto bad_filter = pubsub.subscribe(where("missing").eq(1));
  ASSERT_FALSE(bad_filter.ok());
  EXPECT_EQ(bad_filter.status().code(), ErrorCode::kNotFound);

  const auto bad_dsl = pubsub.subscribe("price <");
  ASSERT_FALSE(bad_dsl.ok());
  EXPECT_EQ(bad_dsl.status().code(), ErrorCode::kParseError);

  const auto null_tree = pubsub.subscribe(std::unique_ptr<Node>());
  ASSERT_FALSE(null_tree.ok());
  EXPECT_EQ(null_tree.status().code(), ErrorCode::kInvalidArgument);

  EXPECT_EQ(pubsub.unsubscribe(SubscriptionId(42)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(pubsub.matches(SubscriptionId(42), tick(pubsub, "A", 1, 1)).status().code(),
            ErrorCode::kNotFound);

  // Pruning controls without pruning enabled.
  EXPECT_EQ(pubsub.prune(1).status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pubsub.train({}).code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(pubsub.drift_pending());
  EXPECT_FALSE(pubsub.pruning_stats().enabled);

  // Failed subscribes must not leak engine state or burn ids.
  const auto good = pubsub.subscribe(where("price").gt(0));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(pubsub.subscription_count(), 1u);
}

TEST(PubSubTest, OracleAndTextAccessors) {
  PubSub pubsub(market_schema());
  auto h = pubsub.subscribe(where("sym").eq("ACME") && where("price").lt(20)).value();
  EXPECT_TRUE(pubsub.matches(h.id(), tick(pubsub, "ACME", 10, 1)).value());
  EXPECT_FALSE(pubsub.matches(h.id(), tick(pubsub, "ACME", 30, 1)).value());
  const std::string text = pubsub.subscription_text(h.id()).value();
  // The stored tree round-trips through the DSL.
  EXPECT_NO_THROW((void)parse_subscription(text, pubsub.schema()));
}

// --- Handle lifetimes --------------------------------------------------------

TEST(SubscriptionHandleTest, DropUnsubscribes) {
  PubSub pubsub(market_schema());
  {
    auto h = pubsub.subscribe(where("price").gt(1)).value();
    EXPECT_TRUE(h.active());
    EXPECT_TRUE(pubsub.contains(h.id()));
    EXPECT_EQ(pubsub.subscription_count(), 1u);
  }
  EXPECT_EQ(pubsub.subscription_count(), 0u);
  EXPECT_EQ(pubsub.publish(tick(pubsub, "A", 10, 1)), 0u);
}

TEST(SubscriptionHandleTest, MovePreservesTheClaim) {
  PubSub pubsub(market_schema());
  auto h = pubsub.subscribe(where("price").gt(1)).value();
  const SubscriptionId id = h.id();

  SubscriptionHandle moved(std::move(h));
  EXPECT_FALSE(h.attached());  // NOLINT(bugprone-use-after-move) — tested on purpose
  EXPECT_FALSE(h.active());
  EXPECT_EQ(h.id(), SubscriptionId());
  EXPECT_TRUE(moved.active());
  EXPECT_EQ(moved.id(), id);
  EXPECT_EQ(pubsub.subscription_count(), 1u);

  // Releasing through the moved-from handle is a detectable error...
  const Status stale = h.release();
  EXPECT_EQ(stale.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pubsub.subscription_count(), 1u);

  // ...and move-assignment releases the destination's previous claim.
  auto other = pubsub.subscribe(where("volume").gt(0)).value();
  EXPECT_EQ(pubsub.subscription_count(), 2u);
  other = std::move(moved);
  EXPECT_EQ(pubsub.subscription_count(), 1u);
  EXPECT_EQ(other.id(), id);
  EXPECT_TRUE(pubsub.contains(id));
}

TEST(SubscriptionHandleTest, DoubleReleaseIsAnErrorNotUb) {
  PubSub pubsub(market_schema());
  auto h = pubsub.subscribe(where("price").gt(1)).value();
  EXPECT_TRUE(h.release().ok());
  EXPECT_FALSE(h.attached());
  EXPECT_EQ(pubsub.subscription_count(), 0u);

  const Status again = h.release();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), ErrorCode::kFailedPrecondition);
}

TEST(SubscriptionHandleTest, ReleaseAfterExternalUnsubscribeReportsNotFound) {
  PubSub pubsub(market_schema());
  auto h = pubsub.subscribe(where("price").gt(1)).value();
  EXPECT_TRUE(pubsub.unsubscribe(h.id()).ok());
  EXPECT_FALSE(h.active());
  EXPECT_TRUE(h.attached());  // the claim itself was never released
  EXPECT_EQ(h.release().code(), ErrorCode::kNotFound);
}

TEST(SubscriptionHandleTest, HandleOutlivingPubSubIsDetectableNotUb) {
  auto pubsub = std::make_unique<PubSub>(market_schema());
  auto kept = pubsub->subscribe(where("price").gt(1)).value();
  auto dropped = pubsub->subscribe(where("volume").gt(1)).value();

  pubsub.reset();  // the facade dies first

  EXPECT_FALSE(kept.active());
  EXPECT_TRUE(kept.attached());
  const Status released = kept.release();
  EXPECT_FALSE(released.ok());
  EXPECT_EQ(released.code(), ErrorCode::kUnavailable);
  // `dropped` is destroyed after the PubSub — its destructor must be a
  // safe no-op (ASan verifies no use-after-free here).
}

TEST(SubscriptionHandleTest, EmptyHandleIsInert) {
  SubscriptionHandle h;
  EXPECT_FALSE(h.attached());
  EXPECT_FALSE(h.active());
  EXPECT_EQ(h.release().code(), ErrorCode::kFailedPrecondition);
}

// --- Pruning auto-release ----------------------------------------------------

class PubSubPruningTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PubSubPruningTest, HandleDropReleasesPruningState) {
  PubSubOptions options;
  options.engine.shards = GetParam();
  options.pruning = true;
  options.prune.dimension = PruneDimension::MemoryUsage;
  PubSub pubsub(market_schema(), options);
  EXPECT_EQ(pubsub.shard_count(), GetParam());

  // A small training sample so candidate scores are non-degenerate.
  std::vector<Event> sample;
  for (int i = 0; i < 64; ++i) {
    sample.push_back(tick(pubsub, i % 2 == 0 ? "ACME" : "INIT",
                          static_cast<double>(i), i));
  }
  ASSERT_TRUE(pubsub.train(sample).ok());

  std::vector<SubscriptionHandle> handles;
  for (int i = 0; i < 40; ++i) {
    const double lo = static_cast<double>(i);
    handles.push_back(pubsub
                          .subscribe(where("sym").eq(i % 2 == 0 ? "ACME" : "INIT") &&
                                     where("price").between(lo, lo + 10) &&
                                     where("volume").ge(i))
                          .value());
  }
  auto stats = pubsub.pruning_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.tracked, 40u);
  EXPECT_EQ(stats.maintenance.admissions, 40u);
  EXPECT_GT(stats.total_possible, 0u);

  // Prune, then churn out half the population through handle drops: the
  // pruning queues must release automatically (capacity rolls back) and
  // the engine must forget the subscriptions.
  ASSERT_TRUE(pubsub.prune_to_fraction(0.5).ok());
  const std::size_t possible_before = pubsub.pruning_stats().total_possible;
  for (int i = 0; i < 20; ++i) handles.erase(handles.begin());
  stats = pubsub.pruning_stats();
  EXPECT_EQ(stats.tracked, 20u);
  EXPECT_EQ(stats.maintenance.releases, 20u);
  EXPECT_LT(stats.total_possible, possible_before);
  EXPECT_EQ(pubsub.subscription_count(), 20u);

  // The engine still agrees with direct tree evaluation of every live
  // subscription after prune + churn (both sides see the pruned trees).
  for (int e = 0; e < 32; ++e) {
    const Event event = tick(pubsub, e % 2 == 0 ? "ACME" : "INIT",
                             static_cast<double>(e), e);
    std::size_t oracle = 0;
    for (const auto& h : handles) {
      oracle += pubsub.matches(h.id(), event).value() ? 1u : 0u;
    }
    EXPECT_EQ(pubsub.publish(event), oracle);
  }

  // Dropping everything empties engine and queues.
  handles.clear();
  EXPECT_EQ(pubsub.subscription_count(), 0u);
  EXPECT_EQ(pubsub.pruning_stats().tracked, 0u);
  EXPECT_EQ(pubsub.pruning_stats().total_possible, 0u);
}

TEST_P(PubSubPruningTest, SetPruneDimensionRebuildsOverCurrentTrees) {
  PubSubOptions options;
  options.engine.shards = GetParam();
  options.pruning = true;
  PubSub pubsub(market_schema(), options);
  std::vector<SubscriptionHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(pubsub
                          .subscribe(where("price").gt(i) &&
                                     where("volume").lt(100 + i))
                          .value());
  }
  ASSERT_TRUE(pubsub.prune(3).ok());
  ASSERT_TRUE(pubsub.set_prune_dimension(PruneDimension::Throughput).ok());
  auto stats = pubsub.pruning_stats();
  EXPECT_EQ(stats.tracked, 10u);
  EXPECT_EQ(stats.performed, 0u);  // baselines re-captured from current state
  // Queues stay functional after the rebuild.
  EXPECT_TRUE(pubsub.prune(2).ok());
}

INSTANTIATE_TEST_SUITE_P(Shards, PubSubPruningTest, ::testing::Values(1u, 8u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dbsp
