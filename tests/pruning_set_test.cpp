// ShardedPruningSet + PruningEngine adaptive maintenance: incremental
// admission/release routing, capacity accounting under churn, lazy queue
// compaction, and the drift trigger (retrain + rescore_all).

#include "core/pruning_set.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "core/candidates.hpp"
#include "selectivity/estimator.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::Corpus;
using test::MiniDomain;
using test::make_corpus;

class PruningSetTest : public ::testing::Test {
 protected:
  PruningSetTest() : estimator_([](const Predicate&) { return 0.5; }) {}

  MiniDomain dom_;
  SelectivityEstimator estimator_;
  PruneEngineConfig config_;
};

TEST_F(PruningSetTest, RoutesAddRemoveToOwningShard) {
  std::mt19937_64 rng(7);
  Corpus corpus = make_corpus(dom_, rng, 40, 0.1);
  ShardedEngine engine(dom_.schema(), {.shards = 4});
  for (auto& s : corpus.subs) engine.add(*s);

  ShardedPruningSet set(engine, estimator_, config_, corpus.pointers());
  EXPECT_EQ(set.shard_count(), 4u);
  EXPECT_EQ(set.subscription_count(), corpus.subs.size());
  for (const auto& s : corpus.subs) {
    EXPECT_TRUE(set.tracks(s->id()));
    EXPECT_TRUE(set.shard(engine.shard_of(s->id())).contains(s->id()));
  }

  const SubscriptionId victim = corpus.subs[11]->id();
  EXPECT_TRUE(set.remove(victim));
  EXPECT_FALSE(set.tracks(victim));
  EXPECT_FALSE(set.remove(victim));  // already released: clean no-op
  EXPECT_EQ(set.subscription_count(), corpus.subs.size() - 1);

  // Pruning to exhaustion never touches the released subscription.
  set.prune(100000);
  for (std::size_t sh = 0; sh < set.shard_count(); ++sh) {
    for (const auto& applied : set.shard(sh).history()) {
      EXPECT_NE(applied.sub, victim);
    }
  }
}

TEST_F(PruningSetTest, ReleaseRollsBackCapacityAndPerformed) {
  std::mt19937_64 rng(11);
  Corpus corpus = make_corpus(dom_, rng, 30, 0.0, 7);
  ShardedEngine engine(dom_.schema(), {.shards = 2});
  for (auto& s : corpus.subs) engine.add(*s);
  ShardedPruningSet set(engine, estimator_, config_, corpus.pointers());

  // Release before any pruning: the decrement equals the capacity captured
  // at registration (= the current tree's internal prunings).
  Subscription* victim = nullptr;
  for (const auto& s : corpus.subs) {
    if (internal_prunings(s->root()) > 0) {
      victim = s.get();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const std::size_t cap = internal_prunings(victim->root());
  const std::size_t possible_before = set.total_possible();
  ASSERT_TRUE(set.remove(victim->id()));
  EXPECT_EQ(set.total_possible(), possible_before - cap);

  // Release after pruning: the victim's applied prunings are rolled back
  // from performed() together with its capacity.
  set.prune_to_fraction(0.6);
  const std::size_t performed_before = set.performed();
  Subscription* pruned_victim = nullptr;
  std::size_t victim_performed = 0;
  for (std::size_t sh = 0; sh < set.shard_count() && pruned_victim == nullptr; ++sh) {
    for (const auto& applied : set.shard(sh).history()) {
      if (applied.sub != victim->id()) {
        for (const auto& s : corpus.subs) {
          if (s->id() == applied.sub) pruned_victim = s.get();
        }
        break;
      }
    }
  }
  ASSERT_NE(pruned_victim, nullptr);
  for (std::size_t sh = 0; sh < set.shard_count(); ++sh) {
    for (const auto& applied : set.shard(sh).history()) {
      if (applied.sub == pruned_victim->id()) ++victim_performed;
    }
  }
  ASSERT_GT(victim_performed, 0u);
  ASSERT_TRUE(set.remove(pruned_victim->id()));
  EXPECT_EQ(set.performed(), performed_before - victim_performed);

  // A later full prune still terminates and performed() never exceeds the
  // live capacity.
  set.prune(1u << 20);
  EXPECT_LE(set.performed(), set.total_possible());
}

TEST_F(PruningSetTest, AdmissionIsIncrementalAndNeverRebuilds) {
  std::mt19937_64 rng(13);
  Corpus corpus = make_corpus(dom_, rng, 50, 0.1);
  ShardedEngine engine(dom_.schema(), {.shards = 1});
  for (auto& s : corpus.subs) engine.add(*s);
  ShardedPruningSet set(engine, estimator_, config_, corpus.pointers());

  auto m = set.maintenance();
  EXPECT_EQ(m.admissions, corpus.subs.size());
  EXPECT_EQ(m.full_rescores, 0u);

  // Late admission under churn: one more subscription, still zero rebuilds.
  auto extra = std::make_unique<Subscription>(SubscriptionId(1000),
                                              dom_.random_tree(rng, 5));
  engine.add(*extra);
  set.add(*extra);
  set.prune(20);
  m = set.maintenance();
  EXPECT_EQ(m.admissions, corpus.subs.size() + 1);
  EXPECT_EQ(m.full_rescores, 0u);
  EXPECT_TRUE(set.tracks(SubscriptionId(1000)));
}

TEST_F(PruningSetTest, HeavyChurnCompactsTheQueueWithoutRescoring) {
  std::mt19937_64 rng(17);
  Corpus corpus = make_corpus(dom_, rng, 300, 0.0, 6);
  ShardedEngine engine(dom_.schema(), {.shards = 1});
  for (auto& s : corpus.subs) engine.add(*s);
  ShardedPruningSet set(engine, estimator_, config_, corpus.pointers());

  // Release the bulk of the population: dead queue entries pile up until
  // the lazy sweep kicks in.
  for (std::size_t i = 0; i < 250; ++i) {
    ASSERT_TRUE(set.remove(corpus.subs[i]->id()));
    engine.remove(corpus.subs[i]->id());
  }
  const auto m = set.maintenance();
  EXPECT_EQ(m.releases, 250u);
  EXPECT_GE(m.queue_compactions, 1u);
  EXPECT_EQ(m.full_rescores, 0u);

  // The surviving population still prunes to exhaustion correctly.
  set.prune(1u << 20);
  EXPECT_EQ(set.performed(), set.total_possible());
}

TEST_F(PruningSetTest, DriftTriggerCountsMutationsPerShard) {
  std::mt19937_64 rng(19);
  Corpus corpus = make_corpus(dom_, rng, 20, 0.0);
  ShardedEngine engine(dom_.schema(), {.shards = 1});
  for (auto& s : corpus.subs) engine.add(*s);
  ShardedPruningSet set(engine, estimator_, config_, corpus.pointers());

  // Arming resets the mutation count: the initial bulk load is not churn.
  set.set_drift_threshold(10);
  EXPECT_FALSE(set.drift_pending());

  for (std::size_t i = 0; i < 5; ++i) {
    set.remove(corpus.subs[i]->id());
    engine.remove(corpus.subs[i]->id());
  }
  EXPECT_FALSE(set.drift_pending());  // 5 mutations < 10
  for (std::size_t i = 5; i < 10; ++i) {
    set.remove(corpus.subs[i]->id());
    engine.remove(corpus.subs[i]->id());
  }
  EXPECT_TRUE(set.drift_pending());  // 10 mutations

  set.rescore_all();
  EXPECT_FALSE(set.drift_pending());
  EXPECT_EQ(set.maintenance().full_rescores, 1u);
}

TEST(PruningSetRescoreTest, RescoreAllReordersQueueAfterEstimatorChange) {
  // Leaf selectivities are read through a mutable table the estimator
  // captures by reference — the same shape as EventStats retraining.
  Schema schema;
  std::array<AttributeId, 4> attr{};
  for (std::size_t i = 0; i < attr.size(); ++i) {
    attr[i] = schema.add_attribute("a" + std::to_string(i), ValueType::Int);
  }
  std::array<double, 4> sel = {0.9, 0.2, 0.9, 0.9};
  const SelectivityEstimator estimator(
      [&sel](const Predicate& p) { return sel[p.attribute().value()]; });

  auto tree = [&](std::size_t i, std::size_t j) {
    std::vector<std::unique_ptr<Node>> parts;
    parts.push_back(Node::leaf(Predicate(attr[i], Op::Lt, Value(10))));
    parts.push_back(Node::leaf(Predicate(attr[j], Op::Lt, Value(10))));
    return Node::and_(std::move(parts));
  };

  PruneEngineConfig config;  // NetworkLoad primary
  auto run = [&](bool rescore) {
    ShardedEngine engine(schema, {.shards = 1});
    Subscription a(SubscriptionId(1), tree(0, 1));  // cheap pruning: drop a0
    Subscription b(SubscriptionId(2), tree(2, 3));  // medium-cost prunings
    engine.add(a);
    engine.add(b);
    sel = {0.9, 0.2, 0.9, 0.9};
    ShardedPruningSet set(engine, estimator, config, {&a, &b});
    // Drift: a1 suddenly matches almost everything, so pruning a0 out of
    // subscription 1 would now degrade selectivity badly.
    sel[1] = 0.999;
    if (rescore) set.rescore_all();
    set.prune(1);
    return set.shard(0).history().front().sub;
  };

  // Stale queue: the pre-drift ordering still applies subscription 1 first.
  EXPECT_EQ(run(false), SubscriptionId(1));
  // Rescored queue: subscription 2's pruning is now the cheaper one.
  EXPECT_EQ(run(true), SubscriptionId(2));
}

}  // namespace
}  // namespace dbsp
