#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/candidates.hpp"
#include "subscription/parser.hpp"
#include "test_util.hpp"

namespace dbsp {
namespace {

using test::MiniDomain;

class HeuristicsTest : public ::testing::Test {
 protected:
  HeuristicsTest() {
    schema_.add_attribute("a", ValueType::Int);
    schema_.add_attribute("b", ValueType::Int);
    schema_.add_attribute("c", ValueType::Int);
  }
  Schema schema_;

  /// Leaf selectivity keyed by attribute: a=0.1, b=0.5, c=0.9.
  [[nodiscard]] SelectivityEstimator estimator() const {
    return SelectivityEstimator(LeafSelectivityFn([](const Predicate& p) {
      switch (p.attribute().value()) {
        case 0: return 0.1;
        case 1: return 0.5;
        default: return 0.9;
      }
    }));
  }

  [[nodiscard]] std::unique_ptr<Node> parse(std::string_view s) const {
    return parse_subscription(s, schema_);
  }
};

TEST_F(HeuristicsTest, MemoryImprovementMatchesActualSizeDelta) {
  const auto est = estimator();
  const HeuristicScorer scorer(est);
  std::mt19937_64 rng(3);
  MiniDomain dom(5, 12);
  std::uniform_int_distribution<std::size_t> leaves(2, 10);
  for (int i = 0; i < 40; ++i) {
    const auto tree = dom.random_tree(rng, leaves(rng), 0.2);
    const auto orig = scorer.profile(*tree);
    for (const auto& path : enumerate_prunings(*tree)) {
      const auto scores = scorer.score(*tree, path, orig);
      const auto pruned = simulate_pruning(*tree, path);
      EXPECT_DOUBLE_EQ(scores.mem_improvement,
                       static_cast<double>(tree->size_bytes()) -
                           static_cast<double>(pruned->size_bytes()));
      EXPECT_GT(scores.mem_improvement, 0.0);
    }
  }
}

TEST_F(HeuristicsTest, EffImprovementIsPminDeltaVsOriginal) {
  const auto est = estimator();
  const HeuristicScorer scorer(est);
  // (a and b) has pmin 2; pruning either leaf leaves pmin 1 -> Δeff = -1.
  const auto tree = parse("a=1 and b=2");
  const auto orig = scorer.profile(*tree);
  EXPECT_EQ(orig.pmin, 2u);
  const auto s = scorer.score(*tree, {0}, orig);
  EXPECT_DOUBLE_EQ(s.eff_improvement, -1.0);

  // a and (b or (b and c)): pmin = 1 + 1 = 2. Pruning c (inside the inner
  // and) keeps pmin 2 -> Δeff = 0, the throughput-preserving choice.
  const auto tree2 = parse("a=1 and (b=2 or (b=3 and c=4))");
  const auto orig2 = scorer.profile(*tree2);
  EXPECT_EQ(orig2.pmin, 2u);
  const auto s2 = scorer.score(*tree2, {1, 1, 1}, orig2);
  EXPECT_DOUBLE_EQ(s2.eff_improvement, 0.0);
}

TEST_F(HeuristicsTest, SelDegradationAgainstOriginalAccumulates) {
  const auto est = estimator();
  const HeuristicScorer scorer(est);
  // a(0.1) and b(0.5): pruning a -> sel avg 0.5 (degradation from 0.05).
  const auto tree = parse("a=1 and b=2");
  const auto orig = scorer.profile(*tree);
  EXPECT_NEAR(orig.sel.avg, 0.05, 1e-12);
  // Degradation is the max over the (min, avg, max) component increases;
  // the min component dominates here (Fréchet min of the pair is 0).
  const auto prune_a = scorer.score(*tree, {0}, orig);
  const auto prune_b = scorer.score(*tree, {1}, orig);
  EXPECT_NEAR(prune_a.sel_degradation, 0.5, 1e-12);  // -> b alone: (0.5,0.5,0.5)
  EXPECT_NEAR(prune_b.sel_degradation, 0.1, 1e-12);  // -> a alone: (0.1,0.1,0.1)
  // Dropping the *selective* conjunct degrades more.
  EXPECT_GT(prune_a.sel_degradation, prune_b.sel_degradation);
}

TEST_F(HeuristicsTest, SelDegradationIsNonNegative) {
  const auto est = estimator();
  const HeuristicScorer scorer(est);
  std::mt19937_64 rng(9);
  MiniDomain dom(5, 12);
  std::uniform_int_distribution<std::size_t> leaves(2, 9);
  const SelectivityEstimator rand_est(LeafSelectivityFn([](const Predicate& p) {
    return 0.05 + 0.9 * static_cast<double>(p.hash() % 997) / 997.0;
  }));
  const HeuristicScorer rscorer(rand_est);
  for (int i = 0; i < 40; ++i) {
    const auto tree = dom.random_tree(rng, leaves(rng), 0.25);
    const auto orig = rscorer.profile(*tree);
    for (const auto& path : enumerate_prunings(*tree)) {
      EXPECT_GE(rscorer.score(*tree, path, orig).sel_degradation, 0.0);
    }
  }
}

TEST_F(HeuristicsTest, OrientedScoresPointTheRightWay) {
  PruneScores good;
  good.sel_degradation = 0.01;
  good.mem_improvement = 100.0;
  good.eff_improvement = 0.0;
  PruneScores bad;
  bad.sel_degradation = 0.5;
  bad.mem_improvement = 10.0;
  bad.eff_improvement = -3.0;
  // Smaller oriented score = better, on every dimension.
  EXPECT_LT(oriented_score(good, PruneDimension::NetworkLoad),
            oriented_score(bad, PruneDimension::NetworkLoad));
  EXPECT_LT(oriented_score(good, PruneDimension::MemoryUsage),
            oriented_score(bad, PruneDimension::MemoryUsage));
  EXPECT_LT(oriented_score(good, PruneDimension::Throughput),
            oriented_score(bad, PruneDimension::Throughput));
}

TEST_F(HeuristicsTest, CompositeKeyBreaksTiesBySecondaryDimension) {
  PruneScores a;  // same primary (sel), better eff
  a.sel_degradation = 0.2;
  a.eff_improvement = 0.0;
  a.mem_improvement = 10.0;
  PruneScores b;
  b.sel_degradation = 0.2;
  b.eff_improvement = -2.0;
  b.mem_improvement = 500.0;
  const auto order = default_order(PruneDimension::NetworkLoad);  // sel, eff, mem
  EXPECT_LT(composite_key(a, order), composite_key(b, order));
  // Under memory ordering b wins via its primary.
  const auto mem_order = default_order(PruneDimension::MemoryUsage);
  EXPECT_LT(composite_key(b, mem_order), composite_key(a, mem_order));
}

TEST_F(HeuristicsTest, DefaultOrdersMatchPaper) {
  const auto net = default_order(PruneDimension::NetworkLoad);
  EXPECT_EQ(net[0], PruneDimension::NetworkLoad);
  EXPECT_EQ(net[1], PruneDimension::Throughput);
  EXPECT_EQ(net[2], PruneDimension::MemoryUsage);
  const auto mem = default_order(PruneDimension::MemoryUsage);
  EXPECT_EQ(mem[0], PruneDimension::MemoryUsage);
  EXPECT_EQ(mem[1], PruneDimension::NetworkLoad);
  EXPECT_EQ(mem[2], PruneDimension::Throughput);
  const auto eff = default_order(PruneDimension::Throughput);
  EXPECT_EQ(eff[0], PruneDimension::Throughput);
  EXPECT_EQ(eff[1], PruneDimension::NetworkLoad);
  EXPECT_EQ(eff[2], PruneDimension::MemoryUsage);
}

}  // namespace
}  // namespace dbsp
