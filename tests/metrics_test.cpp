// The obs metrics layer: histogram bucket math (including the clamp
// semantics for zero/negative/NaN and the +Inf overflow bucket), counter
// monotonicity under sync_to, registry find-or-create identity and name
// validation, collection hooks, both exposition renderers (Prometheus
// text with escaping and cumulative le buckets; JSON), scrape-while-
// recording under concurrency (the TSan lane's target), and — the parity
// contract — a facade soak after which the registry's folded series agree
// exactly with the legacy stats structs they mirror.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "dbsp/dbsp.hpp"
#include "net/protocol.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/codec.hpp"

namespace dbsp::obs {
namespace {

// --- Histogram bucket math ---------------------------------------------------

TEST(HistogramTest, BucketBoundsArePowersOfTwoThenInf) {
  EXPECT_EQ(Histogram::bucket_bound(0), 1.0);
  EXPECT_EQ(Histogram::bucket_bound(1), 2.0);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024.0);
  EXPECT_EQ(Histogram::bucket_bound(Histogram::kFiniteBuckets - 1),
            static_cast<double>(1u << 21));
  EXPECT_TRUE(std::isinf(Histogram::bucket_bound(Histogram::kFiniteBuckets)));
}

TEST(HistogramTest, BucketIndexRespectsUpperBounds) {
  // An observation lands in the first bucket whose bound is >= it.
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.001), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025.0), 11u);
  // Exactly the top finite bound is still finite; above it is +Inf.
  const double top = Histogram::bucket_bound(Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(top), Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(top + 1.0), Histogram::kFiniteBuckets);
}

TEST(HistogramTest, DegenerateObservationsClampToFirstBucket) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
}

TEST(HistogramTest, RecordClampsDegenerateSumContributionsToZero) {
  Histogram h;
  h.record(0.0);
  h.record(-7.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(3.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.bucket_counts[0], 3u);  // the three degenerates
  EXPECT_EQ(s.bucket_counts[2], 1u);  // 3.0 -> (2, 4]
  EXPECT_DOUBLE_EQ(s.sum, 3.0);       // degenerates contribute 0, not NaN
}

TEST(HistogramTest, OverflowLandsInInfBucketWithFullValueSummed) {
  Histogram h;
  const double huge = 5.0e9;  // ~83 minutes in us: beyond the 2^21 ceiling
  h.record(huge);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.bucket_counts[Histogram::kFiniteBuckets], 1u);
  EXPECT_DOUBLE_EQ(s.sum, huge);
}

TEST(HistogramTest, SnapshotCountEqualsBucketTotal) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t total = 0;
  for (const std::uint64_t c : s.bucket_counts) total += c;
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(total, 1000u);
}

// --- Counter / Gauge ---------------------------------------------------------

TEST(CounterTest, SyncToNeverLowersTheValue) {
  Counter c;
  c.add(10);
  c.sync_to(25);
  EXPECT_EQ(c.value(), 25u);
  // A legacy reset_counters() feeds a smaller cumulative value: the
  // exported series must stay monotone.
  c.sync_to(3);
  EXPECT_EQ(c.value(), 25u);
  c.inc();
  EXPECT_EQ(c.value(), 26u);
}

TEST(GaugeTest, SetAndAddMoveBothWays) {
  Gauge g;
  g.set(5.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry r;
  Counter& a = r.counter("dbsp_test_total");
  Counter& b = r.counter("dbsp_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = r.counter("dbsp_test_total", {{"shard", "0"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(r.series_count(), 2u);
}

TEST(RegistryTest, KindMismatchThrowsLogicError) {
  MetricsRegistry r;
  (void)r.counter("dbsp_test_total");
  EXPECT_THROW((void)r.gauge("dbsp_test_total"), std::logic_error);
  EXPECT_THROW((void)r.histogram("dbsp_test_total"), std::logic_error);
}

TEST(RegistryTest, NamesOutsideThePrometheusCharsetThrow) {
  MetricsRegistry r;
  EXPECT_THROW((void)r.counter("1bad"), std::invalid_argument);
  EXPECT_THROW((void)r.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW((void)r.counter(""), std::invalid_argument);
  EXPECT_THROW((void)r.counter("ok_name", {{"1bad", "v"}}),
               std::invalid_argument);
  EXPECT_THROW((void)r.counter("ok_name", {{"has:colon", "v"}}),
               std::invalid_argument);
  // Colons are legal in metric names (recording rules), not label names.
  EXPECT_NO_THROW((void)r.counter("ns:ok_name"));
  // Label *values* are free-form (the exposition escapes them).
  EXPECT_NO_THROW((void)r.counter("ok_name", {{"path", "a\"b\\c\nd"}}));
}

TEST(RegistryTest, SnapshotIsSortedAndFindable) {
  MetricsRegistry r;
  r.counter("dbsp_zz_total").add(2);
  r.gauge("dbsp_aa").set(1.5);
  r.counter("dbsp_mm_total", {{"shard", "1"}}).add(7);
  const MetricsSnapshot s = r.snapshot();
  ASSERT_EQ(s.metrics.size(), 3u);
  EXPECT_EQ(s.metrics[0].name, "dbsp_aa");
  EXPECT_EQ(s.metrics[1].name, "dbsp_mm_total");
  EXPECT_EQ(s.metrics[2].name, "dbsp_zz_total");
  EXPECT_DOUBLE_EQ(s.value("dbsp_aa"), 1.5);
  EXPECT_DOUBLE_EQ(s.value("dbsp_mm_total", {{"shard", "1"}}), 7.0);
  EXPECT_EQ(s.find("dbsp_mm_total"), nullptr);  // labels are identity
  EXPECT_DOUBLE_EQ(s.value("missing"), 0.0);
}

TEST(RegistryTest, HooksRunOnEverySnapshotAndCanBeRemoved) {
  MetricsRegistry r;
  Gauge& g = r.gauge("dbsp_hooked");
  int runs = 0;
  const std::uint64_t id = r.add_hook([&] { g.set(static_cast<double>(++runs)); });
  EXPECT_DOUBLE_EQ(r.snapshot().value("dbsp_hooked"), 1.0);
  EXPECT_DOUBLE_EQ(r.snapshot().value("dbsp_hooked"), 2.0);
  r.remove_hook(id);
  EXPECT_DOUBLE_EQ(r.snapshot().value("dbsp_hooked"), 2.0);
}

TEST(RegistryTest, WeakCaptureHookNoOpsAfterOwnerDies) {
  // The lifetime idiom every instrumented layer uses: the hook holds a
  // weak_ptr to its owner and silently no-ops once the owner is gone.
  MetricsRegistry r;
  Gauge& g = r.gauge("dbsp_owner_value");
  auto owner = std::make_shared<int>(42);
  std::weak_ptr<int> weak = owner;
  r.add_hook([weak, &g] {
    if (const auto alive = weak.lock()) g.set(static_cast<double>(*alive));
  });
  EXPECT_DOUBLE_EQ(r.snapshot().value("dbsp_owner_value"), 42.0);
  owner.reset();
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(r.snapshot().value("dbsp_owner_value"), -1.0);  // untouched
}

// --- Exposition --------------------------------------------------------------

TEST(ExpositionTest, PrometheusTextHasTypeLinesAndCumulativeBuckets) {
  MetricsRegistry r;
  r.counter("dbsp_reqs_total").add(3);
  Histogram& h = r.histogram("dbsp_lat_us", {{"phase", "match"}});
  h.record(1.0);   // bucket le=1
  h.record(3.0);   // bucket le=4
  h.record(5.0e9); // +Inf
  const std::string text = to_prometheus(r.snapshot());

  EXPECT_NE(text.find("# TYPE dbsp_reqs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("dbsp_reqs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dbsp_lat_us histogram\n"), std::string::npos);
  // Cumulative le form: le="4" includes the le="1" observation.
  EXPECT_NE(text.find("dbsp_lat_us_bucket{phase=\"match\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsp_lat_us_bucket{phase=\"match\",le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsp_lat_us_bucket{phase=\"match\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsp_lat_us_count{phase=\"match\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsp_lat_us_sum{phase=\"match\"}"), std::string::npos);
  // One TYPE line per family, not per series.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE"); at != std::string::npos;
       at = text.find("# TYPE", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 2u);
  EXPECT_STREQ(prometheus_content_type(),
               "text/plain; version=0.0.4; charset=utf-8");
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry r;
  r.counter("dbsp_esc_total", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = to_prometheus(r.snapshot());
  EXPECT_NE(text.find("dbsp_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(ExpositionTest, JsonCarriesCumulativeBucketsAndValues) {
  MetricsRegistry r;
  r.counter("dbsp_reqs_total").add(3);
  r.gauge("dbsp_level").set(2.5);
  Histogram& h = r.histogram("dbsp_lat_us");
  h.record(1.0);
  h.record(3.0);
  const std::string json = to_json(r.snapshot());
  EXPECT_NE(json.find("\"name\": \"dbsp_reqs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  // Cumulative: the le=4 bucket carries both observations.
  EXPECT_NE(json.find("{\"le\": 4, \"count\": 2}"), std::string::npos);
}

// --- Concurrency (the TSan lane's target) ------------------------------------

TEST(RegistryTest, ScrapeWhileRecordingIsRaceFreeAndLosesNothing) {
  MetricsRegistry r;
  Counter& c = r.counter("dbsp_conc_total");
  Histogram& h = r.histogram("dbsp_conc_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot s = r.snapshot();
      // Any snapshot taken mid-run is internally consistent: the bucket
      // total can never exceed what has been recorded so far.
      std::uint64_t total = 0;
      for (const auto& m : s.metrics) {
        if (m.kind == MetricKind::kHistogram) {
          for (const std::uint64_t b : m.histogram.bucket_counts) total += b;
        }
      }
      ASSERT_LE(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<double>((t * kPerThread + i) % 4096));
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  const MetricsSnapshot s = r.snapshot();
  EXPECT_DOUBLE_EQ(s.value("dbsp_conc_total"),
                   static_cast<double>(kThreads) * kPerThread);
  const MetricSnapshot* hist = s.find("dbsp_conc_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- Facade parity -----------------------------------------------------------

Schema market_schema() {
  Schema s;
  s.add_attribute("sym", ValueType::String);
  s.add_attribute("price", ValueType::Double);
  s.add_attribute("volume", ValueType::Int);
  return s;
}

TEST(FacadeMetricsTest, DisabledMetricsMeansEmptySnapshot) {
  PubSubOptions options;
  options.metrics = false;
  PubSub pubsub(market_schema(), options);
  auto sub = pubsub.subscribe("price < 50").value();
  (void)pubsub.publish(
      pubsub.event().with("sym", "A").with("price", 1.0).with("volume",
                                                              std::int64_t{1})
          .build());
  EXPECT_TRUE(pubsub.metrics().metrics.empty());
  EXPECT_EQ(pubsub.metrics_json(), "{\"metrics\": []}");
  EXPECT_EQ(pubsub.metrics_registry(), nullptr);
}

TEST(FacadeMetricsTest, RegistryAgreesWithLegacyCountersAfterSoak) {
  // The satellite-1 parity contract: after a workload with churn the
  // registry's folded series equal the legacy stats structs exactly.
  PubSubOptions options;
  options.metrics_sample = 1;  // trace every publish
  options.engine.shards = 4;
  PubSub pubsub(market_schema(), options);

  std::vector<SubscriptionHandle> live;
  const auto sink = [](const Notification&) {};  // makes dispatch run
  for (int i = 0; i < 40; ++i) {
    live.push_back(
        pubsub.subscribe("price < " + std::to_string(10 * (i % 10) + 5), sink)
            .value());
  }
  std::uint64_t published = 0;
  for (int i = 0; i < 300; ++i) {
    (void)pubsub.publish(pubsub.event()
                             .with("sym", i % 2 == 0 ? "A" : "B")
                             .with("price", static_cast<double>(i % 97))
                             .with("volume", std::int64_t{i})
                             .build());
    ++published;
    if (i % 10 == 9) live.erase(live.begin());  // churn
  }

  const MetricsSnapshot s = pubsub.metrics();
  const CountingMatcher::Counters counters = pubsub.counters();
  EXPECT_DOUBLE_EQ(s.value("dbsp_publishes_total"),
                   static_cast<double>(published));
  EXPECT_DOUBLE_EQ(s.value("dbsp_events_total"), static_cast<double>(published));
  EXPECT_DOUBLE_EQ(s.value("dbsp_match_events_total"),
                   static_cast<double>(counters.events));
  EXPECT_DOUBLE_EQ(s.value("dbsp_predicate_hits_total"),
                   static_cast<double>(counters.predicate_hits));
  EXPECT_DOUBLE_EQ(s.value("dbsp_counter_increments_total"),
                   static_cast<double>(counters.counter_increments));
  EXPECT_DOUBLE_EQ(s.value("dbsp_tree_evaluations_total"),
                   static_cast<double>(counters.tree_evaluations));
  EXPECT_DOUBLE_EQ(s.value("dbsp_matches_total"),
                   static_cast<double>(counters.matches));
  EXPECT_DOUBLE_EQ(s.value("dbsp_subscriptions"),
                   static_cast<double>(pubsub.subscription_count()));
  EXPECT_DOUBLE_EQ(s.value("dbsp_notifications_total"),
                   static_cast<double>(pubsub.notifications_delivered()));
  EXPECT_DOUBLE_EQ(s.value("dbsp_durable"), 0.0);

  // With metrics_sample=1 every publish contributes one match and one
  // dispatch phase observation.
  const MetricSnapshot* match =
      s.find("dbsp_phase_us", {{"phase", "match"}});
  ASSERT_NE(match, nullptr);
  EXPECT_EQ(match->histogram.count, published);
  const MetricSnapshot* dispatch =
      s.find("dbsp_phase_us", {{"phase", "dispatch"}});
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->histogram.count, published);

  // Per-shard histograms exist for every shard and jointly cover every
  // published event.
  std::uint64_t shard_events = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const MetricSnapshot* m = s.find(
        "dbsp_shard_match_us", {{"shard", std::to_string(shard)}});
    ASSERT_NE(m, nullptr) << "shard " << shard;
    shard_events += m->histogram.count;
  }
  EXPECT_EQ(shard_events, published * 4);  // every event visits every shard

  // reset_counters() must not make exported counters go backwards.
  pubsub.reset_counters();
  const MetricsSnapshot after = pubsub.metrics();
  EXPECT_GE(after.value("dbsp_match_events_total"),
            s.value("dbsp_match_events_total"));
}

TEST(FacadeMetricsTest, AggregationSeriesMatchStatsAndSurviveReset) {
  PubSubOptions options;
  options.aggregation = true;
  // Disable the cost-based fallback: this tiny population would otherwise
  // route around the probe, and the probe counters are what is under test.
  options.engine.agg_fallback_pct = 0;
  PubSub pubsub(market_schema(), options);

  std::vector<SubscriptionHandle> live;
  const auto sink = [](const Notification&) {};
  for (int i = 0; i < 30; ++i) {
    live.push_back(
        pubsub.subscribe("price < " + std::to_string(10 * (i % 10) + 5), sink)
            .value());
  }
  for (int i = 0; i < 100; ++i) {
    (void)pubsub.publish(pubsub.event()
                             .with("sym", i % 2 == 0 ? "A" : "B")
                             .with("price", static_cast<double>(i % 97))
                             .build());
  }

  const MetricsSnapshot s = pubsub.metrics();
  const PubSub::AggregationStats stats = pubsub.aggregation_stats();
  ASSERT_TRUE(stats.enabled);
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_subgroups"),
                   static_cast<double>(stats.subgroups));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_dimensions"),
                   static_cast<double>(stats.dimensions));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_advertised_bytes"),
                   static_cast<double>(stats.advertised_bytes));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_events_probed_total"),
                   static_cast<double>(stats.counters.events_probed));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_subgroups_admitted_total"),
                   static_cast<double>(stats.counters.subgroups_admitted));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_subgroups_skipped_total"),
                   static_cast<double>(stats.counters.subgroups_skipped));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_candidates_total"),
                   static_cast<double>(stats.counters.candidates_evaluated));
  EXPECT_DOUBLE_EQ(s.value("dbsp_agg_matches_total"),
                   static_cast<double>(stats.counters.matches));
  EXPECT_GT(s.value("dbsp_agg_events_probed_total"), 0.0);
  EXPECT_GT(s.value("dbsp_agg_subgroups"), 0.0);

  // reset_counters() zeroes the legacy struct but the exported counter
  // series must stay monotone (sync_to semantics), and keep advancing
  // from the frozen base on new traffic.
  pubsub.reset_counters();
  EXPECT_EQ(pubsub.aggregation_stats().counters.events_probed, 0u);
  const MetricsSnapshot after = pubsub.metrics();
  EXPECT_GE(after.value("dbsp_agg_events_probed_total"),
            s.value("dbsp_agg_events_probed_total"));
  EXPECT_GE(after.value("dbsp_agg_candidates_total"),
            s.value("dbsp_agg_candidates_total"));

  // Once post-reset traffic overtakes the frozen base the exported series
  // advances again (and never dipped in between).
  for (int i = 0; i < 150; ++i) {
    (void)pubsub.publish(
        pubsub.event().with("sym", "A").with("price", 3.0).build());
  }
  EXPECT_GT(pubsub.metrics().value("dbsp_agg_events_probed_total"),
            after.value("dbsp_agg_events_probed_total"));
}

TEST(FacadeMetricsTest, DurableStoreSeriesTrackStoreStats) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dbsp_metrics_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    StoreOptions store;
    store.directory = dir.string();
    store.schema = market_schema();
    PubSub pubsub = PubSub::open(std::move(store)).value();
    std::vector<SubscriptionHandle> live;
    for (int i = 0; i < 8; ++i) {
      live.push_back(pubsub.subscribe("volume > " + std::to_string(i)).value());
    }
    const MetricsSnapshot s = pubsub.metrics();
    const StoreStats stats = pubsub.store_stats();
    EXPECT_DOUBLE_EQ(s.value("dbsp_durable"), 1.0);
    EXPECT_DOUBLE_EQ(s.value("dbsp_wal_records_total"),
                     static_cast<double>(stats.wal_records));
    EXPECT_DOUBLE_EQ(s.value("dbsp_wal_bytes_total"),
                     static_cast<double>(stats.wal_bytes));
    EXPECT_DOUBLE_EQ(s.value("dbsp_wal_lag_records"),
                     static_cast<double>(stats.records_since_checkpoint));
    EXPECT_DOUBLE_EQ(s.value("dbsp_store_epoch"),
                     static_cast<double>(stats.epoch));
    EXPECT_GT(s.value("dbsp_wal_records_total"), 0.0);
    // Every WAL append was timed (the wal_append phase is unsampled).
    const MetricSnapshot* wal =
        s.find("dbsp_phase_us", {{"phase", "wal_append"}});
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(wal->histogram.count, stats.wal_records);
  }
  fs::remove_all(dir);
}

// --- Sampler / PhaseTimer ----------------------------------------------------

TEST(SamplerTest, EdgeRatesNeverAndAlways) {
  Sampler never(0);
  Sampler always(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.should_sample());
    EXPECT_TRUE(always.should_sample());
  }
}

TEST(SamplerTest, OneInNIsExactAcrossThreads) {
  // The sampler's counter is a single global fetch_add, so 1-in-N holds
  // exactly over the union of all threads' asks, not just per thread.
  Sampler sampler(8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<std::uint64_t> sampled{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t mine = 0;
      for (int i = 0; i < kPerThread; ++i) {
        if (sampler.should_sample()) ++mine;
      }
      sampled.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sampled.load(), kThreads * kPerThread / 8);
}

TEST(PhaseTimerTest, NullHistogramIsInertAndRealOneRecordsASample) {
  { PhaseTimer inert(nullptr); }  // must not crash or touch anything
  Histogram hist;
  { PhaseTimer timed(&hist); }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
}

// --- Empty-registry exposition -----------------------------------------------

TEST(ExpositionTest, EmptyRegistryRoundTripsThroughEveryExport) {
  MetricsRegistry registry;
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_TRUE(snapshot.metrics.empty());

  // Both text renderers must produce valid (if empty) documents.
  EXPECT_EQ(to_prometheus(snapshot), "");
  const std::string json = to_json(snapshot);
  EXPECT_NE(json.find("\"metrics\": []"), std::string::npos) << json;

  // And the wire codec must round-trip the empty snapshot.
  WireWriter writer;
  net::encode_metrics(snapshot, writer);
  WireReader reader(writer.bytes());
  const MetricsSnapshot decoded = net::decode_metrics(reader);
  EXPECT_TRUE(decoded.metrics.empty());
  EXPECT_TRUE(reader.exhausted());
}

}  // namespace
}  // namespace dbsp::obs
