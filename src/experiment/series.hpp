#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dbsp {

/// One curve of a figure: (x, y) points with a label, e.g. "Time_sel".
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Prints a figure as an aligned table — one row per x value, one column
/// per series — mirroring the rows/series of the paper's plots, plus a
/// machine-readable CSV block.
void print_figure(std::ostream& os, const std::string& title,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<Series>& series);

/// The standard pruning-fraction grid of the experiments: 0, step, ..., 1.
[[nodiscard]] std::vector<double> fraction_grid(double step = 0.1);

}  // namespace dbsp
