#pragma once

#include <vector>

#include "core/dimension.hpp"
#include "workload/auction_schema.hpp"

namespace dbsp {

/// Parameters of the distributed experiment (paper §4: five brokers
/// connected as a line; subscriptions and publishers spread uniformly).
struct DistributedConfig {
  WorkloadConfig workload;
  std::size_t brokers = 5;
  std::size_t subscriptions = 10000;
  std::size_t events = 2000;
  std::size_t training_events = 20000;
  std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9, 1.0};
  bool bottom_up = true;
};

struct DistributedPoint {
  double fraction = 0.0;
  std::size_t prunings_performed = 0;
  /// Fig 1(d): summed broker CPU filtering seconds per published event.
  double filter_time_per_event = 0.0;
  /// Fig 1(e): event messages / event messages(unpruned) - 1.
  double network_increase = 0.0;
  /// Fig 1(f): 1 - remote associations / remote associations(unpruned).
  double association_reduction = 0.0;

  std::uint64_t event_messages = 0;
  std::uint64_t notifications = 0;
  std::size_t remote_associations = 0;
};

struct DistributedResult {
  PruneDimension dimension{};
  std::size_t total_possible_prunings = 0;
  /// Notifications at fraction 0 — must stay constant across the sweep
  /// (pruning never loses or duplicates notifications); checked by the
  /// harness and re-checked by tests.
  std::uint64_t baseline_notifications = 0;
  std::vector<DistributedPoint> points;
};

/// Runs the distributed sweep for one heuristic: builds the overlay,
/// floods subscriptions, trains statistics, sets up one pruning engine per
/// broker over that broker's *remote* entries, then alternates pruning and
/// measurement. Throws std::logic_error if a pruning level changes the
/// delivered notifications (routing-correctness guard).
[[nodiscard]] DistributedResult run_distributed(const DistributedConfig& config,
                                                PruneDimension dimension);

}  // namespace dbsp
