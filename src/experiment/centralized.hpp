#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/dimension.hpp"
#include "workload/auction_schema.hpp"

namespace dbsp {

/// Parameters of the centralized experiment (paper §4: one broker,
/// 200,000 subscriptions, 100,000 events at full scale; benches default to
/// a reduced scale via DBSP_SUBS/DBSP_EVENTS/DBSP_FULL).
struct CentralizedConfig {
  WorkloadConfig workload;
  std::size_t subscriptions = 20000;
  std::size_t events = 5000;
  /// Independent event sample used to train the selectivity statistics.
  std::size_t training_events = 20000;
  /// Pruning fractions at which metrics are sampled (x-axis of Fig. 1).
  std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9, 1.0};
  bool bottom_up = true;
  /// Override of the §3.4 tie-break order (ablation A4); the paper's
  /// default order for the dimension when unset.
  std::optional<std::array<PruneDimension, 3>> tie_break_order;
  /// Shards of the matching engine. 1 (the default) reproduces the paper's
  /// single global priority queue exactly; >1 partitions subscriptions and
  /// prunes each shard to the requested fraction of its own capacity; 0
  /// resolves from DBSP_SHARDS / hardware concurrency.
  std::size_t shards = 1;
};

/// Metrics sampled at one pruning fraction.
struct CentralizedPoint {
  double fraction = 0.0;
  std::size_t prunings_performed = 0;
  /// Fig 1(a): average filtering time per event in seconds.
  double filter_time_per_event = 0.0;
  /// Fig 1(b): matches / (events * subscriptions) — the proportional
  /// number of matching events.
  double matching_fraction = 0.0;
  /// Fig 1(c): 1 - associations / associations(unpruned).
  double association_reduction = 0.0;

  // Extra introspection (ablations, EXPERIMENTS.md).
  std::size_t associations = 0;
  std::uint64_t counter_increments = 0;
  std::uint64_t tree_evaluations = 0;
  std::uint64_t matches = 0;
};

struct CentralizedResult {
  PruneDimension dimension{};
  std::size_t total_possible_prunings = 0;
  std::vector<CentralizedPoint> points;
};

/// Runs the full centralized sweep for one heuristic: builds the workload,
/// trains statistics, registers everything with a CountingMatcher and a
/// PruningEngine, then alternates "prune to the next fraction" and
/// "publish the event set, measure" — deterministic for a given config.
[[nodiscard]] CentralizedResult run_centralized(const CentralizedConfig& config,
                                                PruneDimension dimension);

}  // namespace dbsp
