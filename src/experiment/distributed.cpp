#include "experiment/distributed.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "broker/overlay.hpp"
#include "core/sharded_engine.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

DistributedResult run_distributed(const DistributedConfig& config,
                                  PruneDimension dimension) {
  const AuctionDomain domain(config.workload);
  Overlay overlay(domain.schema(), config.brokers, Overlay::line(config.brokers));

  // Subscriptions are registered round-robin across brokers and flooded
  // through the overlay (subscription forwarding).
  AuctionSubscriptionGenerator sub_gen(domain, /*stream=*/1);
  for (std::size_t i = 0; i < config.subscriptions; ++i) {
    const BrokerId at(static_cast<BrokerId::value_type>(i % config.brokers));
    overlay.subscribe(at, ClientId(static_cast<ClientId::value_type>(i)),
                      SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
                      sub_gen.next_tree());
  }

  EventStats stats(domain.schema());
  AuctionEventGenerator training_gen(domain, /*stream=*/3);
  for (std::size_t i = 0; i < config.training_events; ++i) {
    stats.observe(training_gen.next());
  }
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  // One engine per (broker, shard) over the broker's remote routing entries
  // (§2.2: pruning applies only to subscriptions from non-local clients).
  PruneEngineConfig engine_config;
  engine_config.dimension = dimension;
  engine_config.bottom_up = config.bottom_up;
  std::vector<std::unique_ptr<PruningEngine>> engines;
  for (std::size_t b = 0; b < config.brokers; ++b) {
    Broker& broker = overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
    auto broker_engines = make_sharded_pruning_engines(
        broker.engine(), estimator, engine_config, broker.remote_subscriptions());
    for (auto& engine : broker_engines) engines.push_back(std::move(engine));
  }

  AuctionEventGenerator event_gen(domain, /*stream=*/2);
  const std::vector<Event> events = event_gen.generate(config.events);

  DistributedResult result;
  result.dimension = dimension;
  for (const auto& e : engines) result.total_possible_prunings += e->total_possible();
  const std::size_t baseline_remote_assocs = overlay.total_remote_associations();

  std::uint64_t baseline_event_messages = 0;
  for (const double fraction : config.fractions) {
    for (auto& engine : engines) {
      const auto target = static_cast<std::size_t>(
          std::llround(fraction * static_cast<double>(engine->total_possible())));
      if (target > engine->performed()) engine->prune(target - engine->performed());
    }

    // Warm-up pass (not measured) so the first sampled fraction is not
    // penalized by cold caches.
    const std::size_t warmup = std::min<std::size_t>(events.size(), 100);
    for (std::size_t i = 0; i < warmup; ++i) {
      overlay.publish(BrokerId(static_cast<BrokerId::value_type>(i % config.brokers)),
                      events[i]);
    }

    overlay.reset_metrics();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const BrokerId at(static_cast<BrokerId::value_type>(i % config.brokers));
      overlay.publish(at, events[i]);
    }

    DistributedPoint p;
    p.fraction = fraction;
    for (const auto& e : engines) p.prunings_performed += e->performed();
    p.filter_time_per_event =
        events.empty() ? 0.0
                       : overlay.total_filter_seconds() / static_cast<double>(events.size());
    p.event_messages = overlay.network().total().event_messages;
    p.notifications = overlay.total_notifications();
    p.remote_associations = overlay.total_remote_associations();
    p.association_reduction =
        baseline_remote_assocs == 0
            ? 0.0
            : 1.0 - static_cast<double>(p.remote_associations) /
                        static_cast<double>(baseline_remote_assocs);

    if (result.points.empty()) {
      baseline_event_messages = p.event_messages;
      result.baseline_notifications = p.notifications;
    } else if (p.notifications != result.baseline_notifications) {
      throw std::logic_error(
          "distributed experiment: pruning changed delivered notifications");
    }
    p.network_increase =
        baseline_event_messages == 0
            ? 0.0
            : static_cast<double>(p.event_messages) /
                      static_cast<double>(baseline_event_messages) -
                  1.0;
    result.points.push_back(p);
  }
  return result;
}

}  // namespace dbsp
