#include "experiment/distributed.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "broker/overlay.hpp"
#include "core/pruning_set.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

DistributedResult run_distributed(const DistributedConfig& config,
                                  PruneDimension dimension) {
  const AuctionDomain domain(config.workload);

  // Selectivity statistics trained first: brokers that enable pruning hold
  // the estimator by reference, so it must outlive the overlay.
  EventStats stats(domain.schema());
  AuctionEventGenerator training_gen(domain, /*stream=*/3);
  for (std::size_t i = 0; i < config.training_events; ++i) {
    stats.observe(training_gen.next());
  }
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  Overlay overlay(domain.schema(), config.brokers, Overlay::line(config.brokers));
  const auto broker_at = [&overlay](std::size_t b) -> Broker& {
    return overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
  };

  // Subscriptions are registered round-robin across brokers and flooded
  // through the overlay (subscription forwarding).
  AuctionSubscriptionGenerator sub_gen(domain, /*stream=*/1);
  for (std::size_t i = 0; i < config.subscriptions; ++i) {
    const BrokerId at(static_cast<BrokerId::value_type>(i % config.brokers));
    overlay.subscribe(at, ClientId(static_cast<ClientId::value_type>(i)),
                      SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
                      sub_gen.next_tree());
  }

  // One broker-owned pruning set per broker (one queue per shard inside)
  // over the broker's remote routing entries (§2.2: pruning applies only
  // to subscriptions from non-local clients). Enabled so any churn would
  // stay in sync; the sweep itself is static.
  PruneEngineConfig engine_config;
  engine_config.dimension = dimension;
  engine_config.bottom_up = config.bottom_up;
  for (std::size_t b = 0; b < config.brokers; ++b) {
    broker_at(b).enable_pruning(estimator, engine_config);
  }

  AuctionEventGenerator event_gen(domain, /*stream=*/2);
  const std::vector<Event> events = event_gen.generate(config.events);

  DistributedResult result;
  result.dimension = dimension;
  for (std::size_t b = 0; b < config.brokers; ++b) {
    result.total_possible_prunings += broker_at(b).pruning()->total_possible();
  }
  const std::size_t baseline_remote_assocs = overlay.total_remote_associations();

  std::uint64_t baseline_event_messages = 0;
  for (const double fraction : config.fractions) {
    for (std::size_t b = 0; b < config.brokers; ++b) {
      broker_at(b).pruning()->prune_to_fraction(fraction);
    }

    // Warm-up pass (not measured) so the first sampled fraction is not
    // penalized by cold caches.
    const std::size_t warmup = std::min<std::size_t>(events.size(), 100);
    for (std::size_t i = 0; i < warmup; ++i) {
      overlay.publish(BrokerId(static_cast<BrokerId::value_type>(i % config.brokers)),
                      events[i]);
    }

    overlay.reset_metrics();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const BrokerId at(static_cast<BrokerId::value_type>(i % config.brokers));
      overlay.publish(at, events[i]);
    }

    DistributedPoint p;
    p.fraction = fraction;
    for (std::size_t b = 0; b < config.brokers; ++b) {
      p.prunings_performed += broker_at(b).pruning()->performed();
    }
    p.filter_time_per_event =
        events.empty() ? 0.0
                       : overlay.total_filter_seconds() / static_cast<double>(events.size());
    p.event_messages = overlay.network().total().event_messages;
    p.notifications = overlay.total_notifications();
    p.remote_associations = overlay.total_remote_associations();
    p.association_reduction =
        baseline_remote_assocs == 0
            ? 0.0
            : 1.0 - static_cast<double>(p.remote_associations) /
                        static_cast<double>(baseline_remote_assocs);

    if (result.points.empty()) {
      baseline_event_messages = p.event_messages;
      result.baseline_notifications = p.notifications;
    } else if (p.notifications != result.baseline_notifications) {
      throw std::logic_error(
          "distributed experiment: pruning changed delivered notifications");
    }
    p.network_increase =
        baseline_event_messages == 0
            ? 0.0
            : static_cast<double>(p.event_messages) /
                      static_cast<double>(baseline_event_messages) -
                  1.0;
    result.points.push_back(p);
  }
  return result;
}

}  // namespace dbsp
