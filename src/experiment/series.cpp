#include "experiment/series.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace dbsp {

void print_figure(std::ostream& os, const std::string& title,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<Series>& series) {
  os << "=== " << title << " ===\n";
  os << "x: " << x_label << "   y: " << y_label << "\n";

  const int name_width = 16;
  os << std::left << std::setw(10) << "x";
  for (const auto& s : series) os << std::setw(name_width) << s.name;
  os << "\n";

  const std::size_t rows = series.empty() ? 0 : series.front().points.size();
  os << std::setprecision(6);
  for (std::size_t r = 0; r < rows; ++r) {
    os << std::left << std::setw(10) << series.front().points[r].first;
    for (const auto& s : series) {
      if (r < s.points.size()) {
        os << std::setw(name_width) << s.points[r].second;
      } else {
        os << std::setw(name_width) << "-";
      }
    }
    os << "\n";
  }

  os << "csv," << x_label;
  for (const auto& s : series) os << ',' << s.name;
  os << "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    os << "csv," << series.front().points[r].first;
    for (const auto& s : series) {
      os << ',' << (r < s.points.size() ? s.points[r].second : std::nan(""));
    }
    os << "\n";
  }
  os << "\n";
}

std::vector<double> fraction_grid(double step) {
  std::vector<double> out;
  for (double x = 0.0; x < 1.0 + 1e-9; x += step) out.push_back(std::min(x, 1.0));
  if (out.back() < 1.0 - 1e-9) out.push_back(1.0);
  return out;
}

}  // namespace dbsp
