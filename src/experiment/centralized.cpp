#include "experiment/centralized.hpp"

#include <cmath>
#include <memory>

#include "common/timer.hpp"
#include "core/pruning_set.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

CentralizedResult run_centralized(const CentralizedConfig& config,
                                  PruneDimension dimension) {
  const AuctionDomain domain(config.workload);

  // Workload: identical across heuristics for a given seed.
  AuctionSubscriptionGenerator sub_gen(domain, /*stream=*/1);
  std::vector<std::unique_ptr<Subscription>> subs;
  subs.reserve(config.subscriptions);
  for (std::size_t i = 0; i < config.subscriptions; ++i) {
    subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
        sub_gen.next_tree()));
  }
  AuctionEventGenerator event_gen(domain, /*stream=*/2);
  const std::vector<Event> events = event_gen.generate(config.events);

  // Selectivity statistics from an independent training stream.
  EventStats stats(domain.schema());
  AuctionEventGenerator training_gen(domain, /*stream=*/3);
  for (std::size_t i = 0; i < config.training_events; ++i) {
    stats.observe(training_gen.next());
  }
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  ShardedEngineOptions engine_options;
  engine_options.shards = config.shards;
  ShardedEngine engine(domain.schema(), engine_options);
  std::vector<Subscription*> sub_ptrs;
  sub_ptrs.reserve(subs.size());
  for (auto& s : subs) {
    engine.add(*s);
    sub_ptrs.push_back(s.get());
  }

  PruneEngineConfig prune_config;
  prune_config.dimension = dimension;
  prune_config.bottom_up = config.bottom_up;
  prune_config.order = config.tie_break_order;
  // One pruning queue per shard, each pruned to the requested fraction of
  // its own capacity (with shards == 1 this is the paper's global queue).
  ShardedPruningSet pruning(engine, estimator, prune_config, sub_ptrs);

  CentralizedResult result;
  result.dimension = dimension;
  result.total_possible_prunings = pruning.total_possible();
  const double baseline_assocs = static_cast<double>(engine.association_count());

  std::vector<std::vector<SubscriptionId>> batch_results;
  for (const double fraction : config.fractions) {
    pruning.prune_to_fraction(fraction);

    // Warm up caches/branch predictors so the first sampled fraction is
    // not penalized relative to later ones.
    const std::size_t warmup = std::min<std::size_t>(events.size(), 200);
    engine.match_batch(std::span<const Event>(events).first(warmup), batch_results);

    engine.reset_counters();
    Stopwatch watch;
    watch.start();
    engine.match_batch(events, batch_results);
    watch.stop();

    CentralizedPoint p;
    p.fraction = fraction;
    p.prunings_performed = pruning.performed();
    p.filter_time_per_event =
        config.events == 0 ? 0.0 : watch.seconds() / static_cast<double>(config.events);
    const auto counters = engine.counters();
    p.matches = counters.matches;
    p.counter_increments = counters.counter_increments;
    p.tree_evaluations = counters.tree_evaluations;
    p.matching_fraction =
        static_cast<double>(counters.matches) /
        (static_cast<double>(config.events) * static_cast<double>(config.subscriptions));
    p.associations = engine.association_count();
    p.association_reduction =
        baseline_assocs == 0.0
            ? 0.0
            : 1.0 - static_cast<double>(p.associations) / baseline_assocs;
    result.points.push_back(p);
  }
  return result;
}

}  // namespace dbsp
