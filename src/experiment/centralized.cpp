#include "experiment/centralized.hpp"

#include <cmath>
#include <memory>

#include "common/timer.hpp"
#include "core/engine.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

CentralizedResult run_centralized(const CentralizedConfig& config,
                                  PruneDimension dimension) {
  const AuctionDomain domain(config.workload);

  // Workload: identical across heuristics for a given seed.
  AuctionSubscriptionGenerator sub_gen(domain, /*stream=*/1);
  std::vector<std::unique_ptr<Subscription>> subs;
  subs.reserve(config.subscriptions);
  for (std::size_t i = 0; i < config.subscriptions; ++i) {
    subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
        sub_gen.next_tree()));
  }
  AuctionEventGenerator event_gen(domain, /*stream=*/2);
  const std::vector<Event> events = event_gen.generate(config.events);

  // Selectivity statistics from an independent training stream.
  EventStats stats(domain.schema());
  AuctionEventGenerator training_gen(domain, /*stream=*/3);
  for (std::size_t i = 0; i < config.training_events; ++i) {
    stats.observe(training_gen.next());
  }
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  CountingMatcher matcher(domain.schema());
  for (auto& s : subs) matcher.add(*s);

  PruneEngineConfig engine_config;
  engine_config.dimension = dimension;
  engine_config.bottom_up = config.bottom_up;
  engine_config.order = config.tie_break_order;
  PruningEngine engine(estimator, engine_config, &matcher);
  for (auto& s : subs) engine.register_subscription(*s);

  CentralizedResult result;
  result.dimension = dimension;
  result.total_possible_prunings = engine.total_possible();
  const double baseline_assocs = static_cast<double>(matcher.association_count());

  std::vector<SubscriptionId> matches;
  for (const double fraction : config.fractions) {
    const auto target = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(result.total_possible_prunings)));
    if (target > engine.performed()) engine.prune(target - engine.performed());

    // Warm up caches/branch predictors so the first sampled fraction is
    // not penalized relative to later ones.
    const std::size_t warmup = std::min<std::size_t>(events.size(), 200);
    for (std::size_t i = 0; i < warmup; ++i) {
      matches.clear();
      matcher.match(events[i], matches);
    }

    matcher.reset_counters();
    Stopwatch watch;
    watch.start();
    for (const Event& e : events) {
      matches.clear();
      matcher.match(e, matches);
    }
    watch.stop();

    CentralizedPoint p;
    p.fraction = fraction;
    p.prunings_performed = engine.performed();
    p.filter_time_per_event =
        config.events == 0 ? 0.0 : watch.seconds() / static_cast<double>(config.events);
    const auto& counters = matcher.counters();
    p.matches = counters.matches;
    p.counter_increments = counters.counter_increments;
    p.tree_evaluations = counters.tree_evaluations;
    p.matching_fraction =
        static_cast<double>(counters.matches) /
        (static_cast<double>(config.events) * static_cast<double>(config.subscriptions));
    p.associations = matcher.association_count();
    p.association_reduction =
        baseline_assocs == 0.0
            ? 0.0
            : 1.0 - static_cast<double>(p.associations) / baseline_assocs;
    result.points.push_back(p);
  }
  return result;
}

}  // namespace dbsp
