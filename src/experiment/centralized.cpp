#include "experiment/centralized.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "api/pubsub.hpp"
#include "common/timer.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

CentralizedResult run_centralized(const CentralizedConfig& config,
                                  PruneDimension dimension) {
  const AuctionDomain domain(config.workload);

  // The broker under test is a PubSub facade: schema + sharded engine +
  // per-shard pruning queues in one object (with shards == 1 this is the
  // paper's single global queue).
  PubSubOptions options;
  options.engine.shards = config.shards;
  options.pruning = true;
  options.prune.dimension = dimension;
  options.prune.bottom_up = config.bottom_up;
  options.prune.order = config.tie_break_order;
  PubSub pubsub(domain.schema(), options);

  // Selectivity statistics from an independent training stream, trained
  // before the bulk subscribe so admission scores are meaningful.
  {
    AuctionEventGenerator training_gen(domain, /*stream=*/3);
    std::vector<Event> sample;
    sample.reserve(config.training_events);
    for (std::size_t i = 0; i < config.training_events; ++i) {
      sample.push_back(training_gen.next());
    }
    const Status trained = pubsub.train(sample);
    if (!trained.ok()) throw std::logic_error(trained.to_string());
  }

  // Workload: identical across heuristics for a given seed. Handles keep
  // the registrations alive for the whole sweep.
  AuctionSubscriptionGenerator sub_gen(domain, /*stream=*/1);
  std::vector<SubscriptionHandle> handles;
  handles.reserve(config.subscriptions);
  for (std::size_t i = 0; i < config.subscriptions; ++i) {
    auto subscribed = pubsub.subscribe(sub_gen.next_tree());
    if (!subscribed.ok()) throw std::logic_error(subscribed.status().to_string());
    handles.push_back(std::move(subscribed).value());
  }
  AuctionEventGenerator event_gen(domain, /*stream=*/2);
  const std::vector<Event> events = event_gen.generate(config.events);

  CentralizedResult result;
  result.dimension = dimension;
  result.total_possible_prunings = pubsub.pruning_stats().total_possible;
  const double baseline_assocs = static_cast<double>(pubsub.association_count());

  for (const double fraction : config.fractions) {
    (void)pubsub.prune_to_fraction(fraction).value();

    // Warm up caches/branch predictors so the first sampled fraction is
    // not penalized relative to later ones.
    const std::size_t warmup = std::min<std::size_t>(events.size(), 200);
    (void)pubsub.publish_batch(std::span<const Event>(events).first(warmup));

    pubsub.reset_counters();
    Stopwatch watch;
    watch.start();
    (void)pubsub.publish_batch(events);
    watch.stop();

    CentralizedPoint p;
    p.fraction = fraction;
    p.prunings_performed = pubsub.pruning_stats().performed;
    p.filter_time_per_event =
        config.events == 0 ? 0.0 : watch.seconds() / static_cast<double>(config.events);
    const auto counters = pubsub.counters();
    p.matches = counters.matches;
    p.counter_increments = counters.counter_increments;
    p.tree_evaluations = counters.tree_evaluations;
    p.matching_fraction =
        static_cast<double>(counters.matches) /
        (static_cast<double>(config.events) * static_cast<double>(config.subscriptions));
    p.associations = pubsub.association_count();
    p.association_reduction =
        baseline_assocs == 0.0
            ? 0.0
            : 1.0 - static_cast<double>(p.associations) / baseline_assocs;
    result.points.push_back(p);
  }
  return result;
}

}  // namespace dbsp
