#pragma once

/// \file
/// Per-attribute predicate index: given an event's value, yields the
/// fulfilled predicate ids (step one of counting-based matching).

#include <map>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "event/value.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

/// Operator-segregated index of the predicates on one attribute. Given an
/// event's value for the attribute, collect() appends every fulfilled
/// predicate id exactly once.
///
/// Structure (per the two-step predicate-indexing scheme of counting
/// matchers):
///  * Eq and In members: hash map value -> predicate ids (O(1) probe);
///  * Lt/Le: ordered multimap keyed by threshold, fulfilled iff
///    threshold > v (or >= v for Le) — iterate the upper range;
///  * Gt/Ge: ordered multimap, fulfilled iff threshold < v (<=) — iterate
///    the lower range;
///  * Between: ordered by low bound; candidates are intervals with
///    low <= v, verified against the high bound;
///  * Ne and string operators: scan list evaluated per event (these are
///    rare in typical workloads; complexity documented in DESIGN.md).
///
/// Not thread-safe for mutation; concurrent collect() calls are safe while
/// no thread is inserting or removing.
class AttributeIndex {
 public:
  /// Indexes `pred` under `id`; each (id, pred) pair at most once.
  void insert(PredicateId id, const Predicate& pred);
  /// Removes a previously inserted (id, pred) pair.
  void remove(PredicateId id, const Predicate& pred);

  /// Appends ids of all predicates fulfilled by `value`.
  void collect(const Value& value, std::vector<PredicateId>& out) const;

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct OrderedEntry {
    PredicateId id;
    bool inclusive = false;  // Le / Ge
  };
  struct IntervalEntry {
    PredicateId id;
    double high = 0.0;
  };

  void insert_eq_key(const Value& key, PredicateId id);
  void remove_eq_key(const Value& key, PredicateId id);

  std::unordered_map<Value, std::vector<PredicateId>> eq_;
  std::multimap<double, OrderedEntry> less_;     // Lt/Le keyed by threshold
  std::multimap<double, OrderedEntry> greater_;  // Gt/Ge keyed by threshold
  std::multimap<double, IntervalEntry> between_; // keyed by low bound
  // Ne + string ops: owning copies, so callers need not guarantee operand
  // lifetime (predicates are small; scan predicates are rare).
  std::vector<PredicateId> scan_;
  std::unordered_map<PredicateId, Predicate> scan_preds_;
  std::size_t size_ = 0;
};

}  // namespace dbsp
