#pragma once

/// \file
/// DNF conversion of subscription trees (with blowup guard) and predicate
/// negation. Pure functions without shared state; thread-safe on inputs no
/// other thread mutates.

#include <optional>
#include <vector>

#include "subscription/node.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

/// Canonical (DNF) form of a Boolean subscription: a disjunction of
/// conjunctions of predicates. The canonical filtering algorithms of the
/// paper's refs [2]/[10] operate on this form; the paper's footnote 1
/// ("subscriptions in DNF do not eliminate this disadvantage") refers to
/// the blowup measured by the ablation bench built on this module.
struct DnfForm {
  std::vector<std::vector<Predicate>> conjunctions;
};

/// Negates a predicate into an equivalent positive form, possibly a small
/// conjunction or disjunction:
///   ¬(a = v)  -> a != v            ¬(a between lo..hi) -> a < lo OR a > hi
///   ¬(a < v)  -> a >= v            ¬(a in {..})        -> AND of a != vi
/// String pattern operators have no complement operator; nullopt then.
/// Caveat: complements assume the attribute is present in the event (the
/// usual closed-schema assumption of canonical matchers); on events missing
/// the attribute both p and its complement evaluate false.
struct NegatedPredicate {
  /// Outer disjunction of inner conjunctions (at most 2x2 in practice).
  std::vector<std::vector<Predicate>> alternatives;
};
[[nodiscard]] std::optional<NegatedPredicate> negate_predicate(const Predicate& p);

/// Converts a subscription tree to DNF. Returns nullopt when the tree
/// cannot be converted (negated string operator) or when the conversion
/// exceeds `max_conjunctions` (the canonical blowup guard).
[[nodiscard]] std::optional<DnfForm> to_dnf(const Node& tree,
                                            std::size_t max_conjunctions = 4096);

/// Evaluates a DNF form directly against an event (test oracle).
[[nodiscard]] bool dnf_matches(const DnfForm& dnf, const Event& event);

}  // namespace dbsp
