#pragma once

/// \file
/// Reference matcher evaluating every subscription tree directly.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "event/event.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Reference matcher: evaluates every subscription tree directly against
/// every event. O(subs × tree) per event — the correctness oracle for
/// CountingMatcher and the "no indexing" baseline in the micro-benchmarks.
///
/// Registered Subscription objects are borrowed, not owned, and must
/// outlive the matcher. Not thread-safe: external synchronization is
/// required for concurrent use (distinct instances are independent).
class NaiveMatcher {
 public:
  /// Registers a subscription; the tree is read on every match() call.
  void add(Subscription& sub) { subs_.push_back(&sub); }

  /// Unregisters by id; throws std::out_of_range when the id is unknown —
  /// the same add/remove symmetry contract as the other matchers.
  void remove(SubscriptionId id) {
    const auto erased =
        std::erase_if(subs_, [id](const Subscription* s) { return s->id() == id; });
    if (erased == 0) throw std::out_of_range("naive matcher: unknown subscription");
  }

  /// True iff a subscription with this id is registered.
  [[nodiscard]] bool contains(SubscriptionId id) const {
    return std::any_of(subs_.begin(), subs_.end(),
                       [id](const Subscription* s) { return s->id() == id; });
  }

  /// Appends ids of all subscriptions matching `event`, in registration
  /// order.
  void match(const Event& event, std::vector<SubscriptionId>& out) const {
    for (const Subscription* s : subs_) {
      if (s->matches(event)) out.push_back(s->id());
    }
  }

  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }

 private:
  std::vector<Subscription*> subs_;
};

}  // namespace dbsp
