#pragma once

#include <vector>

#include "event/event.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Reference matcher: evaluates every subscription tree directly against
/// every event. O(subs × tree) per event — the correctness oracle for
/// CountingMatcher and the "no indexing" baseline in the micro-benchmarks.
class NaiveMatcher {
 public:
  void add(Subscription& sub) { subs_.push_back(&sub); }

  void remove(SubscriptionId id) {
    std::erase_if(subs_, [id](const Subscription* s) { return s->id() == id; });
  }

  void match(const Event& event, std::vector<SubscriptionId>& out) const {
    for (const Subscription* s : subs_) {
      if (s->matches(event)) out.push_back(s->id());
    }
  }

  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }

 private:
  std::vector<Subscription*> subs_;
};

}  // namespace dbsp
