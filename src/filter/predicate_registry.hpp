#pragma once

/// \file
/// Predicate interning and (predicate, subscription) association tracking
/// for the counting matcher.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

/// Interns predicates and tracks predicate/subscription associations.
///
/// Structurally equal predicates across all subscriptions share one
/// PredicateId, so each distinct condition is evaluated at most once per
/// event. Each association (predicate, subscription) carries a leaf
/// reference count because one subscription may use the same predicate in
/// several leaves; the association disappears when the last leaf is pruned.
/// The total number of associations is the memory metric of the paper's
/// Figures 1(c)/1(f).
///
/// Not thread-safe; owned and serialized by its matcher.
class PredicateRegistry {
 public:
  struct Association {
    SubscriptionId subscription;
    std::uint32_t leaf_refs = 0;
  };

  struct AddResult {
    PredicateId id;
    bool new_association = false;  ///< first leaf of `sub` referencing this predicate
    bool new_predicate = false;    ///< predicate was not interned before (index it)
  };
  struct ReleaseResult {
    bool association_removed = false;  ///< `sub` no longer references the predicate
    /// Set when the last reference overall was released: the predicate is
    /// handed back so the caller can remove it from attribute indexes (the
    /// registry storage is already recycled at that point).
    std::unique_ptr<Predicate> removed_predicate;
  };

  /// Interns `pred` and records one leaf reference from `sub`.
  AddResult add_reference(const Predicate& pred, SubscriptionId sub);

  /// Releases one leaf reference of `pred_id` from `sub`.
  ReleaseResult release_reference(PredicateId pred_id, SubscriptionId sub);

  /// The interned predicate. The reference stays valid until the
  /// predicate's last reference is released (heap-allocated storage), so
  /// indexes may hold it across registry growth.
  [[nodiscard]] const Predicate& predicate(PredicateId id) const;
  [[nodiscard]] const std::vector<Association>& associations(PredicateId id) const;

  /// Number of live distinct predicates.
  [[nodiscard]] std::size_t live_predicates() const { return live_predicates_; }
  /// Total number of (predicate, subscription) associations — the pred/sub
  /// association count of Fig. 1(c)/(f).
  [[nodiscard]] std::size_t association_count() const { return association_count_; }
  /// Upper bound over all ids ever issued (dense array sizing).
  [[nodiscard]] std::size_t capacity() const { return entries_.size(); }

  [[nodiscard]] std::optional<PredicateId> find(const Predicate& pred) const;

 private:
  struct Entry {
    std::unique_ptr<Predicate> pred;  // null once recycled; heap for address stability
    std::vector<Association> subs;
    std::uint64_t total_refs = 0;
  };

  std::vector<Entry> entries_;
  std::vector<PredicateId> free_ids_;
  std::unordered_map<Predicate, PredicateId> intern_;
  std::size_t live_predicates_ = 0;
  std::size_t association_count_ = 0;
};

}  // namespace dbsp
