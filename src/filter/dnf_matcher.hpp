#pragma once

/// \file
/// The canonical (DNF) counting matcher baseline.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "event/event.hpp"
#include "event/schema.hpp"
#include "filter/attribute_index.hpp"
#include "filter/dnf.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Canonical counting matcher (refs [2]/[10]): subscriptions are converted
/// to DNF and every conjunction gets a counter; a conjunction whose counter
/// reaches its size fires its subscription. Simpler per-event logic than
/// the non-canonical CountingMatcher (no tree evaluation at all) at the
/// cost of the DNF blowup — the trade-off quantified by
/// bench/ablation_canonical.
///
/// Unlike CountingMatcher this matcher does not support reindex-after-
/// pruning; it is the baseline algorithm, not the pruning substrate.
///
/// Not thread-safe: every member (including match(), which advances the
/// epoch) mutates state and requires external synchronization. Distinct
/// instances are independent.
class DnfMatcher {
 public:
  explicit DnfMatcher(const Schema& schema);

  /// Converts and indexes the subscription. Returns false (and indexes
  /// nothing) when the tree is not DNF-convertible or exceeds
  /// `max_conjunctions`.
  bool add(const Subscription& sub, std::size_t max_conjunctions = 4096);
  /// Unregisters by id, releasing all conjunction counters; throws
  /// std::out_of_range when the id is unknown.
  void remove(SubscriptionId id);
  /// True iff a subscription with this id is indexed.
  [[nodiscard]] bool contains(SubscriptionId id) const {
    return subs_.count(id.value()) != 0;
  }

  /// Appends ids of all subscriptions matching `event` (each at most once).
  /// Non-const: advances the matcher epoch and touches counters.
  void match(const Event& event, std::vector<SubscriptionId>& out);

  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }
  /// Total conjunction counters — the canonical algorithm's table size.
  [[nodiscard]] std::size_t conjunction_count() const { return live_conjunctions_; }
  /// Distinct predicates in the indexes.
  [[nodiscard]] std::size_t predicate_count() const { return intern_.size(); }
  /// Σ over conjunctions of their predicate count (association analogue).
  [[nodiscard]] std::size_t association_count() const { return association_count_; }

 private:
  struct PredEntry {
    Predicate pred;
    std::vector<std::uint32_t> conjunctions;
    std::uint32_t refs = 0;
  };
  struct Conjunction {
    SubscriptionId sub;
    std::uint32_t size = 0;
    bool live = false;
    std::vector<PredicateId> preds;
  };

  PredicateId intern(const Predicate& pred);
  void release(PredicateId id);

  const Schema* schema_;
  std::vector<AttributeIndex> attr_index_;
  std::unordered_map<Predicate, PredicateId> intern_;
  std::vector<PredEntry> pred_entries_;
  std::vector<PredicateId> free_preds_;

  std::vector<Conjunction> conjunctions_;
  std::vector<std::uint32_t> free_conjunctions_;
  std::vector<std::uint32_t> counter_;
  std::vector<std::uint64_t> counter_epoch_;
  std::unordered_map<SubscriptionId::value_type, std::vector<std::uint32_t>> subs_;
  std::unordered_map<SubscriptionId::value_type, std::uint64_t> sub_epoch_;

  std::uint64_t epoch_ = 0;
  std::size_t live_conjunctions_ = 0;
  std::size_t association_count_ = 0;
  std::vector<PredicateId> scratch_preds_;
};

}  // namespace dbsp
