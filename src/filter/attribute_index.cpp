#include "filter/attribute_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbsp {

namespace {

/// Ordered comparisons and Between only index numeric operands; predicates
/// with non-numeric operands on those operators fall back to the scan list.
bool numeric_indexable(const Predicate& pred) {
  switch (pred.op()) {
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      return pred.operand().is_numeric();
    case Op::Between:
      return pred.operands()[0].is_numeric() && pred.operands()[1].is_numeric();
    default:
      return false;
  }
}

}  // namespace

void AttributeIndex::insert_eq_key(const Value& key, PredicateId id) {
  eq_[key].push_back(id);
}

void AttributeIndex::remove_eq_key(const Value& key, PredicateId id) {
  auto it = eq_.find(key);
  if (it == eq_.end()) throw std::logic_error("attribute index: eq key missing");
  auto& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), id);
  if (pos == vec.end()) throw std::logic_error("attribute index: eq predicate missing");
  *pos = vec.back();
  vec.pop_back();
  if (vec.empty()) eq_.erase(it);
}

void AttributeIndex::insert(PredicateId id, const Predicate& pred) {
  ++size_;
  switch (pred.op()) {
    case Op::Eq:
      insert_eq_key(pred.operand(), id);
      return;
    case Op::In:
      for (const auto& v : pred.operands()) insert_eq_key(v, id);
      return;
    case Op::Lt:
    case Op::Le:
      if (numeric_indexable(pred)) {
        less_.emplace(pred.operand().numeric(),
                      OrderedEntry{id, pred.op() == Op::Le});
        return;
      }
      break;
    case Op::Gt:
    case Op::Ge:
      if (numeric_indexable(pred)) {
        greater_.emplace(pred.operand().numeric(),
                         OrderedEntry{id, pred.op() == Op::Ge});
        return;
      }
      break;
    case Op::Between:
      if (numeric_indexable(pred)) {
        between_.emplace(pred.operands()[0].numeric(),
                         IntervalEntry{id, pred.operands()[1].numeric()});
        return;
      }
      break;
    default:
      break;
  }
  scan_.push_back(id);
  scan_preds_.emplace(id, pred);
}

void AttributeIndex::remove(PredicateId id, const Predicate& pred) {
  if (size_ == 0) throw std::logic_error("attribute index: remove from empty index");
  --size_;
  auto erase_ordered = [&](auto& map, double key) {
    auto [lo, hi] = map.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.id == id) {
        map.erase(it);
        return;
      }
    }
    throw std::logic_error("attribute index: ordered predicate missing");
  };
  switch (pred.op()) {
    case Op::Eq:
      remove_eq_key(pred.operand(), id);
      return;
    case Op::In:
      for (const auto& v : pred.operands()) remove_eq_key(v, id);
      return;
    case Op::Lt:
    case Op::Le:
      if (numeric_indexable(pred)) {
        erase_ordered(less_, pred.operand().numeric());
        return;
      }
      break;
    case Op::Gt:
    case Op::Ge:
      if (numeric_indexable(pred)) {
        erase_ordered(greater_, pred.operand().numeric());
        return;
      }
      break;
    case Op::Between:
      if (numeric_indexable(pred)) {
        erase_ordered(between_, pred.operands()[0].numeric());
        return;
      }
      break;
    default:
      break;
  }
  auto pos = std::find(scan_.begin(), scan_.end(), id);
  if (pos == scan_.end()) throw std::logic_error("attribute index: scan predicate missing");
  *pos = scan_.back();
  scan_.pop_back();
  scan_preds_.erase(id);
}

void AttributeIndex::collect(const Value& value, std::vector<PredicateId>& out) const {
  if (auto it = eq_.find(value); it != eq_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (value.is_numeric()) {
    const double v = value.numeric();
    // attr < c fulfilled iff c > v; attr <= c additionally at c == v.
    for (auto it = less_.lower_bound(v); it != less_.end(); ++it) {
      if (it->first > v || (it->second.inclusive && it->first == v)) {
        out.push_back(it->second.id);
      }
    }
    // attr > c fulfilled iff c < v; attr >= c additionally at c == v.
    for (auto it = greater_.begin(); it != greater_.end() && it->first <= v; ++it) {
      if (it->first < v || (it->second.inclusive && it->first == v)) {
        out.push_back(it->second.id);
      }
    }
    for (auto it = between_.begin(); it != between_.end() && it->first <= v; ++it) {
      if (it->second.high >= v) out.push_back(it->second.id);
    }
  }
  for (const auto id : scan_) {
    if (scan_preds_.at(id).matches_value(value)) out.push_back(id);
  }
}

}  // namespace dbsp
