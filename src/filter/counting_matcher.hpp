#pragma once

/// \file
/// The non-canonical counting matcher: per-attribute predicate indexes,
/// association counters, and the pmin evaluation trigger.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "event/event.hpp"
#include "event/schema.hpp"
#include "filter/attribute_index.hpp"
#include "filter/predicate_registry.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// The counting-based filtering engine for Boolean subscriptions
/// (non-canonical algorithm of the paper's ref [2]).
///
/// Two-phase matching: (1) per-attribute indexes produce the set of
/// predicates fulfilled by the event — each distinct predicate is tested at
/// most once regardless of how many subscriptions use it; (2) counters over
/// predicate/subscription associations find subscriptions whose number of
/// fulfilled predicates reaches pmin, and only those have their Boolean
/// tree evaluated (the pmin evaluation trigger central to the throughput
/// heuristic of §3.3). Subscriptions with pmin == 0 (satisfiable through a
/// NOT by absence of matches) are evaluated on every event.
///
/// The matcher does not own subscriptions; registered Subscription objects
/// must outlive it and their addresses must be stable. Trees may only be
/// mutated through the pruning engine, which calls reindex() afterwards.
///
/// Not thread-safe: every member (including match(), which advances the
/// epoch) mutates state and requires external synchronization. Distinct
/// instances are independent — the property the sharded engine exploits by
/// running one matcher per shard.
class CountingMatcher {
 public:
  explicit CountingMatcher(const Schema& schema);

  /// Registers a subscription: interns its predicates, assigns leaf
  /// predicate ids, indexes it for matching.
  void add(Subscription& sub);
  /// Unregisters; releases all predicate references.
  void remove(Subscription& sub);
  /// Id-based overload (uniform across matchers); throws std::out_of_range
  /// when the id is unknown.
  void remove(SubscriptionId id);
  /// Re-synchronizes indexes and pmin after the subscription's tree changed
  /// (e.g. a pruning). Cost is proportional to the tree size.
  void reindex(Subscription& sub);

  /// Appends ids of all subscriptions matching `event`. Non-const: advances
  /// the matcher epoch and touches counters.
  void match(const Event& event, std::vector<SubscriptionId>& out);

  [[nodiscard]] bool contains(SubscriptionId id) const;
  [[nodiscard]] std::size_t subscription_count() const { return live_subs_; }

  /// Predicate/subscription association count (memory metric, Fig 1c/1f).
  [[nodiscard]] std::size_t association_count() const {
    return registry_.association_count();
  }
  /// Associations contributed by one subscription (= its distinct
  /// predicates); lets experiments restrict the metric to non-local subs.
  [[nodiscard]] std::size_t associations_of(SubscriptionId id) const;

  [[nodiscard]] std::size_t live_predicates() const { return registry_.live_predicates(); }
  [[nodiscard]] const PredicateRegistry& registry() const { return registry_; }

  /// Disables the pmin evaluation trigger: every registered subscription's
  /// tree is evaluated on every event (predicate indexes still run). Only
  /// meant for the ablation study quantifying the trigger's value.
  void set_pmin_trigger(bool enabled) { pmin_trigger_ = enabled; }
  [[nodiscard]] bool pmin_trigger() const { return pmin_trigger_; }

  /// Introspection counters accumulated across match() calls.
  struct Counters {
    std::uint64_t events = 0;
    std::uint64_t predicate_hits = 0;      ///< fulfilled predicates found by indexes
    std::uint64_t counter_increments = 0;  ///< association counter bumps
    std::uint64_t tree_evaluations = 0;    ///< Boolean trees evaluated
    std::uint64_t matches = 0;             ///< subscriptions matched
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  struct Slot {
    Subscription* sub = nullptr;
    std::uint32_t pmin = 0;
    /// Snapshot of the tree's predicate multiset at last (re)index:
    /// (predicate id, leaf count). Used to diff on reindex/remove.
    std::vector<std::pair<PredicateId, std::uint32_t>> preds;
  };

  [[nodiscard]] std::uint32_t slot_of(SubscriptionId id) const;
  void index_tree(Subscription& sub, std::vector<std::pair<PredicateId, std::uint32_t>>& preds);
  void release_snapshot(SubscriptionId id,
                        const std::vector<std::pair<PredicateId, std::uint32_t>>& preds);
  void set_pmin(std::uint32_t slot, std::uint32_t pmin);
  void grow_predicate_arrays();

  /// One association as seen from a predicate: the subscription's slot and
  /// how many of its leaves carry this predicate. Counters advance by
  /// `leaf_refs` so they count fulfilled *leaf occurrences* — pmin is a
  /// bound on fulfilled leaves, not on distinct predicates (a predicate
  /// duplicated across leaves must count once per leaf).
  struct PredSub {
    std::uint32_t slot = 0;
    std::uint32_t leaf_refs = 0;
  };

  const Schema* schema_;
  PredicateRegistry registry_;
  std::vector<AttributeIndex> attr_index_;            // by attribute id
  std::vector<std::vector<PredSub>> pred_slots_;      // by predicate id
  std::vector<std::uint64_t> pred_epoch_;             // by predicate id

  std::unordered_map<SubscriptionId::value_type, std::uint32_t> slot_by_id_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> counter_;
  std::vector<std::uint64_t> counter_epoch_;
  std::vector<std::uint32_t> always_eval_;  // slots with pmin == 0

  std::uint64_t epoch_ = 0;
  std::size_t live_subs_ = 0;
  bool pmin_trigger_ = true;
  std::vector<PredicateId> scratch_preds_;
  std::vector<std::uint32_t> scratch_candidates_;
  Counters counters_;
};

}  // namespace dbsp
