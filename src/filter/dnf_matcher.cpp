#include "filter/dnf_matcher.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dbsp {

DnfMatcher::DnfMatcher(const Schema& schema) : schema_(&schema) {
  attr_index_.resize(schema.attribute_count());
}

PredicateId DnfMatcher::intern(const Predicate& pred) {
  if (auto it = intern_.find(pred); it != intern_.end()) {
    ++pred_entries_[it->second.value()].refs;
    return it->second;
  }
  PredicateId id;
  if (!free_preds_.empty()) {
    id = free_preds_.back();
    free_preds_.pop_back();
    pred_entries_[id.value()] = PredEntry{pred, {}, 1};
  } else {
    id = PredicateId(static_cast<PredicateId::value_type>(pred_entries_.size()));
    pred_entries_.push_back(PredEntry{pred, {}, 1});
  }
  intern_.emplace(pred, id);
  if (pred.attribute().value() >= attr_index_.size()) {
    throw std::out_of_range("dnf matcher: predicate outside schema");
  }
  attr_index_[pred.attribute().value()].insert(id, pred_entries_[id.value()].pred);
  return id;
}

void DnfMatcher::release(PredicateId id) {
  PredEntry& e = pred_entries_.at(id.value());
  assert(e.refs > 0);
  if (--e.refs == 0) {
    attr_index_[e.pred.attribute().value()].remove(id, e.pred);
    intern_.erase(e.pred);
    e.conjunctions.clear();
    free_preds_.push_back(id);
  }
}

bool DnfMatcher::add(const Subscription& sub, std::size_t max_conjunctions) {
  if (subs_.count(sub.id().value()) != 0) {
    throw std::invalid_argument("dnf matcher: duplicate subscription");
  }
  const auto dnf = to_dnf(sub.root(), max_conjunctions);
  if (!dnf) return false;

  std::vector<std::uint32_t>& conj_ids = subs_[sub.id().value()];
  conj_ids.reserve(dnf->conjunctions.size());
  for (const auto& conjunction : dnf->conjunctions) {
    std::uint32_t cid;
    if (!free_conjunctions_.empty()) {
      cid = free_conjunctions_.back();
      free_conjunctions_.pop_back();
    } else {
      cid = static_cast<std::uint32_t>(conjunctions_.size());
      conjunctions_.emplace_back();
      counter_.push_back(0);
      counter_epoch_.push_back(0);
    }
    Conjunction& c = conjunctions_[cid];
    c.sub = sub.id();
    c.live = true;
    c.preds.clear();
    for (const Predicate& p : conjunction) {
      const PredicateId pid = intern(p);
      c.preds.push_back(pid);
      pred_entries_[pid.value()].conjunctions.push_back(cid);
    }
    c.size = static_cast<std::uint32_t>(c.preds.size());
    association_count_ += c.preds.size();
    ++live_conjunctions_;
    conj_ids.push_back(cid);
  }
  return true;
}

void DnfMatcher::remove(SubscriptionId id) {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) throw std::out_of_range("dnf matcher: unknown subscription");
  for (const std::uint32_t cid : it->second) {
    Conjunction& c = conjunctions_[cid];
    for (const PredicateId pid : c.preds) {
      auto& list = pred_entries_[pid.value()].conjunctions;
      auto pos = std::find(list.begin(), list.end(), cid);
      assert(pos != list.end());
      *pos = list.back();
      list.pop_back();
      release(pid);
    }
    association_count_ -= c.preds.size();
    c = Conjunction{};
    free_conjunctions_.push_back(cid);
    --live_conjunctions_;
  }
  subs_.erase(it);
  sub_epoch_.erase(id.value());
}

void DnfMatcher::match(const Event& event, std::vector<SubscriptionId>& out) {
  ++epoch_;
  scratch_preds_.clear();
  for (const auto& [attr, value] : event.pairs()) {
    if (attr.value() >= attr_index_.size()) continue;
    attr_index_[attr.value()].collect(value, scratch_preds_);
  }
  for (const PredicateId pid : scratch_preds_) {
    for (const std::uint32_t cid : pred_entries_[pid.value()].conjunctions) {
      if (counter_epoch_[cid] != epoch_) {
        counter_epoch_[cid] = epoch_;
        counter_[cid] = 0;
      }
      if (++counter_[cid] == conjunctions_[cid].size) {
        // Conjunction satisfied; report its subscription once per event.
        const SubscriptionId sub = conjunctions_[cid].sub;
        auto [it, inserted] = sub_epoch_.try_emplace(sub.value(), 0);
        if (it->second != epoch_) {
          it->second = epoch_;
          out.push_back(sub);
        }
      }
    }
  }
}

}  // namespace dbsp
