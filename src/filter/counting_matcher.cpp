#include "filter/counting_matcher.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dbsp {

CountingMatcher::CountingMatcher(const Schema& schema) : schema_(&schema) {
  attr_index_.resize(schema.attribute_count());
}

std::uint32_t CountingMatcher::slot_of(SubscriptionId id) const {
  auto it = slot_by_id_.find(id.value());
  if (it == slot_by_id_.end()) throw std::out_of_range("matcher: unknown subscription");
  return it->second;
}

bool CountingMatcher::contains(SubscriptionId id) const {
  return slot_by_id_.count(id.value()) != 0;
}

void CountingMatcher::grow_predicate_arrays() {
  const std::size_t needed = registry_.capacity();
  if (pred_slots_.size() < needed) {
    pred_slots_.resize(needed);
    pred_epoch_.resize(needed, 0);
  }
}

void CountingMatcher::index_tree(
    Subscription& sub, std::vector<std::pair<PredicateId, std::uint32_t>>& preds) {
  const std::uint32_t slot = slot_of(sub.id());
  sub.root().for_each_leaf_mut([&](Node& leaf) {
    const auto result = registry_.add_reference(leaf.predicate(), sub.id());
    leaf.set_predicate_id(result.id);
    grow_predicate_arrays();
    if (result.new_predicate) {
      const auto attr = registry_.predicate(result.id).attribute();
      if (attr.value() >= attr_index_.size()) {
        throw std::out_of_range("matcher: predicate on attribute outside schema");
      }
      attr_index_[attr.value()].insert(result.id, registry_.predicate(result.id));
      pred_slots_[result.id.value()].clear();
    }
    auto& assoc = pred_slots_[result.id.value()];
    if (result.new_association) {
      assoc.push_back({slot, 1});
    } else {
      // Rare: the same predicate in another leaf of the same subscription.
      auto entry = std::find_if(assoc.begin(), assoc.end(),
                                [&](const PredSub& p) { return p.slot == slot; });
      assert(entry != assoc.end());
      ++entry->leaf_refs;
    }
    auto it = std::find_if(preds.begin(), preds.end(),
                           [&](const auto& p) { return p.first == result.id; });
    if (it == preds.end()) {
      preds.emplace_back(result.id, 1);
    } else {
      ++it->second;
    }
  });
}

void CountingMatcher::release_snapshot(
    SubscriptionId id, const std::vector<std::pair<PredicateId, std::uint32_t>>& preds) {
  const std::uint32_t slot = slot_of(id);
  for (const auto& [pid, count] : preds) {
    for (std::uint32_t i = 0; i < count; ++i) {
      auto result = registry_.release_reference(pid, id);
      auto& assoc = pred_slots_[pid.value()];
      auto it = std::find_if(assoc.begin(), assoc.end(),
                             [&](const PredSub& p) { return p.slot == slot; });
      assert(it != assoc.end());
      if (result.association_removed) {
        *it = assoc.back();
        assoc.pop_back();
      } else {
        --it->leaf_refs;
      }
      if (result.removed_predicate) {
        const auto attr = result.removed_predicate->attribute();
        attr_index_[attr.value()].remove(pid, *result.removed_predicate);
      }
    }
  }
}

void CountingMatcher::set_pmin(std::uint32_t slot, std::uint32_t pmin) {
  const std::uint32_t old = slots_[slot].pmin;
  slots_[slot].pmin = pmin;
  const bool was_always = slots_[slot].sub != nullptr && old == 0;
  const bool is_always = pmin == 0;
  if (was_always == is_always) return;
  if (is_always) {
    always_eval_.push_back(slot);
  } else {
    auto it = std::find(always_eval_.begin(), always_eval_.end(), slot);
    if (it != always_eval_.end()) {
      *it = always_eval_.back();
      always_eval_.pop_back();
    }
  }
}

void CountingMatcher::add(Subscription& sub) {
  if (contains(sub.id())) throw std::invalid_argument("matcher: duplicate subscription id");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    counter_.push_back(0);
    counter_epoch_.push_back(0);
  }
  slot_by_id_.emplace(sub.id().value(), slot);
  slots_[slot] = Slot{};
  slots_[slot].sub = &sub;
  index_tree(sub, slots_[slot].preds);
  slots_[slot].pmin = 1;  // placeholder != 0 so set_pmin tracks the always list
  set_pmin(slot, sub.root().pmin());
  ++live_subs_;
}

void CountingMatcher::remove(Subscription& sub) {
  const std::uint32_t slot = slot_of(sub.id());
  // Pull the slot out of the always-eval list before releasing references.
  set_pmin(slot, 1);
  auto preds = std::move(slots_[slot].preds);
  release_snapshot(sub.id(), preds);
  slot_by_id_.erase(sub.id().value());
  slots_[slot] = Slot{};
  free_slots_.push_back(slot);
  --live_subs_;
}

void CountingMatcher::remove(SubscriptionId id) { remove(*slots_[slot_of(id)].sub); }

void CountingMatcher::reindex(Subscription& sub) {
  const std::uint32_t slot = slot_of(sub.id());
  auto old_preds = std::move(slots_[slot].preds);
  slots_[slot].preds.clear();
  // Index the new tree first so predicates shared between old and new trees
  // never drop to zero references (which would thrash the attribute index).
  index_tree(sub, slots_[slot].preds);
  release_snapshot(sub.id(), old_preds);
  set_pmin(slot, sub.root().pmin());
}

void CountingMatcher::match(const Event& event, std::vector<SubscriptionId>& out) {
  ++epoch_;
  ++counters_.events;
  scratch_preds_.clear();
  scratch_candidates_.clear();

  for (const auto& [attr, value] : event.pairs()) {
    if (attr.value() >= attr_index_.size()) continue;
    attr_index_[attr.value()].collect(value, scratch_preds_);
  }
  counters_.predicate_hits += scratch_preds_.size();

  if (pmin_trigger_) {
    for (const PredicateId pid : scratch_preds_) {
      pred_epoch_[pid.value()] = epoch_;
      for (const PredSub& entry : pred_slots_[pid.value()]) {
        const std::uint32_t slot = entry.slot;
        if (counter_epoch_[slot] != epoch_) {
          counter_epoch_[slot] = epoch_;
          counter_[slot] = 0;
        }
        ++counters_.counter_increments;
        const std::uint32_t before = counter_[slot];
        counter_[slot] = before + entry.leaf_refs;
        if (before < slots_[slot].pmin && counter_[slot] >= slots_[slot].pmin) {
          scratch_candidates_.push_back(slot);
        }
      }
    }
    for (const std::uint32_t slot : always_eval_) scratch_candidates_.push_back(slot);
  } else {
    // Ablation mode: mark fulfilled predicates, evaluate everything.
    for (const PredicateId pid : scratch_preds_) pred_epoch_[pid.value()] = epoch_;
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].sub != nullptr) scratch_candidates_.push_back(slot);
    }
  }

  for (const std::uint32_t slot : scratch_candidates_) {
    const Slot& s = slots_[slot];
    ++counters_.tree_evaluations;
    const bool matched = s.sub->root().evaluate([&](const Node& leaf) {
      const PredicateId pid = leaf.predicate_id();
      return pid.valid() && pred_epoch_[pid.value()] == epoch_;
    });
    if (matched) {
      ++counters_.matches;
      out.push_back(s.sub->id());
    }
  }
}

std::size_t CountingMatcher::associations_of(SubscriptionId id) const {
  return slots_[slot_of(id)].preds.size();
}

}  // namespace dbsp
