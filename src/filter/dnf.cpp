#include "filter/dnf.hpp"

#include <algorithm>

namespace dbsp {

namespace {

/// DNF of a subtree under a polarity; nullopt on inconvertible leaves or
/// blowup. Conjunctions are predicate lists; TRUE is the empty conjunction
/// set meaning... we never produce constants: input trees are constant-free.
std::optional<std::vector<std::vector<Predicate>>> dnf_walk(
    const Node& node, bool positive, std::size_t max_conjunctions);

/// Cross product of two DNFs (the AND of two disjunctions).
std::optional<std::vector<std::vector<Predicate>>> dnf_and(
    const std::vector<std::vector<Predicate>>& a,
    const std::vector<std::vector<Predicate>>& b, std::size_t max_conjunctions) {
  if (a.size() * b.size() > max_conjunctions) return std::nullopt;
  std::vector<std::vector<Predicate>> out;
  out.reserve(a.size() * b.size());
  for (const auto& ca : a) {
    for (const auto& cb : b) {
      std::vector<Predicate> merged = ca;
      for (const auto& p : cb) {
        // Drop duplicates within a conjunction (keeps counting thresholds
        // equal to the number of distinct predicates).
        if (std::none_of(merged.begin(), merged.end(),
                         [&](const Predicate& q) { return q.equals(p); })) {
          merged.push_back(p);
        }
      }
      out.push_back(std::move(merged));
    }
  }
  return out;
}

std::optional<std::vector<std::vector<Predicate>>> dnf_walk(
    const Node& node, bool positive, std::size_t max_conjunctions) {
  switch (node.kind()) {
    case NodeKind::Leaf: {
      if (positive) return std::vector<std::vector<Predicate>>{{node.predicate()}};
      const auto negated = negate_predicate(node.predicate());
      if (!negated) return std::nullopt;
      return negated->alternatives;
    }
    case NodeKind::Not:
      return dnf_walk(*node.children()[0], !positive, max_conjunctions);
    case NodeKind::And:
    case NodeKind::Or: {
      // De Morgan: a negated And behaves as Or and vice versa.
      const bool disjunctive = (node.kind() == NodeKind::Or) == positive;
      std::optional<std::vector<std::vector<Predicate>>> acc;
      for (const auto& child : node.children()) {
        auto part = dnf_walk(*child, positive, max_conjunctions);
        if (!part) return std::nullopt;
        if (!acc) {
          acc = std::move(part);
          continue;
        }
        if (disjunctive) {
          acc->insert(acc->end(), std::make_move_iterator(part->begin()),
                      std::make_move_iterator(part->end()));
          if (acc->size() > max_conjunctions) return std::nullopt;
        } else {
          acc = dnf_and(*acc, *part, max_conjunctions);
          if (!acc) return std::nullopt;
        }
      }
      return acc;
    }
    case NodeKind::True:
      return std::vector<std::vector<Predicate>>{{}};
    case NodeKind::False:
      return std::vector<std::vector<Predicate>>{};
  }
  return std::nullopt;
}

}  // namespace

std::optional<NegatedPredicate> negate_predicate(const Predicate& p) {
  NegatedPredicate out;
  switch (p.op()) {
    case Op::Eq:
      out.alternatives = {{Predicate(p.attribute(), Op::Ne, p.operand())}};
      return out;
    case Op::Ne:
      out.alternatives = {{Predicate(p.attribute(), Op::Eq, p.operand())}};
      return out;
    case Op::Lt:
      out.alternatives = {{Predicate(p.attribute(), Op::Ge, p.operand())}};
      return out;
    case Op::Le:
      out.alternatives = {{Predicate(p.attribute(), Op::Gt, p.operand())}};
      return out;
    case Op::Gt:
      out.alternatives = {{Predicate(p.attribute(), Op::Le, p.operand())}};
      return out;
    case Op::Ge:
      out.alternatives = {{Predicate(p.attribute(), Op::Lt, p.operand())}};
      return out;
    case Op::Between:
      out.alternatives = {{Predicate(p.attribute(), Op::Lt, p.operands()[0])},
                          {Predicate(p.attribute(), Op::Gt, p.operands()[1])}};
      return out;
    case Op::In: {
      std::vector<Predicate> all_ne;
      all_ne.reserve(p.operands().size());
      for (const auto& v : p.operands()) {
        all_ne.emplace_back(p.attribute(), Op::Ne, v);
      }
      out.alternatives = {std::move(all_ne)};
      return out;
    }
    case Op::Prefix:
    case Op::Suffix:
    case Op::Contains:
      return std::nullopt;  // no complement operator exists
  }
  return std::nullopt;
}

std::optional<DnfForm> to_dnf(const Node& tree, std::size_t max_conjunctions) {
  auto conjunctions = dnf_walk(tree, /*positive=*/true, max_conjunctions);
  if (!conjunctions) return std::nullopt;
  return DnfForm{std::move(*conjunctions)};
}

bool dnf_matches(const DnfForm& dnf, const Event& event) {
  return std::any_of(
      dnf.conjunctions.begin(), dnf.conjunctions.end(), [&](const auto& conj) {
        return std::all_of(conj.begin(), conj.end(),
                           [&](const Predicate& p) { return p.matches(event); });
      });
}

}  // namespace dbsp
