#include "filter/naive_matcher.hpp"

// Header-only; this translation unit keeps the build graph uniform.
