#include "filter/predicate_registry.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dbsp {

PredicateRegistry::AddResult PredicateRegistry::add_reference(const Predicate& pred,
                                                              SubscriptionId sub) {
  AddResult result;
  PredicateId id;
  if (auto it = intern_.find(pred); it != intern_.end()) {
    id = it->second;
  } else {
    result.new_predicate = true;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
      entries_[id.value()].pred = std::make_unique<Predicate>(pred);
    } else {
      id = PredicateId(static_cast<PredicateId::value_type>(entries_.size()));
      entries_.emplace_back();
      entries_.back().pred = std::make_unique<Predicate>(pred);
    }
    intern_.emplace(pred, id);
    ++live_predicates_;
  }
  Entry& e = entries_[id.value()];
  ++e.total_refs;
  auto assoc = std::find_if(e.subs.begin(), e.subs.end(),
                            [&](const Association& a) { return a.subscription == sub; });
  if (assoc == e.subs.end()) {
    e.subs.push_back({sub, 1});
    ++association_count_;
    result.new_association = true;
  } else {
    ++assoc->leaf_refs;
  }
  result.id = id;
  return result;
}

PredicateRegistry::ReleaseResult PredicateRegistry::release_reference(PredicateId pred_id,
                                                                      SubscriptionId sub) {
  ReleaseResult result;
  Entry& e = entries_.at(pred_id.value());
  if (!e.pred) throw std::logic_error("registry: release on recycled predicate");
  auto assoc = std::find_if(e.subs.begin(), e.subs.end(),
                            [&](const Association& a) { return a.subscription == sub; });
  if (assoc == e.subs.end()) throw std::logic_error("registry: release without reference");
  assert(assoc->leaf_refs > 0 && e.total_refs > 0);
  --assoc->leaf_refs;
  --e.total_refs;
  if (assoc->leaf_refs == 0) {
    *assoc = e.subs.back();
    e.subs.pop_back();
    --association_count_;
    result.association_removed = true;
  }
  if (e.total_refs == 0) {
    intern_.erase(*e.pred);
    result.removed_predicate = std::move(e.pred);
    e.subs.clear();
    e.subs.shrink_to_fit();
    free_ids_.push_back(pred_id);
    --live_predicates_;
  }
  return result;
}

const Predicate& PredicateRegistry::predicate(PredicateId id) const {
  const Entry& e = entries_.at(id.value());
  if (!e.pred) throw std::logic_error("registry: access to recycled predicate");
  return *e.pred;
}

const std::vector<PredicateRegistry::Association>& PredicateRegistry::associations(
    PredicateId id) const {
  return entries_.at(id.value()).subs;
}

std::optional<PredicateId> PredicateRegistry::find(const Predicate& pred) const {
  auto it = intern_.find(pred);
  if (it == intern_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dbsp
