#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "common/env.hpp"

namespace dbsp::obs {

namespace {

[[nodiscard]] std::uint64_t unix_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer — turns a counter into well-spread nonzero ids.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_trace_counter{1};
std::atomic<std::uint64_t> g_span_counter{1};

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out.append(buf);
}

void append_id(std::string& out, std::uint64_t v) {
  out.push_back('"');
  append_u64(out, v);
  out.push_back('"');
}

}  // namespace

TraceContext make_trace_context(bool sampled) {
  TraceContext ctx;
  // Counter seeded through splitmix64: process-unique, well spread, and
  // never 0 (mix64 maps at most one input to 0; skip it if hit).
  do {
    ctx.trace_id =
        mix64(g_trace_counter.fetch_add(1, std::memory_order_relaxed));
  } while (ctx.trace_id == 0);
  ctx.sampled = sampled;
  return ctx;
}

std::uint64_t next_span_id() {
  return g_span_counter.fetch_add(1, std::memory_order_relaxed);
}

const char* to_string(TraceStage stage) {
  switch (stage) {
    case TraceStage::kClientRequest:
      return "client_request";
    case TraceStage::kServerDispatch:
      return "server_dispatch";
    case TraceStage::kAggProbe:
      return "agg_probe";
    case TraceStage::kAggFallback:
      return "agg_fallback";
    case TraceStage::kShardMatch:
      return "shard_match";
    case TraceStage::kMatch:
      return "match";
    case TraceStage::kDispatch:
      return "dispatch";
    case TraceStage::kPrune:
      return "prune";
    case TraceStage::kWalAppend:
      return "wal_append";
    case TraceStage::kQueueWait:
      return "queue_wait";
    case TraceStage::kSocketWrite:
      return "socket_write";
    case TraceStage::kOverlayHop:
      return "overlay_hop";
  }
  return "unknown";
}

// --- TraceBuilder -----------------------------------------------------------

void TraceBuilder::begin(TraceContext context) {
  context_ = context;
  start_steady_ = std::chrono::steady_clock::now();
  start_unix_us_ = unix_now_us();
  span_count_ = 0;
  dropped_spans_ = 0;
}

std::uint64_t TraceBuilder::elapsed_us() const {
  const auto ns = std::chrono::steady_clock::now() - start_steady_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(ns).count());
}

std::size_t TraceBuilder::open_span(TraceStage stage,
                                    std::uint64_t parent_span) {
  if (span_count_ >= kMaxSpans) {
    ++dropped_spans_;
    return kMaxSpans;
  }
  TraceSpan& span = spans_[span_count_];
  span.stage = stage;
  span.span_id = next_span_id();
  span.parent_span = parent_span != 0 ? parent_span : context_.parent_span;
  span.start_us = elapsed_us();
  span.duration_us = 0;
  span.detail = 0;
  return span_count_++;
}

void TraceBuilder::close_span(std::size_t index, std::uint64_t detail) {
  if (index >= span_count_) return;
  TraceSpan& span = spans_[index];
  const std::uint64_t now = elapsed_us();
  span.duration_us = now > span.start_us ? now - span.start_us : 0;
  span.detail = detail;
}

std::uint64_t TraceBuilder::span_id_of(std::size_t index) const {
  return index < span_count_ ? spans_[index].span_id : 0;
}

void TraceBuilder::add_span(TraceStage stage, std::uint64_t start_us,
                            std::uint64_t duration_us, std::uint64_t detail,
                            std::uint64_t parent_span) {
  if (span_count_ >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  TraceSpan& span = spans_[span_count_++];
  span.stage = stage;
  span.span_id = next_span_id();
  span.parent_span = parent_span != 0 ? parent_span : context_.parent_span;
  span.start_us = start_us;
  span.duration_us = duration_us;
  span.detail = detail;
}

bool TraceBuilder::finish(FlightRecorder& recorder) {
  if (!active()) return false;
  const std::uint64_t duration = elapsed_us();
  const bool keep = context_.sampled || recorder.admit_slow(duration);
  if (keep) {
    Trace trace;
    trace.trace_id = context_.trace_id;
    trace.parent_span = context_.parent_span;
    trace.sampled = context_.sampled;
    trace.start_unix_us = start_unix_us_;
    trace.duration_us = duration;
    trace.spans.assign(spans_, spans_ + span_count_);
    recorder.record(trace);
  }
  context_ = TraceContext{};
  return keep;
}

// --- FlightRecorder ---------------------------------------------------------

FlightRecorderOptions FlightRecorderOptions::from_env() {
  FlightRecorderOptions resolved;
  resolved.capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(1, env_int("DBSP_TRACE_RING", 256)));
  resolved.sample_every = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, env_int("DBSP_TRACE_SAMPLE", 8)));
  resolved.slow_k = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("DBSP_TRACE_SLOW_K", 16)));
  resolved.window_ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, env_int("DBSP_TRACE_WINDOW_MS", 10000)));
  return resolved;
}

namespace {

[[nodiscard]] FlightRecorderOptions resolve(FlightRecorderOptions options) {
  const FlightRecorderOptions env = FlightRecorderOptions::from_env();
  if (options.capacity == 0) options.capacity = env.capacity;
  if (options.sample_every == 0) options.sample_every = env.sample_every;
  if (options.slow_k == 0) options.slow_k = env.slow_k;
  if (options.window_ms == 0) options.window_ms = env.window_ms;
  return options;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    // `options` is resolved in place before the first member reads it
    // (sampler_ is the first declared member).
    : sampler_((options = resolve(options)).sample_every),
      slow_k_(options.slow_k),
      window_ms_(options.window_ms) {
  slots_.reserve(options.capacity);
  for (std::size_t i = 0; i < options.capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

bool FlightRecorder::admit_slow(std::uint64_t duration_us) {
  if (duration_us < slow_threshold_us_.load(std::memory_order_relaxed)) {
    return false;
  }
  // Slow path: this trace is (tentatively) among the slowest K. Refresh
  // the window under the lock and re-check against the exact threshold.
  const std::uint64_t now_ms = steady_now_ms();
  MutexLock lock(slow_mu_);
  while (!slow_window_.empty() && slow_window_.front().first <= now_ms) {
    const auto it = slow_durations_.find(slow_window_.front().second);
    if (it != slow_durations_.end()) slow_durations_.erase(it);
    slow_window_.pop_front();
  }
  const bool admit =
      slow_durations_.size() < slow_k_ || duration_us >= *slow_durations_.begin();
  if (admit) {
    slow_window_.emplace_back(now_ms + window_ms_, duration_us);
    slow_durations_.insert(duration_us);
    // Bound the bookkeeping: beyond 4K live entries the smallest can go —
    // they no longer influence the Kth-largest threshold.
    while (slow_durations_.size() > 4 * slow_k_) {
      const std::uint64_t smallest = *slow_durations_.begin();
      slow_durations_.erase(slow_durations_.begin());
      for (auto it = slow_window_.begin(); it != slow_window_.end(); ++it) {
        if (it->second == smallest) {
          slow_window_.erase(it);
          break;
        }
      }
    }
  }
  // New threshold: the Kth largest duration in the window (the smallest
  // kept value once the window is full), 0 while under-full.
  std::uint64_t threshold = 0;
  if (slow_durations_.size() >= slow_k_) {
    auto it = slow_durations_.end();
    std::advance(it, -static_cast<std::ptrdiff_t>(slow_k_));
    threshold = *it;
  }
  slow_threshold_us_.store(threshold, std::memory_order_relaxed);
  return admit;
}

void FlightRecorder::record(const Trace& trace) {
  if (slots_.empty() || trace.trace_id == 0) return;
  const std::uint64_t at = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[at % slots_.size()];
  std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1U) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire)) {
    // Another writer owns this slot (ring wrapped within one write):
    // dropping beats blocking on the hot path.
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t span_count =
      std::min(trace.spans.size(), TraceBuilder::kMaxSpans);
  const auto store = [&slot](std::size_t word, std::uint64_t value) {
    slot.words[word].store(value, std::memory_order_relaxed);
  };
  store(0, trace.trace_id);
  store(1, trace.parent_span);
  store(2, (trace.sampled ? 1ULL : 0ULL) |
               (static_cast<std::uint64_t>(span_count) << 8));
  store(3, trace.start_unix_us);
  store(4, trace.duration_us);
  for (std::size_t i = 0; i < span_count; ++i) {
    const TraceSpan& span = trace.spans[i];
    const std::size_t base = kHeaderWords + i * kSpanWords;
    store(base + 0, span.span_id);
    store(base + 1, span.parent_span);
    store(base + 2, static_cast<std::uint64_t>(span.stage));
    store(base + 3, span.start_us);
    store(base + 4, span.duration_us);
    store(base + 5, span.detail);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  recorded_total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Trace> FlightRecorder::snapshot() const {
  std::vector<Trace> out;
  out.reserve(slots_.size());
  std::uint64_t words[kSlotWords];
  for (const auto& slot_ptr : slots_) {
    const Slot& slot = *slot_ptr;
    const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1U) != 0) continue;  // empty or mid-write
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    Trace trace;
    trace.trace_id = words[0];
    trace.parent_span = words[1];
    trace.sampled = (words[2] & 1U) != 0;
    trace.start_unix_us = words[3];
    trace.duration_us = words[4];
    const std::size_t span_count = std::min<std::size_t>(
        (words[2] >> 8) & 0xFFU, TraceBuilder::kMaxSpans);
    trace.spans.reserve(span_count);
    for (std::size_t i = 0; i < span_count; ++i) {
      const std::size_t base = kHeaderWords + i * kSpanWords;
      TraceSpan span;
      span.span_id = words[base + 0];
      span.parent_span = words[base + 1];
      span.stage = static_cast<TraceStage>(words[base + 2] & 0xFFU);
      span.start_us = words[base + 3];
      span.duration_us = words[base + 4];
      span.detail = words[base + 5];
      trace.spans.push_back(span);
    }
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.start_us < b.start_us;
              });
    if (trace.trace_id != 0) out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(), [](const Trace& a, const Trace& b) {
    return a.start_unix_us < b.start_unix_us;
  });
  return out;
}

// --- JSON -------------------------------------------------------------------

std::string traces_json(const std::vector<Trace>& traces,
                        std::uint64_t recorded_total,
                        std::uint64_t dropped_total) {
  std::string out;
  out.reserve(256 + traces.size() * 512);
  out.append("{\"traces\": [");
  bool first_trace = true;
  for (const Trace& trace : traces) {
    if (!first_trace) out.append(", ");
    first_trace = false;
    out.append("{\"trace_id\": ");
    append_id(out, trace.trace_id);
    out.append(", \"parent_span\": ");
    append_id(out, trace.parent_span);
    out.append(", \"sampled\": ");
    out.append(trace.sampled ? "true" : "false");
    out.append(", \"start_unix_us\": ");
    append_u64(out, trace.start_unix_us);
    out.append(", \"duration_us\": ");
    append_u64(out, trace.duration_us);
    out.append(", \"spans\": [");
    bool first_span = true;
    for (const TraceSpan& span : trace.spans) {
      if (!first_span) out.append(", ");
      first_span = false;
      out.append("{\"stage\": \"");
      append_json_escaped(out, to_string(span.stage));
      out.append("\", \"span_id\": ");
      append_id(out, span.span_id);
      out.append(", \"parent_span\": ");
      append_id(out, span.parent_span);
      out.append(", \"start_us\": ");
      append_u64(out, span.start_us);
      out.append(", \"duration_us\": ");
      append_u64(out, span.duration_us);
      out.append(", \"detail\": ");
      append_u64(out, span.detail);
      out.append("}");
    }
    out.append("]}");
  }
  out.append("], \"recorded_total\": ");
  append_u64(out, recorded_total);
  out.append(", \"dropped_total\": ");
  append_u64(out, dropped_total);
  out.append("}");
  return out;
}

std::string traces_json(const FlightRecorder& recorder) {
  return traces_json(recorder.snapshot(), recorder.recorded_total(),
                     recorder.dropped_total());
}

}  // namespace dbsp::obs
