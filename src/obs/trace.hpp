#pragma once

/// \file
/// The sampled publish-path tracer: a 1-in-N Sampler deciding whether a
/// given publish is traced, and a scoped PhaseTimer recording one phase's
/// elapsed microseconds into a Histogram. The facade wraps its publish
/// phases (match, dispatch) in PhaseTimers gated on the sampler; the
/// maintenance and WAL paths time unconditionally (they are off the hot
/// path). A PhaseTimer built with a null histogram is inert — the
/// untraced publish pays one branch, no clock read.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace dbsp::obs {

/// Counter-based 1-in-N sampling. every == 0 never samples, every == 1
/// samples everything. Thread-safe (one relaxed fetch_add per ask).
class Sampler {
 public:
  explicit Sampler(std::uint32_t every) : every_(every) {}

  [[nodiscard]] bool should_sample() {
    if (every_ == 0) return false;
    if (every_ == 1) return true;
    return n_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }

  [[nodiscard]] std::uint32_t every() const { return every_; }

 private:
  std::uint32_t every_;
  std::atomic<std::uint64_t> n_{0};
};

/// Scoped phase timer: records elapsed microseconds into `hist` on
/// destruction; inert when `hist` is null.
class PhaseTimer {
 public:
  explicit PhaseTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (hist_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      hist_->record(static_cast<double>(ns) / 1000.0);
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dbsp::obs
