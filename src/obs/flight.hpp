#pragma once

/// \file
/// Per-event distributed tracing: a TraceContext attached to events at
/// publish and propagated across the wire and overlay hops, span records
/// for every pipeline stage the event crosses, and a lock-free ring-buffer
/// FlightRecorder holding the completed traces an operator can pull
/// through PubSub::traces_json(), the `traces` wire verb, or dbspd's
/// GET /traces.
///
/// Sampling is two-sided. Head sampling (1-in-N, reusing obs::Sampler)
/// decides *before* the event runs whether fine-grained spans (per-shard
/// match, aggregation probe) are collected; it is the `sampled` flag that
/// travels in the TraceContext so every hop of a head-sampled event traces
/// in detail. Tail sampling catches what head sampling misses: every
/// traced publish takes a handful of coarse timestamps, and a finished
/// trace whose total duration reaches the rolling slowest-K admission
/// threshold is retained even when the head sampler skipped it — the
/// slowest K events of the window are always in the recorder.
///
/// Concurrency: TraceBuilder is single-threaded (one in-flight trace on
/// one thread — the facade holds its lock across a publish, the net
/// server's io thread owns its connections). FlightRecorder::record() is
/// lock-free — per-slot sequence-claimed writes into relaxed-atomic words,
/// so concurrent recorders and snapshot readers never block or race; a
/// claim collision on ring wrap drops the trace and counts it. Only the
/// slow-admission bookkeeping takes a mutex, and only for traces that
/// already crossed the admission threshold (rare by construction).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/trace.hpp"

namespace dbsp::obs {

/// The causal identity one event carries across process, wire, and
/// overlay boundaries: which trace it belongs to, which span caused this
/// hop, and whether the head sampler chose it for detailed tracing.
/// trace_id == 0 means "no trace attached".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool sampled = false;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// A fresh context with a process-unique nonzero trace id.
[[nodiscard]] TraceContext make_trace_context(bool sampled);

/// Process-unique nonzero span id (relaxed atomic counter).
[[nodiscard]] std::uint64_t next_span_id();

/// The span taxonomy — every stage a traced event can cross. Wire-encoded
/// as a u8, so append only.
enum class TraceStage : std::uint8_t {
  kClientRequest = 0,  ///< client: publish request sent -> reply received
  kServerDispatch = 1, ///< server io thread: frame decoded -> reply queued
  kAggProbe = 2,       ///< aggregation summary probe (detail: candidates)
  kAggFallback = 3,    ///< probe over budget -> exact shard index re-run
  kShardMatch = 4,     ///< one shard's match (detail: shard index)
  kMatch = 5,          ///< whole engine match phase
  kDispatch = 6,       ///< callback dispatch (detail: notifications)
  kPrune = 7,          ///< pruning maintenance (detail: prunings)
  kWalAppend = 8,      ///< durable store append (detail: records)
  kQueueWait = 9,      ///< notification queued -> socket flush started
  kSocketWrite = 10,   ///< notification bytes entering the socket
  kOverlayHop = 11,    ///< broker overlay hop (detail: broker id)
};

[[nodiscard]] const char* to_string(TraceStage stage);

/// One recorded stage. `start_us` is the offset from the owning trace's
/// start, so span timestamps are monotone within a trace by construction.
struct TraceSpan {
  TraceStage stage = TraceStage::kMatch;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0, a sibling span, or the trace parent
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t detail = 0;  ///< stage-specific (shard, counts, bytes)
};

/// One completed trace entry: the spans one process recorded for one
/// event. A distributed trace is the set of entries sharing a trace_id
/// (client entry, server entry, delivery entries), joined by a collector.
struct Trace {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  ///< causal parent from the propagated context
  bool sampled = false;
  std::uint64_t start_unix_us = 0;
  std::uint64_t duration_us = 0;
  std::vector<TraceSpan> spans;
};

class FlightRecorder;

/// Collects the spans of one in-flight trace on one thread, then hands
/// the finished entry to a FlightRecorder (which applies head/tail
/// retention). Fixed span capacity — overflow drops the extra spans and
/// counts them in the entry's last-span detail, never allocates.
class TraceBuilder {
 public:
  static constexpr std::size_t kMaxSpans = 16;

  TraceBuilder() = default;

  /// Arms the builder for one trace. Resets any previous spans.
  void begin(TraceContext context);

  [[nodiscard]] bool active() const { return context_.active(); }
  /// Head-sampled: fine-grained spans (per-shard, agg probe) are worth
  /// collecting. Coarse spans are collected for every active trace.
  [[nodiscard]] bool sampled() const { return context_.sampled; }
  [[nodiscard]] const TraceContext& context() const { return context_; }

  /// Microseconds since begin().
  [[nodiscard]] std::uint64_t elapsed_us() const;
  /// Wall clock of begin() in unix microseconds.
  [[nodiscard]] std::uint64_t start_unix_us() const { return start_unix_us_; }

  /// Opens a span now; close_span() stamps its duration. Returns the span
  /// slot index (kMaxSpans when dropped — close_span ignores it).
  std::size_t open_span(TraceStage stage, std::uint64_t parent_span = 0);
  void close_span(std::size_t index, std::uint64_t detail = 0);
  /// The span id of an open slot (0 when the slot was dropped) — the
  /// parent id to propagate to child hops.
  [[nodiscard]] std::uint64_t span_id_of(std::size_t index) const;

  /// Appends a fully formed span (precomputed timing).
  void add_span(TraceStage stage, std::uint64_t start_us,
                std::uint64_t duration_us, std::uint64_t detail = 0,
                std::uint64_t parent_span = 0);

  /// Completes the trace: computes the total duration, asks the recorder
  /// whether to keep it (head flag or slow admission), records, and
  /// disarms. Returns true when the entry was kept. No-op when inactive.
  bool finish(FlightRecorder& recorder);

  /// Disarms without recording.
  void abandon() { context_ = TraceContext{}; }

 private:
  TraceContext context_{};
  std::chrono::steady_clock::time_point start_steady_{};
  std::uint64_t start_unix_us_ = 0;
  TraceSpan spans_[kMaxSpans];
  std::size_t span_count_ = 0;
  std::uint64_t dropped_spans_ = 0;
};

/// RAII span over a TraceBuilder: opens on construction, closes on
/// destruction. Inert when the builder is null or inactive, or when
/// `detailed_only` is set and the trace is not head-sampled.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuilder* builder, TraceStage stage,
             bool detailed_only = false, std::uint64_t parent_span = 0)
      : builder_(builder != nullptr && builder->active() &&
                         (!detailed_only || builder->sampled())
                     ? builder
                     : nullptr),
        index_(builder_ != nullptr ? builder_->open_span(stage, parent_span)
                                   : TraceBuilder::kMaxSpans) {}
  ~ScopedSpan() {
    if (builder_ != nullptr) builder_->close_span(index_, detail_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_detail(std::uint64_t detail) { detail_ = detail; }
  /// Closes the span now instead of at scope exit (idempotent) — for
  /// callers that must finish() the builder before the scope ends.
  void close() {
    if (builder_ != nullptr) builder_->close_span(index_, detail_);
    builder_ = nullptr;
  }
  /// The opened span's id (0 when inert) — parent for child contexts.
  [[nodiscard]] std::uint64_t span_id() const {
    return builder_ != nullptr ? builder_->span_id_of(index_) : 0;
  }

 private:
  TraceBuilder* builder_;
  std::size_t index_;
  std::uint64_t detail_ = 0;
};

/// Construction-time knobs of a FlightRecorder. Zero fields resolve from
/// the environment (the DBSP_TRACE_* knobs) with the documented defaults.
struct FlightRecorderOptions {
  /// Completed-trace ring slots (DBSP_TRACE_RING, default 256).
  std::size_t capacity = 0;
  /// Head sampling: trace every Nth publish in detail (DBSP_TRACE_SAMPLE,
  /// default 8; 1 = every publish).
  std::uint32_t sample_every = 0;
  /// Tail sampling: always retain the slowest K traces of the rolling
  /// window (DBSP_TRACE_SLOW_K, default 16).
  std::size_t slow_k = 0;
  /// Rolling-window length for the slowest-K set (DBSP_TRACE_WINDOW_MS,
  /// default 10000).
  std::uint64_t window_ms = 0;

  /// All four knobs resolved from the environment.
  [[nodiscard]] static FlightRecorderOptions from_env();
};

/// The completed-trace ring. See the file comment for the concurrency
/// story; capacity is fixed at construction and every slot holds one
/// fixed-size encoded trace (TraceBuilder::kMaxSpans spans).
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Head sampler: should the next publish be traced in detail?
  [[nodiscard]] bool should_sample() { return sampler_.should_sample(); }
  [[nodiscard]] std::uint32_t sample_every() const { return sampler_.every(); }

  /// Tail sampler: is `duration_us` within the slowest K of the rolling
  /// window? The fast path is one relaxed threshold load; only admitted
  /// (i.e. slow) traces take the bookkeeping mutex.
  [[nodiscard]] bool admit_slow(std::uint64_t duration_us);

  /// Lock-free ring write. Spans beyond TraceBuilder::kMaxSpans are
  /// dropped. A slot-claim collision drops the whole trace and counts it.
  void record(const Trace& trace);

  /// Every currently readable trace, oldest first (by start timestamp).
  /// Entries being overwritten mid-read are skipped, never torn.
  [[nodiscard]] std::vector<Trace> snapshot() const;

  [[nodiscard]] std::uint64_t recorded_total() const {
    return recorded_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  // Slot layout: 5 header words + kMaxSpans * 6 span words, all relaxed
  // atomics so concurrent write/snapshot stays data-race-free; `seq` odd
  // while a writer owns the slot (seqlock).
  static constexpr std::size_t kSpanWords = 6;
  static constexpr std::size_t kHeaderWords = 5;
  static constexpr std::size_t kSlotWords =
      kHeaderWords + TraceBuilder::kMaxSpans * kSpanWords;
  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint64_t> words[kSlotWords];
  };

  Sampler sampler_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> recorded_total_{0};
  std::atomic<std::uint64_t> dropped_total_{0};

  // --- Slow-admission state ------------------------------------------------
  std::size_t slow_k_;
  std::uint64_t window_ms_;
  /// Admission threshold in microseconds; 0 while the window holds fewer
  /// than K traces (everything is then among the slowest K).
  std::atomic<std::uint64_t> slow_threshold_us_{0};
  mutable Mutex slow_mu_;
  /// (expiry steady ms, duration) of admitted traces, arrival order.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> slow_window_ DBSP_GUARDED_BY(slow_mu_);
  std::multiset<std::uint64_t> slow_durations_ DBSP_GUARDED_BY(slow_mu_);
};

/// JSON rendering of a trace set (what PubSub::traces_json() and dbspd's
/// GET /traces serve):
///   {"traces": [{"trace_id": "...", "parent_span": "...", "sampled": B,
///                "start_unix_us": N, "duration_us": N,
///                "spans": [{"stage": "server_dispatch", "span_id": "...",
///                           "parent_span": "...", "start_us": N,
///                           "duration_us": N, "detail": N}, ...]}, ...],
///    "recorded_total": N, "dropped_total": N}
/// Ids render as decimal strings (64-bit ids overflow JSON readers that
/// parse numbers as doubles); spans are sorted by start offset.
[[nodiscard]] std::string traces_json(const std::vector<Trace>& traces,
                                      std::uint64_t recorded_total,
                                      std::uint64_t dropped_total);
[[nodiscard]] std::string traces_json(const FlightRecorder& recorder);

}  // namespace dbsp::obs
