#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbsp::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

}  // namespace

const MetricSnapshot* MetricsSnapshot::find(const std::string& name,
                                            const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

double MetricsSnapshot::value(const std::string& name,
                              const Labels& labels) const {
  const MetricSnapshot* m = find(name, labels);
  return m != nullptr ? m->value : 0.0;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        Labels&& labels,
                                                        MetricKind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  }
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k)) {
      throw std::invalid_argument("obs: invalid label name '" + k + "' on '" +
                                  name + "'");
    }
  }
  const std::string key = series_key(name, labels);
  MutexLock lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& entry = *entries_[it->second];
    if (entry.kind != kind) {
      throw std::logic_error("obs: metric '" + name + "' already registered as " +
                             std::string(to_string(entry.kind)));
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(key, entries_.size() - 1);
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

std::uint64_t MetricsRegistry::add_hook(std::function<void()> hook) {
  MutexLock lock(mutex_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace_back(
      id, std::make_shared<std::function<void()>>(std::move(hook)));
  return id;
}

void MetricsRegistry::remove_hook(std::uint64_t id) {
  MutexLock lock(mutex_);
  std::erase_if(hooks_, [id](const auto& h) { return h.first == id; });
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Copy the hook list under the mutex, run the hooks with it released:
  // hooks take their owners' locks (the facade hook serializes on the
  // PubSub mutex), so holding the registry mutex here would order the
  // locks registry -> facade while metric creation inside a facade call
  // orders them facade -> registry.
  std::vector<std::shared_ptr<std::function<void()>>> hooks;
  {
    MutexLock lock(mutex_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, fn] : hooks_) hooks.push_back(fn);
  }
  for (const auto& fn : hooks) (*fn)();

  MetricsSnapshot out;
  {
    MutexLock lock(mutex_);
    out.metrics.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot m;
      m.name = entry->name;
      m.labels = entry->labels;
      m.kind = entry->kind;
      switch (entry->kind) {
        case MetricKind::kCounter:
          m.value = static_cast<double>(entry->counter->value());
          break;
        case MetricKind::kGauge:
          m.value = entry->gauge->value();
          break;
        case MetricKind::kHistogram:
          m.histogram = entry->histogram->snapshot();
          break;
      }
      out.metrics.push_back(std::move(m));
    }
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace dbsp::obs
