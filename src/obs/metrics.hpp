#pragma once

/// \file
/// The unified metrics layer: a MetricsRegistry of named counters, gauges,
/// and log-bucketed latency Histograms, shared by every instrumented layer
/// (engine shards, state store, facade, network edge) and scraped into one
/// snapshot for the three export paths (PubSub::metrics_json(), the
/// kMetrics protocol verb, and dbspd's HTTP /metrics endpoint).
///
/// Hot-path cost model: recording never takes a lock. A Counter is one
/// relaxed fetch_add; a Histogram spreads its bucket counters over a small
/// set of cache-line-aligned cells indexed by a per-thread stripe id, so
/// concurrent recorders (the match_batch shard workers) never contend on
/// one line. All aggregation cost is paid at scrape time: snapshot() sums
/// the stripes under the registry mutex after running the registered
/// collection hooks (which fold pull-style sources — NetStats atomics,
/// StoreStats, engine counters — into registry metrics).
///
/// Threading contract (scrape vs record): record paths (add / set /
/// record) are safe from any thread at any time, including concurrently
/// with snapshot(). snapshot() is safe from any thread and may run
/// concurrently with itself. Collection hooks run *outside* the registry
/// mutex, so a hook may take its owner's lock (the facade hook does) or
/// call back into the registry; a hook must guard its own lifetime — the
/// idiom is to capture a weak_ptr to the owner and no-op once it expires,
/// which is why the registry never needs to block removal against an
/// in-flight scrape.
///
/// Metric references returned by counter()/gauge()/histogram() are stable
/// for the registry's lifetime (entries are never erased), so hot paths
/// cache the pointer once and pay only the atomic on each record.

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace dbsp::obs {

/// Label set of one series, e.g. {{"shard", "0"}}. Order is preserved and
/// significant for identity (instrumentation sites use a fixed order).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

[[nodiscard]] const char* to_string(MetricKind kind);

/// Stripe id of the calling thread (dense, assigned on first use). Used to
/// spread histogram recording across cells; stable for the thread's life.
[[nodiscard]] std::size_t thread_stripe();

/// A monotonically increasing counter. Prometheus type "counter": its
/// value must never decrease, which the lint (tools/check_metrics.py)
/// enforces across scrapes — use a Gauge for anything that can go down.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }

  /// Folds a legacy cumulative counter in: raises the value to `v` if it
  /// is ahead, never lowers it (so an owner-side reset_counters() cannot
  /// make the exported series non-monotone).
  void sync_to(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v,
                                                    std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level that can move both ways (open connections, WAL lag, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram at scrape time. `bucket_counts[i]` is
/// the *per-bucket* (non-cumulative) count of observations with value <=
/// Histogram::bucket_bound(i) and > the previous bound; the exposition
/// layer accumulates them into Prometheus's cumulative `le` form.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A fixed-layout log-bucketed histogram: 22 finite power-of-two bounds
/// (1, 2, 4, ..., 2^21) plus a +Inf overflow bucket. The unit is whatever
/// the recorder puts in — the instrumentation here records microseconds
/// for latencies and raw counts for sizes; with the 2^21 ceiling that
/// spans 1 us .. ~2.1 s, the whole range a publish-path phase can occupy.
///
/// Degenerate inputs are clamped, never dropped: zero, negative, and NaN
/// observations land in the first bucket and contribute 0 to the sum (the
/// sum stays monotone, as Prometheus clients expect); anything above the
/// top finite bound lands in +Inf with its full value summed.
class Histogram {
 public:
  static constexpr std::size_t kFiniteBuckets = 22;
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;  // + the +Inf bucket

  /// Upper bound of bucket `i`: 2^i for finite buckets, +Inf for the last.
  [[nodiscard]] static double bucket_bound(std::size_t i) {
    return i < kFiniteBuckets
               ? static_cast<double>(std::uint64_t{1} << i)
               : std::numeric_limits<double>::infinity();
  }

  /// The bucket an observation falls into (see the class comment for the
  /// clamp semantics).
  [[nodiscard]] static std::size_t bucket_index(double v) {
    if (!(v > 1.0)) return 0;  // <= 1, zero, negative, and NaN
    if (v > bucket_bound(kFiniteBuckets - 1)) return kFiniteBuckets;  // +Inf
    const auto n = static_cast<std::uint64_t>(std::ceil(v));
    return static_cast<std::size_t>(std::bit_width(n - 1));
  }

  void record(double v) {
    Cell& cell = cells_[thread_stripe() & (kCells - 1)];
    cell.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    const double clamped = v > 0.0 ? v : 0.0;  // NaN and negatives add 0
    double sum = cell.sum.load(std::memory_order_relaxed);
    while (!cell.sum.compare_exchange_weak(sum, sum + clamped,
                                           std::memory_order_relaxed)) {
    }
  }

  /// Sums the stripes. Safe concurrently with record(); a racing record
  /// may or may not be included (each stripe is read atomically per field,
  /// so the result is always a valid recent state, never garbage).
  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    out.bucket_counts.assign(kBuckets, 0);
    for (const Cell& cell : cells_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out.bucket_counts[b] += cell.counts[b].load(std::memory_order_relaxed);
      }
      out.sum += cell.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : out.bucket_counts) out.count += c;
    return out;
  }

 private:
  static constexpr std::size_t kCells = 8;  // power of two (masked index)

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> counts[kBuckets] = {};
    std::atomic<double> sum{0.0};
  };

  Cell cells_[kCells];
};

/// One series in a scrape: identity + kind + the value(s).
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter (integral) and gauge value; unused for histograms.
  double value = 0.0;
  HistogramSnapshot histogram;
};

/// A full scrape, sorted by (name, labels) so families are contiguous for
/// the Prometheus exposition and output is deterministic.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  /// The series with this exact identity, or nullptr.
  [[nodiscard]] const MetricSnapshot* find(const std::string& name,
                                           const Labels& labels = {}) const;
  /// Convenience: find()'s value, or 0 when absent.
  [[nodiscard]] double value(const std::string& name,
                             const Labels& labels = {}) const;
};

/// The registry. Creation is find-or-create keyed on (name, labels);
/// asking for an existing identity with a different kind throws
/// std::logic_error, and names/labels outside the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]* for metric names, [a-zA-Z_][a-zA-Z0-9_]* for
/// label names) throw std::invalid_argument at creation time — bad names
/// fail at the instrumentation site, not at scrape time.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, Labels labels = {});
  [[nodiscard]] Histogram& histogram(const std::string& name, Labels labels = {});

  /// Registers a collection hook, run at the start of every snapshot()
  /// (outside the registry mutex — see the file comment for the lifetime
  /// idiom). Returns an id for remove_hook.
  std::uint64_t add_hook(std::function<void()> hook);
  /// Unregisters a hook. A scrape already in flight may run the hook one
  /// last time — hooks guard their own lifetime via weak capture.
  void remove_hook(std::uint64_t id);

  /// Runs the hooks, then aggregates every series. See the threading
  /// contract in the file comment.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Registered series count (for tests).
  [[nodiscard]] std::size_t series_count() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    // Exactly one is set, matching `kind`. Separate slots (not a variant)
    // so the hot-path objects stay standard-layout and pointer-stable.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Labels&& labels,
                        MetricKind kind);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ DBSP_GUARDED_BY(mutex_);
  /// (name + '\x01' + k '\x02' v ...) -> index into entries_.
  std::unordered_map<std::string, std::size_t> index_ DBSP_GUARDED_BY(mutex_);
  std::vector<std::pair<std::uint64_t, std::shared_ptr<std::function<void()>>>>
      hooks_ DBSP_GUARDED_BY(mutex_);
  std::uint64_t next_hook_id_ DBSP_GUARDED_BY(mutex_) = 1;
};

}  // namespace dbsp::obs
