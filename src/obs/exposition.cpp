#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace dbsp::obs {

namespace {

/// Renders a sample value: integral values (the common case — counters and
/// integer-valued gauges) print without a fraction, everything else with
/// enough digits to round-trip.
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Label-value escaping per the text exposition spec.
void append_escaped_label_value(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Renders `{k="v",...}` including one extra label (the histogram `le`)
/// when `extra_key` is non-null. Empty output for no labels at all.
void append_label_block(std::string& out, const Labels& labels,
                        const char* extra_key, const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped_label_value(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped_label_value(out, extra_value);
    out += '"';
  }
  out += '}';
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON numbers may not be Inf/NaN; those degrade to strings.
void append_json_number(std::string& out, double v) {
  if (std::isinf(v) || std::isnan(v)) {
    append_json_string(out, format_number(v));
    return;
  }
  out += format_number(v);
}

}  // namespace

const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  const std::string* open_family = nullptr;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (open_family == nullptr || *open_family != m.name) {
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += to_string(m.kind);
      out += '\n';
      open_family = &m.name;
    }
    if (m.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < m.histogram.bucket_counts.size(); ++b) {
        cumulative += m.histogram.bucket_counts[b];
        out += m.name;
        out += "_bucket";
        append_label_block(out, m.labels, "le",
                           format_number(Histogram::bucket_bound(b)));
        out += ' ';
        out += format_number(static_cast<double>(cumulative));
        out += '\n';
      }
      out += m.name;
      out += "_sum";
      append_label_block(out, m.labels, nullptr, {});
      out += ' ';
      out += format_number(m.histogram.sum);
      out += '\n';
      out += m.name;
      out += "_count";
      append_label_block(out, m.labels, nullptr, {});
      out += ' ';
      out += format_number(static_cast<double>(m.histogram.count));
      out += '\n';
    } else {
      out += m.name;
      append_label_block(out, m.labels, nullptr, {});
      out += ' ';
      out += format_number(m.value);
      out += '\n';
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\": [";
  bool first_metric = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first_metric) out += ", ";
    first_metric = false;
    out += "{\"name\": ";
    append_json_string(out, m.name);
    out += ", \"type\": ";
    append_json_string(out, to_string(m.kind));
    out += ", \"labels\": {";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out += ", ";
      first_label = false;
      append_json_string(out, k);
      out += ": ";
      append_json_string(out, v);
    }
    out += '}';
    if (m.kind == MetricKind::kHistogram) {
      out += ", \"count\": ";
      append_json_number(out, static_cast<double>(m.histogram.count));
      out += ", \"sum\": ";
      append_json_number(out, m.histogram.sum);
      out += ", \"buckets\": [";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < m.histogram.bucket_counts.size(); ++b) {
        cumulative += m.histogram.bucket_counts[b];
        if (b > 0) out += ", ";
        out += "{\"le\": ";
        append_json_number(out, Histogram::bucket_bound(b));
        out += ", \"count\": ";
        append_json_number(out, static_cast<double>(cumulative));
        out += '}';
      }
      out += ']';
    } else {
      out += ", \"value\": ";
      append_json_number(out, m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dbsp::obs
