#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace dbsp::obs {

namespace {

std::atomic<int> g_level{-1};  // -1: not yet read from the environment

[[nodiscard]] LogLevel level_from_env() {
  const char* env = std::getenv("DBSP_LOG_LEVEL");
  return parse_log_level(env != nullptr ? env : "", LogLevel::kInfo);
}

/// True when `value` can go on the line bare (no spaces, quotes,
/// backslashes, '=', or control characters).
[[nodiscard]] bool bare_safe(std::string_view value) {
  if (value.empty()) return false;
  for (const char c : value) {
    if (c <= ' ' || c == '"' || c == '\\' || c == '=' || c == 0x7F) return false;
  }
  return true;
}

void append_quoted(std::string& out, std::string_view value) {
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out.append("\\n");
    } else if (c == '\r') {
      out.append("\\r");
    } else if (c == '\t') {
      out.append("\\t");
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_timestamp(std::string& line) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  line.append(buf);
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return fallback;
}

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(level_from_env());
    // First caller wins; a concurrent set_log_level is not overwritten.
    int expected = -1;
    if (!g_level.compare_exchange_strong(expected, level,
                                         std::memory_order_relaxed)) {
      level = expected;
    }
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogEvent::LogEvent(LogLevel level, std::string_view component,
                   std::string_view message)
    : enabled_(log_enabled(level)) {
  if (!enabled_) return;
  line_.reserve(128);
  line_.append("ts=");
  append_timestamp(line_);
  line_.append(" level=");
  line_.append(to_string(level));
  line_.append(" component=");
  line_.append(component);
  line_.append(" msg=");
  append_quoted(line_, message);
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_.push_back('\n');
  // One fwrite per line: concurrent lines interleave whole.
  std::fwrite(line_.data(), 1, line_.size(), stderr);
  std::fflush(stderr);
}

LogEvent& LogEvent::kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  if (bare_safe(value)) {
    line_.append(value);
  } else {
    append_quoted(line_, value);
  }
  return *this;
}

LogEvent& LogEvent::kv(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return kv(key, std::string_view(buf));
}

LogEvent& LogEvent::kv(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return kv(key, std::string_view(buf));
}

LogEvent& LogEvent::kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return kv(key, std::string_view(buf));
}

bool LogRateLimit::allow() {
  if (max_per_sec_ == 0) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto now_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  std::uint64_t window = window_start_s_.load(std::memory_order_relaxed);
  if (window != now_s &&
      window_start_s_.compare_exchange_strong(window, now_s,
                                              std::memory_order_relaxed)) {
    in_window_.store(0, std::memory_order_relaxed);
  }
  if (in_window_.fetch_add(1, std::memory_order_relaxed) < max_per_sec_) {
    return true;
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace dbsp::obs
