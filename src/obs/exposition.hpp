#pragma once

/// \file
/// Renderers of a MetricsSnapshot: Prometheus text exposition (format
/// 0.0.4 — what dbspd's GET /metrics serves and tools/check_metrics.py
/// lints) and a JSON document (what PubSub::metrics_json() and `dbsp-cli
/// metrics` print, and what the bench harness embeds in BENCH_*.json).

#include <string>

#include "obs/metrics.hpp"

namespace dbsp::obs {

/// Prometheus text exposition. Families are contiguous with one # TYPE
/// line each (the snapshot is already sorted by name); histograms render
/// as cumulative `_bucket{le=...}` series plus `_sum` and `_count`; label
/// values are escaped per the spec (backslash, double quote, newline).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// The Content-Type header value the text exposition should be served
/// with.
[[nodiscard]] const char* prometheus_content_type();

/// JSON rendering:
///   {"metrics": [{"name": ..., "type": "counter", "labels": {...},
///                 "value": N} |
///                {"name": ..., "type": "histogram", "labels": {...},
///                 "count": N, "sum": S,
///                 "buckets": [{"le": B, "count": N}, ...]} ...]}
/// Histogram buckets are cumulative here too (same `le` semantics as the
/// text form); empty buckets are kept so consumers see the fixed layout.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace dbsp::obs
