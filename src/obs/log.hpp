#pragma once

/// \file
/// The structured logger: leveled key=value lines on stderr, one write per
/// line, with per-call-site rate limiting. Replaces the ad-hoc fprintf
/// diagnostics in the net server and the daemon so operators get
/// machine-parseable output:
///
///   ts=2026-08-08T09:15:03.120Z level=info component=net msg="listening" port=7411
///
/// Usage — a LogEvent emits on destruction (end of the full expression):
///
///   obs::LogEvent(obs::LogLevel::kWarn, "net", "slow consumer killed")
///       .kv("fd", fd).kv("queued_bytes", bytes);
///
/// The process level comes from DBSP_LOG_LEVEL (debug|info|warn|error|off,
/// default info) and can be overridden with set_log_level(). A LogEvent
/// below the level is inert: no clock read, no formatting, no write.
///
/// Rate limiting guards hot diagnostic sites (per-connection errors under
/// hostile load): a static LogRateLimit at the call site caps emissions
/// per second and counts what it suppressed:
///
///   static obs::LogRateLimit rate(/*max_per_sec=*/10);
///   if (rate.allow()) obs::LogEvent(...).kv("suppressed", rate.suppressed());
///
/// Thread safety: levels and rate limiters are relaxed atomics; each line
/// is a single fwrite, so concurrent lines interleave whole, never torn.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dbsp::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

[[nodiscard]] const char* to_string(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive);
/// `fallback` on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text, LogLevel fallback);

/// The process log level (first call reads DBSP_LOG_LEVEL, default info).
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return level >= log_level() && level != LogLevel::kOff;
}

/// One structured line, emitted on destruction. Inert (every kv() a no-op)
/// when the level is below the process level.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view component, std::string_view message);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& kv(std::string_view key, std::string_view value);
  LogEvent& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogEvent& kv(std::string_view key, std::uint64_t value);
  LogEvent& kv(std::string_view key, std::int64_t value);
  LogEvent& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  LogEvent& kv(std::string_view key, unsigned value) {
    return kv(key, static_cast<std::uint64_t>(value));
  }
  LogEvent& kv(std::string_view key, double value);
  LogEvent& kv(std::string_view key, bool value) {
    return kv(key, std::string_view(value ? "true" : "false"));
  }

 private:
  bool enabled_;
  std::string line_;
};

/// Per-call-site emission cap: at most `max_per_sec` allow()s per wall
/// second; everything else is suppressed and counted. Lock-free.
class LogRateLimit {
 public:
  explicit LogRateLimit(std::uint32_t max_per_sec) : max_per_sec_(max_per_sec) {}

  /// True when this call may log. Relaxed atomics only.
  [[nodiscard]] bool allow();

  /// Total calls suppressed so far.
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t max_per_sec_;
  std::atomic<std::uint64_t> window_start_s_{0};
  std::atomic<std::uint32_t> in_window_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace dbsp::obs
