#pragma once

/// \file
/// The umbrella header of the dbsp library — the one include applications,
/// examples, and the scenario subsystem build against:
///
///   #include "dbsp/dbsp.hpp"
///
/// It exports the stable public surface: the PubSub facade with RAII
/// subscription handles, the fluent filter builder and the Status/Result
/// error channel (api/), the durable state store behind `PubSub::open()`
/// (store/), the event model and subscription DSL parser, the broker
/// overlay simulation, the workload domains, the selectivity statistics
/// needed to drive pruning on brokers, and the covering/merging baselines. Everything below these headers (core/, filter/, routing
/// internals) is implementation detail that may change without notice;
/// in-tree consumers of the public surface must not include it directly
/// (CI greps for it), and legacy entry points carry [[deprecated]].

#include "api/filter.hpp"
#include "api/pubsub.hpp"
#include "api/status.hpp"
#include "broker/overlay.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "event/event.hpp"
#include "routing/covering.hpp"
#include "routing/merging.hpp"
#include "scenario/workload_domain.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "store/state_store.hpp"
#include "subscription/parser.hpp"
