#include "selectivity/stats.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "routing/codec.hpp"

namespace dbsp {

EventStats::EventStats(const Schema& schema) : schema_(&schema) {
  attrs_.resize(schema.attribute_count());
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    const auto type = schema.type(AttributeId(static_cast<AttributeId::value_type>(i)));
    attrs_[i].numeric = type == ValueType::Int || type == ValueType::Double;
  }
}

void EventStats::observe(const Event& event) {
  assert(!finalized_);
  ++events_observed_;
  for (const auto& [attr, value] : event.pairs()) {
    if (attr.value() >= attrs_.size()) continue;  // unknown attribute: ignore
    auto& s = attrs_[attr.value()];
    ++s.present;
    if (s.numeric && value.is_numeric()) s.histogram.add(value.numeric());
    s.values.add(value);
  }
}

void EventStats::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& s : attrs_) s.histogram.finalize();
}

void EventStats::reset() {
  events_observed_ = 0;
  finalized_ = false;
  for (auto& s : attrs_) {
    const bool numeric = s.numeric;
    s = AttributeStats();
    s.numeric = numeric;
  }
}

void EventStats::save(WireWriter& out) const {
  if (!finalized_) throw std::logic_error("EventStats: save before finalize()");
  out.put_u32(static_cast<std::uint32_t>(attrs_.size()));
  out.put_u64(events_observed_);
  for (const auto& s : attrs_) {
    out.put_u64(s.present);
    out.put_u8(s.numeric ? 1 : 0);
    s.histogram.save(out);
    s.values.save(out);
  }
}

void EventStats::load(WireReader& in) {
  const std::uint32_t count = in.get_u32();
  if (count != attrs_.size()) {
    throw WireError("EventStats: stored attribute count does not match schema");
  }
  const std::uint64_t observed = in.get_u64();
  // Decode into a scratch vector first so a mid-stream WireError leaves the
  // object in its previous (consistent) state.
  std::vector<AttributeStats> loaded(attrs_.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    auto& s = loaded[i];
    s.present = in.get_u64();
    const std::uint8_t numeric = in.get_u8();
    if (numeric > 1 || (numeric != 0) != attrs_[i].numeric) {
      throw WireError("EventStats: stored attribute kind does not match schema");
    }
    s.numeric = attrs_[i].numeric;
    s.histogram.load(in);
    s.values.load(in);
  }
  attrs_ = std::move(loaded);
  events_observed_ = observed;
  finalized_ = true;
}

double EventStats::presence(const AttributeStats& s) const {
  if (events_observed_ == 0) return 0.0;
  return static_cast<double>(s.present) / static_cast<double>(events_observed_);
}

double EventStats::predicate_selectivity(const Predicate& pred) const {
  if (!finalized_) throw std::logic_error("EventStats: estimate before finalize()");
  if (pred.attribute().value() >= attrs_.size()) return 0.0;
  const auto& s = attrs_[pred.attribute().value()];
  const double present = presence(s);
  if (present == 0.0) return 0.0;

  // Conditional selectivity given the attribute is present.
  double cond = 0.0;
  switch (pred.op()) {
    case Op::Eq:
      cond = s.values.fraction_equal(pred.operand());
      break;
    case Op::Ne:
      cond = 1.0 - s.values.fraction_equal(pred.operand());
      break;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      if (!s.numeric || !pred.operand().is_numeric()) {
        // Ordered string comparisons fall back to a domain scan.
        std::uint64_t hits = 0;
        std::uint64_t seen = 0;
        s.values.for_each([&](const Value& v, std::uint64_t count) {
          seen += count;
          if (pred.matches_value(v)) hits += count;
        });
        cond = seen == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(seen);
        break;
      }
      const double x = pred.operand().numeric();
      switch (pred.op()) {
        case Op::Lt: cond = s.histogram.fraction_less(x); break;
        case Op::Le: cond = s.histogram.fraction_less_equal(x); break;
        case Op::Gt: cond = 1.0 - s.histogram.fraction_less_equal(x); break;
        default: cond = 1.0 - s.histogram.fraction_less(x); break;
      }
      break;
    }
    case Op::Between: {
      if (s.numeric && pred.operands()[0].is_numeric() && pred.operands()[1].is_numeric()) {
        cond = s.histogram.fraction_between(pred.operands()[0].numeric(),
                                            pred.operands()[1].numeric());
      }
      break;
    }
    case Op::In: {
      for (const auto& v : pred.operands()) cond += s.values.fraction_equal(v);
      cond = std::min(cond, 1.0);
      break;
    }
    case Op::Prefix:
    case Op::Suffix:
    case Op::Contains: {
      std::uint64_t hits = 0;
      std::uint64_t seen = 0;
      s.values.for_each([&](const Value& v, std::uint64_t count) {
        seen += count;
        if (pred.matches_value(v)) hits += count;
      });
      cond = seen == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(seen);
      break;
    }
  }
  return std::clamp(present * cond, 0.0, 1.0);
}

}  // namespace dbsp
