#pragma once

#include <span>

#include "event/event.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Measured selectivity: the exact fraction of `events` matching `tree`.
/// O(|events| * |tree|); the test oracle against which sel≈ soundness is
/// checked, and the source of the "actual degradation" ablation.
[[nodiscard]] double measured_selectivity(const Node& tree, std::span<const Event> events);

/// Measured selectivity of a single predicate.
[[nodiscard]] double measured_selectivity(const Predicate& pred,
                                          std::span<const Event> events);

}  // namespace dbsp
