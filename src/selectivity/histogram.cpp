#include "selectivity/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dbsp {

void NumericHistogram::add(double v) {
  assert(!finalized_);
  pending_.push_back(v);
}

void NumericHistogram::finalize() {
  if (finalized_) return;
  finalized_ = true;
  total_ = pending_.size();
  if (pending_.empty()) return;
  const auto [mn, mx] = std::minmax_element(pending_.begin(), pending_.end());
  lo_ = *mn;
  hi_ = *mx;
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (const double v : pending_) {
    auto bin = static_cast<std::size_t>((v - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
  }
  pending_.clear();
  pending_.shrink_to_fit();
}

double NumericHistogram::cumulative_below(double x, bool inclusive) const {
  assert(finalized_);
  if (total_ == 0) return 0.0;
  if (x < lo_ || (x == lo_ && !inclusive)) return 0.0;
  if (x >= hi_) return 1.0;
  const double offset = (x - lo_) / width_;
  const auto bin = std::min(static_cast<std::size_t>(offset), counts_.size() - 1);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < bin; ++i) below += counts_[i];
  const double in_bin_fraction = offset - static_cast<double>(bin);
  const double partial = static_cast<double>(counts_[bin]) * in_bin_fraction;
  return (static_cast<double>(below) + partial) / static_cast<double>(total_);
}

double NumericHistogram::fraction_less(double x) const {
  return cumulative_below(x, /*inclusive=*/false);
}

double NumericHistogram::fraction_less_equal(double x) const {
  // Uniform-within-bin interpolation cannot distinguish < from <=; nudge by
  // half a bin-width ULP so point masses at bin edges are not lost entirely.
  return cumulative_below(std::nextafter(x, hi_ + 1.0), /*inclusive=*/true);
}

double NumericHistogram::fraction_between(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return std::max(0.0, fraction_less_equal(hi) - fraction_less(lo));
}

void ValueCounts::add(const Value& v) {
  ++total_;
  auto it = counts_.find(v);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() < max_distinct_) {
    counts_.emplace(v, 1);
  } else {
    ++overflow_count_;
    ++overflow_distinct_;  // upper bound: each overflow value assumed fresh
  }
}

double ValueCounts::fraction_equal(const Value& v) const {
  if (total_ == 0) return 0.0;
  if (auto it = counts_.find(v); it != counts_.end()) {
    return static_cast<double>(it->second) / static_cast<double>(total_);
  }
  if (overflow_distinct_ == 0) return 0.0;
  const double overflow_mass =
      static_cast<double>(overflow_count_) / static_cast<double>(total_);
  return overflow_mass / static_cast<double>(overflow_distinct_);
}

}  // namespace dbsp
