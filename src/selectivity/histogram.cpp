#include "selectivity/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "routing/codec.hpp"

namespace dbsp {

void NumericHistogram::add(double v) {
  assert(!finalized_);
  pending_.push_back(v);
}

void NumericHistogram::finalize() {
  if (finalized_) return;
  finalized_ = true;
  total_ = pending_.size();
  if (pending_.empty()) return;
  const auto [mn, mx] = std::minmax_element(pending_.begin(), pending_.end());
  lo_ = *mn;
  hi_ = *mx;
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (const double v : pending_) {
    auto bin = static_cast<std::size_t>((v - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
  }
  pending_.clear();
  pending_.shrink_to_fit();
}

void NumericHistogram::save(WireWriter& out) const {
  if (!finalized_) throw std::logic_error("histogram: save before finalize()");
  out.put_u64(total_);
  out.put_f64(lo_);
  out.put_f64(hi_);
  out.put_f64(width_);
  out.put_u32(static_cast<std::uint32_t>(counts_.size()));
  for (const std::uint64_t c : counts_) out.put_u64(c);
}

void NumericHistogram::load(WireReader& in) {
  const std::uint64_t total = in.get_u64();
  const double lo = in.get_f64();
  const double hi = in.get_f64();
  const double width = in.get_f64();
  const std::uint32_t bins = in.get_u32();
  // Each bin occupies 8 bytes; a hostile count must not reserve beyond
  // what the buffer can possibly hold.
  if (bins > in.remaining() / 8) throw WireError("histogram: bin count exceeds input");
  // CRC framing is integrity, not authentication: a blob that decodes
  // cleanly can still carry geometry finalize() could never produce, and
  // estimation would index counts_[...] out of bounds (bins == 0) or hit
  // UB float->size_t casts (width <= 0, non-finite bounds). Reject here.
  if (total > 0 && (bins == 0 || !std::isfinite(lo) || !std::isfinite(hi) ||
                    !std::isfinite(width) || !(hi > lo) || !(width > 0.0))) {
    throw WireError("histogram: invalid trained geometry");
  }
  // width must be what finalize() derives from (lo, hi, bins): a tiny
  // forged width would blow `(x - lo) / width` past SIZE_MAX and make the
  // float->size_t cast in cumulative_below undefined.
  if (total > 0) {
    const double derived = (hi - lo) / static_cast<double>(bins);
    if (!(std::abs(width - derived) <= 1e-9 * derived)) {
      throw WireError("histogram: inconsistent bin width");
    }
  }
  std::vector<std::uint64_t> counts(bins);
  for (auto& c : counts) c = in.get_u64();
  total_ = total;
  lo_ = lo;
  hi_ = hi;
  width_ = width;
  counts_ = std::move(counts);
  pending_.clear();
  finalized_ = true;
}

double NumericHistogram::cumulative_below(double x, bool inclusive) const {
  assert(finalized_);
  if (total_ == 0) return 0.0;
  if (x < lo_ || (x == lo_ && !inclusive)) return 0.0;
  if (x >= hi_) return 1.0;
  // Compare in the double domain before casting: a float->size_t cast of a
  // value past SIZE_MAX is UB, so the clamp must come first.
  const double offset = (x - lo_) / width_;
  const auto bin = offset >= static_cast<double>(counts_.size() - 1)
                       ? counts_.size() - 1
                       : static_cast<std::size_t>(offset);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < bin; ++i) below += counts_[i];
  const double in_bin_fraction = offset - static_cast<double>(bin);
  const double partial = static_cast<double>(counts_[bin]) * in_bin_fraction;
  return (static_cast<double>(below) + partial) / static_cast<double>(total_);
}

double NumericHistogram::fraction_less(double x) const {
  return cumulative_below(x, /*inclusive=*/false);
}

double NumericHistogram::fraction_less_equal(double x) const {
  // Uniform-within-bin interpolation cannot distinguish < from <=; nudge by
  // half a bin-width ULP so point masses at bin edges are not lost entirely.
  return cumulative_below(std::nextafter(x, hi_ + 1.0), /*inclusive=*/true);
}

double NumericHistogram::fraction_between(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return std::max(0.0, fraction_less_equal(hi) - fraction_less(lo));
}

void ValueCounts::add(const Value& v) {
  ++total_;
  auto it = counts_.find(v);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() < max_distinct_) {
    counts_.emplace(v, 1);
  } else {
    ++overflow_count_;
    ++overflow_distinct_;  // upper bound: each overflow value assumed fresh
  }
}

void ValueCounts::save(WireWriter& out) const {
  out.put_u64(total_);
  out.put_u64(overflow_count_);
  out.put_u64(overflow_distinct_);
  out.put_u32(static_cast<std::uint32_t>(counts_.size()));
  for (const auto& [value, count] : counts_) {
    encode_value(value, out);
    out.put_u64(count);
  }
}

void ValueCounts::load(WireReader& in) {
  const std::uint64_t total = in.get_u64();
  const std::uint64_t overflow_count = in.get_u64();
  const std::uint64_t overflow_distinct = in.get_u64();
  const std::uint32_t entries = in.get_u32();
  // Every entry needs at least a value tag byte plus its u64 count.
  if (entries > in.remaining() / 9) throw WireError("value counts: entry count exceeds input");
  std::unordered_map<Value, std::uint64_t> counts;
  counts.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    Value v = decode_value(in);
    const std::uint64_t count = in.get_u64();
    counts.emplace(std::move(v), count);
  }
  total_ = total;
  overflow_count_ = overflow_count;
  overflow_distinct_ = overflow_distinct;
  counts_ = std::move(counts);
}

double ValueCounts::fraction_equal(const Value& v) const {
  if (total_ == 0) return 0.0;
  if (auto it = counts_.find(v); it != counts_.end()) {
    return static_cast<double>(it->second) / static_cast<double>(total_);
  }
  if (overflow_distinct_ == 0) return 0.0;
  const double overflow_mass =
      static_cast<double>(overflow_count_) / static_cast<double>(total_);
  return overflow_mass / static_cast<double>(overflow_distinct_);
}

}  // namespace dbsp
