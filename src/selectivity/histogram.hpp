#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "event/value.hpp"

namespace dbsp {

class WireWriter;
class WireReader;

/// Equi-width histogram over a numeric attribute, trained on sample values.
/// Range queries interpolate uniformly within bins — the standard
/// System-R-style estimator.
class NumericHistogram {
 public:
  explicit NumericHistogram(std::size_t bins = 64) : counts_(bins, 0) {}

  void add(double v);
  /// Finalize after all add() calls: freezes bin boundaries. add() first
  /// buffers raw values; estimates are invalid until finalize().
  void finalize();

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// P[value < x] (strict).
  [[nodiscard]] double fraction_less(double x) const;
  /// P[value <= x].
  [[nodiscard]] double fraction_less_equal(double x) const;
  /// P[lo <= value <= hi].
  [[nodiscard]] double fraction_between(double lo, double hi) const;

  /// Serializes the trained (finalized) state in the routing/codec wire
  /// format; throws std::logic_error before finalize().
  void save(WireWriter& out) const;
  /// Restores state written by save(); the object ends finalized. Throws
  /// WireError on truncated or malformed input.
  void load(WireReader& in);

 private:
  [[nodiscard]] double cumulative_below(double x, bool inclusive) const;

  std::vector<double> pending_;
  std::vector<std::uint64_t> counts_;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double width_ = 0.0;
  std::uint64_t total_ = 0;
  bool finalized_ = false;
};

/// Exact value-frequency table for an attribute (categorical or discrete
/// numeric), with a cap on the number of distinct values tracked; overflow
/// mass is spread uniformly over untracked distinct values.
class ValueCounts {
 public:
  explicit ValueCounts(std::size_t max_distinct = 1 << 17)
      : max_distinct_(max_distinct) {}

  void add(const Value& v);

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// P[value == v] under the trained distribution.
  [[nodiscard]] double fraction_equal(const Value& v) const;

  /// Serializes the tracked counts in the routing/codec wire format.
  void save(WireWriter& out) const;
  /// Restores state written by save() (replacing current counts); the
  /// max-distinct cap keeps its constructed value. Throws WireError on
  /// truncated or malformed input.
  void load(WireReader& in);

  /// Iterates tracked (value, count) pairs — used for string operators
  /// (prefix/suffix/contains) which must scan the domain.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [value, count] : counts_) fn(value, count);
  }

  [[nodiscard]] std::size_t distinct_tracked() const { return counts_.size(); }

 private:
  std::size_t max_distinct_;
  std::unordered_map<Value, std::uint64_t> counts_;
  std::uint64_t overflow_count_ = 0;
  std::uint64_t overflow_distinct_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dbsp
