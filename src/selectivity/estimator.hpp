#pragma once

#include <functional>

#include "selectivity/estimate.hpp"
#include "selectivity/stats.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Oracle mapping a predicate to its point selectivity estimate.
using LeafSelectivityFn = std::function<double(const Predicate&)>;

/// Computes sel≈ for a whole subscription tree from leaf estimates using
/// the interval algebra of SelectivityEstimate (§3.1 / DESIGN.md §1).
class SelectivityEstimator {
 public:
  /// Estimator backed by trained event statistics.
  explicit SelectivityEstimator(const EventStats& stats);
  /// Estimator backed by an arbitrary leaf oracle (tests, what-if analyses).
  explicit SelectivityEstimator(LeafSelectivityFn leaf_fn);

  [[nodiscard]] SelectivityEstimate estimate(const Node& node) const;

  /// Estimate of the tree with the subtree at `skip` treated as pruned
  /// (replaced by the polarity-appropriate constant). Used to price a
  /// candidate pruning without materializing the pruned tree.
  [[nodiscard]] SelectivityEstimate estimate_excluding(const Node& root,
                                                       const Node* skip) const;

 private:
  [[nodiscard]] SelectivityEstimate walk(const Node& node, const Node* skip,
                                         bool positive) const;

  LeafSelectivityFn leaf_fn_;
};

}  // namespace dbsp
