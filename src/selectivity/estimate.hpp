#pragma once

#include <algorithm>
#include <string>

namespace dbsp {

/// Three-component selectivity estimate sel≈(s) = (min, avg, max) from the
/// paper's §3.1: the fraction of events a subscription matches is known to
/// lie in [min, max]; avg is the point estimate under predicate
/// independence. Combinators implement Fréchet bounds, so the invariant
/// 0 <= min <= avg <= max <= 1 is preserved by construction.
struct SelectivityEstimate {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;

  /// Point estimate: a single probability (used for predicate leaves).
  [[nodiscard]] static SelectivityEstimate point(double p) {
    p = std::clamp(p, 0.0, 1.0);
    return {p, p, p};
  }

  [[nodiscard]] static SelectivityEstimate always() { return {1.0, 1.0, 1.0}; }
  [[nodiscard]] static SelectivityEstimate never() { return {0.0, 0.0, 0.0}; }

  /// Conjunction: min via Fréchet lower bound, avg via independence,
  /// max via the weakest conjunct.
  [[nodiscard]] SelectivityEstimate and_with(const SelectivityEstimate& o) const {
    SelectivityEstimate r;
    r.min = std::max(0.0, min + o.min - 1.0);
    r.avg = avg * o.avg;
    r.max = std::min(max, o.max);
    return r.normalized();
  }

  /// Disjunction: min via the strongest disjunct, avg via independence,
  /// max via the Fréchet upper bound.
  [[nodiscard]] SelectivityEstimate or_with(const SelectivityEstimate& o) const {
    SelectivityEstimate r;
    r.min = std::max(min, o.min);
    r.avg = 1.0 - (1.0 - avg) * (1.0 - o.avg);
    r.max = std::min(1.0, max + o.max);
    return r.normalized();
  }

  [[nodiscard]] SelectivityEstimate negated() const {
    return SelectivityEstimate{1.0 - max, 1.0 - avg, 1.0 - min}.normalized();
  }

  /// Restores the min <= avg <= max ordering after floating-point noise.
  [[nodiscard]] SelectivityEstimate normalized() const {
    SelectivityEstimate r = *this;
    r.min = std::clamp(r.min, 0.0, 1.0);
    r.max = std::clamp(r.max, 0.0, 1.0);
    r.avg = std::clamp(r.avg, r.min, r.max);
    return r;
  }

  /// True iff `p` is consistent with the interval (used by soundness tests).
  [[nodiscard]] bool contains(double p, double eps = 1e-9) const {
    return p >= min - eps && p <= max + eps;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Estimated selectivity degradation Δ≈sel(sx, sy) (§3.1): the maximum of
/// the component-wise increases from the original sx to the pruned sy.
[[nodiscard]] inline double selectivity_degradation(const SelectivityEstimate& original,
                                                    const SelectivityEstimate& pruned) {
  return std::max({pruned.min - original.min, pruned.avg - original.avg,
                   pruned.max - original.max});
}

}  // namespace dbsp
