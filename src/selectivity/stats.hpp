#pragma once

#include <memory>
#include <vector>

#include "event/event.hpp"
#include "event/schema.hpp"
#include "selectivity/histogram.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

class WireWriter;
class WireReader;

/// Per-attribute distribution statistics trained on a sample of events.
/// Brokers train this once on observed traffic (or a provided sample) and
/// the pruning engine derives predicate selectivities from it — the paper's
/// "time and space efficient" sel≈ source.
class EventStats {
 public:
  explicit EventStats(const Schema& schema);

  /// Accumulates one event into the statistics.
  void observe(const Event& event);
  /// Freezes histograms; must be called before estimation.
  void finalize();
  /// Discards all trained state and unfreezes, so the same object can be
  /// retrained in place on a fresh sample (the drift-maintenance path —
  /// SelectivityEstimators hold this object by reference, so retraining
  /// propagates without rewiring them).
  void reset();

  [[nodiscard]] std::size_t events_observed() const { return events_observed_; }

  /// Point estimate of P[predicate fulfilled by a random event], including
  /// the probability that the attribute is present at all.
  [[nodiscard]] double predicate_selectivity(const Predicate& pred) const;

  [[nodiscard]] const Schema& schema() const { return *schema_; }

  /// Serializes the trained state (routing/codec wire format) — the payload
  /// of the durable store's train-checkpoint records and snapshots. Only
  /// valid after finalize(); throws std::logic_error otherwise.
  void save(WireWriter& out) const;
  /// Restores state written by save() over the *same schema* (attribute
  /// count and numeric kinds must match — the store verifies the schema
  /// separately, so a mismatch here means corruption and throws WireError).
  /// Replaces any current training; the object ends finalized.
  void load(WireReader& in);

 private:
  struct AttributeStats {
    std::uint64_t present = 0;
    NumericHistogram histogram;
    ValueCounts values;
    bool numeric = false;
  };

  [[nodiscard]] double presence(const AttributeStats& s) const;

  const Schema* schema_;
  std::vector<AttributeStats> attrs_;
  std::size_t events_observed_ = 0;
  bool finalized_ = false;
};

}  // namespace dbsp
