#include "selectivity/exact.hpp"

namespace dbsp {

double measured_selectivity(const Node& tree, std::span<const Event> events) {
  if (events.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& e : events) {
    if (tree.evaluate_event(e)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(events.size());
}

double measured_selectivity(const Predicate& pred, std::span<const Event> events) {
  if (events.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& e : events) {
    if (pred.matches(e)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(events.size());
}

}  // namespace dbsp
