#include "selectivity/estimator.hpp"

#include <stdexcept>

namespace dbsp {

SelectivityEstimator::SelectivityEstimator(const EventStats& stats)
    : leaf_fn_([&stats](const Predicate& p) { return stats.predicate_selectivity(p); }) {}

SelectivityEstimator::SelectivityEstimator(LeafSelectivityFn leaf_fn)
    : leaf_fn_(std::move(leaf_fn)) {
  if (!leaf_fn_) throw std::invalid_argument("estimator: null leaf oracle");
}

SelectivityEstimate SelectivityEstimator::estimate(const Node& node) const {
  return walk(node, nullptr, /*positive=*/true);
}

SelectivityEstimate SelectivityEstimator::estimate_excluding(const Node& root,
                                                             const Node* skip) const {
  return walk(root, skip, /*positive=*/true);
}

SelectivityEstimate SelectivityEstimator::walk(const Node& node, const Node* skip,
                                               bool positive) const {
  if (&node == skip) {
    // A pruned subtree is replaced by TRUE in positive polarity and FALSE in
    // negative polarity — the generalizing constant either way.
    return positive ? SelectivityEstimate::always() : SelectivityEstimate::never();
  }
  switch (node.kind()) {
    case NodeKind::Leaf:
      return SelectivityEstimate::point(leaf_fn_(node.predicate()));
    case NodeKind::True:
      return SelectivityEstimate::always();
    case NodeKind::False:
      return SelectivityEstimate::never();
    case NodeKind::Not:
      return walk(*node.children()[0], skip, !positive).negated();
    case NodeKind::And: {
      SelectivityEstimate acc = SelectivityEstimate::always();
      for (const auto& c : node.children()) acc = acc.and_with(walk(*c, skip, positive));
      return acc;
    }
    case NodeKind::Or: {
      SelectivityEstimate acc = SelectivityEstimate::never();
      for (const auto& c : node.children()) acc = acc.or_with(walk(*c, skip, positive));
      return acc;
    }
  }
  return SelectivityEstimate::never();
}

}  // namespace dbsp
