#pragma once

/// \file
/// DbspClient: the blocking client side of the dbspd protocol, used by
/// dbsp-cli, the socket-mode scenario runner, and the net test suite. One
/// client owns one TCP connection. connect() performs the kHello
/// handshake and learns the *server's* Schema, so DSL filters and events
/// are built against the authoritative event domain without local
/// configuration.
///
/// Requests are answered in order; kNotify pushes may interleave with any
/// reply and are buffered internally — drain them with
/// next_notification(). A kError reply surfaces as the request's Status
/// (application errors leave the connection usable; after a protocol
/// error or an io error the connection is dead and every later call
/// reports kUnavailable).
///
/// Thread safety: none. One DbspClient belongs to one thread.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "subscription/node.hpp"

namespace dbsp::net {

class DbspClient {
 public:
  /// Connects and handshakes (kHello -> schema). kUnavailable on refused /
  /// timed-out connects, kIoError on socket failures.
  [[nodiscard]] static Result<DbspClient> connect(const std::string& host,
                                                  std::uint16_t port,
                                                  int timeout_ms = 5000);

  DbspClient(DbspClient&&) noexcept = default;
  DbspClient& operator=(DbspClient&&) noexcept = default;
  DbspClient(const DbspClient&) = delete;
  DbspClient& operator=(const DbspClient&) = delete;
  ~DbspClient() = default;

  /// The server's schema, learned during the handshake.
  [[nodiscard]] const Schema& schema() const { return schema_; }
  /// An EventBuilder over the server's schema.
  [[nodiscard]] EventBuilder event() const { return EventBuilder(schema_); }

  [[nodiscard]] bool connected() const { return sock_.valid(); }
  /// Closes the connection now (the server releases this connection's
  /// subscriptions durably — a *clean* goodbye, unlike a daemon kill).
  void close() { sock_.close(); }

  // --- Verbs (each is one request/reply round trip) --------------------------

  /// Registers a filter tree; returns the server-assigned subscription id.
  [[nodiscard]] Result<std::uint64_t> subscribe(const Node& tree);
  /// Registers DSL text, parsed locally against the server's schema.
  [[nodiscard]] Result<std::uint64_t> subscribe(std::string_view dsl_text);
  [[nodiscard]] Status unsubscribe(std::uint64_t id);
  /// Re-claims a recovered registration after a daemon restart.
  [[nodiscard]] Result<std::uint64_t> adopt(std::uint64_t id);
  /// Publishes one event; returns the matched-subscription count.
  [[nodiscard]] Result<std::uint64_t> publish(const Event& event);
  /// Publishes one event under `context` (an inactive context starts a
  /// fresh head-sampled trace when a recorder is attached). The request
  /// round trip is recorded as a client_request span, and the context
  /// rides the wire so the server's spans share the trace id.
  [[nodiscard]] Result<std::uint64_t> publish(const Event& event,
                                              obs::TraceContext context);
  /// Publishes a batch; returns the total matched count.
  [[nodiscard]] Result<std::uint64_t> publish_batch(std::span<const Event> events);
  /// Round trip with an echo token (returns the server's echo).
  [[nodiscard]] Result<std::uint64_t> ping(std::uint64_t token);
  [[nodiscard]] Result<NetStats> stats();
  /// The server's full metrics scrape (kMetrics verb). Empty when the
  /// server runs with metrics disabled.
  [[nodiscard]] Result<obs::MetricsSnapshot> metrics();
  /// The server's flight-recorder snapshot (kTraces verb). Empty when the
  /// server runs with tracing disabled.
  [[nodiscard]] Result<WireTraces> traces();

  // --- Client-side observability ---------------------------------------------

  /// Attaches a registry for client-side series: dbsp_e2e_latency_us, the
  /// publish-to-receipt latency histogram recorded when a notification
  /// carries the server's publish wall clock (same-host clocks assumed).
  void attach_metrics(std::shared_ptr<obs::MetricsRegistry> registry);
  /// Attaches a recorder for client_request trace entries (and head
  /// sampling of fresh publish(event, {}) contexts).
  void attach_trace_recorder(std::shared_ptr<obs::FlightRecorder> recorder);
  [[nodiscard]] const std::shared_ptr<obs::FlightRecorder>& trace_recorder()
      const {
    return recorder_;
  }

  // --- Notifications ----------------------------------------------------------

  /// The next buffered or arriving notification; nullopt on timeout.
  /// timeout_ms < 0 blocks until a notification or an error; errors (peer
  /// closed, protocol damage) surface as the Result's Status.
  [[nodiscard]] Result<std::optional<NetNotification>> next_notification(
      int timeout_ms);

  /// Notifications already buffered locally (received while waiting for
  /// replies) — next_notification() never blocks while this is non-zero.
  [[nodiscard]] std::size_t buffered_notifications() const {
    return notifications_.size();
  }

 private:
  DbspClient(Socket sock, std::size_t max_frame)
      : sock_(std::move(sock)), assembler_(max_frame) {}

  /// Sends `frame` and blocks for the matching reply type, buffering any
  /// kNotify frames that arrive first. kError replies become the Status.
  [[nodiscard]] Result<std::vector<std::uint8_t>> request(
      std::span<const std::uint8_t> frame, MsgType expected_reply);
  /// Reads whole frames off the socket until `stop_type` (or kError)
  /// arrives; kNotify frames are buffered along the way.
  [[nodiscard]] Result<std::vector<std::uint8_t>> read_until(
      MsgType stop_type, int timeout_ms);
  [[nodiscard]] Result<std::uint64_t> u64_request(
      std::span<const std::uint8_t> frame, MsgType expected_reply);
  [[nodiscard]] Status fail(Status status);
  /// Decodes one kNotify payload (shared by read_until and
  /// next_notification); records dbsp_e2e_latency_us when attached.
  [[nodiscard]] NetNotification decode_notify(WireReader& r);

  Socket sock_;
  FrameAssembler assembler_;
  Schema schema_;
  std::deque<NetNotification> notifications_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::Histogram* e2e_latency_us_ = nullptr;
  std::shared_ptr<obs::FlightRecorder> recorder_;
  obs::TraceBuilder trace_builder_;
};

}  // namespace dbsp::net
