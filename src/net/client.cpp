#include "net/client.hpp"

#include <chrono>
#include <utility>

#include "routing/codec.hpp"
#include "store/format.hpp"
#include "subscription/parser.hpp"

namespace dbsp::net {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

Status unavailable(const std::string& what) {
  return Status::error(ErrorCode::kUnavailable, what);
}

std::uint64_t unix_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

NetNotification DbspClient::decode_notify(WireReader& r) {
  NetNotification n;
  n.subscription = r.get_u64();
  n.seq = r.get_u64();
  n.event = decode_event(r);
  n.trace = decode_trace_context_opt(r);
  if (n.trace.active()) n.published_unix_us = r.get_u64();
  if (!r.exhausted()) throw WireError("notify: trailing bytes");
  if (e2e_latency_us_ != nullptr && n.published_unix_us != 0) {
    const std::uint64_t now = unix_now_us();
    if (now >= n.published_unix_us) {
      e2e_latency_us_->record(static_cast<double>(now - n.published_unix_us));
    }
  }
  return n;
}

void DbspClient::attach_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  registry_ = std::move(registry);
  e2e_latency_us_ =
      registry_ != nullptr ? &registry_->histogram("dbsp_e2e_latency_us") : nullptr;
}

void DbspClient::attach_trace_recorder(
    std::shared_ptr<obs::FlightRecorder> recorder) {
  recorder_ = std::move(recorder);
}

Result<DbspClient> DbspClient::connect(const std::string& host,
                                       std::uint16_t port, int timeout_ms) {
  auto sock = tcp_connect(host, port, timeout_ms);
  if (!sock.ok()) return sock.status();
  DbspClient client(std::move(sock).value(), kDefaultMaxFrameBytes);
  auto reply = client.request(make_empty_frame(MsgType::kHello),
                              MsgType::kHelloReply);
  if (!reply.ok()) return reply.status();
  try {
    WireReader r(reply.value());
    client.schema_ = store::decode_schema(r);
    if (!r.exhausted()) throw WireError("hello: trailing bytes");
  } catch (const WireError& e) {
    return Status::error(ErrorCode::kDataLoss,
                         std::string("hello reply: ") + e.what());
  }
  return client;
}

Status DbspClient::fail(Status status) {
  // An io/protocol failure poisons the connection: framing may be lost.
  sock_.close();
  return status;
}

Result<std::vector<std::uint8_t>> DbspClient::read_until(MsgType stop_type,
                                                         int timeout_ms) {
  while (true) {
    // Serve from already-buffered stream bytes first.
    try {
      auto frame = assembler_.next();
      if (frame.has_value()) {
        WireReader r(*frame);
        (void)decode_wire_header(r);
        const MsgType type = checked_msg_type(r.get_u8());
        if (type == MsgType::kNotify) {
          notifications_.push_back(decode_notify(r));
          continue;
        }
        if (type == MsgType::kError) {
          const WireStatus ws = decode_error(r);
          if (!r.exhausted()) throw WireError("error frame: trailing bytes");
          return to_status(ws);
        }
        if (type != stop_type) {
          return fail(Status::error(
              ErrorCode::kDataLoss,
              "unexpected reply type " +
                  std::to_string(static_cast<unsigned>(type))));
        }
        // Hand back the reply payload (header + type byte stripped).
        return std::vector<std::uint8_t>(frame->begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 frame->size() - r.remaining()),
                                         frame->end());
      }
    } catch (const WireError& e) {
      return fail(Status::error(ErrorCode::kDataLoss,
                                std::string("wire: ") + e.what()));
    }

    if (!sock_.valid()) return unavailable("connection closed");
    auto readable = wait_readable(sock_.fd(), timeout_ms);
    if (!readable.ok()) return fail(readable.status());
    if (readable.value() == 0) {
      return Status::error(ErrorCode::kUnavailable, "timed out");
    }
    std::uint8_t chunk[kReadChunk];
    auto got = recv_some(sock_.fd(), chunk);
    if (!got.ok()) return fail(got.status());
    if (got.value() == 0) return fail(unavailable("server closed connection"));
    try {
      assembler_.push(std::span<const std::uint8_t>(chunk, got.value()));
    } catch (const WireError& e) {
      return fail(Status::error(ErrorCode::kDataLoss,
                                std::string("framing: ") + e.what()));
    }
  }
}

Result<std::vector<std::uint8_t>> DbspClient::request(
    std::span<const std::uint8_t> frame, MsgType expected_reply) {
  if (!sock_.valid()) return unavailable("not connected");
  if (Status s = send_all(sock_.fd(), frame); !s.ok()) return fail(std::move(s));
  return read_until(expected_reply, /*timeout_ms=*/-1);
}

Result<std::uint64_t> DbspClient::u64_request(std::span<const std::uint8_t> frame,
                                              MsgType expected_reply) {
  auto reply = request(frame, expected_reply);
  if (!reply.ok()) return reply.status();
  try {
    WireReader r(reply.value());
    const std::uint64_t value = r.get_u64();
    if (!r.exhausted()) throw WireError("reply: trailing bytes");
    return value;
  } catch (const WireError& e) {
    return fail(Status::error(ErrorCode::kDataLoss,
                              std::string("reply: ") + e.what()));
  }
}

Result<std::uint64_t> DbspClient::subscribe(const Node& tree) {
  WireWriter payload;
  encode_tree(tree, payload);
  return u64_request(make_frame(MsgType::kSubscribe, payload),
                     MsgType::kSubscribeReply);
}

Result<std::uint64_t> DbspClient::subscribe(std::string_view dsl_text) {
  std::unique_ptr<Node> tree;
  try {
    tree = parse_subscription(dsl_text, schema_);
  } catch (const ParseError& e) {
    return Status::error(ErrorCode::kParseError, e.what());
  }
  return subscribe(*tree);
}

Status DbspClient::unsubscribe(std::uint64_t id) {
  auto reply = request(make_u64_frame(MsgType::kUnsubscribe, id),
                       MsgType::kUnsubscribeReply);
  if (!reply.ok()) return reply.status();
  if (!reply.value().empty()) {
    return fail(Status::error(ErrorCode::kDataLoss,
                              "unsubscribe reply: trailing bytes"));
  }
  return Status();
}

Result<std::uint64_t> DbspClient::adopt(std::uint64_t id) {
  return u64_request(make_u64_frame(MsgType::kAdopt, id), MsgType::kAdoptReply);
}

Result<std::uint64_t> DbspClient::publish(const Event& event) {
  return publish(event, obs::TraceContext{});
}

Result<std::uint64_t> DbspClient::publish(const Event& event,
                                          obs::TraceContext context) {
  obs::TraceBuilder* tb = nullptr;
  if (recorder_ != nullptr) {
    if (!context.active()) {
      context = obs::make_trace_context(recorder_->should_sample());
    }
    trace_builder_.begin(context);
    tb = &trace_builder_;
  }
  Result<std::uint64_t> out = Status::error(ErrorCode::kUnavailable, "");
  {
    obs::ScopedSpan span(tb, obs::TraceStage::kClientRequest);
    obs::TraceContext wire = context;
    if (span.span_id() != 0) wire.parent_span = span.span_id();
    WireWriter payload;
    encode_event(event, payload);
    // Trailer only on traced publishes: untraced requests stay
    // byte-identical to the previous protocol revision.
    if (wire.active()) encode_trace_context(wire, payload);
    out = u64_request(make_frame(MsgType::kPublish, payload),
                      MsgType::kPublishReply);
    if (out.ok()) span.set_detail(out.value());
  }
  if (tb != nullptr) (void)tb->finish(*recorder_);
  return out;
}

Result<std::uint64_t> DbspClient::publish_batch(std::span<const Event> events) {
  WireWriter payload;
  payload.put_u32(static_cast<std::uint32_t>(events.size()));
  for (const Event& e : events) encode_event(e, payload);
  return u64_request(make_frame(MsgType::kPublishBatch, payload),
                     MsgType::kPublishBatchReply);
}

Result<std::uint64_t> DbspClient::ping(std::uint64_t token) {
  return u64_request(make_u64_frame(MsgType::kPing, token), MsgType::kPong);
}

Result<NetStats> DbspClient::stats() {
  auto reply = request(make_empty_frame(MsgType::kStats), MsgType::kStatsReply);
  if (!reply.ok()) return reply.status();
  try {
    WireReader r(reply.value());
    NetStats s = decode_stats(r);
    if (!r.exhausted()) throw WireError("stats reply: trailing bytes");
    return s;
  } catch (const WireError& e) {
    return fail(Status::error(ErrorCode::kDataLoss,
                              std::string("stats reply: ") + e.what()));
  }
}

Result<obs::MetricsSnapshot> DbspClient::metrics() {
  auto reply =
      request(make_empty_frame(MsgType::kMetrics), MsgType::kMetricsReply);
  if (!reply.ok()) return reply.status();
  try {
    WireReader r(reply.value());
    obs::MetricsSnapshot s = decode_metrics(r);
    if (!r.exhausted()) throw WireError("metrics reply: trailing bytes");
    return s;
  } catch (const WireError& e) {
    return fail(Status::error(ErrorCode::kDataLoss,
                              std::string("metrics reply: ") + e.what()));
  }
}

Result<WireTraces> DbspClient::traces() {
  auto reply =
      request(make_empty_frame(MsgType::kTraces), MsgType::kTracesReply);
  if (!reply.ok()) return reply.status();
  try {
    WireReader r(reply.value());
    WireTraces t = decode_traces(r);
    if (!r.exhausted()) throw WireError("traces reply: trailing bytes");
    return t;
  } catch (const WireError& e) {
    return fail(Status::error(ErrorCode::kDataLoss,
                              std::string("traces reply: ") + e.what()));
  }
}

Result<std::optional<NetNotification>> DbspClient::next_notification(
    int timeout_ms) {
  if (!notifications_.empty()) {
    NetNotification n = std::move(notifications_.front());
    notifications_.pop_front();
    return std::optional<NetNotification>(std::move(n));
  }
  if (!sock_.valid()) return unavailable("not connected");
  while (notifications_.empty()) {
    // Drain whole frames already buffered before touching the socket.
    try {
      auto frame = assembler_.next();
      if (frame.has_value()) {
        WireReader r(*frame);
        (void)decode_wire_header(r);
        const MsgType type = checked_msg_type(r.get_u8());
        if (type == MsgType::kNotify) {
          notifications_.push_back(decode_notify(r));
          break;
        }
        if (type == MsgType::kError) {
          const WireStatus ws = decode_error(r);
          return to_status(ws);
        }
        return fail(Status::error(ErrorCode::kDataLoss,
                                  "unexpected frame while waiting for "
                                  "notifications"));
      }
    } catch (const WireError& e) {
      return fail(Status::error(ErrorCode::kDataLoss,
                                std::string("wire: ") + e.what()));
    }
    auto readable = wait_readable(sock_.fd(), timeout_ms);
    if (!readable.ok()) return fail(readable.status());
    if (readable.value() == 0) return std::optional<NetNotification>();
    std::uint8_t chunk[kReadChunk];
    auto got = recv_some(sock_.fd(), chunk);
    if (!got.ok()) return fail(got.status());
    if (got.value() == 0) return fail(unavailable("server closed connection"));
    try {
      assembler_.push(std::span<const std::uint8_t>(chunk, got.value()));
    } catch (const WireError& e) {
      return fail(Status::error(ErrorCode::kDataLoss,
                                std::string("framing: ") + e.what()));
    }
  }
  NetNotification n = std::move(notifications_.front());
  notifications_.pop_front();
  return std::optional<NetNotification>(std::move(n));
}

}  // namespace dbsp::net
