#pragma once

/// \file
/// The dbspd wire protocol: length-framed binary messages layered on the
/// routing/codec wire format. Every frame body opens with the codec's
/// 2-byte header (magic 0xDB + format version — so an old daemon rejects a
/// newer client with a clean protocol-error frame instead of misparsing),
/// followed by one MsgType byte and a type-specific payload reusing the
/// codec's value/event/tree encodings:
///
///   frame  := len u32 (LE) | body                  (FrameAssembler framing)
///   body   := wire-header | type u8 | payload
///
/// Requests are answered in order on each connection; kNotify frames are
/// pushed asynchronously and may interleave with replies (the blocking
/// client buffers them). Protocol-level garbage (bad magic/version, bad
/// framing, undecodable payload) is answered with one kError frame and the
/// connection is closed; application-level failures (unknown id, schema
/// violation) are kError frames on a connection that stays usable.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "routing/codec.hpp"
#include "subscription/node.hpp"

namespace dbsp::net {

/// Message type byte. Requests are < 64, replies >= 64, pushes >= 96.
enum class MsgType : std::uint8_t {
  // --- Requests (client -> server) ---
  kHello = 1,         ///< empty; the connection handshake
  kSubscribe = 2,     ///< tree
  kUnsubscribe = 3,   ///< sub id u64
  kAdopt = 4,         ///< sub id u64 — re-claim a recovered registration
  kPublish = 5,       ///< event
  kPublishBatch = 6,  ///< count u32, event*
  kPing = 7,          ///< token u64
  kStats = 8,         ///< empty
  kMetrics = 9,       ///< empty; full registry scrape
  kTraces = 10,       ///< empty; flight-recorder snapshot

  // --- Replies (server -> client, one per request, in order) ---
  kHelloReply = 64,         ///< schema (store format codec)
  kSubscribeReply = 65,     ///< sub id u64
  kUnsubscribeReply = 66,   ///< empty
  kAdoptReply = 67,         ///< sub id u64
  kPublishReply = 68,       ///< matched count u64
  kPublishBatchReply = 69,  ///< total matched count u64
  kPong = 70,               ///< token u64
  kStatsReply = 71,         ///< count u32, count x u64 (NetStats field order)
  kMetricsReply = 72,       ///< encode_metrics payload (length-prefixed entries)
  kTracesReply = 73,        ///< encode_traces payload (length-prefixed entries)

  // --- Pushes ---
  kNotify = 96,  ///< sub id u64, seq u64, event [, trace context, published u64]
  kError = 97,   ///< code u8 (ErrorCode), message string
};

/// Converts a type byte from the wire; throws WireError on unknown values.
[[nodiscard]] MsgType checked_msg_type(std::uint8_t raw);

/// Server-side counters, also the kStatsReply payload. The codec writes a
/// field-count prefix, so decoders tolerate both older servers (missing
/// trailing fields stay zero) and newer ones (extra fields are skipped).
struct NetStats {
  std::uint64_t connections = 0;           ///< currently open
  std::uint64_t connections_accepted = 0;  ///< lifetime accepts
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t slow_consumer_disconnects = 0;
  std::uint64_t subscriptions = 0;             ///< live in the engine
  std::uint64_t notifications_enqueued = 0;    ///< written toward clients
  std::uint64_t events_published = 0;          ///< via kPublish/kPublishBatch
  std::uint64_t notifications_delivered = 0;   ///< engine-side match count
  std::uint64_t write_queue_high_water = 0;    ///< worst pending bytes seen
  std::uint64_t draining = 0;                  ///< 1 while shutting down
};

void encode_stats(const NetStats& stats, WireWriter& out);
[[nodiscard]] NetStats decode_stats(WireReader& in);

/// kMetricsReply payload: the full registry scrape. Layout:
///
///   count u32, then per metric:
///     entry_len u32 | name string | kind u8 | label_count u8 |
///     (key string, value string)* | kind-specific value
///
///   counter: value u64; gauge: value f64;
///   histogram: sum f64, count u64, bucket_count u8, bucket_count x u64
///
/// The per-entry byte-length prefix is the forward-compat seam (the
/// field-count analogue of the NetStats codec): a decoder skips entries
/// whose kind it does not know, and skips trailing bytes a newer encoder
/// appended inside an entry it does know.
void encode_metrics(const obs::MetricsSnapshot& snapshot, WireWriter& out);
[[nodiscard]] obs::MetricsSnapshot decode_metrics(WireReader& in);

/// kTracesReply payload: the flight-recorder snapshot plus its lifetime
/// counters. Layout:
///
///   recorded_total u64 | dropped_total u64 | count u32, then per trace:
///     entry_len u32 | trace_id u64 | parent_span u64 | sampled u8 |
///     start_unix_us u64 | duration_us u64 | span_count u8 |
///     span_count x (stage u8, span_id u64, parent_span u64,
///                   start_us u64, duration_us u64, detail u64)
///
/// Forward compat mirrors the metrics codec: the per-entry byte-length
/// prefix lets a decoder skip trailing bytes a newer encoder appended,
/// and spans with an unknown stage byte are dropped individually.
struct WireTraces {
  std::vector<obs::Trace> traces;
  std::uint64_t recorded_total = 0;
  std::uint64_t dropped_total = 0;
};
void encode_traces(const WireTraces& traces, WireWriter& out);
[[nodiscard]] WireTraces decode_traces(WireReader& in);

/// The optional trailing trace context of kPublish and kNotify frames:
/// flags u8 (bit 0 = head-sampled) | trace_id u64 | parent_span u64. An
/// absent trailer (an older peer, or an untraced publish) decodes as the
/// inactive context.
void encode_trace_context(const obs::TraceContext& context, WireWriter& out);
[[nodiscard]] obs::TraceContext decode_trace_context_opt(WireReader& in);

/// One notification as it crosses the wire. `trace` and `published_unix_us`
/// arrive through the optional kNotify trailer (zero from older servers);
/// the publish wall clock lets same-host clients histogram end-to-end
/// latency without a clock exchange.
struct NetNotification {
  std::uint64_t subscription = 0;
  std::uint64_t seq = 0;
  Event event;
  obs::TraceContext trace{};
  std::uint64_t published_unix_us = 0;
};

// --- Frame builders ----------------------------------------------------------
// Each returns a complete length-prefixed frame ready for the socket.

[[nodiscard]] std::vector<std::uint8_t> make_frame(MsgType type,
                                                   const WireWriter& payload);
[[nodiscard]] std::vector<std::uint8_t> make_empty_frame(MsgType type);
[[nodiscard]] std::vector<std::uint8_t> make_u64_frame(MsgType type,
                                                       std::uint64_t value);
[[nodiscard]] std::vector<std::uint8_t> make_error_frame(ErrorCode code,
                                                         const std::string& message);
[[nodiscard]] std::vector<std::uint8_t> make_notify_frame(
    std::uint64_t sub, std::uint64_t seq, const Event& event,
    const obs::TraceContext& trace = {}, std::uint64_t published_unix_us = 0);

/// Decoded kError payload.
struct WireStatus {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
};
[[nodiscard]] WireStatus decode_error(WireReader& in);
[[nodiscard]] Status to_status(const WireStatus& ws);

// --- Edge validation ---------------------------------------------------------
// The network edge is the schema authority: attribute ids arrive as raw
// u32s, and an out-of-range id would index past the matcher's per-schema
// tables. Both checks reject before anything reaches the engine.

/// Every attribute of `event` must exist in `schema` and carry the
/// declared type.
[[nodiscard]] Status validate_event(const Event& event, const Schema& schema);
/// Every leaf predicate of `tree` must name an attribute of `schema`.
[[nodiscard]] Status validate_tree(const Node& tree, const Schema& schema);

}  // namespace dbsp::net
