#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dbsp::net {

namespace {

Status io_error(const std::string& what) {
  return Status::error(ErrorCode::kIoError,
                       what + ": " + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

Result<sockaddr_in> parse_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "not an IPv4 address: " + node);
  }
  return addr;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> tcp_listen(const std::string& host, std::uint16_t port,
                          int backlog) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return io_error("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return io_error("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return io_error("listen");
  return sock;
}

Result<Socket> tcp_connect(const std::string& host, std::uint16_t port,
                           int timeout_ms) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return io_error("socket");
  // Connect non-blocking so the timeout is enforceable, then flip back.
  if (const Status s = set_nonblocking(sock.fd(), true); !s.ok()) return s;
  const int rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
                           sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) return io_error("connect");
  if (rc != 0) {
    pollfd pfd{sock.fd(), POLLOUT, 0};
    int prc = 0;
    do {
      prc = ::poll(&pfd, 1, timeout_ms);
    } while (prc < 0 && errno == EINTR);
    if (prc < 0) return io_error("poll");
    if (prc == 0) {
      return Status::error(ErrorCode::kUnavailable, "connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return io_error("getsockopt");
    }
    if (err != 0) {
      errno = err;
      return io_error("connect");
    }
  }
  if (const Status s = set_nonblocking(sock.fd(), false); !s.ok()) return s;
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return io_error("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Status set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return io_error("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) return io_error("fcntl(F_SETFL)");
  return Status();
}

Status send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status();
}

Result<int> wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc = 0;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return io_error("poll");
  return rc > 0 ? 1 : 0;
}

Result<std::size_t> recv_some(int fd, std::span<std::uint8_t> out) {
  while (true) {
    const ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno != EINTR) return io_error("recv");
  }
}

}  // namespace dbsp::net
