#pragma once

/// \file
/// Thin POSIX TCP helpers for the network edge: an RAII fd wrapper plus
/// listen/connect/IO utilities. Errors travel through the Status/Result
/// channel (api/status.hpp) as kIoError — the net module never throws for
/// socket failures. All sends use MSG_NOSIGNAL so a peer that closed
/// mid-write produces an error return, not SIGPIPE.

#include <cstdint>
#include <span>
#include <string>

#include "api/status.hpp"

namespace dbsp::net {

/// Move-only owner of one file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = kernel-assigned ephemeral
/// port; read it back with local_port). The socket is SO_REUSEADDR.
[[nodiscard]] Result<Socket> tcp_listen(const std::string& host, std::uint16_t port,
                                        int backlog);

/// Blocking connect with a timeout. The returned socket is in blocking
/// mode with TCP_NODELAY set (the protocol is request/response-y; Nagle
/// only adds latency).
[[nodiscard]] Result<Socket> tcp_connect(const std::string& host,
                                         std::uint16_t port, int timeout_ms);

/// The locally bound port of a socket (the ephemeral-port readback).
[[nodiscard]] Result<std::uint16_t> local_port(int fd);

Status set_nonblocking(int fd, bool on);

/// Blocking write of the whole buffer (EINTR-retrying). kIoError on any
/// failure, including the peer closing mid-write.
Status send_all(int fd, std::span<const std::uint8_t> bytes);

/// Waits up to timeout_ms for the fd to become readable. Returns 1 when
/// readable, 0 on timeout; kIoError otherwise. timeout_ms < 0 waits
/// forever.
[[nodiscard]] Result<int> wait_readable(int fd, int timeout_ms);

/// One blocking read into `out`; returns the byte count (0 = clean EOF).
[[nodiscard]] Result<std::size_t> recv_some(int fd, std::span<std::uint8_t> out);

}  // namespace dbsp::net
