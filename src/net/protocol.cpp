#include "net/protocol.hpp"

namespace dbsp::net {

MsgType checked_msg_type(std::uint8_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kHello:
    case MsgType::kSubscribe:
    case MsgType::kUnsubscribe:
    case MsgType::kAdopt:
    case MsgType::kPublish:
    case MsgType::kPublishBatch:
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kMetrics:
    case MsgType::kTraces:
    case MsgType::kHelloReply:
    case MsgType::kSubscribeReply:
    case MsgType::kUnsubscribeReply:
    case MsgType::kAdoptReply:
    case MsgType::kPublishReply:
    case MsgType::kPublishBatchReply:
    case MsgType::kPong:
    case MsgType::kStatsReply:
    case MsgType::kMetricsReply:
    case MsgType::kTracesReply:
    case MsgType::kNotify:
    case MsgType::kError:
      return static_cast<MsgType>(raw);
  }
  throw WireError("net: unknown message type " + std::to_string(raw));
}

namespace {

// The NetStats wire order. Adding a field = append here and bump nothing:
// the count prefix keeps old decoders working.
constexpr std::size_t kStatsFieldCount = 15;

void stats_fields(const NetStats& s, std::uint64_t (&out)[kStatsFieldCount]) {
  std::size_t i = 0;
  out[i++] = s.connections;
  out[i++] = s.connections_accepted;
  out[i++] = s.connections_rejected;
  out[i++] = s.frames_received;
  out[i++] = s.frames_sent;
  out[i++] = s.bytes_received;
  out[i++] = s.bytes_sent;
  out[i++] = s.protocol_errors;
  out[i++] = s.slow_consumer_disconnects;
  out[i++] = s.subscriptions;
  out[i++] = s.notifications_enqueued;
  out[i++] = s.events_published;
  out[i++] = s.notifications_delivered;
  out[i++] = s.write_queue_high_water;
  out[i++] = s.draining;
}

}  // namespace

void encode_stats(const NetStats& stats, WireWriter& out) {
  std::uint64_t fields[kStatsFieldCount];
  stats_fields(stats, fields);
  out.put_u32(static_cast<std::uint32_t>(kStatsFieldCount));
  for (const std::uint64_t f : fields) out.put_u64(f);
}

NetStats decode_stats(WireReader& in) {
  const std::uint32_t count = in.get_u32();
  std::uint64_t fields[kStatsFieldCount] = {};
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t v = in.get_u64();  // skips fields newer than us
    if (i < kStatsFieldCount) fields[i] = v;
  }
  NetStats s;
  std::size_t i = 0;
  s.connections = fields[i++];
  s.connections_accepted = fields[i++];
  s.connections_rejected = fields[i++];
  s.frames_received = fields[i++];
  s.frames_sent = fields[i++];
  s.bytes_received = fields[i++];
  s.bytes_sent = fields[i++];
  s.protocol_errors = fields[i++];
  s.slow_consumer_disconnects = fields[i++];
  s.subscriptions = fields[i++];
  s.notifications_enqueued = fields[i++];
  s.events_published = fields[i++];
  s.notifications_delivered = fields[i++];
  s.write_queue_high_water = fields[i++];
  s.draining = fields[i++];
  return s;
}

void encode_metrics(const obs::MetricsSnapshot& snapshot, WireWriter& out) {
  out.put_u32(static_cast<std::uint32_t>(snapshot.metrics.size()));
  for (const obs::MetricSnapshot& m : snapshot.metrics) {
    WireWriter entry;
    entry.put_string(m.name);
    entry.put_u8(static_cast<std::uint8_t>(m.kind));
    entry.put_u8(static_cast<std::uint8_t>(m.labels.size()));
    for (const auto& [key, value] : m.labels) {
      entry.put_string(key);
      entry.put_string(value);
    }
    switch (m.kind) {
      case obs::MetricKind::kCounter:
        entry.put_u64(static_cast<std::uint64_t>(m.value));
        break;
      case obs::MetricKind::kGauge:
        entry.put_f64(m.value);
        break;
      case obs::MetricKind::kHistogram:
        entry.put_f64(m.histogram.sum);
        entry.put_u64(m.histogram.count);
        entry.put_u8(static_cast<std::uint8_t>(m.histogram.bucket_counts.size()));
        for (const std::uint64_t c : m.histogram.bucket_counts) entry.put_u64(c);
        break;
    }
    out.put_u32(static_cast<std::uint32_t>(entry.size()));
    out.put_bytes(entry.bytes());
  }
}

obs::MetricsSnapshot decode_metrics(WireReader& in) {
  obs::MetricsSnapshot out;
  const std::uint32_t count = in.get_u32();
  out.metrics.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t entry_len = in.get_u32();
    if (entry_len > in.remaining()) {
      throw WireError("net: metric entry overruns the frame");
    }
    // Where this entry ends, measured in bytes still unread — the skip
    // target for unknown kinds and newer-encoder trailing fields.
    const std::size_t end_remaining = in.remaining() - entry_len;
    obs::MetricSnapshot m;
    m.name = in.get_string();
    const std::uint8_t raw_kind = in.get_u8();
    const std::uint8_t label_count = in.get_u8();
    for (std::uint8_t l = 0; l < label_count; ++l) {
      std::string key = in.get_string();
      std::string value = in.get_string();
      m.labels.emplace_back(std::move(key), std::move(value));
    }
    bool known = true;
    switch (raw_kind) {
      case static_cast<std::uint8_t>(obs::MetricKind::kCounter):
        m.kind = obs::MetricKind::kCounter;
        m.value = static_cast<double>(in.get_u64());
        break;
      case static_cast<std::uint8_t>(obs::MetricKind::kGauge):
        m.kind = obs::MetricKind::kGauge;
        m.value = in.get_f64();
        break;
      case static_cast<std::uint8_t>(obs::MetricKind::kHistogram): {
        m.kind = obs::MetricKind::kHistogram;
        m.histogram.sum = in.get_f64();
        m.histogram.count = in.get_u64();
        const std::uint8_t buckets = in.get_u8();
        m.histogram.bucket_counts.reserve(buckets);
        for (std::uint8_t b = 0; b < buckets; ++b) {
          m.histogram.bucket_counts.push_back(in.get_u64());
        }
        break;
      }
      default:
        known = false;  // a newer server's kind: skip the whole entry
        break;
    }
    if (in.remaining() < end_remaining) {
      throw WireError("net: metric entry shorter than its length prefix");
    }
    while (in.remaining() > end_remaining) (void)in.get_u8();
    if (known) out.metrics.push_back(std::move(m));
  }
  return out;
}

void encode_traces(const WireTraces& traces, WireWriter& out) {
  out.put_u64(traces.recorded_total);
  out.put_u64(traces.dropped_total);
  out.put_u32(static_cast<std::uint32_t>(traces.traces.size()));
  for (const obs::Trace& t : traces.traces) {
    WireWriter entry;
    entry.put_u64(t.trace_id);
    entry.put_u64(t.parent_span);
    entry.put_u8(t.sampled ? 1 : 0);
    entry.put_u64(t.start_unix_us);
    entry.put_u64(t.duration_us);
    entry.put_u8(static_cast<std::uint8_t>(t.spans.size()));
    for (const obs::TraceSpan& s : t.spans) {
      entry.put_u8(static_cast<std::uint8_t>(s.stage));
      entry.put_u64(s.span_id);
      entry.put_u64(s.parent_span);
      entry.put_u64(s.start_us);
      entry.put_u64(s.duration_us);
      entry.put_u64(s.detail);
    }
    out.put_u32(static_cast<std::uint32_t>(entry.size()));
    out.put_bytes(entry.bytes());
  }
}

WireTraces decode_traces(WireReader& in) {
  WireTraces out;
  out.recorded_total = in.get_u64();
  out.dropped_total = in.get_u64();
  const std::uint32_t count = in.get_u32();
  out.traces.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t entry_len = in.get_u32();
    if (entry_len > in.remaining()) {
      throw WireError("net: trace entry overruns the frame");
    }
    const std::size_t end_remaining = in.remaining() - entry_len;
    obs::Trace t;
    t.trace_id = in.get_u64();
    t.parent_span = in.get_u64();
    t.sampled = in.get_u8() != 0;
    t.start_unix_us = in.get_u64();
    t.duration_us = in.get_u64();
    const std::uint8_t span_count = in.get_u8();
    t.spans.reserve(span_count);
    for (std::uint8_t s = 0; s < span_count; ++s) {
      obs::TraceSpan span;
      const std::uint8_t raw_stage = in.get_u8();
      span.span_id = in.get_u64();
      span.parent_span = in.get_u64();
      span.start_us = in.get_u64();
      span.duration_us = in.get_u64();
      span.detail = in.get_u64();
      // A stage byte from a newer server: drop the span, keep the trace.
      if (raw_stage > static_cast<std::uint8_t>(obs::TraceStage::kOverlayHop)) {
        continue;
      }
      span.stage = static_cast<obs::TraceStage>(raw_stage);
      t.spans.push_back(span);
    }
    if (in.remaining() < end_remaining) {
      throw WireError("net: trace entry shorter than its length prefix");
    }
    while (in.remaining() > end_remaining) (void)in.get_u8();
    out.traces.push_back(std::move(t));
  }
  return out;
}

void encode_trace_context(const obs::TraceContext& context, WireWriter& out) {
  out.put_u8(context.sampled ? 1 : 0);
  out.put_u64(context.trace_id);
  out.put_u64(context.parent_span);
}

obs::TraceContext decode_trace_context_opt(WireReader& in) {
  obs::TraceContext context;
  if (in.remaining() == 0) return context;
  context.sampled = (in.get_u8() & 1) != 0;
  context.trace_id = in.get_u64();
  context.parent_span = in.get_u64();
  return context;
}

std::vector<std::uint8_t> make_frame(MsgType type, const WireWriter& payload) {
  WireWriter body;
  encode_wire_header(body);
  body.put_u8(static_cast<std::uint8_t>(type));
  body.put_bytes(payload.bytes());
  std::vector<std::uint8_t> frame;
  frame.reserve(body.size() + 4);
  append_frame(frame, body.bytes());
  return frame;
}

std::vector<std::uint8_t> make_empty_frame(MsgType type) {
  return make_frame(type, WireWriter{});
}

std::vector<std::uint8_t> make_u64_frame(MsgType type, std::uint64_t value) {
  WireWriter payload;
  payload.put_u64(value);
  return make_frame(type, payload);
}

std::vector<std::uint8_t> make_error_frame(ErrorCode code,
                                           const std::string& message) {
  WireWriter payload;
  payload.put_u8(static_cast<std::uint8_t>(code));
  payload.put_string(message);
  return make_frame(MsgType::kError, payload);
}

std::vector<std::uint8_t> make_notify_frame(std::uint64_t sub, std::uint64_t seq,
                                            const Event& event,
                                            const obs::TraceContext& trace,
                                            std::uint64_t published_unix_us) {
  WireWriter payload;
  payload.put_u64(sub);
  payload.put_u64(seq);
  encode_event(event, payload);
  // Trailer only when a trace rides along, so untraced servers emit frames
  // byte-identical to the previous protocol revision.
  if (trace.active()) {
    encode_trace_context(trace, payload);
    payload.put_u64(published_unix_us);
  }
  return make_frame(MsgType::kNotify, payload);
}

WireStatus decode_error(WireReader& in) {
  WireStatus ws;
  const std::uint8_t raw = in.get_u8();
  // Unknown codes (a newer server) degrade to the generic bucket instead
  // of a decode failure.
  ws.code = raw <= static_cast<std::uint8_t>(ErrorCode::kIoError)
                ? static_cast<ErrorCode>(raw)
                : ErrorCode::kFailedPrecondition;
  if (ws.code == ErrorCode::kOk) ws.code = ErrorCode::kFailedPrecondition;
  ws.message = in.get_string();
  return ws;
}

Status to_status(const WireStatus& ws) {
  return Status::error(ws.code, ws.message);
}

Status validate_event(const Event& event, const Schema& schema) {
  for (const auto& [attr, value] : event.pairs()) {
    if (attr.value() >= schema.attribute_count()) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "event attribute id " + std::to_string(attr.value()) +
                               " not in schema");
    }
    if (value.type() != schema.type(attr)) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "event attribute '" + schema.name(attr) +
                               "' has the wrong value type");
    }
  }
  return Status();
}

Status validate_tree(const Node& tree, const Schema& schema) {
  Status status;
  tree.for_each_leaf([&](const Node& leaf) {
    const AttributeId attr = leaf.predicate().attribute();
    if (status.ok() && attr.value() >= schema.attribute_count()) {
      status = Status::error(ErrorCode::kInvalidArgument,
                             "filter attribute id " + std::to_string(attr.value()) +
                                 " not in schema");
    }
  });
  return status;
}

}  // namespace dbsp::net
