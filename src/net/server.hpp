#pragma once

/// \file
/// NetServer: the async TCP broker edge behind dbspd. One epoll-driven io
/// thread owns every connection: non-blocking reads feed a per-connection
/// FrameAssembler, complete frames dispatch into the owned dbsp::PubSub,
/// and replies/notifications leave through per-connection bounded write
/// queues (EPOLLOUT-driven, with a slow-consumer disconnect policy).
///
/// Threading model (see docs/ARCHITECTURE.md "Network edge"): the io
/// thread is the only caller of PubSub entry points during normal
/// operation, so notification callbacks — which run under the facade lock
/// on the publishing thread — only ever append bytes to connection write
/// queues; they never re-enter the facade (the PR 6 non-recursive-mutex
/// contract). Slow-consumer disconnects are deferred until the publish
/// that detected them returns, because releasing a SubscriptionHandle
/// re-enters the facade. Cross-thread surface: stats() reads atomics only,
/// stop()/request_stop_async() signal the io thread through an eventfd.
///
/// Lifecycle: start() takes the PubSub by value — the server is the broker
/// process. stop(drain=true) is the graceful path (stop accepting, stop
/// reading, flush every write queue, checkpoint a durable store);
/// stop(drain=false) is the crash-like kill (nothing flushed, nothing
/// checkpointed — every acknowledged durable operation is already in the
/// WAL, so a reopen via PubSub::open() is warm and clients re-adopt their
/// subscription ids). In both paths the PubSub is destroyed *before* the
/// connection handles, so shutdown never unsubscribes anyone durably.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "api/pubsub.hpp"
#include "api/status.hpp"
#include "common/mutex.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace dbsp::net {

/// Construction knobs of the network edge; from_env() reads the
/// DBSP_NET_* environment knobs documented in the README.
struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (read back with port())
  int listen_backlog = 512;
  /// Accepts beyond this are closed immediately (connections_rejected).
  std::size_t max_connections = 4096;
  /// FrameAssembler limit per connection; oversized frames are answered
  /// with a protocol-error frame and the connection is closed.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounded per-connection write queue: a consumer whose pending bytes
  /// would exceed this is disconnected (slow_consumer_disconnects) instead
  /// of growing server memory without bound.
  std::size_t max_write_queue_bytes = 4u << 20;
  /// stop(drain=true) flushes write queues for at most this long.
  int drain_timeout_ms = 5000;
  /// Port of the HTTP GET /metrics endpoint (Prometheus text exposition),
  /// served from the same epoll loop on `host`. -1 disables it; 0 binds a
  /// kernel-assigned port (read back with metrics_port()). The endpoint
  /// keeps serving while a graceful drain is in progress, and also answers
  /// GET /traces (flight-recorder JSON), GET /healthz, and GET /buildinfo.
  int metrics_port = -1;
  /// Where request_trace_dump_async() (dbspd's SIGUSR1 handler) writes the
  /// flight-recorder JSON.
  std::string trace_dump_path = "dbsp_traces.json";

  [[nodiscard]] static NetServerOptions from_env();
};

/// The daemon core. Construct via start(); non-movable (the io thread
/// holds `this`).
class NetServer {
 public:
  /// Binds, spawns the io thread, and takes ownership of the PubSub.
  /// kIoError/kInvalidArgument on bind/listen failures.
  [[nodiscard]] static Result<std::unique_ptr<NetServer>> start(
      PubSub pubsub, NetServerOptions options = {});

  /// Graceful stop (drain) unless already stopped.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (resolves option port 0 to the real ephemeral port).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The bound HTTP metrics port; 0 when the endpoint is disabled.
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  /// The options the server was started with.
  [[nodiscard]] const NetServerOptions& options() const { return options_; }

  /// Counter snapshot; safe from any thread, lock-free.
  [[nodiscard]] NetStats stats() const;

  /// Requests shutdown and joins the io thread. Idempotent and
  /// thread-safe; the first caller's drain flag wins.
  void stop(bool drain);

  /// Async-signal-safe stop request (an eventfd write) — the SIGTERM path
  /// of dbspd. Pair with wait() from a normal thread.
  void request_stop_async(bool drain) noexcept;

  /// Async-signal-safe trace-dump request (dbspd's SIGUSR1 path): the io
  /// thread writes the flight-recorder JSON to options().trace_dump_path.
  /// A no-op when the owned PubSub runs without tracing.
  void request_trace_dump_async() noexcept;

  /// Blocks until the io thread has exited (after some stop request).
  void wait();

  /// True until a stop request has been carried out.
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// In-process introspection of the owned PubSub (scenario runner, tests).
  /// The PubSub itself is thread-safe; this pointer is valid only while
  /// running() — stop() destroys the instance. Returns nullptr afterwards.
  [[nodiscard]] PubSub* pubsub();

 private:
  struct Conn;
  struct Impl;

  /// The NetStats counters (io thread writes, stats() reads, all atomic).
  /// Held through a shared_ptr so the registry sync hook captures a weak
  /// reference: a scrape that outlives the server (the caller kept the
  /// registry's shared_ptr) then no-ops instead of reading freed memory.
  struct StatCells {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> slow_consumer_disconnects{0};
    std::atomic<std::uint64_t> subscriptions{0};
    std::atomic<std::uint64_t> notifications_enqueued{0};
    std::atomic<std::uint64_t> events_published{0};
    std::atomic<std::uint64_t> notifications_delivered{0};
    std::atomic<std::uint64_t> write_queue_high_water{0};
    std::atomic<std::uint64_t> draining{0};
  };

  NetServer(PubSub pubsub, NetServerOptions options);

  [[nodiscard]] Status init();
  void register_metrics_hook();
  void run_loop();
  /// io thread: writes the flight-recorder JSON to options_.trace_dump_path.
  void write_trace_dump();

  NetServerOptions options_;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;
  std::unique_ptr<Impl> impl_;
  /// The owned PubSub's registry (null when its metrics are disabled) —
  /// kept so the metrics verb and HTTP endpoint scrape without touching
  /// the facade, even while it is being drained.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  /// The owned PubSub's flight recorder (null when tracing is disabled);
  /// same rationale as registry_ — the traces verb, GET /traces, and the
  /// delivery spans all go through this pointer.
  std::shared_ptr<obs::FlightRecorder> recorder_;
  std::thread thread_;

  std::atomic<bool> running_{false};
  std::atomic<int> stop_request_{0};  ///< 0 none, 1 kill, 2 drain
  std::atomic<bool> trace_dump_requested_{false};

  Mutex join_mutex_;

  /// Process-lifecycle anchor for /healthz uptime.
  std::chrono::steady_clock::time_point start_time_{};

  std::shared_ptr<StatCells> cells_ = std::make_shared<StatCells>();
};

}  // namespace dbsp::net
