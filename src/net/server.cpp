#include "net/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "net/socket.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "store/format.hpp"

namespace dbsp::net {

namespace {

constexpr int kStopKill = 1;
constexpr int kStopDrain = 2;
constexpr std::size_t kReadChunk = 64 * 1024;

/// Scrapers are few and short-lived; cap them so a misbehaving one cannot
/// crowd out protocol connections' fd budget.
constexpr std::size_t kMaxHttpConns = 64;
constexpr std::size_t kMaxHttpRequestBytes = 8 * 1024;

/// One HTTP /metrics connection: accumulate the request until the header
/// terminator, write one response, close. Owned by the io thread; kept in
/// a map separate from the protocol connections so scrapes never hold a
/// graceful drain open (the drain's pending scan ignores them).
struct HttpConn {
  explicit HttpConn(Socket socket) : sock(std::move(socket)) {}

  Socket sock;
  std::string request;
  std::string out;
  std::size_t out_pos = 0;
  bool responded = false;

  [[nodiscard]] std::size_t pending_out() const { return out.size() - out_pos; }
};

[[nodiscard]] std::uint64_t unix_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// GET /buildinfo body — static facts about this binary, assembled once.
[[nodiscard]] std::string build_info_json() {
  std::string out = "{\"name\": \"dbspd\", \"wire_format_version\": ";
  out += std::to_string(static_cast<unsigned>(kWireFormatVersion));
  out += ", \"compiler\": \"";
#if defined(__clang__)
  out += "clang " __clang_version__;
#elif defined(__GNUC__)
  out += "gcc " __VERSION__;
#else
  out += "unknown";
#endif
  out += "\", \"cxx_standard\": " + std::to_string(__cplusplus / 100);
#ifdef NDEBUG
  out += ", \"assertions\": false}";
#else
  out += ", \"assertions\": true}";
#endif
  return out;
}

}  // namespace

NetServerOptions NetServerOptions::from_env() {
  NetServerOptions o;
  if (const char* host = std::getenv("DBSP_NET_HOST")) {  // NOLINT(concurrency-mt-unsafe)
    if (*host != '\0') o.host = host;
  }
  o.port = static_cast<std::uint16_t>(env_int("DBSP_NET_PORT", o.port));
  o.max_connections = static_cast<std::size_t>(
      env_int("DBSP_NET_MAX_CONNS", static_cast<std::int64_t>(o.max_connections)));
  o.max_frame_bytes = static_cast<std::size_t>(env_int(
      "DBSP_NET_MAX_FRAME", static_cast<std::int64_t>(o.max_frame_bytes)));
  o.max_write_queue_bytes = static_cast<std::size_t>(
      env_int("DBSP_NET_MAX_WRITE_QUEUE",
              static_cast<std::int64_t>(o.max_write_queue_bytes)));
  o.drain_timeout_ms = static_cast<int>(
      env_int("DBSP_NET_DRAIN_TIMEOUT_MS", o.drain_timeout_ms));
  o.metrics_port = static_cast<int>(
      env_int("DBSP_NET_METRICS_PORT", o.metrics_port));
  return o;
}

/// One connection's state machine: read-frame (assembler) -> dispatch ->
/// write-queue. Owned by, and touched only from, the io thread.
struct NetServer::Conn {
  explicit Conn(Socket socket, std::size_t max_frame)
      : sock(std::move(socket)), assembler(max_frame) {}

  Socket sock;
  FrameAssembler assembler;
  std::vector<std::uint8_t> out;  ///< pending reply/notification bytes
  std::size_t out_pos = 0;        ///< written prefix of `out`
  bool close_after_flush = false;
  bool stopped_reading = false;
  bool kill_slow = false;  ///< marked by on_notify, reaped after publish
  std::uint32_t interest = 0;  ///< current epoll interest mask
  /// Subscriptions owned by this connection; released on disconnect.
  std::unordered_map<std::uint64_t, SubscriptionHandle> subs;

  /// One traced notification waiting in this connection's write queue; it
  /// completes (and records its queue-wait/socket-write spans) when
  /// `total_written` passes `end_bytes`.
  struct DeliveryMarker {
    std::uint64_t end_bytes = 0;  ///< total_queued after the notify frame
    obs::TraceContext trace{};
    std::uint64_t frame_bytes = 0;
    std::uint64_t enqueue_unix_us = 0;
    std::chrono::steady_clock::time_point enqueue_steady{};
  };
  std::uint64_t total_queued = 0;   ///< lifetime bytes entering `out`
  std::uint64_t total_written = 0;  ///< lifetime bytes handed to the socket
  std::deque<DeliveryMarker> deliveries;

  [[nodiscard]] std::size_t pending_out() const { return out.size() - out_pos; }

  void queue(std::span<const std::uint8_t> bytes) {
    // Compact the written prefix before it dominates the buffer.
    if (out_pos > 0 && (out_pos == out.size() || out_pos >= 64 * 1024)) {
      out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(out_pos));
      out_pos = 0;
    }
    out.insert(out.end(), bytes.begin(), bytes.end());
    total_queued += bytes.size();
  }
};

struct NetServer::Impl {
  explicit Impl(PubSub pubsub_in) { pubsub.emplace(std::move(pubsub_in)); }

  std::optional<PubSub> pubsub;
  Socket listener;
  Socket metrics_listener;  ///< HTTP /metrics; invalid when disabled
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::unordered_map<int, std::unique_ptr<HttpConn>> http_conns;
  /// Live subscription id -> owning connection fd (adopt-exclusivity).
  std::unordered_map<std::uint64_t, int> owners;

  ~Impl() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

NetServer::NetServer(PubSub pubsub, NetServerOptions options)
    : options_(std::move(options)),
      impl_(std::make_unique<Impl>(std::move(pubsub))) {
  registry_ = impl_->pubsub->metrics_registry();
  recorder_ = impl_->pubsub->trace_recorder();
}

Result<std::unique_ptr<NetServer>> NetServer::start(PubSub pubsub,
                                                    NetServerOptions options) {
  std::unique_ptr<NetServer> server(
      new NetServer(std::move(pubsub), std::move(options)));
  if (Status s = server->init(); !s.ok()) return s;
  server->running_.store(true, std::memory_order_release);
  server->thread_ = std::thread([raw = server.get()] { raw->run_loop(); });
  return server;
}

Status NetServer::init() {
  auto listener = tcp_listen(options_.host, options_.port, options_.listen_backlog);
  if (!listener.ok()) return listener.status();
  auto port = local_port(listener.value().fd());
  if (!port.ok()) return port.status();
  port_ = port.value();
  if (Status s = set_nonblocking(listener.value().fd(), true); !s.ok()) return s;

  impl_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (impl_->epoll_fd < 0) {
    return Status::error(ErrorCode::kIoError,
                         std::string("epoll_create1: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  impl_->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl_->wake_fd < 0) {
    return Status::error(ErrorCode::kIoError,
                         std::string("eventfd: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  impl_->listener = std::move(listener).value();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->listener.fd();
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listener.fd(), &ev) != 0) {
    return Status::error(ErrorCode::kIoError, "epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = impl_->wake_fd;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->wake_fd, &ev) != 0) {
    return Status::error(ErrorCode::kIoError, "epoll_ctl(wake)");
  }
  if (options_.metrics_port >= 0) {
    if (options_.metrics_port > 65535) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "metrics_port is out of range");
    }
    auto mlistener =
        tcp_listen(options_.host, static_cast<std::uint16_t>(options_.metrics_port),
                   options_.listen_backlog);
    if (!mlistener.ok()) return mlistener.status();
    auto mport = local_port(mlistener.value().fd());
    if (!mport.ok()) return mport.status();
    metrics_port_ = mport.value();
    if (Status s = set_nonblocking(mlistener.value().fd(), true); !s.ok()) {
      return s;
    }
    impl_->metrics_listener = std::move(mlistener).value();
    ev.events = EPOLLIN;
    ev.data.fd = impl_->metrics_listener.fd();
    if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->metrics_listener.fd(),
                    &ev) != 0) {
      return Status::error(ErrorCode::kIoError, "epoll_ctl(metrics listener)");
    }
  }

  register_metrics_hook();
  cells_->subscriptions.store(impl_->pubsub->subscription_count(),
                              std::memory_order_relaxed);
  start_time_ = std::chrono::steady_clock::now();
  return Status();
}

void NetServer::register_metrics_hook() {
  if (registry_ == nullptr) return;
  auto& r = *registry_;
  // Series pointers are registry-stable; captured raw (the hook dies with
  // the registry, never after it). The cells go in through a weak_ptr so a
  // scrape racing server destruction no-ops. Counters come from atomics
  // that only ever grow, but sync_to keeps the exported series monotone
  // even if that ever changes; levels are gauges.
  auto* connections = &r.gauge("dbsp_net_connections");
  auto* accepted = &r.counter("dbsp_net_connections_accepted_total");
  auto* rejected = &r.counter("dbsp_net_connections_rejected_total");
  auto* frames_received = &r.counter("dbsp_net_frames_received_total");
  auto* frames_sent = &r.counter("dbsp_net_frames_sent_total");
  auto* bytes_received = &r.counter("dbsp_net_bytes_received_total");
  auto* bytes_sent = &r.counter("dbsp_net_bytes_sent_total");
  auto* protocol_errors = &r.counter("dbsp_net_protocol_errors_total");
  auto* slow_kills = &r.counter("dbsp_net_slow_consumer_disconnects_total");
  auto* subscriptions = &r.gauge("dbsp_net_subscriptions");
  auto* enqueued = &r.counter("dbsp_net_notifications_enqueued_total");
  auto* published = &r.counter("dbsp_net_events_published_total");
  auto* delivered = &r.counter("dbsp_net_notifications_delivered_total");
  auto* high_water = &r.gauge("dbsp_net_write_queue_high_water_bytes");
  auto* draining = &r.gauge("dbsp_net_draining");
  std::weak_ptr<StatCells> weak = cells_;
  r.add_hook([=]() {
    const auto c = weak.lock();
    if (c == nullptr) return;
    const auto load = [](const std::atomic<std::uint64_t>& v) {
      return v.load(std::memory_order_relaxed);
    };
    connections->set(static_cast<double>(load(c->connections)));
    accepted->sync_to(load(c->connections_accepted));
    rejected->sync_to(load(c->connections_rejected));
    frames_received->sync_to(load(c->frames_received));
    frames_sent->sync_to(load(c->frames_sent));
    bytes_received->sync_to(load(c->bytes_received));
    bytes_sent->sync_to(load(c->bytes_sent));
    protocol_errors->sync_to(load(c->protocol_errors));
    slow_kills->sync_to(load(c->slow_consumer_disconnects));
    subscriptions->set(static_cast<double>(load(c->subscriptions)));
    enqueued->sync_to(load(c->notifications_enqueued));
    published->sync_to(load(c->events_published));
    delivered->sync_to(load(c->notifications_delivered));
    high_water->set(static_cast<double>(load(c->write_queue_high_water)));
    draining->set(static_cast<double>(load(c->draining)));
  });
}

NetServer::~NetServer() { stop(/*drain=*/true); }

void NetServer::request_stop_async(bool drain) noexcept {
  int expected = 0;
  // First request wins; a kill overrides a pending drain but not vice versa.
  const int desired = drain ? kStopDrain : kStopKill;
  if (!stop_request_.compare_exchange_strong(expected, desired,
                                             std::memory_order_acq_rel) &&
      desired == kStopKill) {
    stop_request_.store(kStopKill, std::memory_order_release);
  }
  const std::uint64_t one = 1;
  // write() is async-signal-safe; short writes cannot happen on an eventfd.
  [[maybe_unused]] const ssize_t rc = ::write(impl_->wake_fd, &one, sizeof one);
}

void NetServer::request_trace_dump_async() noexcept {
  trace_dump_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc = ::write(impl_->wake_fd, &one, sizeof one);
}

void NetServer::stop(bool drain) {
  request_stop_async(drain);
  wait();
}

void NetServer::wait() {
  MutexLock lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

PubSub* NetServer::pubsub() {
  if (!running_.load(std::memory_order_acquire)) return nullptr;
  return impl_->pubsub ? &*impl_->pubsub : nullptr;
}

NetStats NetServer::stats() const {
  NetStats s;
  s.connections = cells_->connections.load(std::memory_order_relaxed);
  s.connections_accepted = cells_->connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected = cells_->connections_rejected.load(std::memory_order_relaxed);
  s.frames_received = cells_->frames_received.load(std::memory_order_relaxed);
  s.frames_sent = cells_->frames_sent.load(std::memory_order_relaxed);
  s.bytes_received = cells_->bytes_received.load(std::memory_order_relaxed);
  s.bytes_sent = cells_->bytes_sent.load(std::memory_order_relaxed);
  s.protocol_errors = cells_->protocol_errors.load(std::memory_order_relaxed);
  s.slow_consumer_disconnects =
      cells_->slow_consumer_disconnects.load(std::memory_order_relaxed);
  s.subscriptions = cells_->subscriptions.load(std::memory_order_relaxed);
  s.notifications_enqueued = cells_->notifications_enqueued.load(std::memory_order_relaxed);
  s.events_published = cells_->events_published.load(std::memory_order_relaxed);
  s.notifications_delivered =
      cells_->notifications_delivered.load(std::memory_order_relaxed);
  s.write_queue_high_water = cells_->write_queue_high_water.load(std::memory_order_relaxed);
  s.draining = cells_->draining.load(std::memory_order_relaxed);
  return s;
}

// --- io thread ---------------------------------------------------------------
// Everything below runs exclusively on the io thread.

void NetServer::write_trace_dump() {
  if (recorder_ == nullptr) {
    obs::LogEvent(obs::LogLevel::kWarn, "net",
                  "trace dump skipped: tracing disabled");
    return;
  }
  const std::string json = obs::traces_json(*recorder_);
  std::FILE* file = std::fopen(options_.trace_dump_path.c_str(), "w");
  if (file == nullptr) {
    obs::LogEvent(obs::LogLevel::kError, "net", "trace dump open failed")
        .kv("path", options_.trace_dump_path)
        .kv("errno", errno);
    return;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  obs::LogEvent(obs::LogLevel::kInfo, "net", "trace dump written")
      .kv("path", options_.trace_dump_path)
      .kv("bytes", static_cast<std::uint64_t>(written));
}

void NetServer::run_loop() {
  auto& impl = *impl_;
  const auto now_ms = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  // The io thread's span collector for kServerDispatch (one in-flight
  // request at a time — the thread dispatches frames serially).
  obs::TraceBuilder server_trace;

  const auto update_subs_counter = [&] {
    cells_->subscriptions.store(impl.pubsub ? impl.pubsub->subscription_count() : 0,
                         std::memory_order_relaxed);
  };

  const auto set_interest = [&](Conn& conn) {
    std::uint32_t want = 0;
    if (!conn.stopped_reading && !conn.close_after_flush) want |= EPOLLIN;
    if (conn.pending_out() > 0) want |= EPOLLOUT;
    if (want == conn.interest) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = conn.sock.fd();
    (void)::epoll_ctl(impl.epoll_fd, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
    conn.interest = want;
  };

  // Destroys a connection: subscriptions are released through their RAII
  // handles (durably logged while the PubSub is alive; inert no-ops after
  // shutdown has destroyed it), the fd leaves the epoll set, and the
  // socket closes. Never called from inside a notification callback.
  const auto destroy_conn = [&](int fd) {
    const auto it = impl.conns.find(fd);
    if (it == impl.conns.end()) return;
    for (auto& [id, handle] : it->second->subs) {
      impl.owners.erase(id);
      (void)handle.release();
    }
    (void)::epoll_ctl(impl.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    impl.conns.erase(it);
    cells_->connections.store(impl.conns.size(), std::memory_order_relaxed);
    update_subs_counter();
  };

  const auto enqueue = [&](Conn& conn, std::span<const std::uint8_t> frame) {
    conn.queue(frame);
    cells_->frames_sent.fetch_add(1, std::memory_order_relaxed);
    const auto pending = static_cast<std::uint64_t>(conn.pending_out());
    std::uint64_t seen = cells_->write_queue_high_water.load(std::memory_order_relaxed);
    if (pending > seen) {
      cells_->write_queue_high_water.store(pending, std::memory_order_relaxed);
    }
  };

  // Completes delivery markers whose bytes fully entered the socket:
  // records one trace entry per traced notification with a queue-wait span
  // (enqueue -> this flush) and a socket-write span (this flush -> done).
  // Kept when head-sampled or tail-admitted as slow, like any trace.
  const auto complete_deliveries =
      [&](Conn& conn, std::chrono::steady_clock::time_point flush_start) {
        if (recorder_ == nullptr) return;
        const auto now = std::chrono::steady_clock::now();
        while (!conn.deliveries.empty() &&
               conn.deliveries.front().end_bytes <= conn.total_written) {
          const Conn::DeliveryMarker m = conn.deliveries.front();
          conn.deliveries.pop_front();
          const auto us_since = [&m](std::chrono::steady_clock::time_point t) {
            return t <= m.enqueue_steady
                       ? std::uint64_t{0}
                       : static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::microseconds>(
                                 t - m.enqueue_steady)
                                 .count());
          };
          const std::uint64_t total_us = us_since(now);
          if (!m.trace.sampled && !recorder_->admit_slow(total_us)) continue;
          const std::uint64_t wait_us = std::min(us_since(flush_start), total_us);
          obs::Trace t;
          t.trace_id = m.trace.trace_id;
          t.parent_span = m.trace.parent_span;
          t.sampled = m.trace.sampled;
          t.start_unix_us = m.enqueue_unix_us;
          t.duration_us = total_us;
          t.spans.push_back({obs::TraceStage::kQueueWait, obs::next_span_id(),
                             m.trace.parent_span, 0, wait_us, 0});
          t.spans.push_back({obs::TraceStage::kSocketWrite, obs::next_span_id(),
                             m.trace.parent_span, wait_us, total_us - wait_us,
                             m.frame_bytes});
          recorder_->record(t);
        }
      };

  // Non-blocking flush of one connection's write queue. Returns false when
  // the connection died mid-write (already destroyed).
  const auto flush_writes = [&](int fd) -> bool {
    const auto it = impl.conns.find(fd);
    if (it == impl.conns.end()) return false;
    Conn& conn = *it->second;
    const auto flush_start = std::chrono::steady_clock::now();
    while (conn.pending_out() > 0) {
      const ssize_t n =
          ::send(fd, conn.out.data() + conn.out_pos, conn.pending_out(),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        conn.total_written += static_cast<std::uint64_t>(n);
        cells_->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      destroy_conn(fd);
      return false;
    }
    complete_deliveries(conn, flush_start);
    if (conn.pending_out() == 0 && conn.close_after_flush) {
      destroy_conn(fd);
      return false;
    }
    set_interest(conn);
    return true;
  };

  // A protocol-level failure: answer with one kError frame, stop reading,
  // and close once the error has been flushed. The connection is not
  // recoverable — framing may be lost.
  const auto protocol_error = [&](Conn& conn, const std::string& message) {
    cells_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    static obs::LogRateLimit rate(/*max_per_sec=*/10);
    if (rate.allow()) {
      obs::LogEvent(obs::LogLevel::kWarn, "net", "protocol error")
          .kv("fd", conn.sock.fd())
          .kv("error", message)
          .kv("suppressed", rate.suppressed());
    }
    try {
      enqueue(conn, make_error_frame(ErrorCode::kInvalidArgument, message));
    } catch (const WireError&) {
      // Unencodable message (absurdly long) — just close.
    }
    conn.stopped_reading = true;
    conn.close_after_flush = true;
  };

  // Application-level failure: error frame, connection stays usable.
  const auto status_error = [&](Conn& conn, const Status& status) {
    enqueue(conn, make_error_frame(status.code(), status.message()));
  };

  // Connections that received notification bytes during the current
  // dispatch; their write queues are flushed once the publish returns.
  std::vector<int> dirty;

  // The notification sink: runs under the PubSub facade lock during
  // publish, so it only appends bytes (or marks a slow consumer for the
  // deferred reap) — it must not touch the facade or destroy connections.
  const auto on_notify = [&](int fd, const Notification& n) {
    const auto it = impl.conns.find(fd);
    if (it == impl.conns.end()) return;
    Conn& conn = *it->second;
    if (conn.close_after_flush || conn.kill_slow) return;
    const auto frame = make_notify_frame(n.subscription.value(), n.seq, n.event,
                                         n.trace, n.published_unix_us);
    if (conn.pending_out() + frame.size() > options_.max_write_queue_bytes) {
      conn.kill_slow = true;
      return;
    }
    enqueue(conn, frame);
    if (n.trace.active() && recorder_ != nullptr) {
      conn.deliveries.push_back({conn.total_queued, n.trace, frame.size(),
                                 unix_now_us(),
                                 std::chrono::steady_clock::now()});
    }
    dirty.push_back(fd);
    cells_->notifications_enqueued.fetch_add(1, std::memory_order_relaxed);
  };

  // Deferred slow-consumer reap — runs after the publish that marked them
  // has released the facade lock.
  const auto reap_slow_consumers = [&] {
    std::vector<int> victims;
    for (const auto& [fd, conn] : impl.conns) {
      if (conn->kill_slow) victims.push_back(fd);
    }
    for (const int fd : victims) {
      cells_->slow_consumer_disconnects.fetch_add(1, std::memory_order_relaxed);
      static obs::LogRateLimit rate(/*max_per_sec=*/10);
      if (rate.allow()) {
        obs::LogEvent(obs::LogLevel::kWarn, "net", "slow consumer disconnected")
            .kv("fd", fd)
            .kv("max_write_queue_bytes",
                static_cast<std::uint64_t>(options_.max_write_queue_bytes))
            .kv("suppressed", rate.suppressed());
      }
      destroy_conn(fd);
    }
  };

  const auto handle_frame = [&](int fd, std::span<const std::uint8_t> body) {
    const auto it = impl.conns.find(fd);
    if (it == impl.conns.end()) return;
    Conn& conn = *it->second;
    cells_->frames_received.fetch_add(1, std::memory_order_relaxed);
    PubSub& pubsub = *impl.pubsub;
    try {
      WireReader r(body);
      (void)decode_wire_header(r);
      const MsgType type = checked_msg_type(r.get_u8());
      const auto require_exhausted = [&r] {
        if (!r.exhausted()) throw WireError("net: trailing bytes after payload");
      };
      switch (type) {
        case MsgType::kHello: {
          require_exhausted();
          WireWriter payload;
          store::encode_schema(pubsub.schema(), payload);
          enqueue(conn, make_frame(MsgType::kHelloReply, payload));
          break;
        }
        case MsgType::kSubscribe: {
          std::unique_ptr<Node> tree = decode_tree(r);
          require_exhausted();
          if (Status v = validate_tree(*tree, pubsub.schema()); !v.ok()) {
            status_error(conn, v);
            break;
          }
          auto subscribed = pubsub.subscribe(
              std::move(tree),
              [&on_notify, fd](const Notification& n) { on_notify(fd, n); });
          if (!subscribed.ok()) {
            status_error(conn, subscribed.status());
            break;
          }
          const std::uint64_t id = subscribed.value().id().value();
          conn.subs.emplace(id, std::move(subscribed).value());
          impl.owners.emplace(id, fd);
          update_subs_counter();
          enqueue(conn, make_u64_frame(MsgType::kSubscribeReply, id));
          break;
        }
        case MsgType::kUnsubscribe: {
          const std::uint64_t id = r.get_u64();
          require_exhausted();
          const auto sub_it = conn.subs.find(id);
          if (sub_it == conn.subs.end()) {
            status_error(conn,
                         Status::error(ErrorCode::kNotFound,
                                       "subscription not owned by this connection"));
            break;
          }
          const Status released = sub_it->second.release();
          conn.subs.erase(sub_it);
          impl.owners.erase(id);
          update_subs_counter();
          if (!released.ok()) {
            status_error(conn, released);
            break;
          }
          enqueue(conn, make_empty_frame(MsgType::kUnsubscribeReply));
          break;
        }
        case MsgType::kAdopt: {
          const std::uint64_t id = r.get_u64();
          require_exhausted();
          if (id >= SubscriptionId::kInvalid) {
            status_error(conn, Status::error(ErrorCode::kInvalidArgument,
                                             "subscription id out of range"));
            break;
          }
          if (impl.owners.contains(id)) {
            status_error(conn,
                         Status::error(ErrorCode::kFailedPrecondition,
                                       "subscription already owned by a connection"));
            break;
          }
          auto adopted = pubsub.adopt(
              SubscriptionId(static_cast<SubscriptionId::value_type>(id)),
              [&on_notify, fd](const Notification& n) { on_notify(fd, n); });
          if (!adopted.ok()) {
            status_error(conn, adopted.status());
            break;
          }
          conn.subs.emplace(id, std::move(adopted).value());
          impl.owners.emplace(id, fd);
          update_subs_counter();
          enqueue(conn, make_u64_frame(MsgType::kAdoptReply, id));
          break;
        }
        case MsgType::kPublish: {
          const Event event = decode_event(r);
          const obs::TraceContext ctx = decode_trace_context_opt(r);
          require_exhausted();
          if (Status v = validate_event(event, pubsub.schema()); !v.ok()) {
            status_error(conn, v);
            break;
          }
          std::size_t matched = 0;
          if (recorder_ != nullptr && ctx.active()) {
            // The client traced this publish: record a server-side entry
            // whose kServerDispatch span parents the facade's spans and
            // the delivery entries (same trace id across all of them).
            server_trace.begin(ctx);
            {
              obs::ScopedSpan span(&server_trace,
                                   obs::TraceStage::kServerDispatch);
              obs::TraceContext child = ctx;
              if (span.span_id() != 0) child.parent_span = span.span_id();
              matched = pubsub.publish(event, child);
              span.set_detail(matched);
            }
            (void)server_trace.finish(*recorder_);
          } else {
            matched = pubsub.publish(event, ctx);
          }
          cells_->events_published.fetch_add(1, std::memory_order_relaxed);
          cells_->notifications_delivered.fetch_add(matched, std::memory_order_relaxed);
          enqueue(conn, make_u64_frame(MsgType::kPublishReply, matched));
          break;
        }
        case MsgType::kPublishBatch: {
          const std::uint32_t count = r.get_u32();
          std::vector<Event> events;
          events.reserve(std::min<std::size_t>(count, r.remaining()));
          for (std::uint32_t i = 0; i < count; ++i) {
            events.push_back(decode_event(r));
          }
          require_exhausted();
          for (const Event& e : events) {
            if (Status v = validate_event(e, pubsub.schema()); !v.ok()) {
              status_error(conn, v);
              events.clear();
              break;
            }
          }
          if (events.empty() && count != 0) break;  // validation failed
          const std::uint64_t total = pubsub.publish_batch(events);
          cells_->events_published.fetch_add(events.size(), std::memory_order_relaxed);
          cells_->notifications_delivered.fetch_add(total, std::memory_order_relaxed);
          enqueue(conn, make_u64_frame(MsgType::kPublishBatchReply, total));
          break;
        }
        case MsgType::kPing: {
          const std::uint64_t token = r.get_u64();
          require_exhausted();
          enqueue(conn, make_u64_frame(MsgType::kPong, token));
          break;
        }
        case MsgType::kStats: {
          require_exhausted();
          WireWriter payload;
          encode_stats(stats(), payload);
          enqueue(conn, make_frame(MsgType::kStatsReply, payload));
          break;
        }
        case MsgType::kMetrics: {
          require_exhausted();
          WireWriter payload;
          // Empty scrape (not an error) when the PubSub runs without
          // metrics — the verb stays answerable either way.
          encode_metrics(registry_ ? registry_->snapshot()
                                   : obs::MetricsSnapshot{},
                         payload);
          enqueue(conn, make_frame(MsgType::kMetricsReply, payload));
          break;
        }
        case MsgType::kTraces: {
          require_exhausted();
          WireWriter payload;
          // Empty snapshot (not an error) when tracing is off, mirroring
          // the metrics verb.
          WireTraces wt;
          if (recorder_ != nullptr) {
            wt.traces = recorder_->snapshot();
            wt.recorded_total = recorder_->recorded_total();
            wt.dropped_total = recorder_->dropped_total();
          }
          encode_traces(wt, payload);
          enqueue(conn, make_frame(MsgType::kTracesReply, payload));
          break;
        }
        default:
          throw WireError("net: unexpected non-request message type");
      }
    } catch (const WireError& e) {
      protocol_error(conn, e.what());
    }
    reap_slow_consumers();
    // Flush notification bytes enqueued toward *other* connections during
    // this dispatch (the current fd is flushed by its own read handler).
    for (const int dfd : dirty) {
      if (dfd != fd) (void)flush_writes(dfd);
    }
    dirty.clear();
  };

  const auto handle_readable = [&](int fd) {
    std::uint8_t chunk[kReadChunk];
    while (true) {
      const auto it = impl.conns.find(fd);
      if (it == impl.conns.end()) return;
      Conn& conn = *it->second;
      if (conn.stopped_reading) break;  // fall through to the flush
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, MSG_DONTWAIT);
      if (n == 0) {
        destroy_conn(fd);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        destroy_conn(fd);
        return;
      }
      cells_->bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      try {
        conn.assembler.push(std::span<const std::uint8_t>(
            chunk, static_cast<std::size_t>(n)));
        while (true) {
          auto frame = conn.assembler.next();
          if (!frame.has_value()) break;
          handle_frame(fd, *frame);
          if (!impl.conns.contains(fd)) return;  // died while dispatching
          if (it->second->stopped_reading) break;
        }
      } catch (const WireError& e) {
        // Framing-level garbage (zero/oversized length prefix).
        protocol_error(conn, e.what());
      }
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
    }
    if (const auto it = impl.conns.find(fd); it != impl.conns.end()) {
      (void)flush_writes(fd);
    }
  };

  // --- HTTP /metrics (scrape-only sideband on the same epoll loop) -----------

  const auto destroy_http = [&](int fd) {
    (void)::epoll_ctl(impl.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    impl.http_conns.erase(fd);
  };

  // Flushes (and, once the response is fully written, closes) one scrape
  // connection. HTTP connections are one-shot: request in, response out.
  const auto flush_http = [&](int fd) {
    const auto it = impl.http_conns.find(fd);
    if (it == impl.http_conns.end()) return;
    HttpConn& conn = *it->second;
    while (conn.pending_out() > 0) {
      const ssize_t n =
          ::send(fd, conn.out.data() + conn.out_pos, conn.pending_out(),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        epoll_event ev{};
        ev.events = EPOLLOUT;
        ev.data.fd = fd;
        (void)::epoll_ctl(impl.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      destroy_http(fd);
      return;
    }
    destroy_http(fd);  // response fully written: close
  };

  const auto handle_http = [&](int fd, std::uint32_t mask) {
    const auto it = impl.http_conns.find(fd);
    if (it == impl.http_conns.end()) return;
    HttpConn& conn = *it->second;
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      destroy_http(fd);
      return;
    }
    if ((mask & EPOLLOUT) != 0) {
      flush_http(fd);
      return;
    }
    char chunk[4096];
    while (!conn.responded) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, MSG_DONTWAIT);
      if (n == 0) {
        destroy_http(fd);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        destroy_http(fd);
        return;
      }
      conn.request.append(chunk, static_cast<std::size_t>(n));
      if (conn.request.size() > kMaxHttpRequestBytes) {
        destroy_http(fd);
        return;
      }
      if (conn.request.find("\r\n\r\n") == std::string::npos) continue;
      const std::string line = conn.request.substr(0, conn.request.find("\r\n"));
      std::string status = "404 Not Found";
      std::string content_type = "text/plain; charset=utf-8";
      std::string body = "not found\n";
      if (line.starts_with("GET /metrics ") || line.starts_with("GET /metrics?")) {
        status = "200 OK";
        content_type = obs::prometheus_content_type();
        body = registry_ ? obs::to_prometheus(registry_->snapshot())
                         : std::string();
      } else if (line.starts_with("GET /traces ") ||
                 line.starts_with("GET /traces?")) {
        status = "200 OK";
        content_type = "application/json; charset=utf-8";
        body = recorder_ ? obs::traces_json(*recorder_)
                         : obs::traces_json({}, 0, 0);
      } else if (line.starts_with("GET /healthz ") ||
                 line.starts_with("GET /healthz?")) {
        status = "200 OK";
        content_type = "application/json; charset=utf-8";
        const auto uptime_s =
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start_time_)
                .count();
        body = "{\"status\": \"ok\", \"draining\": " +
               std::to_string(cells_->draining.load(std::memory_order_relaxed)) +
               ", \"uptime_s\": " + std::to_string(uptime_s) +
               ", \"connections\": " +
               std::to_string(cells_->connections.load(std::memory_order_relaxed)) +
               "}";
      } else if (line.starts_with("GET /buildinfo ") ||
                 line.starts_with("GET /buildinfo?")) {
        status = "200 OK";
        content_type = "application/json; charset=utf-8";
        body = build_info_json();
      }
      conn.out = "HTTP/1.1 " + status +
                 "\r\nContent-Type: " + content_type +
                 "\r\nContent-Length: " + std::to_string(body.size()) +
                 "\r\nConnection: close\r\n\r\n" + body;
      conn.responded = true;
    }
    flush_http(fd);
  };

  // Accepts scrape connections. Not gated on `stopping`: /metrics keeps
  // answering while a graceful drain flushes the protocol connections.
  const auto accept_metrics = [&] {
    while (true) {
      const int fd = ::accept4(impl.metrics_listener.fd(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (impl.http_conns.size() >= kMaxHttpConns) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<HttpConn>(Socket(fd));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        continue;  // Socket closes with `conn` going out of scope.
      }
      impl.http_conns.emplace(fd, std::move(conn));
    }
  };

  const auto accept_ready = [&] {
    while (true) {
      const int fd = ::accept4(impl.listener.fd(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure; stay up
      }
      if (impl.conns.size() >= options_.max_connections) {
        cells_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<Conn>(Socket(fd), options_.max_frame_bytes);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        continue;  // Socket closes with `conn` going out of scope.
      }
      conn->interest = EPOLLIN;
      impl.conns.emplace(fd, std::move(conn));
      cells_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
      cells_->connections.store(impl.conns.size(), std::memory_order_relaxed);
    }
  };

  // --- The loop --------------------------------------------------------------
  bool stopping = false;
  bool drain = false;
  long long drain_deadline = 0;
  epoll_event events[256];
  while (true) {
    const int timeout = stopping ? 20 : -1;
    const int n = ::epoll_wait(impl.epoll_fd, events, 256, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; shut down hard
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == impl.wake_fd) {
        std::uint64_t drainv = 0;
        [[maybe_unused]] const ssize_t rc =
            ::read(impl.wake_fd, &drainv, sizeof drainv);
        continue;  // the stop flag is checked below
      }
      if (fd == impl.listener.fd()) {
        if (!stopping) accept_ready();
        continue;
      }
      if (impl.metrics_listener.valid() && fd == impl.metrics_listener.fd()) {
        accept_metrics();
        continue;
      }
      if (impl.http_conns.contains(fd)) {
        handle_http(fd, mask);
        continue;
      }
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        destroy_conn(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) handle_readable(fd);
      if ((mask & EPOLLOUT) != 0) (void)flush_writes(fd);
    }

    if (trace_dump_requested_.exchange(false, std::memory_order_acq_rel)) {
      write_trace_dump();
    }

    if (!stopping) {
      const int req = stop_request_.load(std::memory_order_acquire);
      if (req != 0) {
        stopping = true;
        drain = req == kStopDrain;
        obs::LogEvent(obs::LogLevel::kInfo, "net", "stop requested")
            .kv("drain", drain)
            .kv("connections",
                static_cast<std::uint64_t>(impl.conns.size()));
        cells_->draining.store(1, std::memory_order_relaxed);
        (void)::epoll_ctl(impl.epoll_fd, EPOLL_CTL_DEL, impl.listener.fd(),
                          nullptr);
        impl.listener.close();
        for (auto& [fd, conn] : impl.conns) {
          conn->stopped_reading = true;
          set_interest(*conn);
        }
        drain_deadline = now_ms() + options_.drain_timeout_ms;
        if (!drain) break;
      }
    }
    if (stopping && drain) {
      // A kill request arriving mid-drain cuts the flush short.
      if (stop_request_.load(std::memory_order_acquire) == kStopKill) break;
      bool pending = false;
      for (const auto& [fd, conn] : impl.conns) {
        if (conn->pending_out() > 0) {
          pending = true;
          break;
        }
      }
      if (!pending || now_ms() >= drain_deadline) break;
    }
  }

  // Shutdown epilogue (still on the io thread): checkpoint on a drained
  // graceful stop, then destroy the PubSub *before* the connections so the
  // handle destructors are inert — a daemon shutdown must never
  // durably unsubscribe its clients.
  if (drain && impl.pubsub && impl.pubsub->durable()) {
    (void)impl.pubsub->checkpoint();
  }
  impl.pubsub.reset();
  cells_->subscriptions.store(0, std::memory_order_relaxed);
  impl.owners.clear();
  impl.conns.clear();
  impl.http_conns.clear();
  impl.metrics_listener.close();
  cells_->connections.store(0, std::memory_order_relaxed);
  cells_->draining.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
}

}  // namespace dbsp::net
