#include "broker/simnet.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbsp {

SimulatedNetwork::SimulatedNetwork(std::size_t broker_count)
    : SimulatedNetwork(broker_count, Config{}) {}

SimulatedNetwork::SimulatedNetwork(std::size_t broker_count, Config config)
    : config_(config),
      adjacency_(broker_count),
      link_stats_(broker_count * broker_count) {}

void SimulatedNetwork::connect(BrokerId a, BrokerId b) {
  if (a == b) throw std::invalid_argument("simnet: self link");
  if (a.value() >= adjacency_.size() || b.value() >= adjacency_.size()) {
    throw std::out_of_range("simnet: unknown broker");
  }
  if (connected(a, b)) return;
  adjacency_[a.value()].push_back(b);
  adjacency_[b.value()].push_back(a);
}

bool SimulatedNetwork::connected(BrokerId a, BrokerId b) const {
  const auto& n = adjacency_.at(a.value());
  return std::find(n.begin(), n.end(), b) != n.end();
}

const std::vector<BrokerId>& SimulatedNetwork::neighbors(BrokerId b) const {
  return adjacency_.at(b.value());
}

std::size_t SimulatedNetwork::link_index(BrokerId from, BrokerId to) const {
  return from.value() * adjacency_.size() + to.value();
}

void SimulatedNetwork::send(BrokerId from, BrokerId to, Message message) {
  if (!connected(from, to)) throw std::invalid_argument("simnet: send on missing link");
  const std::size_t bytes = message.wire_size_bytes();
  auto account = [&](TrafficStats& s) {
    ++s.messages;
    s.bytes += bytes;
    if (message.type == Message::Type::Event) {
      ++s.event_messages;
    } else {
      ++s.control_messages;
    }
    s.wire_seconds += static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec +
                      config_.latency_sec;
  };
  account(link_stats_[link_index(from, to)]);
  account(total_);
  in_flight_.push_back({from, to, std::move(message)});
}

std::optional<SimulatedNetwork::Delivery> SimulatedNetwork::pop() {
  if (in_flight_.empty()) return std::nullopt;
  Delivery d = std::move(in_flight_.front());
  in_flight_.pop_front();
  return d;
}

const SimulatedNetwork::TrafficStats& SimulatedNetwork::link(BrokerId from,
                                                             BrokerId to) const {
  return link_stats_.at(link_index(from, to));
}

void SimulatedNetwork::reset_stats() {
  std::fill(link_stats_.begin(), link_stats_.end(), TrafficStats{});
  total_ = {};
}

}  // namespace dbsp
