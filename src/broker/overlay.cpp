#include "broker/overlay.hpp"

#include <numeric>
#include <stdexcept>

namespace dbsp {

Overlay::Topology Overlay::line(std::size_t brokers) {
  Topology t;
  for (std::size_t i = 0; i + 1 < brokers; ++i) t.emplace_back(i, i + 1);
  return t;
}

Overlay::Topology Overlay::star(std::size_t brokers) {
  Topology t;
  for (std::size_t i = 1; i < brokers; ++i) t.emplace_back(0, i);
  return t;
}

Overlay::Overlay(const Schema& schema, std::size_t brokers, const Topology& topology,
                 SimulatedNetwork::Config net_config,
                 ShardedEngineOptions engine_options)
    : net_(brokers, net_config) {
  if (brokers == 0) throw std::invalid_argument("overlay: no brokers");
  // A forest on n nodes has fewer than n edges; with connectivity implied
  // by use this rejects cycles (subscription flooding would live-lock).
  if (topology.size() >= brokers) {
    throw std::invalid_argument("overlay: topology has a cycle");
  }
  brokers_.reserve(brokers);
  for (std::size_t i = 0; i < brokers; ++i) {
    brokers_.push_back(std::make_unique<Broker>(
        BrokerId(static_cast<BrokerId::value_type>(i)), schema, net_, engine_options));
  }
  for (const auto& [a, b] : topology) {
    net_.connect(BrokerId(static_cast<BrokerId::value_type>(a)),
                 BrokerId(static_cast<BrokerId::value_type>(b)));
  }
}

void Overlay::enable_aggregation(agg::AggregatorOptions options) {
  for (auto& b : brokers_) b->enable_aggregation(options);
}

void Overlay::subscribe(BrokerId at, ClientId client, SubscriptionId id,
                        std::unique_ptr<Node> tree) {
  broker(at).subscribe_local(id, client, std::move(tree));
  pump();
}

void Overlay::unsubscribe(BrokerId at, SubscriptionId id) {
  broker(at).unsubscribe_local(id);
  pump();
}

std::uint64_t Overlay::publish(BrokerId at, const Event& event) {
  return publish(at, event, obs::TraceContext{});
}

std::uint64_t Overlay::publish(BrokerId at, const Event& event,
                               obs::TraceContext context) {
  const std::uint64_t seq = next_event_seq_++;
  broker(at).publish_local(event, seq, context);
  pump();
  return seq;
}

void Overlay::attach_trace_recorder(
    std::shared_ptr<obs::FlightRecorder> recorder) {
  for (auto& b : brokers_) b->attach_trace_recorder(recorder);
}

void Overlay::pump() {
  while (auto delivery = net_.pop()) {
    broker(delivery->to).handle(delivery->from, delivery->message);
  }
}

std::uint64_t Overlay::total_notifications() const {
  std::uint64_t total = 0;
  for (const auto& b : brokers_) total += b->notifications_delivered();
  return total;
}

double Overlay::total_filter_seconds() const {
  double total = 0.0;
  for (const auto& b : brokers_) total += b->filter_seconds();
  return total;
}

std::size_t Overlay::total_remote_associations() const {
  std::size_t total = 0;
  for (const auto& b : brokers_) total += b->remote_association_count();
  return total;
}

void Overlay::reset_metrics() {
  for (auto& b : brokers_) b->reset_metrics();
  net_.reset_stats();
}

void Overlay::set_record_notifications(bool on) {
  for (auto& b : brokers_) b->set_record_notifications(on);
}

}  // namespace dbsp
