#pragma once

#include <memory>
#include <vector>

#include "broker/broker.hpp"
#include "broker/simnet.hpp"
#include "event/schema.hpp"

namespace dbsp {

/// An acyclic broker overlay driven to quiescence after every external
/// stimulus (subscribe/publish) — the synchronous simulation mode used by
/// the distributed experiments. The line topology of the paper's §4 is the
/// default; arbitrary acyclic topologies are supported.
class Overlay {
 public:
  /// Edges as (a, b) broker-index pairs. Must form a forest (checked).
  using Topology = std::vector<std::pair<std::size_t, std::size_t>>;

  /// B0 - B1 - ... - B(n-1), the paper's 5-broker line for n = 5.
  [[nodiscard]] static Topology line(std::size_t brokers);
  /// One center connected to all others.
  [[nodiscard]] static Topology star(std::size_t brokers);

  /// `engine_options` configures every broker's sharded matching engine
  /// (default: auto shard count from DBSP_SHARDS / hardware concurrency).
  Overlay(const Schema& schema, std::size_t brokers, const Topology& topology,
          SimulatedNetwork::Config net_config = {},
          ShardedEngineOptions engine_options = {});

  /// Switches every broker to aggregated summary routing (src/agg/):
  /// subscriptions stay at their home broker, only subgroup summaries are
  /// flooded, and events travel along admitting summaries. Must run before
  /// any subscription enters the overlay (throws std::logic_error
  /// otherwise, from the first non-empty broker).
  void enable_aggregation(agg::AggregatorOptions options = {});

  /// Registers a client subscription at `at` and floods it through the
  /// overlay (subscription forwarding) until quiescence.
  void subscribe(BrokerId at, ClientId client, SubscriptionId id,
                 std::unique_ptr<Node> tree);

  /// Cancels a subscription at its home broker and floods the
  /// unsubscription until quiescence.
  void unsubscribe(BrokerId at, SubscriptionId id);

  /// Publishes an event at `at` and routes it until quiescence. Returns the
  /// event's global sequence number.
  std::uint64_t publish(BrokerId at, const Event& event);

  /// Publishes under an explicit trace context (see
  /// Broker::publish_local(event, seq, context)).
  std::uint64_t publish(BrokerId at, const Event& event,
                        obs::TraceContext context);

  /// Attaches one shared flight recorder to every broker: each overlay hop
  /// of a traced event then records an overlay_hop entry under the event's
  /// trace id. Pass nullptr to detach.
  void attach_trace_recorder(std::shared_ptr<obs::FlightRecorder> recorder);

  [[nodiscard]] Broker& broker(BrokerId id) { return *brokers_.at(id.value()); }
  [[nodiscard]] const Broker& broker(BrokerId id) const { return *brokers_.at(id.value()); }
  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] SimulatedNetwork& network() { return net_; }
  [[nodiscard]] const SimulatedNetwork& network() const { return net_; }

  // --- Aggregated metrics --------------------------------------------------
  [[nodiscard]] std::uint64_t total_notifications() const;
  /// Sum of per-broker CPU filtering seconds.
  [[nodiscard]] double total_filter_seconds() const;
  /// Remote predicate/subscription associations over all brokers.
  [[nodiscard]] std::size_t total_remote_associations() const;
  void reset_metrics();
  void set_record_notifications(bool on);

 private:
  /// Delivers in-flight messages until the network is idle.
  void pump();

  SimulatedNetwork net_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::uint64_t next_event_seq_ = 0;
};

}  // namespace dbsp
