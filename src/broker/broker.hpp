#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/timer.hpp"
#include "broker/simnet.hpp"
#include "core/sharded_engine.hpp"
#include "routing/routing_table.hpp"

namespace dbsp {

class ShardedPruningSet;

/// A content-based broker: routing table + sharded counting-matcher engine
/// + forwarding logic over the simulated network (subscription-forwarding
/// routing on an acyclic overlay, §2.1).
///
/// The filter table is a ShardedEngine over counting matchers; the shard
/// count comes from `engine_options` (default: DBSP_SHARDS / hardware
/// concurrency). Callers running pruning over this broker's entries build
/// a ShardedPruningSet over engine() and attach it with set_pruning(), and
/// the broker then keeps per-shard pruning state in sync under churn.
///
/// Notifications are decided by *local* entries, which stay unpruned, so
/// end-to-end delivery is exact regardless of how remote entries were
/// pruned; pruning remote entries can only add transit traffic that the
/// next broker post-filters.
class Broker {
 public:
  Broker(BrokerId id, const Schema& schema, SimulatedNetwork& net,
         ShardedEngineOptions engine_options = {});

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Registers a subscription of a directly connected client and forwards
  /// it to all neighbors.
  void subscribe_local(SubscriptionId id, ClientId client, std::unique_ptr<Node> tree);

  /// Cancels a local client's subscription and floods the unsubscription.
  /// No specialized handling vs un-optimized routing is needed (§2.2):
  /// every broker simply drops its (possibly pruned) entry, and an
  /// attached pruning set is released automatically.
  void unsubscribe_local(SubscriptionId id);

  /// Publishes an event received from a directly connected publisher.
  void publish_local(const Event& event, std::uint64_t seq);

  /// Delivers one network message to this broker.
  void handle(BrokerId from, const Message& message);

  [[nodiscard]] BrokerId id() const { return id_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }
  /// The sharded filter engine holding this broker's (possibly pruned)
  /// routing entries.
  [[nodiscard]] ShardedEngine& engine() { return engine_; }
  [[nodiscard]] const ShardedEngine& engine() const { return engine_; }

  /// Remote (prunable) subscriptions — the pruning engine's inputs.
  [[nodiscard]] std::vector<Subscription*> remote_subscriptions();

  /// Attaches the pruning set covering this broker's remote entries (or
  /// nullptr to detach). While attached, the broker keeps it in sync under
  /// churn: remote subscriptions arriving via the overlay are admitted and
  /// unsubscriptions released automatically — the former unsubscribe
  /// footgun (leaked pruning-queue state) is gone. The set must be built
  /// over this broker's engine() and outlive the attachment.
  void set_pruning(ShardedPruningSet* set) { pruning_ = set; }
  [[nodiscard]] ShardedPruningSet* pruning() { return pruning_; }

  /// Predicate/subscription associations contributed by remote entries
  /// (the distributed memory metric, Fig. 1(f)).
  [[nodiscard]] std::size_t remote_association_count() const;

  // --- Metrics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t notifications_delivered() const { return notifications_; }
  [[nodiscard]] std::uint64_t events_filtered() const { return events_filtered_; }
  /// CPU time spent matching events against the routing table.
  [[nodiscard]] double filter_seconds() const { return filter_time_.seconds(); }
  void reset_metrics();

  /// (subscription, event_seq) notification log for correctness checks;
  /// recorded only while `record_notifications` is set.
  void set_record_notifications(bool on) { record_notifications_ = on; }
  [[nodiscard]] const std::vector<std::pair<SubscriptionId, std::uint64_t>>&
  notification_log() const {
    return notification_log_;
  }

 private:
  /// Matches and forwards an event arriving from `from` (invalid id =
  /// local publisher).
  void route_event(BrokerId from, const Event& event, std::uint64_t seq);
  void forward_subscription(BrokerId except, SubscriptionId id,
                            const std::shared_ptr<const Node>& tree);

  BrokerId id_;
  SimulatedNetwork* net_;
  RoutingTable table_;
  ShardedEngine engine_;
  ShardedPruningSet* pruning_ = nullptr;

  Stopwatch filter_time_;
  std::uint64_t notifications_ = 0;
  std::uint64_t events_filtered_ = 0;
  bool record_notifications_ = false;
  std::vector<std::pair<SubscriptionId, std::uint64_t>> notification_log_;
  std::vector<SubscriptionId> scratch_matches_;
  std::vector<BrokerId> scratch_targets_;
};

}  // namespace dbsp
