#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "agg/aggregator.hpp"
#include "common/ids.hpp"
#include "common/timer.hpp"
#include "broker/simnet.hpp"
#include "core/sharded_engine.hpp"
#include "obs/flight.hpp"
#include "routing/routing_table.hpp"

namespace dbsp {

class ShardedPruningSet;
class WireWriter;
class WireReader;

/// A content-based broker: routing table + sharded counting-matcher engine
/// + forwarding logic over the simulated network (subscription-forwarding
/// routing on an acyclic overlay, §2.1).
///
/// The filter table is a ShardedEngine over counting matchers; the shard
/// count comes from `engine_options` (default: DBSP_SHARDS / hardware
/// concurrency). Callers running pruning over this broker's entries call
/// enable_pruning(), which builds and owns a ShardedPruningSet over
/// engine(); the broker keeps the per-shard pruning state in sync under
/// churn for as long as it is enabled.
///
/// Notifications are decided by *local* entries, which stay unpruned, so
/// end-to-end delivery is exact regardless of how remote entries were
/// pruned; pruning remote entries can only add transit traffic that the
/// next broker post-filters.
class Broker {
 public:
  Broker(BrokerId id, const Schema& schema, SimulatedNetwork& net,
         ShardedEngineOptions engine_options = {});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Registers a subscription of a directly connected client and forwards
  /// it to all neighbors.
  void subscribe_local(SubscriptionId id, ClientId client, std::unique_ptr<Node> tree);

  /// Cancels a local client's subscription and floods the unsubscription.
  /// No specialized handling vs un-optimized routing is needed (§2.2):
  /// every broker simply drops its (possibly pruned) entry, and an
  /// attached pruning set is released automatically.
  void unsubscribe_local(SubscriptionId id);

  /// Publishes an event received from a directly connected publisher.
  void publish_local(const Event& event, std::uint64_t seq);

  /// Publishes under `context`: an inactive context starts a fresh
  /// head-sampled trace when a recorder is attached, an active one joins
  /// the caller's trace. Each broker the event crosses records one
  /// overlay_hop entry (detail = broker id) into the shared recorder, all
  /// under the same trace id.
  void publish_local(const Event& event, std::uint64_t seq,
                     obs::TraceContext context);

  /// Delivers one network message to this broker.
  void handle(BrokerId from, const Message& message);

  /// Attaches (or detaches, with nullptr) a flight recorder shared by the
  /// overlay: route_event then records a per-hop trace entry whenever the
  /// event carries an active context. See Overlay::attach_trace_recorder.
  void attach_trace_recorder(std::shared_ptr<obs::FlightRecorder> recorder) {
    trace_recorder_ = std::move(recorder);
  }
  [[nodiscard]] const std::shared_ptr<obs::FlightRecorder>& trace_recorder()
      const {
    return trace_recorder_;
  }

  [[nodiscard]] BrokerId id() const { return id_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }
  /// The sharded filter engine holding this broker's (possibly pruned)
  /// routing entries.
  [[nodiscard]] ShardedEngine& engine() { return engine_; }
  [[nodiscard]] const ShardedEngine& engine() const { return engine_; }

  /// Ids of the remote (prunable) entries — the pruning engine's inputs.
  /// Stable under churn (plain values, nothing to dangle); resolve lazily
  /// through table().find() when the trees are needed.
  [[nodiscard]] std::vector<SubscriptionId> remote_subscription_ids() const;

  /// Remote (prunable) subscriptions as raw pointers.
  [[deprecated(
      "the pointers dangle as soon as churn removes an entry; use "
      "remote_subscription_ids() or enable_pruning()")]]
  [[nodiscard]] std::vector<Subscription*> remote_subscriptions();

  /// Builds a pruning set over this broker's current remote entries,
  /// attaches it, and *owns* it: while enabled, remote subscriptions
  /// arriving via the overlay are admitted and unsubscriptions released
  /// automatically — no manual sync, no dangling set pointer to detach.
  /// The estimator must outlive the broker (or a disable_pruning() call).
  /// Replaces any previously enabled or attached set.
  ShardedPruningSet& enable_pruning(const SelectivityEstimator& estimator,
                                    const PruneEngineConfig& config);
  /// Drops the owned (or attached) pruning set.
  void disable_pruning();

  /// Attaches an externally owned pruning set (or nullptr to detach),
  /// which then must outlive the attachment.
  [[deprecated(
      "lifetime footgun (broker keeps a raw pointer); use enable_pruning() / "
      "disable_pruning() — the broker owns its set")]]
  void set_pruning(ShardedPruningSet* set);
  /// The enabled/attached pruning set, nullptr when none.
  [[nodiscard]] ShardedPruningSet* pruning() { return pruning_; }

  /// Predicate/subscription associations contributed by remote entries
  /// (the distributed memory metric, Fig. 1(f)).
  [[nodiscard]] std::size_t remote_association_count() const;

  // --- Aggregated routing --------------------------------------------------

  /// Switches this broker to aggregated summary routing: local
  /// subscriptions are clustered into subgroups (src/agg/) and only the
  /// bounded subgroup summaries are advertised to neighbors — no
  /// per-subscription tree ever leaves this broker. An event is forwarded
  /// toward a neighbor exactly when a summary learned through it admits the
  /// event (sound over-approximation), and delivered by exact local
  /// matching at the subscriber's broker, so end-to-end delivery stays
  /// oracle-exact while control traffic scales with subgroups instead of
  /// subscriptions. Must be called on an empty broker (throws
  /// std::logic_error otherwise) and on every broker of the overlay before
  /// subscriptions flow (see Overlay::enable_aggregation). Pruning is
  /// moot in this mode: no remote trees exist to prune.
  agg::SubscriptionAggregator& enable_aggregation(agg::AggregatorOptions options = {});
  /// The local subgroup aggregator, nullptr when aggregation is off.
  [[nodiscard]] agg::SubscriptionAggregator* aggregation() { return aggregator_.get(); }

  // --- Warm restart --------------------------------------------------------

  /// Serializes the whole routing table — local and remote entries with
  /// their origins and *current* (possibly pruned) trees — in the
  /// routing/codec wire format, entries in ascending-id order. The bytes
  /// are what a warm restart needs: a replacement broker at the same
  /// overlay position restores them instead of re-flooding every
  /// subscription through the network.
  void save_table(WireWriter& out) const;

  /// Restores a table saved by save_table() into this broker: repopulates
  /// the routing table and the matcher engine without sending a single
  /// message. The broker must be empty (throws std::logic_error otherwise)
  /// and pruning must not be enabled yet — enable_pruning() afterwards
  /// re-admits the restored remote entries. Throws WireError on truncated
  /// or malformed input, leaving the broker unusable only in the sense
  /// that partially restored entries remain (callers discard the broker).
  void restore_table(WireReader& in);

  // --- Metrics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t notifications_delivered() const { return notifications_; }
  [[nodiscard]] std::uint64_t events_filtered() const { return events_filtered_; }
  /// CPU time spent matching events against the routing table.
  [[nodiscard]] double filter_seconds() const { return filter_time_.seconds(); }
  void reset_metrics();

  /// (subscription, event_seq) notification log for correctness checks;
  /// recorded only while `record_notifications` is set.
  void set_record_notifications(bool on) { record_notifications_ = on; }
  [[nodiscard]] const std::vector<std::pair<SubscriptionId, std::uint64_t>>&
  notification_log() const {
    return notification_log_;
  }

 private:
  /// Matches and forwards an event arriving from `from` (invalid id =
  /// local publisher). An active `trace` context wraps the hop in an
  /// overlay_hop span and re-parents the contexts of forwarded copies.
  void route_event(BrokerId from, const Event& event, std::uint64_t seq,
                   const obs::TraceContext& trace);
  void forward_subscription(BrokerId except, SubscriptionId id,
                            const std::shared_ptr<const Node>& tree);
  /// Diff-advertises every subgroup summary that changed (or vanished)
  /// since the last call — the aggregated-mode control traffic.
  void advertise_changes();
  void send_summary(BrokerId except, BrokerId origin, std::uint32_t subgroup,
                    const std::shared_ptr<const agg::SummarySet>& summary);

  BrokerId id_;
  SimulatedNetwork* net_;
  const Schema* schema_;
  RoutingTable table_;
  ShardedEngine engine_;
  /// Aggregated routing state (enable_aggregation). `advertised_` caches
  /// the last summary sent per subgroup slot (exact equals() diffing — a
  /// missed widening advertisement would cost deliveries downstream);
  /// `neighbor_summaries_` holds, per neighbor, the summaries learned
  /// through it keyed by (origin broker, subgroup slot).
  std::unique_ptr<agg::SubscriptionAggregator> aggregator_;
  std::vector<std::shared_ptr<const agg::SummarySet>> advertised_;
  std::unordered_map<
      BrokerId::value_type,
      std::unordered_map<std::uint64_t, std::shared_ptr<const agg::SummarySet>>>
      neighbor_summaries_;
  /// Set via enable_pruning(); pruning_ aliases it (or an externally
  /// attached set through the deprecated set_pruning()).
  std::unique_ptr<ShardedPruningSet> owned_pruning_;
  ShardedPruningSet* pruning_ = nullptr;

  /// Overlay tracing (attach_trace_recorder): the builder is reusable
  /// scratch — brokers are single-threaded under the overlay pump.
  std::shared_ptr<obs::FlightRecorder> trace_recorder_;
  obs::TraceBuilder trace_builder_;

  Stopwatch filter_time_;
  std::uint64_t notifications_ = 0;
  std::uint64_t events_filtered_ = 0;
  bool record_notifications_ = false;
  std::vector<std::pair<SubscriptionId, std::uint64_t>> notification_log_;
  std::vector<SubscriptionId> scratch_matches_;
  std::vector<BrokerId> scratch_targets_;
};

}  // namespace dbsp
