#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "routing/messages.hpp"

namespace dbsp {

/// In-process network simulation between brokers: FIFO links with
/// per-link and aggregate traffic accounting. The paper's evaluation is
/// simulation-based (10 Mbps LAN); we count messages and bytes — the
/// actual-network-load metric of Fig. 1(e) — and can convert bytes to
/// estimated wire seconds via a configurable bandwidth.
class SimulatedNetwork {
 public:
  struct Config {
    double bandwidth_bytes_per_sec = 10e6 / 8.0;  // 10 Mbps, as in the paper
    double latency_sec = 0.5e-3;
  };

  explicit SimulatedNetwork(std::size_t broker_count);
  SimulatedNetwork(std::size_t broker_count, Config config);

  /// Declares an undirected link. Topology must stay acyclic (checked by
  /// the overlay, not here).
  void connect(BrokerId a, BrokerId b);

  [[nodiscard]] bool connected(BrokerId a, BrokerId b) const;
  [[nodiscard]] const std::vector<BrokerId>& neighbors(BrokerId b) const;
  [[nodiscard]] std::size_t broker_count() const { return adjacency_.size(); }

  /// Enqueues a message on the directed link from->to (must be connected).
  void send(BrokerId from, BrokerId to, Message message);

  struct Delivery {
    BrokerId from;
    BrokerId to;
    Message message;
  };
  /// Pops the oldest in-flight delivery, if any.
  [[nodiscard]] std::optional<Delivery> pop();
  [[nodiscard]] bool idle() const { return in_flight_.empty(); }

  struct TrafficStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t event_messages = 0;
    std::uint64_t control_messages = 0;
    /// Estimated seconds the wire was busy (bytes/bandwidth + per-message
    /// latency), summed over links.
    double wire_seconds = 0.0;
  };
  [[nodiscard]] const TrafficStats& total() const { return total_; }
  [[nodiscard]] const TrafficStats& link(BrokerId from, BrokerId to) const;
  void reset_stats();

 private:
  [[nodiscard]] std::size_t link_index(BrokerId from, BrokerId to) const;

  Config config_;
  std::vector<std::vector<BrokerId>> adjacency_;
  // Directed link stats in a dense matrix (broker counts are small).
  std::vector<TrafficStats> link_stats_;
  TrafficStats total_;
  std::deque<Delivery> in_flight_;
};

}  // namespace dbsp
