#include "broker/broker.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/pruning_set.hpp"
#include "routing/codec.hpp"

namespace dbsp {

Broker::Broker(BrokerId id, const Schema& schema, SimulatedNetwork& net,
               ShardedEngineOptions engine_options)
    : id_(id), net_(&net), schema_(&schema), engine_(schema, engine_options) {}

Broker::~Broker() = default;

void Broker::subscribe_local(SubscriptionId id, ClientId client,
                             std::unique_ptr<Node> tree) {
  if (aggregator_ != nullptr) {
    // Aggregated routing: the tree stays local; the engine forwards it
    // into the aggregator, and only the subgroup summaries it changed are
    // advertised.
    Subscription& sub = table_.add_local(id, client, std::move(tree));
    engine_.add(sub);
    advertise_changes();
    return;
  }
  std::shared_ptr<const Node> wire_copy(tree->clone().release());
  Subscription& sub = table_.add_local(id, client, std::move(tree));
  engine_.add(sub);
  forward_subscription(BrokerId{}, id, wire_copy);
}

void Broker::forward_subscription(BrokerId except, SubscriptionId id,
                                  const std::shared_ptr<const Node>& tree) {
  for (const BrokerId neighbor : net_->neighbors(id_)) {
    if (neighbor == except) continue;
    Message m;
    m.type = Message::Type::Subscribe;
    m.sub_id = id;
    m.sub_tree = tree;
    net_->send(id_, neighbor, std::move(m));
  }
}

void Broker::unsubscribe_local(SubscriptionId id) {
  const RoutingTable::Entry* existing = table_.find(id);
  if (existing == nullptr || !existing->local) {
    throw std::invalid_argument("broker: unsubscribe of unknown or non-local subscription");
  }
  // Pruning set first (local entries are never tracked, so this is a
  // no-op here, but keeps the release-before-engine-removal invariant),
  // then engine: its removal reads the Subscription the table entry owns.
  if (pruning_ != nullptr) pruning_->remove(id);
  engine_.remove(id);
  table_.remove(id);
  if (aggregator_ != nullptr) {
    // No tree was ever flooded, so there is nothing to unsubscribe
    // remotely — only the changed subgroup summaries (possibly a retract).
    advertise_changes();
    return;
  }
  Message m;
  m.type = Message::Type::Unsubscribe;
  m.sub_id = id;
  for (const BrokerId neighbor : net_->neighbors(id_)) {
    net_->send(id_, neighbor, m);
  }
}

void Broker::publish_local(const Event& event, std::uint64_t seq) {
  publish_local(event, seq, obs::TraceContext{});
}

void Broker::publish_local(const Event& event, std::uint64_t seq,
                           obs::TraceContext context) {
  if (trace_recorder_ != nullptr && !context.active()) {
    context = obs::make_trace_context(trace_recorder_->should_sample());
  }
  route_event(BrokerId{}, event, seq, context);
}

void Broker::handle(BrokerId from, const Message& message) {
  switch (message.type) {
    case Message::Type::Event:
      route_event(from, message.event, message.event_seq, message.trace);
      break;
    case Message::Type::Subscribe: {
      Subscription& sub =
          table_.add_remote(message.sub_id, from, message.sub_tree->clone());
      engine_.add(sub);
      if (pruning_ != nullptr) pruning_->add(sub);  // incremental admission
      forward_subscription(from, message.sub_id, message.sub_tree);
      break;
    }
    case Message::Type::Unsubscribe: {
      auto entry = table_.remove(message.sub_id);
      if (entry) {
        if (pruning_ != nullptr) pruning_->remove(message.sub_id);
        engine_.remove(message.sub_id);
        Message m;
        m.type = Message::Type::Unsubscribe;
        m.sub_id = message.sub_id;
        for (const BrokerId neighbor : net_->neighbors(id_)) {
          if (neighbor != from) net_->send(id_, neighbor, m);
        }
      }
      break;
    }
    case Message::Type::Summary: {
      // Remember the summary under the neighbor it arrived through (the
      // next hop toward its origin) and flood it onward; the overlay is
      // acyclic, so propagation terminates at the leaves. The origin only
      // advertises actual changes, so no re-diffing is needed here.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(message.origin.value()) << 32) |
          message.subgroup;
      auto& learned = neighbor_summaries_[from.value()];
      if (message.summary == nullptr) {
        learned.erase(key);
      } else {
        learned.insert_or_assign(key, message.summary);
      }
      send_summary(from, message.origin, message.subgroup, message.summary);
      break;
    }
  }
}

agg::SubscriptionAggregator& Broker::enable_aggregation(agg::AggregatorOptions options) {
  if (table_.size() != 0) {
    throw std::logic_error("broker: enable_aggregation on a non-empty broker");
  }
  aggregator_ = std::make_unique<agg::SubscriptionAggregator>(*schema_, options);
  engine_.attach_aggregation(aggregator_.get());
  return *aggregator_;
}

void Broker::advertise_changes() {
  const std::size_t slots =
      std::max(aggregator_->subgroup_slots(), advertised_.size());
  if (advertised_.size() < slots) advertised_.resize(slots);
  for (std::size_t g = 0; g < slots; ++g) {
    const std::uint32_t slot = static_cast<std::uint32_t>(g);
    const agg::SummarySet* current = aggregator_->subgroup_summary(g);
    if (current == nullptr) {
      if (advertised_[g] != nullptr) {  // emptied: retract
        advertised_[g] = nullptr;
        send_summary(BrokerId{}, id_, slot, nullptr);
      }
      continue;
    }
    if (advertised_[g] != nullptr && advertised_[g]->equals(*current)) continue;
    auto copy = std::make_shared<const agg::SummarySet>(*current);
    advertised_[g] = copy;
    send_summary(BrokerId{}, id_, slot, copy);
  }
}

void Broker::send_summary(BrokerId except, BrokerId origin, std::uint32_t subgroup,
                          const std::shared_ptr<const agg::SummarySet>& summary) {
  for (const BrokerId neighbor : net_->neighbors(id_)) {
    if (neighbor == except) continue;
    Message m;
    m.type = Message::Type::Summary;
    m.origin = origin;
    m.subgroup = subgroup;
    m.summary = summary;
    net_->send(id_, neighbor, std::move(m));
  }
}

void Broker::route_event(BrokerId from, const Event& event, std::uint64_t seq,
                         const obs::TraceContext& trace) {
  ++events_filtered_;
  scratch_matches_.clear();
  scratch_targets_.clear();

  // One trace entry per hop: every broker the event crosses appends its
  // own overlay_hop span (detail = broker id) under the shared trace id,
  // so a recorded distributed trace reads as the event's overlay path.
  obs::TraceBuilder* tb = nullptr;
  if (trace_recorder_ != nullptr && trace.active()) {
    trace_builder_.begin(trace);
    tb = &trace_builder_;
  }
  obs::ScopedSpan hop(tb, obs::TraceStage::kOverlayHop);
  hop.set_detail(id_.value());
  obs::TraceContext forwarded = trace;
  if (hop.span_id() != 0) forwarded.parent_span = hop.span_id();

  filter_time_.start();
  engine_.match(event, scratch_matches_, tb);
  filter_time_.stop();

  for (const SubscriptionId sid : scratch_matches_) {
    const RoutingTable::Entry* entry = table_.find(sid);
    if (entry == nullptr) continue;
    if (entry->local) {
      ++notifications_;
      if (record_notifications_) notification_log_.emplace_back(sid, seq);
    } else if (entry->from != from) {
      // Forward toward the subscriber's broker, once per neighbor.
      if (std::find(scratch_targets_.begin(), scratch_targets_.end(), entry->from) ==
          scratch_targets_.end()) {
        scratch_targets_.push_back(entry->from);
      }
    }
  }
  if (aggregator_ != nullptr) {
    // Aggregated forwarding: all table entries are local, so the loop
    // above produced only notifications; transit targets come from the
    // neighbor summaries instead — forward once toward every neighbor
    // through which some admitting subgroup summary was learned.
    for (const auto& [neighbor_raw, learned] : neighbor_summaries_) {
      const BrokerId neighbor(neighbor_raw);
      if (neighbor == from) continue;
      for (const auto& [key, summary] : learned) {
        if (summary->admits(event)) {
          scratch_targets_.push_back(neighbor);
          break;
        }
      }
    }
  }
  for (const BrokerId target : scratch_targets_) {
    Message m;
    m.type = Message::Type::Event;
    m.event = event;
    m.event_seq = seq;
    m.trace = forwarded;
    net_->send(id_, target, std::move(m));
  }
  hop.close();
  if (tb != nullptr) tb->finish(*trace_recorder_);
}

namespace {

/// Remote entries as Subscription pointers — valid only until the next
/// churn operation; callers must consume them immediately.
std::vector<Subscription*> collect_remote(RoutingTable& table) {
  std::vector<Subscription*> out;
  table.for_each([&](RoutingTable::Entry& e) {
    if (!e.local) out.push_back(e.sub.get());
  });
  return out;
}

}  // namespace

std::vector<SubscriptionId> Broker::remote_subscription_ids() const {
  std::vector<SubscriptionId> out;
  table_.for_each([&](const RoutingTable::Entry& e) {
    if (!e.local) out.push_back(e.sub->id());
  });
  return out;
}

std::vector<Subscription*> Broker::remote_subscriptions() {
  return collect_remote(table_);
}

ShardedPruningSet& Broker::enable_pruning(const SelectivityEstimator& estimator,
                                          const PruneEngineConfig& config) {
  owned_pruning_ = std::make_unique<ShardedPruningSet>(engine_, estimator, config,
                                                       collect_remote(table_));
  pruning_ = owned_pruning_.get();
  return *owned_pruning_;
}

void Broker::disable_pruning() {
  pruning_ = nullptr;
  owned_pruning_.reset();
}

void Broker::set_pruning(ShardedPruningSet* set) {
  owned_pruning_.reset();
  pruning_ = set;
}

void Broker::save_table(WireWriter& out) const {
  encode_wire_header(out);
  std::vector<const RoutingTable::Entry*> entries;
  entries.reserve(table_.size());
  table_.for_each([&](const RoutingTable::Entry& e) { entries.push_back(&e); });
  std::sort(entries.begin(), entries.end(),
            [](const RoutingTable::Entry* a, const RoutingTable::Entry* b) {
              return a->sub->id() < b->sub->id();
            });
  out.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const RoutingTable::Entry* e : entries) {
    out.put_u32(e->sub->id().value());
    out.put_u8(e->local ? 1 : 0);
    out.put_u32(e->local ? e->client.value() : e->from.value());
    encode_tree(e->sub->root(), out);
  }
}

void Broker::restore_table(WireReader& in) {
  if (table_.size() != 0) {
    throw std::logic_error("broker: restore_table into a non-empty broker");
  }
  (void)decode_wire_header(in);
  const std::uint32_t count = in.get_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const SubscriptionId id(in.get_u32());
    const std::uint8_t local = in.get_u8();
    if (local > 1) throw WireError("broker table: bad entry kind");
    const std::uint32_t origin = in.get_u32();
    std::unique_ptr<Node> tree = decode_tree(in);
    Subscription& sub =
        local != 0 ? table_.add_local(id, ClientId(origin), std::move(tree))
                   : table_.add_remote(id, BrokerId(origin), std::move(tree));
    engine_.add(sub);
  }
}

std::size_t Broker::remote_association_count() const {
  std::size_t total = 0;
  table_.for_each([&](const RoutingTable::Entry& e) {
    if (!e.local) total += engine_.associations_of(e.sub->id());
  });
  return total;
}

void Broker::reset_metrics() {
  filter_time_.reset();
  notifications_ = 0;
  events_filtered_ = 0;
  notification_log_.clear();
  engine_.reset_counters();
  if (aggregator_ != nullptr) aggregator_->reset_counters();
}

}  // namespace dbsp
