#pragma once

/// \file
/// A minimal fixed-size thread pool (workers + FIFO task queue).

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace dbsp {

/// A fixed-size pool of worker threads executing submitted tasks in FIFO
/// order — the concurrency substrate of the sharded matching engine.
///
/// Thread safety: submit() may be called concurrently from any thread,
/// including from inside a running task. Each task's exceptions are captured
/// in its future and rethrown to the waiter. The destructor is a barrier:
/// it runs every task already in the queue to completion, then joins all
/// workers — no task is ever dropped. The queue and the stop flag are
/// DBSP_GUARDED_BY(mutex_), so under clang's thread-safety analysis any
/// new code path touching them without the lock fails to compile;
/// tests/concurrent_stress_test.cpp additionally proves construct/submit/
/// destroy cycles race-clean under ThreadSanitizer.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` and returns a future that completes once it ran.
  /// If the task throws, the exception is delivered through the future.
  /// Throws std::runtime_error when called after shutdown began.
  std::future<void> submit(std::function<void()> task) DBSP_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop() DBSP_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ DBSP_GUARDED_BY(mutex_);
  bool stop_ DBSP_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor, before any worker can observe the
  /// pool; read-only afterwards, so unguarded access is safe.
  std::vector<std::thread> workers_;
};

}  // namespace dbsp
