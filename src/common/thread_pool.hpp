#pragma once

/// \file
/// A minimal fixed-size thread pool (workers + FIFO task queue).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dbsp {

/// A fixed-size pool of worker threads executing submitted tasks in FIFO
/// order — the concurrency substrate of the sharded matching engine.
///
/// Thread safety: submit() may be called concurrently from any thread,
/// including from inside a running task. Each task's exceptions are captured
/// in its future and rethrown to the waiter. The destructor is a barrier:
/// it runs every task already in the queue to completion, then joins all
/// workers — no task is ever dropped.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` and returns a future that completes once it ran.
  /// If the task throws, the exception is delivered through the future.
  std::future<void> submit(std::function<void()> task);

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dbsp
