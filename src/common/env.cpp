#include "common/env.hpp"

#include <cstdlib>
#include <string_view>

namespace dbsp {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(v);
}

bool env_bool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string_view v(raw);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace dbsp
