#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string_view>

namespace dbsp {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  // Knobs are read at startup/construction, before worker threads exist,
  // and nothing in-tree calls setenv — getenv's thread-unsafety is moot.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || errno == ERANGE) return fallback;
  // Accept trailing whitespace only; "100abc" is a misconfiguration, not 100.
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return fallback;
  return static_cast<std::int64_t>(v);
}

bool env_bool(const char* name, bool fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- see env_int
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string_view v(raw);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace dbsp
