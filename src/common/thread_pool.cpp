#include "common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbsp {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  // Notify outside the lock: a woken worker can take the mutex immediately
  // instead of bouncing off the notifier still holding it.
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    if (stop_) throw std::runtime_error("thread pool: submit after shutdown");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace dbsp
