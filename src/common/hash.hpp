#pragma once

#include <cstddef>
#include <functional>

namespace dbsp {

/// Mixes `v`'s hash into `seed` (boost::hash_combine recipe, 64-bit variant).
template <class T>
void hash_combine(std::size_t& seed, const T& v) {
  seed ^= std::hash<T>{}(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace dbsp
