#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dbsp {

/// Deterministic random source used by all workload generation. A thin
/// wrapper over mt19937_64 so every generator in the project draws from the
/// same, seedable stream and experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p);
  /// Log-normal draw with the given underlying normal parameters.
  [[nodiscard]] double log_normal(double mu, double sigma);
  /// Normal draw.
  [[nodiscard]] double normal(double mean, double stddev);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf distribution over {0, .., n-1} with exponent `s`, drawn via a
/// precomputed cumulative table (n is workload-sized, a few thousand at
/// most, so table construction is cheap and draws are O(log n)).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;

  /// Probability mass of rank `k` (used by tests and selectivity checks).
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dbsp
