#pragma once

#include <cstdint>
#include <functional>

namespace dbsp {

/// Strongly typed integer id. `Tag` distinguishes id families at compile
/// time so an AttributeId cannot be passed where a SubscriptionId is
/// expected. The raw value is a dense index suitable for vector lookups.
template <class Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = static_cast<value_type>(-1);

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }

 private:
  value_type value_ = kInvalid;
};

struct AttributeTag {};
struct PredicateTag {};
struct SubscriptionTag {};
struct BrokerTag {};
struct ClientTag {};

using AttributeId = StrongId<AttributeTag>;
using PredicateId = StrongId<PredicateTag>;
using SubscriptionId = StrongId<SubscriptionTag>;
using BrokerId = StrongId<BrokerTag>;
using ClientId = StrongId<ClientTag>;

}  // namespace dbsp

namespace std {
template <class Tag>
struct hash<dbsp::StrongId<Tag>> {
  size_t operator()(dbsp::StrongId<Tag> id) const noexcept {
    return std::hash<typename dbsp::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
