#pragma once

/// \file
/// Clang Thread Safety Analysis attribute macros (DBSP_GUARDED_BY,
/// DBSP_REQUIRES, ...). Under clang the whole library compiles with
/// `-Wthread-safety -Werror`, so a member access that violates its
/// declared lock discipline is a *build error*; under GCC (no analysis)
/// every macro expands to nothing and the annotations are pure
/// documentation. See docs/ARCHITECTURE.md "Concurrency contracts &
/// static analysis" and https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
///
/// The annotated primitives living on top of these macros are in
/// common/mutex.hpp (dbsp::Mutex / MutexLock / CondVar); tests/
/// thread_safety_fixtures/ proves the analysis actually fires (a CTest
/// compiles known-bad snippets and expects them to be rejected).

#if defined(__clang__) && (!defined(SWIG))
#define DBSP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DBSP_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics, e.g. DBSP_CAPABILITY("mutex").
#define DBSP_CAPABILITY(x) DBSP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime equals a capability hold
/// (dbsp::MutexLock). Constructors acquire, the destructor releases.
#define DBSP_SCOPED_CAPABILITY DBSP_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reading or writing requires holding `x`.
#define DBSP_GUARDED_BY(x) DBSP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: dereferencing the pointee requires holding `x`
/// (the pointer itself is covered by DBSP_GUARDED_BY).
#define DBSP_PT_GUARDED_BY(x) DBSP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the capability (exclusively / shared)
/// on entry, and still holds it on exit.
#define DBSP_REQUIRES(...) \
  DBSP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DBSP_REQUIRES_SHARED(...) \
  DBSP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock guard for
/// entry points that take the lock themselves).
#define DBSP_EXCLUDES(...) DBSP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions that acquire / release a capability (the primitive methods of
/// Mutex and MutexLock).
#define DBSP_ACQUIRE(...) \
  DBSP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DBSP_ACQUIRE_SHARED(...) \
  DBSP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DBSP_RELEASE(...) \
  DBSP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DBSP_RELEASE_SHARED(...) \
  DBSP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// try_lock-style functions: acquires only when returning `ret`.
#define DBSP_TRY_ACQUIRE(...) \
  DBSP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Tells the analysis the capability is already held at this point — for
/// lambdas and callbacks that run under a lock the (intra-procedural)
/// analysis cannot see across. With no argument the capability is `this`
/// (the Mutex::assert_held() form).
#define DBSP_ASSERT_CAPABILITY(...) \
  DBSP_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// A function returning a reference to the capability guarding its result.
#define DBSP_RETURN_CAPABILITY(x) DBSP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline cannot be expressed.
#define DBSP_NO_THREAD_SAFETY_ANALYSIS \
  DBSP_THREAD_ANNOTATION(no_thread_safety_analysis)
