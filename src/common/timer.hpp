#pragma once

#include <chrono>

namespace dbsp {

/// Monotonic stopwatch for measuring filtering cost. Accumulates across
/// start/stop pairs so per-event costs can be summed over a run.
class Stopwatch {
 public:
  void start() { begin_ = Clock::now(); }
  void stop() { accumulated_ += Clock::now() - begin_; }

  /// Total accumulated time in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(accumulated_).count();
  }

  void reset() { accumulated_ = {}; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point begin_{};
  Clock::duration accumulated_{};
};

}  // namespace dbsp
