#pragma once

#include <cstdint>
#include <string>

namespace dbsp {

/// Reads an integer configuration knob from the environment, falling back
/// to `fallback` when unset or unparseable. Used by the bench harnesses for
/// scale knobs (DBSP_SUBS, DBSP_EVENTS, ...).
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a boolean knob ("1", "true", "yes" are truthy).
[[nodiscard]] bool env_bool(const char* name, bool fallback);

}  // namespace dbsp
