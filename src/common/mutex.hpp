#pragma once

/// \file
/// Annotated synchronization primitives: `dbsp::Mutex` (a std::mutex that
/// is a Clang Thread Safety *capability*), `dbsp::MutexLock` (the RAII
/// scoped hold), and `dbsp::CondVar` (a condition variable waiting on a
/// Mutex). All locking in the library goes through these wrappers so that
/// members declared DBSP_GUARDED_BY(mutex_) are machine-checked under
/// `clang -Wthread-safety -Werror`: touching one without the lock — or
/// calling a DBSP_REQUIRES function without it — is a build error.

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace dbsp {

class CondVar;

/// A std::mutex carrying the `capability` attribute. Prefer MutexLock over
/// calling lock()/unlock() directly; the raw methods exist for the rare
/// split acquire/release (and are equally analyzed).
class DBSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBSP_ACQUIRE() { impl_.lock(); }
  void unlock() DBSP_RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() DBSP_TRY_ACQUIRE(true) {
    return impl_.try_lock();
  }

  /// Declares to the analysis that the calling thread already holds this
  /// mutex — the entry ticket for lambdas that run under a lock taken by
  /// their (annotated) caller, which the intra-procedural analysis cannot
  /// see across. Runtime no-op; only use where a DBSP_REQUIRES caller
  /// guarantees the hold.
  void assert_held() const DBSP_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex impl_;
};

/// RAII hold on a Mutex for one scope — the annotated equivalent of
/// std::lock_guard. Non-movable: a hold belongs to exactly one scope.
class DBSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DBSP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DBSP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// A condition variable over dbsp::Mutex. wait() atomically releases and
/// reacquires the mutex the caller already holds, so from the analysis'
/// point of view the capability is held across the call — which is why
/// the idiomatic predicate loop
///
///     MutexLock lock(mutex_);
///     while (!ready_) cv_.wait(mutex_);   // ready_ is GUARDED_BY(mutex_)
///
/// checks cleanly: the guarded read happens while the lock is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `mutex` must be held (it is released for the
  /// duration of the block and reacquired before returning). Spurious
  /// wakeups happen — always wait in a predicate loop.
  void wait(Mutex& mutex) DBSP_REQUIRES(mutex) {
    // Adopt the caller's hold into a unique_lock for the wait, then give
    // ownership back (release()) so the caller's RAII hold stays the one
    // true owner. The mutex is locked on both edges of this function.
    std::unique_lock<std::mutex> lock(mutex.impl_, std::adopt_lock);
    impl_.wait(lock);
    lock.release();
  }

  void notify_one() { impl_.notify_one(); }
  void notify_all() { impl_.notify_all(); }

 private:
  std::condition_variable impl_;
};

}  // namespace dbsp
