#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dbsp {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  // An inverted range is undefined behavior inside uniform_int_distribution,
  // so asserting is not enough: Release builds must fail loudly too.
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::log_normal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace dbsp
