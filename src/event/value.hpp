#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace dbsp {

/// Type tag of a Value / attribute domain.
enum class ValueType : std::uint8_t { Int, Double, String, Bool };

/// A typed attribute value carried in events and predicate operands.
/// Ordering across Int and Double compares numerically (a predicate
/// `price < 20` must accept both integral and floating bids); comparisons
/// across other type combinations are false, mirroring the usual
/// content-based pub/sub semantics where a type mismatch never matches.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : data_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(bool v) : data_(v) {}                  // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const;

  [[nodiscard]] bool is_numeric() const {
    return type() == ValueType::Int || type() == ValueType::Double;
  }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] double as_double() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }

  /// Numeric view: Int and Double promote to double. Precondition: is_numeric().
  [[nodiscard]] double numeric() const;

  /// Equality: numeric values compare numerically across Int/Double,
  /// otherwise types must match exactly.
  [[nodiscard]] bool equals(const Value& other) const;
  /// Strict-weak "less than" for matching semantics: defined only between
  /// comparable values; returns false on type mismatch.
  [[nodiscard]] bool less(const Value& other) const;

  /// Total order usable as a container key (types ordered first, then value).
  [[nodiscard]] bool key_less(const Value& other) const;

  [[nodiscard]] std::size_t hash() const;

  /// Approximate heap + inline footprint in bytes, used by the memory
  /// heuristic (mem≈).
  [[nodiscard]] std::size_t size_bytes() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.equals(b); }

 private:
  std::variant<std::int64_t, double, std::string, bool> data_;
};

}  // namespace dbsp

namespace std {
template <>
struct hash<dbsp::Value> {
  size_t operator()(const dbsp::Value& v) const noexcept { return v.hash(); }
};
}  // namespace std
