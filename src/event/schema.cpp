#include "event/schema.hpp"

#include <stdexcept>

namespace dbsp {

AttributeId Schema::add_attribute(std::string name, ValueType type) {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    if (types_[it->second.value()] != type) {
      throw std::invalid_argument("schema: attribute '" + name + "' re-declared with different type");
    }
    return it->second;
  }
  const AttributeId id(static_cast<AttributeId::value_type>(names_.size()));
  names_.push_back(name);
  types_.push_back(type);
  by_name_.emplace(std::move(name), id);
  return id;
}

std::optional<AttributeId> Schema::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

AttributeId Schema::at(std::string_view name) const {
  if (auto id = find(name)) return *id;
  throw std::out_of_range("schema: unknown attribute '" + std::string(name) + "'");
}

const std::string& Schema::name(AttributeId id) const { return names_.at(id.value()); }

ValueType Schema::type(AttributeId id) const { return types_.at(id.value()); }

}  // namespace dbsp
