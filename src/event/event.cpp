#include "event/event.hpp"

#include <algorithm>
#include <sstream>

namespace dbsp {

void Event::set(AttributeId attr, Value value) {
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), attr,
      [](const auto& pair, AttributeId a) { return pair.first < a; });
  if (it != pairs_.end() && it->first == attr) {
    it->second = std::move(value);
  } else {
    pairs_.insert(it, {attr, std::move(value)});
  }
}

const Value* Event::find(AttributeId attr) const {
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), attr,
      [](const auto& pair, AttributeId a) { return pair.first < a; });
  if (it != pairs_.end() && it->first == attr) return &it->second;
  return nullptr;
}

std::size_t Event::wire_size_bytes() const {
  std::size_t bytes = 8;  // message header
  for (const auto& [attr, value] : pairs_) {
    (void)attr;
    bytes += sizeof(AttributeId::value_type) + value.size_bytes();
  }
  return bytes;
}

std::string Event::to_string(const Schema& schema) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [attr, value] : pairs_) {
    if (!first) os << ", ";
    first = false;
    os << schema.name(attr) << '=' << value.to_string();
  }
  os << '}';
  return os.str();
}

}  // namespace dbsp
