#include "event/value.hpp"

#include <cmath>
#include <sstream>

#include "common/hash.hpp"

namespace dbsp {

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::Int;
    case 1: return ValueType::Double;
    case 2: return ValueType::String;
    default: return ValueType::Bool;
  }
}

double Value::numeric() const {
  if (type() == ValueType::Int) return static_cast<double>(as_int());
  return as_double();
}

bool Value::equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::Int && other.type() == ValueType::Int) {
      return as_int() == other.as_int();
    }
    return numeric() == other.numeric();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::String: return as_string() == other.as_string();
    case ValueType::Bool: return as_bool() == other.as_bool();
    default: return false;  // unreachable: numeric handled above
  }
}

bool Value::less(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::Int && other.type() == ValueType::Int) {
      return as_int() < other.as_int();
    }
    return numeric() < other.numeric();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::String: return as_string() < other.as_string();
    case ValueType::Bool: return static_cast<int>(as_bool()) < static_cast<int>(other.as_bool());
    default: return false;
  }
}

bool Value::key_less(const Value& other) const {
  // Int and Double share a numeric key space so that an index keyed on
  // Value treats 20 and 20.0 as the same point.
  const bool an = is_numeric();
  const bool bn = other.is_numeric();
  if (an != bn || (!an && type() != other.type())) {
    auto rank = [](const Value& v) {
      return v.is_numeric() ? 0 : (v.type() == ValueType::String ? 1 : 2);
    };
    return rank(*this) < rank(other);
  }
  return less(other);
}

std::size_t Value::hash() const {
  std::size_t seed = 0;
  switch (type()) {
    case ValueType::Int:
      hash_combine(seed, 0);
      hash_combine(seed, numeric());  // hash numerically so 20 == 20.0
      break;
    case ValueType::Double:
      hash_combine(seed, 0);
      hash_combine(seed, numeric());
      break;
    case ValueType::String:
      hash_combine(seed, 1);
      hash_combine(seed, as_string());
      break;
    case ValueType::Bool:
      hash_combine(seed, 2);
      hash_combine(seed, as_bool());
      break;
  }
  return seed;
}

std::size_t Value::size_bytes() const {
  std::size_t bytes = sizeof(Value);
  if (type() == ValueType::String && as_string().capacity() > sizeof(std::string)) {
    bytes += as_string().capacity();
  }
  return bytes;
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::Int: os << as_int(); break;
    case ValueType::Double: os << as_double(); break;
    case ValueType::String: os << '\'' << as_string() << '\''; break;
    case ValueType::Bool: os << (as_bool() ? "true" : "false"); break;
  }
  return os.str();
}

}  // namespace dbsp
