#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "event/value.hpp"

namespace dbsp {

/// Declares the attributes of an event domain and interns their names into
/// dense AttributeIds. All events, predicates and indexes of one broker
/// network share a Schema; dense ids keep per-attribute state in flat
/// vectors on the hot filtering path.
class Schema {
 public:
  /// Registers (or finds) an attribute. Re-adding with the same type is
  /// idempotent; re-adding with a conflicting type throws.
  AttributeId add_attribute(std::string name, ValueType type);

  [[nodiscard]] std::optional<AttributeId> find(std::string_view name) const;

  /// Lookup that throws std::out_of_range for unknown names; parser-facing.
  [[nodiscard]] AttributeId at(std::string_view name) const;

  [[nodiscard]] const std::string& name(AttributeId id) const;
  [[nodiscard]] ValueType type(AttributeId id) const;
  [[nodiscard]] std::size_t attribute_count() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<ValueType> types_;
  std::unordered_map<std::string, AttributeId> by_name_;
};

}  // namespace dbsp
