#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "event/schema.hpp"
#include "event/value.hpp"

namespace dbsp {

/// An event message: a set of attribute-value pairs, stored sorted by
/// AttributeId for O(log n) lookup and cheap iteration in the matcher.
class Event {
 public:
  Event() = default;

  /// Sets (or overwrites) an attribute.
  void set(AttributeId attr, Value value);

  [[nodiscard]] const Value* find(AttributeId attr) const;

  [[nodiscard]] const std::vector<std::pair<AttributeId, Value>>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] std::size_t size() const { return pairs_.size(); }

  /// Approximate wire size in bytes (attribute id + value payload per pair),
  /// used by the simulated network's byte accounting.
  [[nodiscard]] std::size_t wire_size_bytes() const;

  [[nodiscard]] std::string to_string(const Schema& schema) const;

 private:
  std::vector<std::pair<AttributeId, Value>> pairs_;
};

/// Convenience builder so tests/examples can write
/// EventBuilder(schema).with("price", 12.5).with("category", "fiction").build().
class EventBuilder {
 public:
  explicit EventBuilder(const Schema& schema) : schema_(&schema) {}

  EventBuilder& with(std::string_view attr, Value value) {
    event_.set(schema_->at(attr), std::move(value));
    return *this;
  }

  /// Consumes the accumulated event (the builder is spent afterwards).
  [[nodiscard]] Event build() { return std::move(event_); }
  [[nodiscard]] const Event& peek() const { return event_; }

 private:
  const Schema* schema_;
  Event event_;
};

}  // namespace dbsp
