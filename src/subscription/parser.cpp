#include "subscription/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace dbsp {
namespace {

enum class TokKind { Ident, Number, String, Symbol, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
    current_.pos = pos_;
    if (pos_ >= src_.size()) {
      current_ = {TokKind::End, "", pos_};
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {TokKind::Ident, std::string(src_.substr(start, pos_ - start)), start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.' ||
              src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '-' || src_[pos_] == '+') &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_ = {TokKind::Number, std::string(src_.substr(start, pos_ - start)), start};
      return;
    }
    if (c == '\'') {
      std::size_t start = ++pos_;
      std::string text;
      // SQL-style escaping: '' inside a literal is one quote character.
      while (pos_ < src_.size()) {
        if (src_[pos_] == '\'') {
          if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '\'') {
            text.push_back('\'');
            pos_ += 2;
            continue;
          }
          break;
        }
        text.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) throw ParseError("unterminated string literal", start - 1);
      ++pos_;  // closing quote
      current_ = {TokKind::String, std::move(text), start - 1};
      return;
    }
    // Multi-char symbols: <=, >=, !=
    std::size_t start = pos_;
    std::string sym(1, src_[pos_++]);
    if ((sym == "<" || sym == ">" || sym == "!") && pos_ < src_.size() && src_[pos_] == '=') {
      sym.push_back(src_[pos_++]);
    }
    current_ = {TokKind::Symbol, std::move(sym), start};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token current_;
};

[[nodiscard]] std::string lowered(std::string_view s) {
  std::string out(s);
  for (auto& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

class Parser {
 public:
  Parser(std::string_view text, const Schema& schema) : lexer_(text), schema_(schema) {}

  std::unique_ptr<Node> parse() {
    auto expr = parse_or();
    if (lexer_.peek().kind != TokKind::End) {
      throw ParseError("unexpected trailing input", lexer_.peek().pos);
    }
    return expr;
  }

 private:
  [[nodiscard]] bool peek_keyword(const char* kw) const {
    return lexer_.peek().kind == TokKind::Ident && lowered(lexer_.peek().text) == kw;
  }

  void expect_symbol(const char* sym) {
    const Token t = lexer_.take();
    if (t.kind != TokKind::Symbol || t.text != sym) {
      throw ParseError(std::string("expected '") + sym + "'", t.pos);
    }
  }

  std::unique_ptr<Node> parse_or() {
    std::vector<std::unique_ptr<Node>> parts;
    parts.push_back(parse_and());
    while (peek_keyword("or")) {
      lexer_.take();
      parts.push_back(parse_and());
    }
    if (parts.size() == 1) return std::move(parts.front());
    return Node::or_(std::move(parts));
  }

  std::unique_ptr<Node> parse_and() {
    std::vector<std::unique_ptr<Node>> parts;
    parts.push_back(parse_unary());
    while (peek_keyword("and")) {
      lexer_.take();
      parts.push_back(parse_unary());
    }
    if (parts.size() == 1) return std::move(parts.front());
    return Node::and_(std::move(parts));
  }

  std::unique_ptr<Node> parse_unary() {
    if (peek_keyword("not")) {
      lexer_.take();
      return Node::not_(parse_unary());
    }
    if (lexer_.peek().kind == TokKind::Symbol && lexer_.peek().text == "(") {
      lexer_.take();
      auto inner = parse_or();
      expect_symbol(")");
      return inner;
    }
    return parse_predicate();
  }

  Value parse_value() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case TokKind::Number: {
        if (t.text.find_first_of(".eE") != std::string::npos) {
          return Value(std::strtod(t.text.c_str(), nullptr));
        }
        return Value(static_cast<std::int64_t>(std::strtoll(t.text.c_str(), nullptr, 10)));
      }
      case TokKind::String:
        return Value(t.text);
      case TokKind::Ident: {
        const std::string kw = lowered(t.text);
        if (kw == "true") return Value(true);
        if (kw == "false") return Value(false);
        throw ParseError("expected a value, got identifier '" + t.text + "'", t.pos);
      }
      default:
        throw ParseError("expected a value", t.pos);
    }
  }

  std::unique_ptr<Node> parse_predicate() {
    const Token name = lexer_.take();
    if (name.kind != TokKind::Ident) throw ParseError("expected attribute name", name.pos);
    const auto attr = schema_.find(name.text);
    if (!attr) throw ParseError("unknown attribute '" + name.text + "'", name.pos);

    const Token op = lexer_.take();
    if (op.kind == TokKind::Symbol) {
      Op o{};
      if (op.text == "=") o = Op::Eq;
      else if (op.text == "!=") o = Op::Ne;
      else if (op.text == "<") o = Op::Lt;
      else if (op.text == "<=") o = Op::Le;
      else if (op.text == ">") o = Op::Gt;
      else if (op.text == ">=") o = Op::Ge;
      else throw ParseError("unknown operator '" + op.text + "'", op.pos);
      return Node::leaf(Predicate(*attr, o, parse_value()));
    }
    if (op.kind == TokKind::Ident) {
      const std::string kw = lowered(op.text);
      if (kw == "between") {
        Value low = parse_value();
        if (!peek_keyword("and")) throw ParseError("expected 'and' in between", lexer_.peek().pos);
        lexer_.take();
        Value high = parse_value();
        return Node::leaf(Predicate(*attr, std::move(low), std::move(high)));
      }
      if (kw == "in") {
        expect_symbol("(");
        std::vector<Value> values;
        values.push_back(parse_value());
        while (lexer_.peek().kind == TokKind::Symbol && lexer_.peek().text == ",") {
          lexer_.take();
          values.push_back(parse_value());
        }
        expect_symbol(")");
        return Node::leaf(Predicate(*attr, std::move(values)));
      }
      if (kw == "prefix" || kw == "suffix" || kw == "contains") {
        Value v = parse_value();
        if (v.type() != ValueType::String) {
          throw ParseError("string operator needs a string operand", op.pos);
        }
        const Op o = kw == "prefix" ? Op::Prefix : (kw == "suffix" ? Op::Suffix : Op::Contains);
        return Node::leaf(Predicate(*attr, o, std::move(v)));
      }
      throw ParseError("unknown operator '" + op.text + "'", op.pos);
    }
    throw ParseError("expected operator", op.pos);
  }

  Lexer lexer_;
  const Schema& schema_;
};

}  // namespace

std::unique_ptr<Node> parse_subscription(std::string_view text, const Schema& schema) {
  auto tree = simplify(Parser(text, schema).parse());
  if (tree->is_constant()) {
    throw ParseError("subscription simplifies to a constant", 0);
  }
  return tree;
}

}  // namespace dbsp
