#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "event/value.hpp"

namespace dbsp {

/// Comparison operator of a predicate (attribute-operator-value triple).
enum class Op : std::uint8_t {
  Eq,        ///< attribute == value
  Ne,        ///< attribute != value (and attribute present)
  Lt,        ///< attribute <  value (numeric/string order)
  Le,        ///< attribute <= value
  Gt,        ///< attribute >  value
  Ge,        ///< attribute >= value
  Between,   ///< low <= attribute <= high (two operands)
  In,        ///< attribute ∈ {operands...}
  Prefix,    ///< string attribute starts with operand
  Suffix,    ///< string attribute ends with operand
  Contains,  ///< string attribute contains operand
};

/// Number of operators; the wire codec rejects bytes >= kOpCount. Keep this
/// next to the enum so extending Op updates the decode bound too.
inline constexpr std::uint8_t kOpCount = static_cast<std::uint8_t>(Op::Contains) + 1;

[[nodiscard]] const char* to_string(Op op);

/// A single condition on one event attribute. Predicates are immutable
/// after construction; equal predicates (same attribute, operator and
/// operands) are de-duplicated by the filter engine so that each is
/// evaluated at most once per event regardless of how many subscriptions
/// reference it.
class Predicate {
 public:
  Predicate(AttributeId attr, Op op, Value operand);
  /// Between: low <= attr <= high.
  Predicate(AttributeId attr, Value low, Value high);
  /// In: attr ∈ operands (operands are deduplicated and sorted).
  Predicate(AttributeId attr, std::vector<Value> operands);

  [[nodiscard]] AttributeId attribute() const { return attr_; }
  [[nodiscard]] Op op() const { return op_; }
  [[nodiscard]] const std::vector<Value>& operands() const { return operands_; }
  [[nodiscard]] const Value& operand() const { return operands_.front(); }

  /// True iff the event fulfills this predicate. A missing attribute never
  /// fulfills a predicate (including Ne).
  [[nodiscard]] bool matches(const Event& event) const;
  /// True iff `value` (the event's value for this attribute) satisfies the
  /// condition.
  [[nodiscard]] bool matches_value(const Value& value) const;

  /// Structural equality — the de-duplication key of the filter engine.
  [[nodiscard]] bool equals(const Predicate& other) const;
  [[nodiscard]] std::size_t hash() const;

  /// Deterministic model size in bytes used by the memory heuristic mem≈:
  /// fixed predicate header plus operand payload. Independent of allocator
  /// round-up so heuristic values are reproducible across platforms.
  [[nodiscard]] std::size_t size_bytes() const;

  [[nodiscard]] std::string to_string(const Schema& schema) const;

  friend bool operator==(const Predicate& a, const Predicate& b) { return a.equals(b); }

 private:
  AttributeId attr_;
  Op op_;
  std::vector<Value> operands_;
};

}  // namespace dbsp

namespace std {
template <>
struct hash<dbsp::Predicate> {
  size_t operator()(const dbsp::Predicate& p) const noexcept { return p.hash(); }
};
}  // namespace std
