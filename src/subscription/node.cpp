#include "subscription/node.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace dbsp {

std::unique_ptr<Node> Node::leaf(Predicate pred) {
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = NodeKind::Leaf;
  n->pred_ = std::make_unique<Predicate>(std::move(pred));
  return n;
}

std::unique_ptr<Node> Node::and_(std::vector<std::unique_ptr<Node>> children) {
  if (children.empty()) throw std::invalid_argument("and: no children");
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = NodeKind::And;
  n->children_ = std::move(children);
  return n;
}

std::unique_ptr<Node> Node::or_(std::vector<std::unique_ptr<Node>> children) {
  if (children.empty()) throw std::invalid_argument("or: no children");
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = NodeKind::Or;
  n->children_ = std::move(children);
  return n;
}

std::unique_ptr<Node> Node::not_(std::unique_ptr<Node> child) {
  if (!child) throw std::invalid_argument("not: no child");
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = NodeKind::Not;
  n->children_.push_back(std::move(child));
  return n;
}

std::unique_ptr<Node> Node::constant(bool value) {
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = value ? NodeKind::True : NodeKind::False;
  return n;
}

std::unique_ptr<Node> Node::clone() const {
  auto n = std::unique_ptr<Node>(new Node());
  n->kind_ = kind_;
  n->pred_id_ = pred_id_;
  if (pred_) n->pred_ = std::make_unique<Predicate>(*pred_);
  n->children_.reserve(children_.size());
  for (const auto& c : children_) n->children_.push_back(c->clone());
  return n;
}

const Node* Node::resolve(const Path& path) const {
  const Node* cur = this;
  for (const auto idx : path) {
    if (idx >= cur->children_.size()) return nullptr;
    cur = cur->children_[idx].get();
  }
  return cur;
}

Node* Node::resolve(const Path& path) {
  return const_cast<Node*>(static_cast<const Node*>(this)->resolve(path));
}

bool Node::evaluate(const std::function<bool(const Node&)>& leaf_fulfilled) const {
  switch (kind_) {
    case NodeKind::Leaf: return leaf_fulfilled(*this);
    case NodeKind::And:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const auto& c) { return c->evaluate(leaf_fulfilled); });
    case NodeKind::Or:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const auto& c) { return c->evaluate(leaf_fulfilled); });
    case NodeKind::Not: return !children_[0]->evaluate(leaf_fulfilled);
    case NodeKind::True: return true;
    case NodeKind::False: return false;
  }
  return false;
}

bool Node::evaluate_event(const Event& event) const {
  return evaluate([&](const Node& leaf) { return leaf.predicate().matches(event); });
}

std::size_t Node::size_bytes() const {
  std::size_t bytes = 16 + 8 * children_.size();
  if (kind_ == NodeKind::Leaf) bytes += pred_->size_bytes();
  for (const auto& c : children_) bytes += c->size_bytes();
  return bytes;
}

std::uint32_t Node::pmin() const {
  switch (kind_) {
    case NodeKind::Leaf: return 1;
    case NodeKind::Not: return 0;
    case NodeKind::True: return 0;
    case NodeKind::False: return kPminUnsatisfiable;
    case NodeKind::And: {
      std::uint64_t sum = 0;
      for (const auto& c : children_) {
        const std::uint32_t p = c->pmin();
        if (p == kPminUnsatisfiable) return kPminUnsatisfiable;
        sum += p;
      }
      return sum >= kPminUnsatisfiable ? kPminUnsatisfiable
                                       : static_cast<std::uint32_t>(sum);
    }
    case NodeKind::Or: {
      std::uint32_t best = kPminUnsatisfiable;
      for (const auto& c : children_) best = std::min(best, c->pmin());
      return best;
    }
  }
  return 0;
}

std::size_t Node::leaf_count() const {
  if (kind_ == NodeKind::Leaf) return 1;
  std::size_t n = 0;
  for (const auto& c : children_) n += c->leaf_count();
  return n;
}

std::size_t Node::node_count() const {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->node_count();
  return n;
}

void Node::for_each_leaf(const std::function<void(const Node&)>& fn) const {
  if (kind_ == NodeKind::Leaf) {
    fn(*this);
    return;
  }
  for (const auto& c : children_) c->for_each_leaf(fn);
}

void Node::for_each_leaf_mut(const std::function<void(Node&)>& fn) {
  if (kind_ == NodeKind::Leaf) {
    fn(*this);
    return;
  }
  for (auto& c : children_) c->for_each_leaf_mut(fn);
}

bool Node::equals(const Node& other) const {
  if (kind_ != other.kind_ || children_.size() != other.children_.size()) return false;
  if (kind_ == NodeKind::Leaf) return pred_->equals(*other.pred_);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->equals(*other.children_[i])) return false;
  }
  return true;
}

std::string Node::to_string(const Schema& schema) const {
  std::ostringstream os;
  switch (kind_) {
    case NodeKind::Leaf: os << pred_->to_string(schema); break;
    case NodeKind::True: os << "true"; break;
    case NodeKind::False: os << "false"; break;
    case NodeKind::Not: os << "not (" << children_[0]->to_string(schema) << ')'; break;
    case NodeKind::And:
    case NodeKind::Or: {
      const char* sep = kind_ == NodeKind::And ? " and " : " or ";
      os << '(';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i != 0) os << sep;
        os << children_[i]->to_string(schema);
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

namespace {

/// Appends `child` to `out`, splicing in grandchildren when `child` has the
/// same associative kind (And/And, Or/Or flattening).
void flatten_into(std::vector<std::unique_ptr<Node>>& out,
                  std::unique_ptr<Node> child, NodeKind kind) {
  if (child->kind() == kind) {
    for (auto& gc : child->children()) flatten_into(out, std::move(gc), kind);
  } else {
    out.push_back(std::move(child));
  }
}

}  // namespace

std::unique_ptr<Node> simplify(std::unique_ptr<Node> node) {
  switch (node->kind()) {
    case NodeKind::Leaf:
    case NodeKind::True:
    case NodeKind::False:
      return node;
    case NodeKind::Not: {
      auto child = simplify(std::move(node->children()[0]));
      if (child->kind() == NodeKind::True) return Node::constant(false);
      if (child->kind() == NodeKind::False) return Node::constant(true);
      if (child->kind() == NodeKind::Not) return std::move(child->children()[0]);
      return Node::not_(std::move(child));
    }
    case NodeKind::And:
    case NodeKind::Or: {
      const NodeKind kind = node->kind();
      const bool is_and = kind == NodeKind::And;
      const NodeKind absorbing = is_and ? NodeKind::False : NodeKind::True;
      const NodeKind neutral = is_and ? NodeKind::True : NodeKind::False;
      std::vector<std::unique_ptr<Node>> kept;
      kept.reserve(node->children().size());
      for (auto& c : node->children()) {
        auto sc = simplify(std::move(c));
        if (sc->kind() == absorbing) return Node::constant(!is_and);
        if (sc->kind() == neutral) continue;
        flatten_into(kept, std::move(sc), kind);
      }
      if (kept.empty()) return Node::constant(is_and);
      if (kept.size() == 1) return std::move(kept.front());
      return is_and ? Node::and_(std::move(kept)) : Node::or_(std::move(kept));
    }
  }
  return node;
}

}  // namespace dbsp
