#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "subscription/predicate.hpp"

namespace dbsp {

/// Kind of a subscription tree node. True/False only appear transiently
/// while pruning/simplifying; stored subscription trees are constant-free.
enum class NodeKind : std::uint8_t { Leaf, And, Or, Not, True, False };

/// A node of a Boolean subscription tree. Leaves carry predicates; inner
/// nodes are And/Or (n-ary, n >= 2 after simplification) or Not (unary).
/// Trees are owned top-down through unique_ptr, per Core Guidelines R.20/21.
class Node {
 public:
  /// Path from the root to a node: child indices at each level. Used by the
  /// pruning engine to address nodes without holding raw pointers across
  /// mutations.
  using Path = std::vector<std::uint32_t>;

  static std::unique_ptr<Node> leaf(Predicate pred);
  static std::unique_ptr<Node> and_(std::vector<std::unique_ptr<Node>> children);
  static std::unique_ptr<Node> or_(std::vector<std::unique_ptr<Node>> children);
  static std::unique_ptr<Node> not_(std::unique_ptr<Node> child);
  static std::unique_ptr<Node> constant(bool value);

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] bool is_constant() const {
    return kind_ == NodeKind::True || kind_ == NodeKind::False;
  }

  [[nodiscard]] const Predicate& predicate() const { return *pred_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<Node>>& children() { return children_; }

  /// The leaf's predicate id within a filter engine; kInvalid until the
  /// subscription is registered. Stored on the node so tree evaluation can
  /// test fulfillment with one array lookup.
  [[nodiscard]] PredicateId predicate_id() const { return pred_id_; }
  void set_predicate_id(PredicateId id) { pred_id_ = id; }

  [[nodiscard]] std::unique_ptr<Node> clone() const;

  /// Resolves a path; returns nullptr if the path does not exist.
  [[nodiscard]] const Node* resolve(const Path& path) const;
  [[nodiscard]] Node* resolve(const Path& path);

  /// Evaluates the tree; `leaf_fulfilled` reports whether a leaf's
  /// predicate is fulfilled by the current event.
  [[nodiscard]] bool evaluate(
      const std::function<bool(const Node&)>& leaf_fulfilled) const;

  /// Evaluates directly against an event (no index; used by the naive
  /// matcher and correctness tests).
  [[nodiscard]] bool evaluate_event(const Event& event) const;

  // --- Tree metrics -------------------------------------------------------

  /// Deterministic model size in bytes of the subtree (mem≈ of §3.2):
  /// 16 bytes per node + 8 per child slot + predicate payload at leaves.
  [[nodiscard]] std::size_t size_bytes() const;

  /// Minimal number of fulfilled predicates needed to satisfy the subtree
  /// (pmin of §3.3). Leaf=1, And=sum, Or=min, Not=0 (can be satisfied by
  /// absence of matches), True=0, False=saturated max.
  [[nodiscard]] std::uint32_t pmin() const;
  static constexpr std::uint32_t kPminUnsatisfiable =
      std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] std::size_t node_count() const;

  /// Visits every leaf (pre-order).
  void for_each_leaf(const std::function<void(const Node&)>& fn) const;
  /// Mutable leaf visitation (distinct name: the std::function parameter
  /// types are inter-convertible, which would make overloads ambiguous).
  void for_each_leaf_mut(const std::function<void(Node&)>& fn);

  /// Structural equality (same shape, same predicates).
  [[nodiscard]] bool equals(const Node& other) const;

  [[nodiscard]] std::string to_string(const Schema& schema) const;

 private:
  Node() = default;

  NodeKind kind_ = NodeKind::True;
  std::unique_ptr<Predicate> pred_;  // Leaf only
  PredicateId pred_id_{};            // Leaf only, set on registration
  std::vector<std::unique_ptr<Node>> children_;
};

/// Simplifies a tree: folds constants, eliminates Not(Not(x)), flattens
/// nested And/And and Or/Or, hoists single-child And/Or. Returns the
/// simplified tree (which may be a constant node if the whole expression
/// folded away). Consumes the input.
[[nodiscard]] std::unique_ptr<Node> simplify(std::unique_ptr<Node> node);

}  // namespace dbsp
