#include "subscription/subscription.hpp"

// Subscription is header-only today; this translation unit anchors the
// class for future out-of-line growth and keeps the build graph uniform.
