#include "subscription/predicate.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"

namespace dbsp {

const char* to_string(Op op) {
  switch (op) {
    case Op::Eq: return "=";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Between: return "between";
    case Op::In: return "in";
    case Op::Prefix: return "prefix";
    case Op::Suffix: return "suffix";
    case Op::Contains: return "contains";
  }
  return "?";
}

Predicate::Predicate(AttributeId attr, Op op, Value operand)
    : attr_(attr), op_(op) {
  if (op == Op::Between || op == Op::In) {
    throw std::invalid_argument("predicate: Between/In need the dedicated constructor");
  }
  operands_.push_back(std::move(operand));
}

Predicate::Predicate(AttributeId attr, Value low, Value high)
    : attr_(attr), op_(Op::Between) {
  if (high.key_less(low)) std::swap(low, high);
  operands_.push_back(std::move(low));
  operands_.push_back(std::move(high));
}

Predicate::Predicate(AttributeId attr, std::vector<Value> operands)
    : attr_(attr), op_(Op::In), operands_(std::move(operands)) {
  if (operands_.empty()) {
    throw std::invalid_argument("predicate: In needs at least one operand");
  }
  std::sort(operands_.begin(), operands_.end(),
            [](const Value& a, const Value& b) { return a.key_less(b); });
  operands_.erase(std::unique(operands_.begin(), operands_.end(),
                              [](const Value& a, const Value& b) { return a.equals(b); }),
                  operands_.end());
}

bool Predicate::matches(const Event& event) const {
  const Value* v = event.find(attr_);
  if (v == nullptr) return false;
  return matches_value(*v);
}

bool Predicate::matches_value(const Value& value) const {
  switch (op_) {
    case Op::Eq: return value.equals(operands_[0]);
    case Op::Ne: return !value.equals(operands_[0]);
    case Op::Lt: return value.less(operands_[0]);
    case Op::Le: return value.less(operands_[0]) || value.equals(operands_[0]);
    case Op::Gt: return operands_[0].less(value);
    case Op::Ge: return operands_[0].less(value) || value.equals(operands_[0]);
    case Op::Between:
      return !(value.less(operands_[0]) || operands_[1].less(value));
    case Op::In:
      return std::any_of(operands_.begin(), operands_.end(),
                         [&](const Value& o) { return value.equals(o); });
    case Op::Prefix: {
      if (value.type() != ValueType::String) return false;
      const auto& s = value.as_string();
      const auto& p = operands_[0].as_string();
      return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
    }
    case Op::Suffix: {
      if (value.type() != ValueType::String) return false;
      const auto& s = value.as_string();
      const auto& p = operands_[0].as_string();
      return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
    }
    case Op::Contains: {
      if (value.type() != ValueType::String) return false;
      return value.as_string().find(operands_[0].as_string()) != std::string::npos;
    }
  }
  return false;
}

bool Predicate::equals(const Predicate& other) const {
  if (attr_ != other.attr_ || op_ != other.op_ ||
      operands_.size() != other.operands_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < operands_.size(); ++i) {
    if (!operands_[i].equals(other.operands_[i])) return false;
  }
  return true;
}

std::size_t Predicate::hash() const {
  std::size_t seed = 0;
  hash_combine(seed, attr_.value());
  hash_combine(seed, static_cast<int>(op_));
  for (const auto& o : operands_) hash_combine(seed, o);
  return seed;
}

std::size_t Predicate::size_bytes() const {
  // Model: 8-byte header (attribute id + operator + operand count) plus a
  // fixed 16 bytes per operand, plus string payloads.
  std::size_t bytes = 8;
  for (const auto& o : operands_) {
    bytes += 16;
    if (o.type() == ValueType::String) bytes += o.as_string().size();
  }
  return bytes;
}

std::string Predicate::to_string(const Schema& schema) const {
  std::ostringstream os;
  os << schema.name(attr_) << ' ' << dbsp::to_string(op_) << ' ';
  if (op_ == Op::Between) {
    os << operands_[0].to_string() << " and " << operands_[1].to_string();
  } else if (op_ == Op::In) {
    os << '(';
    for (std::size_t i = 0; i < operands_.size(); ++i) {
      if (i != 0) os << ", ";
      os << operands_[i].to_string();
    }
    os << ')';
  } else {
    os << operands_[0].to_string();
  }
  return os.str();
}

}  // namespace dbsp
