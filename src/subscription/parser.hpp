#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "event/schema.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Error raised on malformed subscription text; carries the offending
/// position for tooling.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t position)
      : std::runtime_error(std::move(message)), position_(position) {}
  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses the textual subscription DSL into a simplified tree. Grammar:
///
///   expr     := and_expr ("or" and_expr)*
///   and_expr := unary ("and" unary)*
///   unary    := "not" unary | "(" expr ")" | predicate
///   predicate:= ident cmp value
///             | ident "between" value "and" value
///             | ident "in" "(" value ("," value)* ")"
///             | ident ("prefix"|"suffix"|"contains") string
///   cmp      := "=" | "!=" | "<" | "<=" | ">" | ">="
///   value    := number | 'single quoted string' | true | false
///
/// Attribute names must exist in `schema`. Keywords are case-insensitive.
/// Inside string literals, '' denotes one quote character (SQL-style
/// escaping) — the form Filter::to_string() emits.
[[nodiscard]] std::unique_ptr<Node> parse_subscription(std::string_view text,
                                                       const Schema& schema);

}  // namespace dbsp
