#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/ids.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// A registered subscription: an id plus the current (possibly pruned)
/// Boolean filter tree. Mutations bump `generation`, which the pruning
/// engine uses to invalidate stale priority-queue entries.
class Subscription {
 public:
  Subscription(SubscriptionId id, std::unique_ptr<Node> root)
      : id_(id), root_(std::move(root)) {
    if (!root_) throw std::invalid_argument("subscription: null tree");
  }

  [[nodiscard]] SubscriptionId id() const { return id_; }
  [[nodiscard]] const Node& root() const { return *root_; }
  [[nodiscard]] Node& root() { return *root_; }

  /// Replaces the tree (after a pruning) and bumps the generation.
  void replace_root(std::unique_ptr<Node> root) {
    if (!root) throw std::invalid_argument("subscription: null tree");
    root_ = std::move(root);
    ++generation_;
  }

  /// Takes the tree out for an in-place transformation (prune + simplify);
  /// the caller must hand a tree back via replace_root().
  [[nodiscard]] std::unique_ptr<Node> release_root() { return std::move(root_); }

  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] bool matches(const Event& event) const {
    return root_->evaluate_event(event);
  }

  [[nodiscard]] std::string to_string(const Schema& schema) const {
    return root_->to_string(schema);
  }

 private:
  SubscriptionId id_;
  std::unique_ptr<Node> root_;
  std::uint64_t generation_ = 0;
};

}  // namespace dbsp
