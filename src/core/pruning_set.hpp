#pragma once

/// \file
/// ShardedPruningSet: churn-safe owner of the per-shard pruning engines of
/// one ShardedEngine. Routes admissions and releases to the shard that owns
/// the subscription, so callers can no longer leak pruning-queue state by
/// unsubscribing behind the engines' backs (the Broker::unsubscribe_local
/// footgun), and aggregates the drift-maintenance controls across shards.

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/sharded_engine.hpp"

namespace dbsp {

/// One PruningEngine per shard of a ShardedEngine (Counting backend), with
/// id-routed add/remove. Subscriptions admitted here must already be
/// registered with the engine (the pruning engines reindex the owning
/// shard's matcher after every applied pruning).
///
/// Not thread-safe; serialize externally together with the engine it wraps
/// (every applied pruning reindexes that engine, so the two always mutate
/// under one serialization domain — in the public API both are members of
/// PubSubCore declared DBSP_GUARDED_BY the facade mutex, making a
/// lock-free access path a clang -Wthread-safety build error). The
/// ShardedEngine, the estimator, and every admitted Subscription must
/// outlive the set.
class ShardedPruningSet {
 public:
  /// Builds one engine per shard and admits `subs` (each into the shard
  /// that owns it).
  ShardedPruningSet(ShardedEngine& engine, const SelectivityEstimator& estimator,
                    const PruneEngineConfig& config,
                    const std::vector<Subscription*>& subs = {});

  ShardedPruningSet(const ShardedPruningSet&) = delete;
  ShardedPruningSet& operator=(const ShardedPruningSet&) = delete;

  /// Admits one subscription into its owning shard's queue — incremental,
  /// no rebuild (see PruningEngine::register_subscription).
  void add(Subscription& sub);
  /// Releases a subscription from its owning shard. Returns false (and does
  /// nothing) when the id is not tracked, so unsubscribe paths can call
  /// this unconditionally for local/untracked ids.
  bool remove(SubscriptionId id);
  [[nodiscard]] bool tracks(SubscriptionId id) const;
  [[nodiscard]] std::size_t subscription_count() const;

  /// Per-subscription {capacity, performed} accounting, routed to the
  /// owning shard (see PruningEngine::accounting). nullopt when untracked.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> accounting(
      SubscriptionId id) const;
  /// Crash-recovery accounting override, routed to the owning shard (see
  /// PruningEngine::restore_accounting).
  void restore_accounting(SubscriptionId id, std::size_t capacity,
                          std::size_t performed);

  /// Performs up to `k` prunings, always picking the shard whose pending
  /// best candidate rates best on the primary dimension — the closest
  /// approximation of the paper's single global queue that keeps all index
  /// maintenance shard-local. Returns how many were performed.
  std::size_t prune(std::size_t k);
  /// Prunes each shard to `fraction` of its own live capacity (idempotent:
  /// shards already at or past their target are left alone, so this is
  /// cheap to call after every churn step). Returns prunings performed.
  std::size_t prune_to_fraction(double fraction);

  /// Live capacity / performed prunings summed over shards.
  [[nodiscard]] std::size_t total_possible() const;
  [[nodiscard]] std::size_t performed() const;

  // --- Drift maintenance ---------------------------------------------------

  /// Arms every shard's drift trigger (see PruningEngine).
  void set_drift_threshold(std::size_t mutations);
  /// True when any shard accumulated enough table mutations to want a
  /// retrain + rescore.
  [[nodiscard]] bool drift_pending() const;
  /// Re-scores all queued candidates on every shard against the estimator's
  /// current values; call after retraining the backing EventStats.
  void rescore_all();

  /// Maintenance counters summed over shards.
  [[nodiscard]] PruningEngine::MaintenanceCounters maintenance() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] PruningEngine& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] const PruningEngine& shard(std::size_t i) const {
    return *shards_.at(i);
  }

 private:
  ShardedEngine* engine_;
  std::vector<std::unique_ptr<PruningEngine>> shards_;
};

}  // namespace dbsp
