#pragma once

/// \file
/// Heuristic pricing of candidate prunings: the Δ≈sel / Δ≈mem / Δ≈eff
/// scores of §3.1–3.3 and the lexicographic composite key of §3.4.

#include <array>

#include "core/dimension.hpp"
#include "selectivity/estimator.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// The three heuristic ratings of one candidate pruning (paper §3.1–3.3).
struct PruneScores {
  /// Δ≈sel: estimated selectivity degradation vs the *originally
  /// registered* subscription. Smaller is better; >= 0 by construction.
  double sel_degradation = 0.0;
  /// Δ≈mem: bytes saved on the subscription tree vs the tree *immediately
  /// before* this pruning. Larger is better; > 0 for every valid pruning.
  double mem_improvement = 0.0;
  /// Δ≈eff: pmin(pruned) − pmin(original). Larger (closer to zero) is
  /// better: it preserves the counting matcher's evaluation trigger.
  double eff_improvement = 0.0;
};

/// What the engine remembers about a subscription as registered, the fixed
/// baseline of Δ≈sel and Δ≈eff (§3.1/§3.3 compare against the unpruned
/// subscription on purpose — see the paper's discussion of accumulated
/// degradation).
struct OriginalProfile {
  SelectivityEstimate sel;
  std::uint32_t pmin = 0;
};

/// Maps a candidate's scores onto one dimension's axis, oriented so that
/// *smaller is better* for every dimension (Δ≈sel ascending, Δ≈mem and
/// Δ≈eff descending, as in §3.4).
[[nodiscard]] inline double oriented_score(const PruneScores& s, PruneDimension d) {
  switch (d) {
    case PruneDimension::NetworkLoad: return s.sel_degradation;
    case PruneDimension::MemoryUsage: return -s.mem_improvement;
    case PruneDimension::Throughput: return -s.eff_improvement;
  }
  return 0.0;
}

/// Composite lexicographic key for a dimension order; entry 0 is the
/// primary dimension, 1 and 2 break ties (§3.4).
[[nodiscard]] inline std::array<double, 3> composite_key(
    const PruneScores& s, const std::array<PruneDimension, 3>& order) {
  return {oriented_score(s, order[0]), oriented_score(s, order[1]),
          oriented_score(s, order[2])};
}

/// Prices candidate prunings. Stateless apart from the estimator; the
/// engine owns the per-subscription OriginalProfiles. Concurrent score()
/// calls are safe as long as the estimator and the scored trees are not
/// being mutated.
class HeuristicScorer {
 public:
  explicit HeuristicScorer(const SelectivityEstimator& estimator)
      : estimator_(&estimator) {}

  /// Captures the baseline of a freshly registered subscription.
  [[nodiscard]] OriginalProfile profile(const Node& root) const {
    return {estimator_->estimate(root), root.pmin()};
  }

  /// Scores pruning `path` on `current` (the possibly already-pruned tree)
  /// against the original baseline. Consistent by construction with what
  /// apply_pruning produces: the pruned tree is simulated and measured.
  [[nodiscard]] PruneScores score(const Node& current, const Node::Path& path,
                                  const OriginalProfile& original) const;

  [[nodiscard]] const SelectivityEstimator& estimator() const { return *estimator_; }

 private:
  const SelectivityEstimator* estimator_;
};

}  // namespace dbsp
