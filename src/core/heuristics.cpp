#include "core/heuristics.hpp"

#include "core/candidates.hpp"

namespace dbsp {

PruneScores HeuristicScorer::score(const Node& current, const Node::Path& path,
                                   const OriginalProfile& original) const {
  const auto pruned = simulate_pruning(current, path);

  PruneScores s;
  s.sel_degradation =
      std::max(0.0, selectivity_degradation(original.sel, estimator_->estimate(*pruned)));
  s.mem_improvement = static_cast<double>(current.size_bytes()) -
                      static_cast<double>(pruned->size_bytes());
  const double pruned_pmin = pruned->pmin() == Node::kPminUnsatisfiable
                                 ? 0.0
                                 : static_cast<double>(pruned->pmin());
  s.eff_improvement = pruned_pmin - static_cast<double>(original.pmin);
  return s;
}

}  // namespace dbsp
