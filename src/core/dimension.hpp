#pragma once

/// \file
/// The three optimization dimensions of the paper and their §3.4 tie-break
/// orders. Pure constexpr values and functions; trivially thread-safe.

#include <array>
#include <cstdint>

namespace dbsp {

/// The optimization dimension a pruning run targets (paper §3).
enum class PruneDimension : std::uint8_t {
  NetworkLoad,  ///< minimize selectivity degradation Δ≈sel (§3.1)
  MemoryUsage,  ///< maximize memory improvement Δ≈mem (§3.2)
  Throughput,   ///< maximize throughput improvement Δ≈eff (§3.3)
};

[[nodiscard]] constexpr const char* to_string(PruneDimension d) {
  switch (d) {
    case PruneDimension::NetworkLoad: return "network";
    case PruneDimension::MemoryUsage: return "memory";
    case PruneDimension::Throughput: return "throughput";
  }
  return "?";
}

/// The paper's tie-break orders (§3.4): the primary dimension followed by
/// the two others consulted on equal primary ratings.
[[nodiscard]] constexpr std::array<PruneDimension, 3> default_order(PruneDimension primary) {
  switch (primary) {
    case PruneDimension::NetworkLoad:
      return {PruneDimension::NetworkLoad, PruneDimension::Throughput,
              PruneDimension::MemoryUsage};
    case PruneDimension::MemoryUsage:
      return {PruneDimension::MemoryUsage, PruneDimension::NetworkLoad,
              PruneDimension::Throughput};
    case PruneDimension::Throughput:
      return {PruneDimension::Throughput, PruneDimension::NetworkLoad,
              PruneDimension::MemoryUsage};
  }
  return {primary, primary, primary};
}

}  // namespace dbsp
