#include "core/engine.hpp"

#include <stdexcept>

namespace dbsp {

PruningEngine::PruningEngine(const SelectivityEstimator& estimator,
                             PruneEngineConfig config, CountingMatcher* matcher)
    : config_(config), scorer_(estimator), matcher_(matcher) {}

void PruningEngine::register_subscription(Subscription& sub) {
  if (subs_.count(sub.id().value()) != 0) {
    throw std::invalid_argument("pruning engine: duplicate subscription");
  }
  SubState state;
  state.sub = &sub;
  state.original = scorer_.profile(sub.root());
  state.capacity = internal_prunings(sub.root());
  total_possible_ += state.capacity;
  auto [it, inserted] = subs_.emplace(sub.id().value(), std::move(state));
  (void)inserted;
  push_best_candidate(it->second);
  ++maintenance_.admissions;
  ++mutations_since_rescore_;
}

void PruningEngine::unregister_subscription(SubscriptionId id) {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) return;
  total_possible_ -= it->second.capacity;
  performed_ -= it->second.performed;
  // The subscription's queue entry (at most one; none if it had no
  // candidates or was pruned to exhaustion) dies lazily on pop or in the
  // next compaction sweep.
  if (it->second.queued) ++dead_entries_;
  subs_.erase(it);
  ++maintenance_.releases;
  ++mutations_since_rescore_;
  maybe_compact();
}

void PruningEngine::maybe_compact() {
  // Sweep only once dead entries dominate: amortized O(1) per release and
  // the queue never holds more than ~2x live entries.
  constexpr std::size_t kMinDead = 32;
  if (dead_entries_ < kMinDead || dead_entries_ * 2 < queue_.size()) return;
  std::vector<QueueEntry> live;
  live.reserve(queue_.size());
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    auto it = subs_.find(top.sub.value());
    if (it != subs_.end() && top.generation == it->second.sub->generation()) {
      live.push_back(top);
    }
    queue_.pop();
  }
  queue_ = decltype(queue_)(Compare{}, std::move(live));
  dead_entries_ = 0;
  ++maintenance_.queue_compactions;
}

void PruningEngine::rescore_all() {
  queue_ = decltype(queue_){};
  dead_entries_ = 0;
  for (auto& [id, state] : subs_) push_best_candidate(state);
  mutations_since_rescore_ = 0;
  ++maintenance_.full_rescores;
}

void PruningEngine::push_best_candidate(SubState& state) {
  state.queued = false;
  const auto order = config_.effective_order();
  const auto candidates = enumerate_prunings(state.sub->root(), config_.bottom_up);
  if (candidates.empty()) return;

  bool have_best = false;
  QueueEntry best;
  for (const auto& path : candidates) {
    const PruneScores scores = scorer_.score(state.sub->root(), path, state.original);
    const auto key = composite_key(scores, order);
    if (!have_best || key < best.key) {
      have_best = true;
      best.key = key;
      best.path = path;
      best.scores = scores;
    }
  }
  best.sub = state.sub->id();
  best.generation = state.sub->generation();
  best.seq = next_seq_++;
  queue_.push(std::move(best));
  state.queued = true;
}

bool PruningEngine::prune_one() {
  while (!queue_.empty()) {
    QueueEntry top = queue_.top();
    queue_.pop();
    auto it = subs_.find(top.sub.value());
    if (it == subs_.end()) {                                      // released
      if (dead_entries_ > 0) --dead_entries_;
      continue;
    }
    if (top.generation != it->second.sub->generation()) continue; // stale
    apply_pruning(*it->second.sub, top.path);
    if (matcher_ != nullptr && matcher_->contains(top.sub)) {
      matcher_->reindex(*it->second.sub);
    }
    ++performed_;
    ++it->second.performed;
    history_.push_back({top.sub, top.scores});
    push_best_candidate(it->second);
    return true;
  }
  return false;
}

std::size_t PruningEngine::prune(std::size_t k) {
  std::size_t done = 0;
  while (done < k && prune_one()) ++done;
  return done;
}

std::optional<double> PruningEngine::next_primary_rating() {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    auto it = subs_.find(top.sub.value());
    if (it == subs_.end() || top.generation != it->second.sub->generation()) {
      if (it == subs_.end() && dead_entries_ > 0) --dead_entries_;
      queue_.pop();  // stale; discard and keep looking
      continue;
    }
    return top.key[0];
  }
  return std::nullopt;
}

std::size_t PruningEngine::prune_until(double budget) {
  // The queue key is oriented so smaller is better: Δ≈sel ascending,
  // -Δ≈mem and -Δ≈eff ascending. A budget on the raw dimension value
  // therefore translates to key[0] <= oriented budget.
  const double oriented_budget =
      config_.effective_order()[0] == PruneDimension::NetworkLoad ? budget : -budget;
  std::size_t done = 0;
  for (auto rating = next_primary_rating();
       rating.has_value() && *rating <= oriented_budget;
       rating = next_primary_rating()) {
    if (!prune_one()) break;
    ++done;
  }
  return done;
}

std::optional<std::pair<std::size_t, std::size_t>> PruningEngine::accounting(
    SubscriptionId id) const {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) return std::nullopt;
  return std::make_pair(it->second.capacity, it->second.performed);
}

void PruningEngine::restore_accounting(SubscriptionId id, std::size_t capacity,
                                       std::size_t performed) {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) {
    throw std::invalid_argument("pruning engine: restore of unregistered subscription");
  }
  // Unsigned wrap in the deltas is fine: the add below undoes it exactly.
  total_possible_ += capacity - it->second.capacity;
  performed_ += performed - it->second.performed;
  it->second.capacity = capacity;
  it->second.performed = performed;
}

std::optional<PruneScores> PruningEngine::peek_best(SubscriptionId id) const {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) return std::nullopt;
  const auto candidates = enumerate_prunings(it->second.sub->root(), config_.bottom_up);
  if (candidates.empty()) return std::nullopt;
  const auto order = config_.effective_order();
  std::optional<PruneScores> best;
  std::array<double, 3> best_key{};
  for (const auto& path : candidates) {
    const PruneScores s = scorer_.score(it->second.sub->root(), path, it->second.original);
    const auto key = composite_key(s, order);
    if (!best || key < best_key) {
      best = s;
      best_key = key;
    }
  }
  return best;
}

const OriginalProfile* PruningEngine::original_profile(SubscriptionId id) const {
  auto it = subs_.find(id.value());
  if (it == subs_.end()) return nullptr;
  return &it->second.original;
}

}  // namespace dbsp
