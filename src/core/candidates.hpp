#pragma once

/// \file
/// Enumeration and application of candidate prunings on subscription trees.
/// All functions here are free of hidden state: the const-input ones
/// (internal_prunings, enumerate_prunings, is_prunable_child,
/// simulate_pruning) are safe to call concurrently on trees no thread is
/// mutating; apply_pruning mutates its subscription and needs external
/// synchronization with readers of the same tree.

#include <memory>
#include <vector>

#include "subscription/node.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Candidate enumeration and the pruning operator (DESIGN.md §1).
///
/// A pruning replaces the subtree at a node by the generalizing constant —
/// TRUE in positive polarity (even number of NOT ancestors), FALSE in
/// negative polarity — and simplifies. A node is a *prunable child* iff its
/// parent behaves conjunctively in the node's polarity (AND in positive,
/// OR in negative): only there does the replacement generalize the filter.
/// With the bottom-up restriction (paper §3.2) a pruning is *valid* iff
/// additionally no valid pruning exists inside the node's subtree, which
/// makes the number of prunings to exhaustion order-invariant.

/// Number of prunings inside the subtree rooted at `node` (excluding the
/// removal of `node` itself), assuming the bottom-up restriction. For the
/// root this is the subscription's total pruning capacity: the paper's
/// denominator for the "proportional number of prunings" axis.
[[nodiscard]] std::size_t internal_prunings(const Node& node, bool positive = true);

/// Paths of all currently valid prunings. `bottom_up` enforces the
/// restriction of §3.2 (on by default; off only for the ablation study).
[[nodiscard]] std::vector<Node::Path> enumerate_prunings(const Node& root,
                                                         bool bottom_up = true);

/// True iff `path` addresses a prunable child (parent conjunctive in the
/// node's polarity). Does not check the bottom-up restriction.
[[nodiscard]] bool is_prunable_child(const Node& root, const Node::Path& path);

/// Returns a copy of `root` with the node at `path` pruned and the tree
/// simplified. Throws std::invalid_argument for an invalid target. The
/// result is never a constant (pruning a prunable child of an n>=2-ary
/// conjunctive node cannot collapse the tree).
[[nodiscard]] std::unique_ptr<Node> simulate_pruning(const Node& root,
                                                     const Node::Path& path);

/// Applies a pruning in place: replaces the subscription's tree by the
/// pruned, simplified version (bumps the subscription's generation).
void apply_pruning(Subscription& sub, const Node::Path& path);

}  // namespace dbsp
