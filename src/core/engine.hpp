#pragma once

/// \file
/// The dimension-based pruning engine: one priority queue of best candidate
/// prunings per registered subscription (paper §3.4).

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidates.hpp"
#include "core/dimension.hpp"
#include "core/heuristics.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Configuration of a pruning run.
struct PruneEngineConfig {
  /// Primary optimization dimension; the tie-break order defaults to the
  /// paper's §3.4 orders but can be overridden (ablation A4).
  PruneDimension dimension = PruneDimension::NetworkLoad;
  std::optional<std::array<PruneDimension, 3>> order;
  /// Bottom-up restriction of §3.2. Disable only for ablation A3; without
  /// it the total number of prunings is order-dependent.
  bool bottom_up = true;

  [[nodiscard]] std::array<PruneDimension, 3> effective_order() const {
    return order.value_or(default_order(dimension));
  }
};

/// The dimension-based pruning engine (paper §3.4).
///
/// Holds one priority queue whose entries are the current *best* candidate
/// pruning of each registered subscription, keyed by the composite
/// (primary, secondary, tertiary) heuristic rating. prune_one() pops the
/// globally most effective pruning, applies it, resynchronizes the matcher
/// and re-inserts the subscription's next-best candidate — exactly the
/// scheme of §3.4. Stale queue entries (from superseded generations) are
/// skipped lazily.
///
/// Churn is incremental by design: register_subscription() admits one
/// subscription by scoring only its own candidates (one queue push, no
/// rebuild), and unregister_subscription() releases in O(1) plus a lazy
/// queue sweep once dead entries pile up. The only full re-scoring path is
/// rescore_all(), fired deliberately by the drift trigger after the
/// selectivity statistics were retrained — never by plain churn
/// (maintenance() counts both so tests can prove it).
///
/// Not thread-safe: all members mutate engine, subscription, or matcher
/// state and require external synchronization. Under the sharded engine,
/// run one PruningEngine per shard (ShardedPruningSet); engines
/// of different shards touch disjoint subscriptions and matchers, so they
/// may safely run on different threads.
class PruningEngine {
 public:
  /// `matcher` may be null for pure-algorithm runs (no index maintenance).
  PruningEngine(const SelectivityEstimator& estimator, PruneEngineConfig config,
                CountingMatcher* matcher = nullptr);

  /// Registers a subscription in its *unpruned* state: captures the Δ≈sel /
  /// Δ≈eff baseline, the subscription's pruning capacity, and queues the
  /// best candidate — O(candidates of this subscription), independent of
  /// how many subscriptions are already registered. The subscription must
  /// outlive the engine.
  void register_subscription(Subscription& sub);
  /// Releases a subscription: capacity and performed-pruning accounting are
  /// rolled back and its queue entry dies lazily (swept by the next
  /// compaction). Unknown ids are ignored, so unsubscribe paths can call
  /// this unconditionally.
  void unregister_subscription(SubscriptionId id);
  [[nodiscard]] bool contains(SubscriptionId id) const {
    return subs_.count(id.value()) != 0;
  }
  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }

  /// Performs the globally most effective pruning. Returns false when no
  /// valid pruning remains ("any other pruning removes a complete
  /// subscription").
  bool prune_one();
  /// Performs up to `k` prunings; returns how many were performed.
  std::size_t prune(std::size_t k);

  /// §3.4's second stopping rule: prunes while the *next* pruning's rating
  /// on the primary dimension is still within `budget`, i.e. while
  /// Δ≈sel <= budget (network), Δ≈mem >= budget (memory) or
  /// Δ≈eff >= budget (throughput). Returns the number performed.
  std::size_t prune_until(double budget);

  /// Σ over *currently registered* subscriptions of their pruning capacity
  /// a(root) — the paper's x-axis denominator. Capacity is captured at
  /// registration time and rolled back when a subscription is released, so
  /// under churn the denominator tracks the live population.
  [[nodiscard]] std::size_t total_possible() const { return total_possible_; }
  /// Prunings performed on currently registered subscriptions (prunings of
  /// since-released subscriptions are rolled back with their capacity).
  [[nodiscard]] std::size_t performed() const { return performed_; }

  // --- Adaptive maintenance (churn + drift) -------------------------------

  /// Counters proving the engine's maintenance behavior under churn:
  /// admissions/releases are incremental; full_rescores only ever moves on
  /// rescore_all() (the drift path); queue_compactions are lazy dead-entry
  /// sweeps that re-score nothing.
  struct MaintenanceCounters {
    std::uint64_t admissions = 0;
    std::uint64_t releases = 0;
    std::uint64_t queue_compactions = 0;
    std::uint64_t full_rescores = 0;
  };
  [[nodiscard]] const MaintenanceCounters& maintenance() const { return maintenance_; }

  /// Arms the drift trigger: after `mutations` register/unregister calls
  /// the engine reports drift_pending(), asking its owner to retrain the
  /// selectivity statistics and call rescore_all(). 0 disarms the trigger.
  /// Resets the mutation counter so an initial bulk load does not count.
  void set_drift_threshold(std::size_t mutations) {
    drift_threshold_ = mutations;
    mutations_since_rescore_ = 0;
  }
  [[nodiscard]] std::size_t drift_threshold() const { return drift_threshold_; }
  [[nodiscard]] std::size_t mutations_since_rescore() const {
    return mutations_since_rescore_;
  }
  [[nodiscard]] bool drift_pending() const {
    return drift_threshold_ > 0 && mutations_since_rescore_ >= drift_threshold_;
  }

  /// Re-scores every registered subscription's best candidate against the
  /// estimator's *current* values and rebuilds the queue. This is the one
  /// full-rebuild path, meant to run after the backing EventStats were
  /// retrained (the estimator holds them by reference, so retraining
  /// propagates without rewiring). Baselines (OriginalProfile) deliberately
  /// stay as captured at registration.
  void rescore_all();

  /// Per-subscription pruning accounting: {capacity captured at
  /// registration, prunings performed since}. nullopt for unknown ids.
  /// Snapshotted by the durable store so accounting survives restarts.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> accounting(
      SubscriptionId id) const;

  /// Crash-recovery hook: overrides a registered subscription's captured
  /// capacity and performed count with the values persisted before the
  /// crash. register_subscription() sees the recovered (already pruned)
  /// tree and would otherwise capture the smaller post-pruning capacity,
  /// silently shrinking total_possible()/performed() — and with them every
  /// prune_to_fraction() target — across a restart. Throws
  /// std::invalid_argument for unregistered ids.
  void restore_accounting(SubscriptionId id, std::size_t capacity,
                          std::size_t performed);

  /// Best candidate currently queued for a subscription (for tests).
  [[nodiscard]] std::optional<PruneScores> peek_best(SubscriptionId id) const;

  /// Rating of the globally best pending pruning on the primary dimension
  /// (oriented: smaller is better), or nullopt when exhausted. Skips stale
  /// queue entries without performing anything.
  [[nodiscard]] std::optional<double> next_primary_rating();

  struct Applied {
    SubscriptionId sub;
    PruneScores scores;
  };
  /// Chronological log of applied prunings (drives the ablation benches).
  [[nodiscard]] const std::vector<Applied>& history() const { return history_; }

  [[nodiscard]] const OriginalProfile* original_profile(SubscriptionId id) const;
  [[nodiscard]] const PruneEngineConfig& config() const { return config_; }

 private:
  struct QueueEntry {
    std::array<double, 3> key{};
    std::uint64_t seq = 0;  // FIFO among exact ties, for determinism
    std::uint64_t generation = 0;
    SubscriptionId sub;
    Node::Path path;
    PruneScores scores;
  };
  struct Compare {
    // priority_queue keeps the *largest* on top; invert to get the
    // smallest composite key (the most effective pruning) on top.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  struct SubState {
    Subscription* sub = nullptr;
    OriginalProfile original;
    std::size_t capacity = 0;   ///< pruning capacity captured at registration
    std::size_t performed = 0;  ///< prunings applied to this subscription
    bool queued = false;        ///< has a (single) live entry in queue_
  };

  /// Scores all valid candidates of `state.sub`'s current tree and pushes
  /// the best one (if any); maintains state.queued.
  void push_best_candidate(SubState& state);
  /// Sweeps dead queue entries (released subscriptions) once they dominate
  /// the queue. Filters and re-heapifies; re-scores nothing.
  void maybe_compact();

  PruneEngineConfig config_;
  HeuristicScorer scorer_;
  CountingMatcher* matcher_;
  std::unordered_map<SubscriptionId::value_type, SubState> subs_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Compare> queue_;
  std::vector<Applied> history_;
  std::size_t total_possible_ = 0;
  std::size_t performed_ = 0;
  std::uint64_t next_seq_ = 0;

  MaintenanceCounters maintenance_;
  std::size_t dead_entries_ = 0;  ///< upper bound on released entries in queue_
  std::size_t drift_threshold_ = 0;
  std::size_t mutations_since_rescore_ = 0;
};

}  // namespace dbsp
