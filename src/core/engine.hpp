#pragma once

/// \file
/// The dimension-based pruning engine: one priority queue of best candidate
/// prunings per registered subscription (paper §3.4).

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/candidates.hpp"
#include "core/dimension.hpp"
#include "core/heuristics.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// Configuration of a pruning run.
struct PruneEngineConfig {
  /// Primary optimization dimension; the tie-break order defaults to the
  /// paper's §3.4 orders but can be overridden (ablation A4).
  PruneDimension dimension = PruneDimension::NetworkLoad;
  std::optional<std::array<PruneDimension, 3>> order;
  /// Bottom-up restriction of §3.2. Disable only for ablation A3; without
  /// it the total number of prunings is order-dependent.
  bool bottom_up = true;

  [[nodiscard]] std::array<PruneDimension, 3> effective_order() const {
    return order.value_or(default_order(dimension));
  }
};

/// The dimension-based pruning engine (paper §3.4).
///
/// Holds one priority queue whose entries are the current *best* candidate
/// pruning of each registered subscription, keyed by the composite
/// (primary, secondary, tertiary) heuristic rating. prune_one() pops the
/// globally most effective pruning, applies it, resynchronizes the matcher
/// and re-inserts the subscription's next-best candidate — exactly the
/// scheme of §3.4. Stale queue entries (from superseded generations) are
/// skipped lazily.
///
/// Not thread-safe: all members mutate engine, subscription, or matcher
/// state and require external synchronization. Under the sharded engine,
/// run one PruningEngine per shard (make_sharded_pruning_engines); engines
/// of different shards touch disjoint subscriptions and matchers, so they
/// may safely run on different threads.
class PruningEngine {
 public:
  /// `matcher` may be null for pure-algorithm runs (no index maintenance).
  PruningEngine(const SelectivityEstimator& estimator, PruneEngineConfig config,
                CountingMatcher* matcher = nullptr);

  /// Registers a subscription in its *unpruned* state: captures the Δ≈sel /
  /// Δ≈eff baseline, the total pruning capacity, and queues the best
  /// candidate. The subscription must outlive the engine.
  void register_subscription(Subscription& sub);
  void unregister_subscription(SubscriptionId id);

  /// Performs the globally most effective pruning. Returns false when no
  /// valid pruning remains ("any other pruning removes a complete
  /// subscription").
  bool prune_one();
  /// Performs up to `k` prunings; returns how many were performed.
  std::size_t prune(std::size_t k);

  /// §3.4's second stopping rule: prunes while the *next* pruning's rating
  /// on the primary dimension is still within `budget`, i.e. while
  /// Δ≈sel <= budget (network), Δ≈mem >= budget (memory) or
  /// Δ≈eff >= budget (throughput). Returns the number performed.
  std::size_t prune_until(double budget);

  /// Σ over subscriptions of their pruning capacity a(root) — the paper's
  /// x-axis denominator. Fixed at registration time.
  [[nodiscard]] std::size_t total_possible() const { return total_possible_; }
  [[nodiscard]] std::size_t performed() const { return performed_; }

  /// Best candidate currently queued for a subscription (for tests).
  [[nodiscard]] std::optional<PruneScores> peek_best(SubscriptionId id) const;

  /// Rating of the globally best pending pruning on the primary dimension
  /// (oriented: smaller is better), or nullopt when exhausted. Skips stale
  /// queue entries without performing anything.
  [[nodiscard]] std::optional<double> next_primary_rating();

  struct Applied {
    SubscriptionId sub;
    PruneScores scores;
  };
  /// Chronological log of applied prunings (drives the ablation benches).
  [[nodiscard]] const std::vector<Applied>& history() const { return history_; }

  [[nodiscard]] const OriginalProfile* original_profile(SubscriptionId id) const;
  [[nodiscard]] const PruneEngineConfig& config() const { return config_; }

 private:
  struct QueueEntry {
    std::array<double, 3> key{};
    std::uint64_t seq = 0;  // FIFO among exact ties, for determinism
    std::uint64_t generation = 0;
    SubscriptionId sub;
    Node::Path path;
    PruneScores scores;
  };
  struct Compare {
    // priority_queue keeps the *largest* on top; invert to get the
    // smallest composite key (the most effective pruning) on top.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  struct SubState {
    Subscription* sub = nullptr;
    OriginalProfile original;
  };

  /// Scores all valid candidates of `state.sub`'s current tree and pushes
  /// the best one (if any).
  void push_best_candidate(const SubState& state);

  PruneEngineConfig config_;
  HeuristicScorer scorer_;
  CountingMatcher* matcher_;
  std::unordered_map<SubscriptionId::value_type, SubState> subs_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Compare> queue_;
  std::vector<Applied> history_;
  std::size_t total_possible_ = 0;
  std::size_t performed_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dbsp
