#include "core/sharded_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "agg/aggregator.hpp"
#include "common/env.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace dbsp {

const char* to_string(MatcherBackend backend) {
  switch (backend) {
    case MatcherBackend::Counting: return "counting";
    case MatcherBackend::Dnf: return "dnf";
    case MatcherBackend::Naive: return "naive";
  }
  return "?";
}

std::size_t resolve_shard_count(std::size_t requested) {
  if (requested > 0) return requested;
  const std::int64_t from_env = env_int(
      "DBSP_SHARDS", static_cast<std::int64_t>(ThreadPool::hardware_threads()));
  return from_env > 0 ? static_cast<std::size_t>(from_env) : 1;
}

ShardedEngine::ShardedEngine(const Schema& schema, ShardedEngineOptions options)
    : options_(options) {
  options_.shards = resolve_shard_count(options_.shards);
  if (options_.agg_fallback_pct == static_cast<std::size_t>(-1)) {
    options_.agg_fallback_pct = static_cast<std::size_t>(
        std::max<std::int64_t>(0, env_int("DBSP_AGG_FALLBACK_PCT", 10)));
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    switch (options_.backend) {
      case MatcherBackend::Counting:
        shards_.push_back(std::make_unique<ShardMatcher>(
            std::in_place_type<CountingMatcher>, schema));
        break;
      case MatcherBackend::Dnf:
        shards_.push_back(
            std::make_unique<ShardMatcher>(std::in_place_type<DnfMatcher>, schema));
        break;
      case MatcherBackend::Naive:
        shards_.push_back(
            std::make_unique<ShardMatcher>(std::in_place_type<NaiveMatcher>));
        break;
    }
  }
  batch_scratch_.resize(shards_.size());
}

std::size_t ShardedEngine::shard_of(SubscriptionId id) const {
  // splitmix64 finalizer: avalanches dense ids so shards stay balanced.
  std::uint64_t x = id.value() + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

void ShardedEngine::attach_aggregation(agg::SubscriptionAggregator* aggregator) {
  aggregator_ = aggregator;
}

bool ShardedEngine::add(Subscription& sub) {
  ShardMatcher& m = *shards_[shard_of(sub.id())];
  bool added = true;
  if (auto* counting = std::get_if<CountingMatcher>(&m)) {
    counting->add(sub);
  } else if (auto* dnf = std::get_if<DnfMatcher>(&m)) {
    added = dnf->add(sub, options_.max_dnf_conjunctions);
  } else {
    std::get<NaiveMatcher>(m).add(sub);
  }
  if (added && aggregator_ != nullptr) aggregator_->add(sub);
  return added;
}

void ShardedEngine::remove(SubscriptionId id) {
  std::visit([id](auto& matcher) { matcher.remove(id); }, *shards_[shard_of(id)]);
  if (aggregator_ != nullptr) aggregator_->remove(id);
}

void ShardedEngine::reindex(Subscription& sub) {
  ShardMatcher& m = *shards_[shard_of(sub.id())];
  auto* counting = std::get_if<CountingMatcher>(&m);
  if (counting == nullptr) {
    throw std::logic_error("sharded engine: reindex requires the counting backend");
  }
  counting->reindex(sub);
  if (aggregator_ != nullptr) aggregator_->refresh(sub);
}

bool ShardedEngine::contains(SubscriptionId id) const {
  const ShardMatcher& m = *shards_[shard_of(id)];
  if (const auto* counting = std::get_if<CountingMatcher>(&m)) {
    return counting->contains(id);
  }
  if (const auto* dnf = std::get_if<DnfMatcher>(&m)) return dnf->contains(id);
  return std::get<NaiveMatcher>(m).contains(id);
}

std::size_t ShardedEngine::subscription_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += std::visit([](const auto& m) { return m.subscription_count(); }, *shard);
  }
  return total;
}

std::size_t ShardedEngine::association_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    if (const auto* counting = std::get_if<CountingMatcher>(shard.get())) {
      total += counting->association_count();
    } else if (const auto* dnf = std::get_if<DnfMatcher>(shard.get())) {
      total += dnf->association_count();
    }
  }
  return total;
}

std::size_t ShardedEngine::associations_of(SubscriptionId id) const {
  return counting_shard(shard_of(id)).associations_of(id);
}

void ShardedEngine::match_shard(std::size_t shard, const Event& event,
                                std::vector<SubscriptionId>& out) {
  std::visit([&](auto& matcher) { matcher.match(event, out); }, *shards_[shard]);
}

std::size_t ShardedEngine::aggregated_budget() const {
  if (options_.agg_fallback_pct == 0) {
    return std::numeric_limits<std::size_t>::max();
  }
  return aggregator_->subscription_count() * options_.agg_fallback_pct / 100;
}

bool ShardedEngine::use_aggregated_path() const {
  return aggregator_ != nullptr &&
         aggregated_budget() >= aggregator_->subgroup_slots();
}

void ShardedEngine::match(const Event& event, std::vector<SubscriptionId>& out,
                          obs::TraceBuilder* trace) {
  const auto base = static_cast<std::ptrdiff_t>(out.size());
  const bool probed = use_aggregated_path();
  bool matched = false;
  if (probed) {
    obs::PhaseTimer timer(shard_hist(shard_match_us_, 0));
    obs::ScopedSpan span(trace, obs::TraceStage::kAggProbe,
                         /*detailed_only=*/true);
    matched = aggregator_->match_within(event, out, aggregated_budget());
    span.set_detail(static_cast<std::uint64_t>(out.size() -
                                               static_cast<std::size_t>(base)));
  }
  if (!matched) {
    // Span only when the probe actually declined; the plain sharded path
    // records per-shard spans without a fallback wrapper.
    std::optional<obs::ScopedSpan> fallback;
    if (probed) {
      fallback.emplace(trace, obs::TraceStage::kAggFallback,
                       /*detailed_only=*/true);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      obs::PhaseTimer timer(shard_hist(shard_match_us_, s));
      obs::ScopedSpan span(trace, obs::TraceStage::kShardMatch,
                           /*detailed_only=*/true);
      span.set_detail(s);
      match_shard(s, event, out);
    }
  }
  std::sort(out.begin() + base, out.end());
}

ThreadPool& ShardedEngine::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(shards_.size() - 1);
  return *pool_;
}

void ShardedEngine::match_batch_aggregated(
    std::span<const Event> events, std::vector<std::vector<SubscriptionId>>& out) {
  out.resize(events.size());
  // With the aggregation front stage every probe sees the whole (read-only)
  // subgroup index, so the pool parallelizes over events instead of shards:
  // each worker fills a disjoint chunk of result rows. Budget-declined
  // events are flagged (disjoint element writes) and re-run through the
  // shard-parallel path afterwards.
  const std::size_t budget = aggregated_budget();
  std::vector<char> declined(events.size(), 0);
  const std::size_t workers =
      std::min(shards_.size(), events.size() == 0 ? std::size_t{1} : events.size());
  auto run_chunk = [&](std::size_t w) {
    obs::PhaseTimer timer(shard_hist(shard_match_us_, w));
    if (auto* hist = shard_hist(shard_batch_events_, w)) {
      hist->record(static_cast<double>(events.size()));
    }
    for (std::size_t e = w; e < events.size(); e += workers) {
      out[e].clear();
      if (aggregator_->match_within(events[e], out[e], budget)) {
        std::sort(out[e].begin(), out[e].end());
      } else {
        declined[e] = 1;
      }
    }
  };
  if (workers <= 1) {
    run_chunk(0);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      futures.push_back(pool().submit([&run_chunk, w] { run_chunk(w); }));
    }
    std::exception_ptr error;
    try {
      run_chunk(0);
    } catch (...) {
      error = std::current_exception();
    }
    for (auto& f : futures) f.wait();
    if (error) std::rethrow_exception(error);
    for (auto& f : futures) f.get();
  }

  std::vector<std::size_t> rest;
  for (std::size_t e = 0; e < events.size(); ++e) {
    if (declined[e] != 0) rest.push_back(e);
  }
  if (rest.empty()) return;
  std::vector<Event> rest_events;
  rest_events.reserve(rest.size());
  for (const std::size_t e : rest) rest_events.push_back(events[e]);
  std::vector<std::vector<SubscriptionId>> rest_out;
  match_batch_sharded(rest_events, rest_out);
  for (std::size_t k = 0; k < rest.size(); ++k) {
    out[rest[k]] = std::move(rest_out[k]);
  }
}

void ShardedEngine::match_batch(std::span<const Event> events,
                                std::vector<std::vector<SubscriptionId>>& out) {
  if (use_aggregated_path()) {
    match_batch_aggregated(events, out);
    return;
  }
  match_batch_sharded(events, out);
}

void ShardedEngine::match_batch_sharded(
    std::span<const Event> events, std::vector<std::vector<SubscriptionId>>& out) {
  out.resize(events.size());
  if (shards_.size() == 1) {
    obs::PhaseTimer timer(shard_hist(shard_match_us_, 0));
    if (auto* hist = shard_hist(shard_batch_events_, 0)) {
      hist->record(static_cast<double>(events.size()));
    }
    for (std::size_t e = 0; e < events.size(); ++e) {
      out[e].clear();
      match_shard(0, events[e], out[e]);
      std::sort(out[e].begin(), out[e].end());
    }
    return;
  }

  // Each worker records only into its own shard's series, so the fan-out
  // stays free of cross-thread cache-line contention.
  auto run_shard = [&](std::size_t s) {
    obs::PhaseTimer timer(shard_hist(shard_match_us_, s));
    if (auto* hist = shard_hist(shard_batch_events_, s)) {
      hist->record(static_cast<double>(events.size()));
    }
    auto& rows = batch_scratch_[s];
    rows.resize(events.size());
    for (std::size_t e = 0; e < events.size(); ++e) {
      rows[e].clear();
      match_shard(s, events[e], rows[e]);
    }
  };

  // Shards 1..N-1 on the pool, shard 0 on the calling thread.
  std::vector<std::future<void>> futures;
  futures.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    futures.push_back(pool().submit([&run_shard, s] { run_shard(s); }));
  }
  // The pool tasks reference this call's stack, so every path — including
  // shard 0 throwing — must wait for all of them before unwinding. Only
  // then surface the first failure.
  std::exception_ptr error;
  try {
    run_shard(0);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& f : futures) f.wait();
  if (error) std::rethrow_exception(error);
  for (auto& f : futures) f.get();

  for (std::size_t e = 0; e < events.size(); ++e) {
    out[e].clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& row = batch_scratch_[s][e];
      out[e].insert(out[e].end(), row.begin(), row.end());
    }
    std::sort(out[e].begin(), out[e].end());
  }
}

std::vector<std::vector<SubscriptionId>> ShardedEngine::match_batch(
    std::span<const Event> events) {
  std::vector<std::vector<SubscriptionId>> out;
  match_batch(events, out);
  return out;
}

CountingMatcher& ShardedEngine::counting_shard(std::size_t shard) {
  auto* counting = std::get_if<CountingMatcher>(shards_.at(shard).get());
  if (counting == nullptr) {
    throw std::logic_error("sharded engine: shard does not run the counting backend");
  }
  return *counting;
}

const CountingMatcher& ShardedEngine::counting_shard(std::size_t shard) const {
  const auto* counting = std::get_if<CountingMatcher>(shards_.at(shard).get());
  if (counting == nullptr) {
    throw std::logic_error("sharded engine: shard does not run the counting backend");
  }
  return *counting;
}

CountingMatcher::Counters ShardedEngine::counters() const {
  CountingMatcher::Counters total;
  for (const auto& shard : shards_) {
    if (const auto* counting = std::get_if<CountingMatcher>(shard.get())) {
      const auto& c = counting->counters();
      total.events = std::max(total.events, c.events);  // every shard sees each event
      total.predicate_hits += c.predicate_hits;
      total.counter_increments += c.counter_increments;
      total.tree_evaluations += c.tree_evaluations;
      total.matches += c.matches;
    }
  }
  return total;
}

void ShardedEngine::attach_metrics(obs::MetricsRegistry& registry) {
  shard_match_us_.clear();
  shard_batch_events_.clear();
  shard_match_us_.reserve(shards_.size());
  shard_batch_events_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string shard = std::to_string(s);
    shard_match_us_.push_back(
        &registry.histogram("dbsp_shard_match_us", {{"shard", shard}}));
    shard_batch_events_.push_back(
        &registry.histogram("dbsp_shard_batch_events", {{"shard", shard}}));
  }
}

void ShardedEngine::reset_counters() {
  for (auto& shard : shards_) {
    if (auto* counting = std::get_if<CountingMatcher>(shard.get())) {
      counting->reset_counters();
    }
  }
}

std::vector<std::unique_ptr<PruningEngine>> make_sharded_pruning_engines(
    ShardedEngine& engine, const SelectivityEstimator& estimator,
    const PruneEngineConfig& config, const std::vector<Subscription*>& subs) {
  std::vector<std::unique_ptr<PruningEngine>> out;
  out.reserve(engine.shard_count());
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    out.push_back(std::make_unique<PruningEngine>(estimator, config,
                                                  &engine.counting_shard(s)));
  }
  for (Subscription* sub : subs) {
    out[engine.shard_of(sub->id())]->register_subscription(*sub);
  }
  return out;
}

}  // namespace dbsp
