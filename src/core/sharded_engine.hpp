#pragma once

/// \file
/// The sharded concurrent matching engine and its per-shard pruning hook —
/// the scaling layer between the matchers (filter/) and the broker.

#include <cstddef>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "filter/counting_matcher.hpp"
#include "filter/dnf_matcher.hpp"
#include "filter/naive_matcher.hpp"
#include "obs/metrics.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

namespace agg {
class SubscriptionAggregator;
}  // namespace agg

namespace obs {
class TraceBuilder;
}  // namespace obs

/// Which matcher algorithm each shard runs. All shards of one engine use
/// the same backend; the choice trades per-event cost against feature set
/// (only Counting supports reindex-after-pruning and the pmin trigger).
enum class MatcherBackend {
  Counting,  ///< non-canonical counting matcher (the pruning substrate)
  Dnf,       ///< canonical DNF counting matcher (baseline; add() can fail)
  Naive,     ///< direct tree evaluation (correctness oracle)
};

[[nodiscard]] const char* to_string(MatcherBackend backend);

/// Construction-time knobs of a ShardedEngine.
struct ShardedEngineOptions {
  /// Number of shards. 0 = auto: the DBSP_SHARDS environment knob when set,
  /// otherwise the machine's hardware concurrency.
  std::size_t shards = 0;
  MatcherBackend backend = MatcherBackend::Counting;
  /// Conversion cap forwarded to DnfMatcher::add (Dnf backend only).
  std::size_t max_dnf_conjunctions = 4096;
  /// Aggregated-match candidate budget as a percentage of the table: when
  /// the summary probe admits more than this share of the subscriptions,
  /// the event falls back to the exact shard index (whose per-subscription
  /// cost is far below a naive tree evaluation). 0 disables the fallback
  /// (always evaluate the admitted candidates). SIZE_MAX = auto: the
  /// DBSP_AGG_FALLBACK_PCT environment knob, default 10.
  std::size_t agg_fallback_pct = static_cast<std::size_t>(-1);
};

/// Resolves a requested shard count: a positive request is taken verbatim;
/// 0 reads env_int("DBSP_SHARDS") and falls back to hardware concurrency.
/// The result is always at least 1.
[[nodiscard]] std::size_t resolve_shard_count(std::size_t requested);

/// A horizontally partitioned matching engine: subscriptions are spread
/// across N shards by a stable hash of their id, with one independent
/// matcher instance (and thus one independent filter table) per shard.
/// Sharding composes with dimension-based pruning — pruning shrinks every
/// shard's filter table, sharding splits the tables across cores — and is
/// the first scaling layer toward the ROADMAP's high-traffic target.
///
/// Matching semantics are exactly those of the underlying matcher: every
/// event is checked against all shards, and because each subscription lives
/// in exactly one shard the union of the shard results equals the unsharded
/// match set. Both match() and match_batch() return each event's matches
/// sorted by subscription id, so results are deterministic and independent
/// of the shard count (proved by sharded_engine_test).
///
/// Thread safety: add/remove/reindex and the match entry points mutate
/// engine state and must be externally serialized — one writer OR one
/// matching call at a time (the match-vs-churn exclusion contract).
/// Inside match_batch() the engine fans the batch out to its shards on an
/// internal thread pool (created lazily on first use when shard_count() >
/// 1); each worker touches only its own shard's matcher and scratch row,
/// so no two threads ever share mutable state. Distinct ShardedEngine
/// instances are fully independent and may be used from different threads
/// concurrently.
///
/// Enforcement: the engine itself carries no lock — its serializer is its
/// owner. In the public API the owning PubSubCore declares its engine
/// member DBSP_GUARDED_BY the facade mutex, so under clang's thread-safety
/// analysis any facade path that touches the engine without holding that
/// lock is a compile error, and tests/concurrent_stress_test.cpp races
/// the contract under ThreadSanitizer (see docs/ARCHITECTURE.md
/// "Concurrency contracts & static analysis").
class ShardedEngine {
 public:
  explicit ShardedEngine(const Schema& schema, ShardedEngineOptions options = {});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Registers `sub` with the matcher of its shard. Returns false (and
  /// registers nothing) only for the Dnf backend when the tree is not
  /// DNF-convertible within the conjunction cap. The subscription must
  /// outlive the engine and its address must be stable. A subscription may
  /// be registered with at most one counting-backed engine at a time (the
  /// counting matcher stamps its predicate ids into the tree's leaves).
  bool add(Subscription& sub);

  /// Unregisters by id; throws std::out_of_range when unknown (uniform
  /// across all three backends).
  void remove(SubscriptionId id);

  /// Re-synchronizes the owning shard after the subscription's tree changed
  /// (pruning). Counting backend only; throws std::logic_error otherwise.
  void reindex(Subscription& sub);

  [[nodiscard]] bool contains(SubscriptionId id) const;
  [[nodiscard]] std::size_t subscription_count() const;

  /// Predicate/subscription associations summed over shards (the memory
  /// metric). Counting and Dnf backends; 0 for Naive.
  [[nodiscard]] std::size_t association_count() const;
  /// Associations contributed by one subscription (Counting backend only).
  [[nodiscard]] std::size_t associations_of(SubscriptionId id) const;

  /// Matches one event against every shard on the calling thread and
  /// appends the union of the shard results to `out`, sorted by id.
  /// A non-null `trace` collects per-stage spans (aggregation probe,
  /// fallback, per-shard match) for head-sampled traces.
  void match(const Event& event, std::vector<SubscriptionId>& out,
             obs::TraceBuilder* trace = nullptr);

  /// Batched dispatch: fans `events` out to the shards (shard 0 runs on the
  /// calling thread, the rest on the internal pool), then merges the
  /// per-shard results into one sorted subscriber-id list per event.
  /// `out` is resized to events.size(); row buffers are reused.
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<SubscriptionId>>& out);

  /// Convenience overload allocating the result rows.
  [[nodiscard]] std::vector<std::vector<SubscriptionId>> match_batch(
      std::span<const Event> events);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Stable shard assignment of a subscription id (splitmix64 finalizer,
  /// identical on every platform and run).
  [[nodiscard]] std::size_t shard_of(SubscriptionId id) const;
  [[nodiscard]] MatcherBackend backend() const { return options_.backend; }

  /// Direct access to one shard's CountingMatcher — the hook for running a
  /// PruningEngine per shard. Throws std::logic_error for other backends.
  [[nodiscard]] CountingMatcher& counting_shard(std::size_t shard);
  [[nodiscard]] const CountingMatcher& counting_shard(std::size_t shard) const;

  /// Introspection counters summed over shards (Counting backend; zeros
  /// otherwise).
  [[nodiscard]] CountingMatcher::Counters counters() const;
  void reset_counters();

  /// Attaches an aggregation front stage (or nullptr to detach). While
  /// attached the engine forwards add/remove/reindex churn to the
  /// aggregator and routes match()/match_batch() through it: events probe
  /// the subgroup summaries and only the member trees of admitted
  /// subgroups are evaluated (false-positive-only probing, so results stay
  /// identical to the unaggregated path). When the probe admits more than
  /// agg_fallback_pct percent of the table, the event is matched by the
  /// exact shard index instead — same results, index-speed worst case —
  /// and while that budget is still below the subgroup count (small
  /// populations), the probe is skipped entirely since it could not pay
  /// for itself. The shard matchers keep indexing
  /// every subscription, so pruning and the introspection surface keep
  /// working. The aggregator must outlive the attachment, be empty when
  /// attached to a non-empty engine's owner flow (attach before the first
  /// add), and be churned exclusively through this engine afterwards.
  /// In match_batch() the internal pool parallelizes over *events* instead
  /// of shards while an aggregator is attached.
  void attach_aggregation(agg::SubscriptionAggregator* aggregator);
  [[nodiscard]] agg::SubscriptionAggregator* aggregation() const { return aggregator_; }

  /// Registers per-shard observability series with `registry`:
  /// `dbsp_shard_match_us{shard="i"}` (per-shard match latency in
  /// microseconds — per event in match(), per batch in match_batch()) and
  /// `dbsp_shard_batch_events{shard="i"}` (match_batch batch sizes). The
  /// registry must outlive the engine; recording is lock-free, so the
  /// match_batch shard workers stay contention-free (each worker touches
  /// only its own shard's series). Call at most once, before matching
  /// starts; without it matching records nothing.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  using ShardMatcher = std::variant<CountingMatcher, DnfMatcher, NaiveMatcher>;

  /// Lazily created fan-out pool (shard_count() - 1 workers).
  ThreadPool& pool();
  void match_shard(std::size_t shard, const Event& event,
                   std::vector<SubscriptionId>& out);

  /// The shard's histogram when attach_metrics ran, else nullptr.
  [[nodiscard]] obs::Histogram* shard_hist(
      const std::vector<obs::Histogram*>& hists, std::size_t shard) const {
    return shard < hists.size() ? hists[shard] : nullptr;
  }

  /// Aggregated-match candidate budget for one event (SIZE_MAX when the
  /// fallback is disabled).
  [[nodiscard]] std::size_t aggregated_budget() const;

  /// Probing costs one admit check per subgroup slot; when the candidate
  /// budget is below that, even a perfectly pruned probe cannot save more
  /// work than it spends, so small populations route straight to the
  /// counting shards.
  [[nodiscard]] bool use_aggregated_path() const;

  /// Aggregated batch dispatch: the pool chunks `events` across workers,
  /// each probing the (read-only) aggregator into disjoint `out` rows.
  /// Events whose probe exceeds the candidate budget are re-run through
  /// the shard-parallel path afterwards.
  void match_batch_aggregated(std::span<const Event> events,
                              std::vector<std::vector<SubscriptionId>>& out);

  /// Unaggregated batch dispatch (shard fan-out on the pool).
  void match_batch_sharded(std::span<const Event> events,
                           std::vector<std::vector<SubscriptionId>>& out);

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<ShardMatcher>> shards_;
  agg::SubscriptionAggregator* aggregator_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  /// Per-shard result rows reused across match_batch calls.
  std::vector<std::vector<std::vector<SubscriptionId>>> batch_scratch_;
  /// Per-shard series (empty until attach_metrics; then one per shard).
  std::vector<obs::Histogram*> shard_match_us_;
  std::vector<obs::Histogram*> shard_batch_events_;
};

/// Builds one PruningEngine per shard of `engine` (Counting backend
/// required), wired to that shard's matcher, and registers each of `subs`
/// with the engine owning its shard. Pruning each engine to a fraction of
/// its own capacity approximates the global priority-queue schedule while
/// keeping all index maintenance shard-local.
///
/// Most callers want the ShardedPruningSet wrapper (core/pruning_set.hpp),
/// which owns these engines and routes unregister_subscription to the
/// owning shard — raw use leaves unsubscribe routing to the caller.
[[nodiscard]] std::vector<std::unique_ptr<PruningEngine>> make_sharded_pruning_engines(
    ShardedEngine& engine, const SelectivityEstimator& estimator,
    const PruneEngineConfig& config, const std::vector<Subscription*>& subs);

}  // namespace dbsp
