#include "core/pruning_set.hpp"

#include <cmath>

namespace dbsp {

ShardedPruningSet::ShardedPruningSet(ShardedEngine& engine,
                                     const SelectivityEstimator& estimator,
                                     const PruneEngineConfig& config,
                                     const std::vector<Subscription*>& subs)
    : engine_(&engine),
      shards_(make_sharded_pruning_engines(engine, estimator, config, subs)) {}

void ShardedPruningSet::add(Subscription& sub) {
  shards_[engine_->shard_of(sub.id())]->register_subscription(sub);
}

bool ShardedPruningSet::remove(SubscriptionId id) {
  PruningEngine& shard = *shards_[engine_->shard_of(id)];
  if (!shard.contains(id)) return false;
  shard.unregister_subscription(id);
  return true;
}

bool ShardedPruningSet::tracks(SubscriptionId id) const {
  return shards_[engine_->shard_of(id)]->contains(id);
}

std::optional<std::pair<std::size_t, std::size_t>> ShardedPruningSet::accounting(
    SubscriptionId id) const {
  return shards_[engine_->shard_of(id)]->accounting(id);
}

void ShardedPruningSet::restore_accounting(SubscriptionId id, std::size_t capacity,
                                           std::size_t performed) {
  shards_[engine_->shard_of(id)]->restore_accounting(id, capacity, performed);
}

std::size_t ShardedPruningSet::subscription_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->subscription_count();
  return total;
}

std::size_t ShardedPruningSet::prune(std::size_t k) {
  std::size_t done = 0;
  while (done < k) {
    PruningEngine* best = nullptr;
    double best_rating = 0.0;
    for (const auto& shard : shards_) {
      const auto rating = shard->next_primary_rating();
      if (rating.has_value() && (best == nullptr || *rating < best_rating)) {
        best = shard.get();
        best_rating = *rating;
      }
    }
    if (best == nullptr || !best->prune_one()) break;
    ++done;
  }
  return done;
}

std::size_t ShardedPruningSet::prune_to_fraction(double fraction) {
  std::size_t done = 0;
  for (const auto& shard : shards_) {
    const auto target = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(shard->total_possible())));
    if (target > shard->performed()) {
      done += shard->prune(target - shard->performed());
    }
  }
  return done;
}

std::size_t ShardedPruningSet::total_possible() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->total_possible();
  return total;
}

std::size_t ShardedPruningSet::performed() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->performed();
  return total;
}

void ShardedPruningSet::set_drift_threshold(std::size_t mutations) {
  for (const auto& shard : shards_) shard->set_drift_threshold(mutations);
}

bool ShardedPruningSet::drift_pending() const {
  for (const auto& shard : shards_) {
    if (shard->drift_pending()) return true;
  }
  return false;
}

void ShardedPruningSet::rescore_all() {
  for (const auto& shard : shards_) shard->rescore_all();
}

PruningEngine::MaintenanceCounters ShardedPruningSet::maintenance() const {
  PruningEngine::MaintenanceCounters total;
  for (const auto& shard : shards_) {
    const auto& m = shard->maintenance();
    total.admissions += m.admissions;
    total.releases += m.releases;
    total.queue_compactions += m.queue_compactions;
    total.full_rescores += m.full_rescores;
  }
  return total;
}

}  // namespace dbsp
