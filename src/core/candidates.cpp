#include "core/candidates.hpp"

#include <stdexcept>

namespace dbsp {

namespace {

/// Does `parent` behave conjunctively for children in polarity `positive`?
/// (AND in positive polarity; OR under an odd number of NOTs, where by
/// De Morgan it acts as a conjunction.)
[[nodiscard]] bool conjunctive(const Node& parent, bool positive) {
  return (parent.kind() == NodeKind::And && positive) ||
         (parent.kind() == NodeKind::Or && !positive);
}

void enumerate_walk(const Node& node, bool positive, bool bottom_up,
                    Node::Path& prefix, std::vector<Node::Path>& out) {
  const bool flips = node.kind() == NodeKind::Not;
  const bool child_positive = flips ? !positive : positive;
  for (std::uint32_t i = 0; i < node.children().size(); ++i) {
    const Node& child = *node.children()[i];
    prefix.push_back(i);
    if (conjunctive(node, child_positive) &&
        (!bottom_up || internal_prunings(child, child_positive) == 0)) {
      out.push_back(prefix);
    }
    enumerate_walk(child, child_positive, bottom_up, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::size_t internal_prunings(const Node& node, bool positive) {
  switch (node.kind()) {
    case NodeKind::Leaf:
    case NodeKind::True:
    case NodeKind::False:
      return 0;
    case NodeKind::Not:
      return internal_prunings(*node.children()[0], !positive);
    case NodeKind::And:
    case NodeKind::Or: {
      const bool conj = conjunctive(node, positive);
      std::size_t total = 0;
      for (const auto& c : node.children()) total += internal_prunings(*c, positive);
      if (conj) {
        // Every child can additionally be removed itself, except the last
        // one standing.
        total += node.children().size() - 1;
      }
      return total;
    }
  }
  return 0;
}

std::vector<Node::Path> enumerate_prunings(const Node& root, bool bottom_up) {
  std::vector<Node::Path> out;
  Node::Path prefix;
  enumerate_walk(root, /*positive=*/true, bottom_up, prefix, out);
  return out;
}

bool is_prunable_child(const Node& root, const Node::Path& path) {
  if (path.empty()) return false;  // the root itself is never pruned
  const Node* parent = &root;
  bool positive = true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (parent->kind() == NodeKind::Not) positive = !positive;
    if (path[i] >= parent->children().size()) return false;
    parent = parent->children()[path[i]].get();
  }
  if (parent->kind() == NodeKind::Not) positive = !positive;
  if (path.back() >= parent->children().size()) return false;
  return conjunctive(*parent, positive);
}

std::unique_ptr<Node> simulate_pruning(const Node& root, const Node::Path& path) {
  if (!is_prunable_child(root, path)) {
    throw std::invalid_argument("pruning: target is not a prunable child");
  }
  auto copy = root.clone();
  // Recompute the polarity at the target to pick the generalizing constant.
  bool positive = true;
  const Node* walk = copy.get();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (walk->kind() == NodeKind::Not) positive = !positive;
    walk = walk->children()[path[i]].get();
  }
  if (walk->kind() == NodeKind::Not) positive = !positive;
  Node* parent = copy->resolve(Node::Path(path.begin(), path.end() - 1));
  parent->children()[path.back()] = Node::constant(positive);
  auto simplified = simplify(std::move(copy));
  if (simplified->is_constant()) {
    // Unreachable for valid targets; guard against future operator changes.
    throw std::logic_error("pruning: tree collapsed to a constant");
  }
  return simplified;
}

void apply_pruning(Subscription& sub, const Node::Path& path) {
  sub.replace_root(simulate_pruning(sub.root(), path));
}

}  // namespace dbsp
