#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "event/event.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Raised when decoding hits truncated or malformed input.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Little-endian binary wire format of the broker protocol. The simulated
/// network charges exactly these encoded sizes; a socket-based transport
/// would ship these bytes as-is.
///
/// Layout (all integers little-endian):
///   header  := magic u8 (0xDB), version u8 (1..kWireFormatVersion)
///   value   := tag u8 (0 int | 1 double | 2 string | 3 bool) payload
///   event   := count u16, (attr u32, value)*
///   pred    := attr u32, op u8, operand-count u16, value*
///   tree    := kind u8 (0 leaf | 1 and | 2 or | 3 not), leaf: pred,
///              and/or: count u16 + children, not: child
///
/// Every message and durable file (WAL, snapshot) starts with the 2-byte
/// header; decoders reject unknown versions with a clean WireError so the
/// format can evolve without old readers misparsing new bytes.

/// The magic byte opening every wire header.
inline constexpr std::uint8_t kWireMagic = 0xDB;
/// Current format version. Bump when the encoding of any payload changes;
/// decode_wire_header rejects anything newer (or version 0).
inline constexpr std::uint8_t kWireFormatVersion = 1;
/// Bytes added by encode_wire_header (magic + version).
inline constexpr std::size_t kWireHeaderBytes = 2;
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_string(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Default ceiling of FrameAssembler: no legitimate message (event, tree,
/// or batch) comes close to 1 MiB, so anything larger is hostile or
/// corrupt and is rejected before a single byte is buffered for it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Incremental assembler for u32-length-prefixed frames arriving as an
/// arbitrary byte stream (the socket transport's read path). WireReader
/// assumes it sees whole messages and treats underflow as corruption; the
/// assembler sits in front of it and buffers stream fragments until a
/// complete frame is available, so a read that stops mid-frame — at *any*
/// byte boundary, even inside the length prefix — resumes cleanly on the
/// next push().
///
/// Hostile-input contract: a zero or over-limit length prefix throws
/// WireError immediately (before buffering the alleged payload), which
/// caps the memory any peer can pin to max_frame + one read buffer. After
/// a throw the stream is unrecoverable by design — framing is lost — and
/// the owner must drop the connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  /// Appends raw stream bytes (no alignment with frame boundaries needed).
  void push(std::span<const std::uint8_t> bytes);

  /// Returns the payload of the next complete frame (length prefix
  /// stripped), or nullopt when more bytes are needed. Throws WireError on
  /// a zero or over-limit length prefix.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  /// Bytes buffered but not yet returned by next().
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }
  [[nodiscard]] std::size_t max_frame_bytes() const { return max_frame_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
};

/// Appends one length-prefixed frame (u32 LE length + payload) to `out` —
/// the encoding FrameAssembler::next() reverses. Throws WireError when the
/// payload is empty or exceeds max_frame_bytes.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes the 2-byte header: magic + kWireFormatVersion.
void encode_wire_header(WireWriter& out);
/// Reads and validates a header; returns the (accepted) format version.
/// Throws WireError on a wrong magic byte or a version this build cannot
/// decode (0 or newer than kWireFormatVersion).
[[nodiscard]] std::uint8_t decode_wire_header(WireReader& in);

void encode_value(const Value& value, WireWriter& out);
[[nodiscard]] Value decode_value(WireReader& in);

void encode_event(const Event& event, WireWriter& out);
[[nodiscard]] Event decode_event(WireReader& in);

void encode_predicate(const Predicate& pred, WireWriter& out);
[[nodiscard]] Predicate decode_predicate(WireReader& in);

void encode_tree(const Node& tree, WireWriter& out);
[[nodiscard]] std::unique_ptr<Node> decode_tree(WireReader& in);

/// Exact encoded sizes (used for the simulated network's byte accounting).
[[nodiscard]] std::size_t encoded_size(const Event& event);
[[nodiscard]] std::size_t encoded_size(const Node& tree);

}  // namespace dbsp
