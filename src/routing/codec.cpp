#include "routing/codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace dbsp {

void WireWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void WireWriter::put_string(const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw WireError("codec: string too long");
  }
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw WireError("codec: truncated input");
}

std::uint8_t WireReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::get_u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

void FrameAssembler::push(std::span<const std::uint8_t> bytes) {
  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection's assembler does not grow without bound.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameAssembler::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0) throw WireError("frame: zero-length frame");
  if (len > max_frame_) {
    throw WireError("frame: length " + std::to_string(len) +
                    " exceeds max frame size " + std::to_string(max_frame_));
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const auto begin = buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4);
  std::vector<std::uint8_t> payload(begin, begin + static_cast<std::ptrdiff_t>(len));
  pos_ += 4 + static_cast<std::size_t>(len);
  return payload;
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload,
                  std::size_t max_frame_bytes) {
  if (payload.empty()) throw WireError("frame: empty payload");
  if (payload.size() > max_frame_bytes ||
      payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw WireError("frame: payload exceeds max frame size");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

void encode_wire_header(WireWriter& out) {
  out.put_u8(kWireMagic);
  out.put_u8(kWireFormatVersion);
}

std::uint8_t decode_wire_header(WireReader& in) {
  if (in.get_u8() != kWireMagic) throw WireError("codec: bad magic byte");
  const std::uint8_t version = in.get_u8();
  if (version == 0 || version > kWireFormatVersion) {
    throw WireError("codec: unsupported wire format version " +
                    std::to_string(version));
  }
  return version;
}

void encode_value(const Value& value, WireWriter& out) {
  switch (value.type()) {
    case ValueType::Int:
      out.put_u8(0);
      out.put_u64(static_cast<std::uint64_t>(value.as_int()));
      break;
    case ValueType::Double:
      out.put_u8(1);
      out.put_f64(value.as_double());
      break;
    case ValueType::String:
      out.put_u8(2);
      out.put_string(value.as_string());
      break;
    case ValueType::Bool:
      out.put_u8(3);
      out.put_u8(value.as_bool() ? 1 : 0);
      break;
  }
}

Value decode_value(WireReader& in) {
  switch (in.get_u8()) {
    case 0: return Value(static_cast<std::int64_t>(in.get_u64()));
    case 1: return Value(in.get_f64());
    case 2: return Value(in.get_string());
    case 3: return Value(in.get_u8() != 0);
    default: throw WireError("codec: unknown value tag");
  }
}

void encode_event(const Event& event, WireWriter& out) {
  if (event.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw WireError("codec: event too wide");
  }
  out.put_u16(static_cast<std::uint16_t>(event.size()));
  for (const auto& [attr, value] : event.pairs()) {
    out.put_u32(attr.value());
    encode_value(value, out);
  }
}

Event decode_event(WireReader& in) {
  Event e;
  const std::uint16_t count = in.get_u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const AttributeId attr(in.get_u32());
    e.set(attr, decode_value(in));
  }
  return e;
}

void encode_predicate(const Predicate& pred, WireWriter& out) {
  out.put_u32(pred.attribute().value());
  out.put_u8(static_cast<std::uint8_t>(pred.op()));
  if (pred.operands().size() > std::numeric_limits<std::uint16_t>::max()) {
    throw WireError("codec: too many operands");
  }
  out.put_u16(static_cast<std::uint16_t>(pred.operands().size()));
  for (const auto& v : pred.operands()) encode_value(v, out);
}

Predicate decode_predicate(WireReader& in) {
  const AttributeId attr(in.get_u32());
  const std::uint8_t op_byte = in.get_u8();
  if (op_byte >= kOpCount) throw WireError("codec: unknown operator");
  const auto op = static_cast<Op>(op_byte);
  const std::uint16_t count = in.get_u16();
  std::vector<Value> operands;
  // Cap by remaining bytes so a tiny hostile header can't reserve 64k slots.
  operands.reserve(std::min<std::size_t>(count, in.remaining()));
  for (std::uint16_t i = 0; i < count; ++i) operands.push_back(decode_value(in));
  switch (op) {
    case Op::Between:
      if (operands.size() != 2) throw WireError("codec: between needs two operands");
      return Predicate(attr, std::move(operands[0]), std::move(operands[1]));
    case Op::In:
      if (operands.empty()) throw WireError("codec: in needs operands");
      return Predicate(attr, std::move(operands));
    default:
      if (operands.size() != 1) throw WireError("codec: operator needs one operand");
      return Predicate(attr, op, std::move(operands[0]));
  }
}

void encode_tree(const Node& tree, WireWriter& out) {
  switch (tree.kind()) {
    case NodeKind::Leaf:
      out.put_u8(0);
      encode_predicate(tree.predicate(), out);
      return;
    case NodeKind::And:
    case NodeKind::Or:
      out.put_u8(tree.kind() == NodeKind::And ? 1 : 2);
      out.put_u16(static_cast<std::uint16_t>(tree.children().size()));
      for (const auto& c : tree.children()) encode_tree(*c, out);
      return;
    case NodeKind::Not:
      out.put_u8(3);
      encode_tree(*tree.children()[0], out);
      return;
    case NodeKind::True:
    case NodeKind::False:
      // Stored trees are constant-free; constants never cross the wire.
      throw WireError("codec: constant node in wire tree");
  }
}

namespace {

// Wire trees are shallow (canonical forms are depth <= 3); a hostile buffer
// of nested connectives must not be able to overflow the decoder's stack.
constexpr std::size_t kMaxTreeDepth = 256;

std::unique_ptr<Node> decode_tree_at(WireReader& in, std::size_t depth) {
  if (depth > kMaxTreeDepth) throw WireError("codec: tree too deep");
  const std::uint8_t tag = in.get_u8();
  switch (tag) {
    case 0:
      return Node::leaf(decode_predicate(in));
    case 1:
    case 2: {
      const std::uint16_t count = in.get_u16();
      if (count == 0) throw WireError("codec: empty connective");
      std::vector<std::unique_ptr<Node>> children;
      // Each child needs at least one byte; don't let a hostile count
      // reserve far beyond what the buffer could possibly hold.
      children.reserve(std::min<std::size_t>(count, in.remaining()));
      for (std::uint16_t i = 0; i < count; ++i) {
        children.push_back(decode_tree_at(in, depth + 1));
      }
      return tag == 1 ? Node::and_(std::move(children))
                      : Node::or_(std::move(children));
    }
    case 3:
      return Node::not_(decode_tree_at(in, depth + 1));
    default:
      throw WireError("codec: unknown node tag");
  }
}

}  // namespace

std::unique_ptr<Node> decode_tree(WireReader& in) {
  return decode_tree_at(in, 0);
}

std::size_t encoded_size(const Event& event) {
  WireWriter w;
  encode_event(event, w);
  return w.size();
}

std::size_t encoded_size(const Node& tree) {
  WireWriter w;
  encode_tree(tree, w);
  return w.size();
}

}  // namespace dbsp
