#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "subscription/node.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

/// Subscription merging (paper §2.3): summarizing several routing entries
/// into one. Like covering, classical merging is restricted to conjunctive
/// subscriptions; finding optimal mergers is NP-hard (Crespo et al.), so
/// practical systems use *perfect pairwise* merging: two conjunctions are
/// merged only when the merger matches exactly the union of their matches.
/// This module implements that — it is both a usable routing optimization
/// and the baseline the paper's pruning is positioned against ("we can use
/// subscription pruning to solve the merging problem").

/// Union of two predicates on the same attribute, when the union is itself
/// expressible as a single predicate: Eq/In unions, overlapping or
/// adjacent numeric ranges, prefix-of-prefix, etc. Returns nullopt when no
/// single-predicate union exists.
[[nodiscard]] std::optional<Predicate> merge_predicates(const Predicate& a,
                                                        const Predicate& b);

/// Perfect pairwise merger of two *conjunctive* subscriptions. Succeeds
/// iff the two differ in at most one conjunct position and that pair has a
/// single-predicate union (all other conjuncts equal): then
/// matches(merger) == matches(a) ∪ matches(b). Returns nullopt otherwise
/// (incl. non-conjunctive inputs).
[[nodiscard]] std::optional<std::unique_ptr<Node>> merge_conjunctions(const Node& a,
                                                                      const Node& b);

/// Greedy merging pass over a set of conjunctive subscriptions: repeatedly
/// merges perfect pairs until a fixpoint. Returns the merged set (inputs
/// are cloned; non-conjunctive trees pass through untouched). The classic
/// routing-table summarization, usable as a baseline against pruning.
[[nodiscard]] std::vector<std::unique_ptr<Node>> merge_all(
    const std::vector<const Node*>& subscriptions);

}  // namespace dbsp
