#pragma once

#include <optional>
#include <vector>

#include "subscription/node.hpp"
#include "subscription/predicate.hpp"

namespace dbsp {

/// Subscription covering (paper §2.3, the classic SIENA/REBECA
/// optimization): subscription `a` covers `b` iff every event matching `b`
/// also matches `a`; a covered `b` need not be forwarded upstream. Covering
/// only applies to *conjunctive* subscriptions — the restriction the paper
/// contrasts with pruning, which works on arbitrary Boolean trees. This
/// module provides the syntactic checks; the pruning engine can be used on
/// top ("pruning as an extension of covering") since a pruned entry covers
/// the original by construction.

/// True iff every value satisfying `p` also satisfies `q` (both on the
/// same attribute; false for differing attributes). Sound but not complete
/// for string operators: returns false when implication cannot be shown
/// syntactically.
[[nodiscard]] bool implies(const Predicate& p, const Predicate& q);

/// True iff `node` is a conjunctive subscription: a single predicate or an
/// AND of predicates (no OR/NOT anywhere).
[[nodiscard]] bool is_conjunctive(const Node& node);

/// Collects the predicates of a conjunctive subscription.
[[nodiscard]] std::vector<const Predicate*> conjuncts(const Node& node);

/// Syntactic covering test for conjunctive subscriptions: `a` covers `b`
/// iff every conjunct of `a` is implied by some conjunct of `b`. Returns
/// nullopt when either side is not conjunctive (covering does not apply —
/// exactly the limitation motivating subscription pruning). A `true` is
/// always sound: matches(b) ⊆ matches(a).
[[nodiscard]] std::optional<bool> covers(const Node& a, const Node& b);

}  // namespace dbsp
