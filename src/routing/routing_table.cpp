#include "routing/routing_table.hpp"

#include <stdexcept>

namespace dbsp {

Subscription& RoutingTable::insert(SubscriptionId id, Entry entry) {
  auto [it, inserted] = entries_.emplace(id.value(),
                                         std::make_unique<Entry>(std::move(entry)));
  if (!inserted) throw std::invalid_argument("routing table: duplicate subscription id");
  return *it->second->sub;
}

Subscription& RoutingTable::add_local(SubscriptionId id, ClientId client,
                                      std::unique_ptr<Node> tree) {
  Entry e;
  e.sub = std::make_unique<Subscription>(id, std::move(tree));
  e.local = true;
  e.client = client;
  ++local_count_;
  return insert(id, std::move(e));
}

Subscription& RoutingTable::add_remote(SubscriptionId id, BrokerId from,
                                       std::unique_ptr<Node> tree) {
  Entry e;
  e.sub = std::make_unique<Subscription>(id, std::move(tree));
  e.local = false;
  e.from = from;
  return insert(id, std::move(e));
}

std::unique_ptr<RoutingTable::Entry> RoutingTable::remove(SubscriptionId id) {
  auto it = entries_.find(id.value());
  if (it == entries_.end()) return nullptr;
  auto entry = std::move(it->second);
  entries_.erase(it);
  if (entry->local) --local_count_;
  return entry;
}

RoutingTable::Entry* RoutingTable::find(SubscriptionId id) {
  auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : it->second.get();
}

const RoutingTable::Entry* RoutingTable::find(SubscriptionId id) const {
  auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : it->second.get();
}

bool RoutingTable::contains(SubscriptionId id) const {
  return entries_.count(id.value()) != 0;
}

void RoutingTable::for_each(const std::function<void(Entry&)>& fn) {
  for (auto& [id, entry] : entries_) fn(*entry);
}

void RoutingTable::for_each(const std::function<void(const Entry&)>& fn) const {
  for (const auto& [id, entry] : entries_) fn(*entry);
}

}  // namespace dbsp
