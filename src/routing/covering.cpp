#include "routing/covering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbsp {

namespace {

/// Numeric interval view of an ordered predicate.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_inclusive = true;
  bool hi_inclusive = true;
};

[[nodiscard]] std::optional<Interval> as_interval(const Predicate& p) {
  switch (p.op()) {
    case Op::Lt:
    case Op::Le:
      if (!p.operand().is_numeric()) return std::nullopt;
      return Interval{-std::numeric_limits<double>::infinity(),
                      p.operand().numeric(), true, p.op() == Op::Le};
    case Op::Gt:
    case Op::Ge:
      if (!p.operand().is_numeric()) return std::nullopt;
      return Interval{p.operand().numeric(),
                      std::numeric_limits<double>::infinity(), p.op() == Op::Ge,
                      true};
    case Op::Between:
      if (!p.operands()[0].is_numeric() || !p.operands()[1].is_numeric()) {
        return std::nullopt;
      }
      return Interval{p.operands()[0].numeric(), p.operands()[1].numeric(), true,
                      true};
    default:
      return std::nullopt;
  }
}

/// Is interval `inner` contained in `outer`?
[[nodiscard]] bool contained(const Interval& inner, const Interval& outer) {
  const bool lo_ok =
      outer.lo < inner.lo ||
      (outer.lo == inner.lo && (outer.lo_inclusive || !inner.lo_inclusive));
  const bool hi_ok =
      inner.hi < outer.hi ||
      (inner.hi == outer.hi && (outer.hi_inclusive || !inner.hi_inclusive));
  return lo_ok && hi_ok;
}

/// Finite satisfaction set of `p` if it has one (Eq, In, degenerate Between).
[[nodiscard]] std::optional<std::vector<const Value*>> finite_values(
    const Predicate& p) {
  switch (p.op()) {
    case Op::Eq:
      return std::vector<const Value*>{&p.operand()};
    case Op::In: {
      std::vector<const Value*> out;
      out.reserve(p.operands().size());
      for (const auto& v : p.operands()) out.push_back(&v);
      return out;
    }
    case Op::Between:
      if (p.operands()[0].equals(p.operands()[1])) {
        return std::vector<const Value*>{&p.operands()[0]};
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

[[nodiscard]] bool is_substring(const std::string& needle, const std::string& hay) {
  return hay.find(needle) != std::string::npos;
}
[[nodiscard]] bool is_prefix(const std::string& pre, const std::string& s) {
  return s.size() >= pre.size() && s.compare(0, pre.size(), pre) == 0;
}
[[nodiscard]] bool is_suffix(const std::string& suf, const std::string& s) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

bool implies(const Predicate& p, const Predicate& q) {
  if (p.attribute() != q.attribute()) return false;
  if (p.equals(q)) return true;

  // Finite p: check every satisfying value against q — exact and complete.
  if (const auto values = finite_values(p)) {
    return std::all_of(values->begin(), values->end(),
                       [&](const Value* v) { return q.matches_value(*v); });
  }

  // q = Ne(v): p implies q iff v is outside p's satisfaction set. Testing
  // p.matches_value(v) decides that exactly for every p we support.
  if (q.op() == Op::Ne) return !p.matches_value(q.operand());

  // Ordered predicates: interval containment.
  const auto pi = as_interval(p);
  const auto qi = as_interval(q);
  if (pi && qi) return contained(*pi, *qi);

  // String operators: the pattern of q must be guaranteed by p's pattern.
  const auto& qop = q.op();
  if (p.op() == Op::Prefix) {
    const auto& s = p.operand().as_string();
    if (qop == Op::Prefix) return is_prefix(q.operand().as_string(), s);
    if (qop == Op::Contains) return is_substring(q.operand().as_string(), s);
  }
  if (p.op() == Op::Suffix) {
    const auto& s = p.operand().as_string();
    if (qop == Op::Suffix) return is_suffix(q.operand().as_string(), s);
    if (qop == Op::Contains) return is_substring(q.operand().as_string(), s);
  }
  if (p.op() == Op::Contains && qop == Op::Contains) {
    return is_substring(q.operand().as_string(), p.operand().as_string());
  }
  return false;  // sound: implication not shown
}

bool is_conjunctive(const Node& node) {
  if (node.kind() == NodeKind::Leaf) return true;
  if (node.kind() != NodeKind::And) return false;
  return std::all_of(node.children().begin(), node.children().end(),
                     [](const auto& c) { return c->kind() == NodeKind::Leaf; });
}

std::vector<const Predicate*> conjuncts(const Node& node) {
  std::vector<const Predicate*> out;
  if (node.kind() == NodeKind::Leaf) {
    out.push_back(&node.predicate());
    return out;
  }
  for (const auto& c : node.children()) out.push_back(&c->predicate());
  return out;
}

std::optional<bool> covers(const Node& a, const Node& b) {
  if (!is_conjunctive(a) || !is_conjunctive(b)) return std::nullopt;
  const auto needs = conjuncts(a);
  const auto haves = conjuncts(b);
  // a covers b iff every constraint of a is already enforced by b.
  return std::all_of(needs.begin(), needs.end(), [&](const Predicate* qa) {
    return std::any_of(haves.begin(), haves.end(),
                       [&](const Predicate* pb) { return implies(*pb, *qa); });
  });
}

}  // namespace dbsp
