#include "routing/merging.hpp"

#include <algorithm>

#include "routing/covering.hpp"

namespace dbsp {

namespace {

/// Collects the finite value set of Eq/In predicates.
[[nodiscard]] std::optional<std::vector<Value>> value_set(const Predicate& p) {
  if (p.op() == Op::Eq) return std::vector<Value>{p.operand()};
  if (p.op() == Op::In) return p.operands();
  return std::nullopt;
}

/// Numeric endpoint helpers for ordered predicates. Between is handled
/// separately; Lt/Le are upper bounds, Gt/Ge lower bounds.
[[nodiscard]] bool is_upper(Op op) { return op == Op::Lt || op == Op::Le; }
[[nodiscard]] bool is_lower(Op op) { return op == Op::Gt || op == Op::Ge; }

}  // namespace

std::optional<Predicate> merge_predicates(const Predicate& a, const Predicate& b) {
  if (a.attribute() != b.attribute()) return std::nullopt;
  if (a.equals(b)) return a;

  // Containment: the weaker predicate is the union.
  if (implies(a, b)) return b;
  if (implies(b, a)) return a;

  // Finite value sets: union into an In predicate.
  const auto va = value_set(a);
  const auto vb = value_set(b);
  if (va && vb) {
    std::vector<Value> merged = *va;
    merged.insert(merged.end(), vb->begin(), vb->end());
    return Predicate(a.attribute(), std::move(merged));
  }

  // Same-direction bounds were handled by the implication cases above.
  // Overlapping Between ranges with numeric operands:
  if (a.op() == Op::Between && b.op() == Op::Between &&
      a.operands()[0].is_numeric() && b.operands()[0].is_numeric()) {
    const double alo = a.operands()[0].numeric();
    const double ahi = a.operands()[1].numeric();
    const double blo = b.operands()[0].numeric();
    const double bhi = b.operands()[1].numeric();
    // Union is a single interval only when they overlap or touch.
    if (std::max(alo, blo) <= std::min(ahi, bhi)) {
      const bool use_a_lo = alo <= blo;
      const bool use_a_hi = ahi >= bhi;
      return Predicate(a.attribute(),
                       use_a_lo ? a.operands()[0] : b.operands()[0],
                       use_a_hi ? a.operands()[1] : b.operands()[1]);
    }
    return std::nullopt;
  }

  // Opposite-direction open bounds covering the whole line would need a
  // TRUE predicate, which is not expressible; everything else has no
  // single-predicate union.
  (void)is_upper;
  (void)is_lower;
  return std::nullopt;
}

std::optional<std::unique_ptr<Node>> merge_conjunctions(const Node& a, const Node& b) {
  if (!is_conjunctive(a) || !is_conjunctive(b)) return std::nullopt;

  // Covering is the degenerate merger.
  if (covers(a, b) == std::optional<bool>(true)) return a.clone();
  if (covers(b, a) == std::optional<bool>(true)) return b.clone();

  const auto pa = conjuncts(a);
  const auto pb = conjuncts(b);
  if (pa.size() != pb.size()) return std::nullopt;

  // Match equal conjuncts pairwise; at most one position may differ.
  // Conjunct order must not matter, so match greedily by equality.
  std::vector<bool> used(pb.size(), false);
  std::vector<const Predicate*> unmatched_a;
  for (const Predicate* qa : pa) {
    bool matched = false;
    for (std::size_t j = 0; j < pb.size(); ++j) {
      if (!used[j] && qa->equals(*pb[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) unmatched_a.push_back(qa);
  }
  if (unmatched_a.size() != 1) return std::nullopt;
  const Predicate* qa = unmatched_a.front();
  const Predicate* qb = nullptr;
  for (std::size_t j = 0; j < pb.size(); ++j) {
    if (!used[j]) {
      qb = pb[j];
      break;
    }
  }
  if (qb == nullptr) return std::nullopt;

  // Perfectness: with all other conjuncts equal, the union distributes
  // over the conjunction iff the differing pair has a single-predicate
  // union: (C ∧ p) ∨ (C ∧ q) == C ∧ (p ∨ q).
  auto merged_pred = merge_predicates(*qa, *qb);
  if (!merged_pred) return std::nullopt;

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(std::move(*merged_pred)));
  for (const Predicate* p : pa) {
    if (p != qa) parts.push_back(Node::leaf(*p));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return Node::and_(std::move(parts));
}

std::vector<std::unique_ptr<Node>> merge_all(
    const std::vector<const Node*>& subscriptions) {
  std::vector<std::unique_ptr<Node>> pool;
  pool.reserve(subscriptions.size());
  for (const Node* s : subscriptions) pool.push_back(s->clone());

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < pool.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < pool.size() && !changed; ++j) {
        if (auto merged = merge_conjunctions(*pool[i], *pool[j])) {
          pool[i] = std::move(*merged);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
  return pool;
}

}  // namespace dbsp
