#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "subscription/subscription.hpp"

namespace dbsp {

/// One broker's routing state: every known subscription together with where
/// it came from. Local entries (own clients) drive notifications and are
/// never pruned; remote entries (forwarded by a neighbor) drive forwarding
/// decisions toward that neighbor and are the pruning targets (§2.2:
/// "pruning is only applied to subscriptions from non-local clients").
class RoutingTable {
 public:
  struct Entry {
    std::unique_ptr<Subscription> sub;
    bool local = false;
    BrokerId from;    ///< arriving neighbor (remote entries)
    ClientId client;  ///< owning client (local entries)
  };

  Subscription& add_local(SubscriptionId id, ClientId client,
                          std::unique_ptr<Node> tree);
  Subscription& add_remote(SubscriptionId id, BrokerId from,
                           std::unique_ptr<Node> tree);
  /// Removes and returns the entry (so the caller can unregister it from
  /// the matcher before destruction). Returns nullptr if unknown.
  std::unique_ptr<Entry> remove(SubscriptionId id);

  [[nodiscard]] Entry* find(SubscriptionId id);
  [[nodiscard]] const Entry* find(SubscriptionId id) const;
  [[nodiscard]] bool contains(SubscriptionId id) const;

  void for_each(const std::function<void(Entry&)>& fn);
  void for_each(const std::function<void(const Entry&)>& fn) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t local_count() const { return local_count_; }
  [[nodiscard]] std::size_t remote_count() const { return size() - local_count_; }

 private:
  Subscription& insert(SubscriptionId id, Entry entry);

  std::unordered_map<SubscriptionId::value_type, std::unique_ptr<Entry>> entries_;
  std::size_t local_count_ = 0;
};

}  // namespace dbsp
