#include "routing/messages.hpp"

#include "routing/codec.hpp"

namespace dbsp {

namespace {
// wire header (magic + format version) + type tag + event sequence /
// subscription id.
constexpr std::size_t kHeaderBytes = kWireHeaderBytes + 1 + 8;
}  // namespace

std::size_t Message::wire_size_bytes() const {
  switch (type) {
    case Type::Event:
      // An active trace context adds the same 17-byte trailer the socket
      // protocol charges (flags u8 + trace id u64 + parent span u64);
      // untraced events cost exactly what they did before tracing existed.
      return kHeaderBytes + encoded_size(event) + (trace.active() ? 17 : 0);
    case Type::Subscribe:
      return kHeaderBytes + (sub_tree ? encoded_size(*sub_tree) : 0);
    case Type::Unsubscribe:
      return kHeaderBytes;
    case Type::Summary:
      // origin + subgroup slot + presence flag + the summary's own wire
      // footprint (the routing-table bytes aggregation advertises instead
      // of per-subscription trees).
      return kHeaderBytes + 4 + 4 + 1 +
             (summary ? summary->wire_size_bytes() : 0);
  }
  return kHeaderBytes;
}

}  // namespace dbsp
