#include "routing/messages.hpp"

#include "routing/codec.hpp"

namespace dbsp {

namespace {
// wire header (magic + format version) + type tag + event sequence /
// subscription id.
constexpr std::size_t kHeaderBytes = kWireHeaderBytes + 1 + 8;
}  // namespace

std::size_t Message::wire_size_bytes() const {
  switch (type) {
    case Type::Event:
      return kHeaderBytes + encoded_size(event);
    case Type::Subscribe:
      return kHeaderBytes + (sub_tree ? encoded_size(*sub_tree) : 0);
    case Type::Unsubscribe:
      return kHeaderBytes;
  }
  return kHeaderBytes;
}

}  // namespace dbsp
