#pragma once

#include <cstdint>
#include <memory>

#include "agg/summary.hpp"
#include "common/ids.hpp"
#include "event/event.hpp"
#include "obs/flight.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// A broker-to-broker message of the overlay protocol. Subscription trees
/// travel as shared immutable payloads (the in-process analogue of a wire
/// encoding); each receiving broker clones its own mutable routing copy so
/// per-broker pruning never aliases.
struct Message {
  enum class Type : std::uint8_t { Event, Subscribe, Unsubscribe, Summary };

  Type type = Type::Event;
  /// Event payload (Type::Event).
  Event event;
  /// Global sequence number of the published event (tracing/metrics).
  std::uint64_t event_seq = 0;
  /// Trace context riding with Type::Event — inactive (trace_id 0) on
  /// untraced publishes, so their wire footprint is unchanged; active
  /// contexts charge the 17-byte trailer (flags + trace id + parent span).
  obs::TraceContext trace{};
  /// Subscription payload (Type::Subscribe / Unsubscribe).
  SubscriptionId sub_id;
  std::shared_ptr<const Node> sub_tree;
  /// Summary advertisement (Type::Summary, aggregated routing): the broker
  /// whose subgroup changed, the subgroup's stable slot index, and its
  /// current summary — null retracts a previously advertised subgroup.
  BrokerId origin;
  std::uint32_t subgroup = 0;
  std::shared_ptr<const agg::SummarySet> summary;

  /// Exact wire size: header plus the codec-encoded payload (see
  /// routing/codec.hpp for the format). This is what the simulated
  /// network's byte accounting charges.
  [[nodiscard]] std::size_t wire_size_bytes() const;
};

}  // namespace dbsp
