#pragma once

/// \file
/// The stock-ticker workload domain: numeric-heavy predicates over bursty
/// price events. Complements the auction domain with the opposite predicate
/// mix — mostly range/threshold conditions on a handful of hot numeric
/// attributes — and with regime-switching event traffic (quiet tape vs.
/// price bursts concentrated on one symbol).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Scale and shape knobs of the synthetic stock-ticker workload.
struct StockConfig {
  std::uint64_t seed = 42;

  std::size_t symbols = 1500;
  std::size_t sectors = 12;
  std::size_t exchanges = 6;
  /// Trading interest concentrates sharply in a few tickers.
  double zipf_symbols = 0.9;
  double zipf_sectors = 0.7;

  /// Probability per event that a burst regime starts (when none is
  /// running): `burst_events` ticks during which `burst_share` of events
  /// are the burst symbol with amplified moves and volume.
  double burst_probability = 0.004;
  std::size_t burst_events = 40;
  double burst_share = 0.7;

  // Mix of the four subscription classes; normalized internally.
  double class_price_alert = 0.40;
  double class_momentum = 0.30;
  double class_portfolio = 0.20;
  double class_breaker = 0.10;
};

/// Attribute layout of ticker events plus shared symbol/sector pools. One
/// instance backs both generators and all subscriptions of a run.
class StockDomain {
 public:
  explicit StockDomain(const StockConfig& config);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] const StockConfig& config() const { return config_; }

  // Attribute handles.
  AttributeId symbol, exchange, sector, price, change_pct, volume, bid, ask,
      spread_bps, market_cap_m, pe_ratio, dividend_yield, volatility, halted;

  /// Pools are indexed by popularity rank: index 0 is the hottest.
  [[nodiscard]] const std::vector<std::string>& symbols() const { return symbols_; }
  [[nodiscard]] const std::vector<std::string>& sectors() const { return sectors_; }
  [[nodiscard]] const std::vector<std::string>& exchanges() const { return exchanges_; }

  /// Fixed symbol attributes (deterministic from the seed).
  [[nodiscard]] const std::string& sector_of(std::size_t symbol_idx) const {
    return sectors_[symbol_idx % sectors_.size()];
  }
  [[nodiscard]] const std::string& exchange_of(std::size_t symbol_idx) const {
    return exchanges_[(symbol_idx * 7) % exchanges_.size()];
  }
  [[nodiscard]] double base_price(std::size_t symbol_idx) const {
    return base_price_[symbol_idx];
  }
  [[nodiscard]] double base_volatility(std::size_t symbol_idx) const {
    return base_volatility_[symbol_idx];
  }

 private:
  StockConfig config_;
  Schema schema_;
  std::vector<std::string> symbols_;
  std::vector<std::string> sectors_;
  std::vector<std::string> exchanges_;
  std::vector<double> base_price_;
  std::vector<double> base_volatility_;
};

/// Generates ticker events: per-symbol multiplicative random-walk prices
/// around the symbol's base price, Zipf symbol popularity, and burst
/// regimes during which one symbol dominates the tape with amplified moves.
/// Deterministic for a given (config.seed, stream) pair.
class StockEventGenerator {
 public:
  StockEventGenerator(const StockDomain& domain, std::uint64_t stream = 0);

  [[nodiscard]] Event next();
  [[nodiscard]] std::vector<Event> generate(std::size_t n);

  /// True while a burst regime is running (tests).
  [[nodiscard]] bool in_burst() const { return burst_remaining_ > 0; }

 private:
  const StockDomain* domain_;
  Rng rng_;
  ZipfDistribution symbol_dist_;
  std::vector<double> price_;       // per-symbol current price
  std::size_t burst_remaining_ = 0;
  std::size_t burst_symbol_ = 0;
};

/// The subscriber profile a generated stock subscription belongs to.
enum class StockSubscriberClass : std::uint8_t {
  PriceAlert,      ///< symbol anchor + price threshold band
  MomentumScanner, ///< sector + change/volume floors
  PortfolioGuard,  ///< OR of held symbols + drawdown/halt conditions
  CircuitBreaker,  ///< broad extreme-move monitoring
};

/// Generates Boolean subscription trees of the four ticker classes.
/// Thresholds are drawn relative to each symbol's base price so predicate
/// selectivities span the whole unit interval.
class StockSubscriptionGenerator {
 public:
  StockSubscriptionGenerator(const StockDomain& domain, std::uint64_t stream = 1);

  struct Generated {
    std::unique_ptr<Node> tree;
    StockSubscriberClass cls;
  };

  [[nodiscard]] Generated next();
  [[nodiscard]] std::unique_ptr<Node> next_tree() { return next().tree; }

  /// Flash-crowd template: a narrow subscription on the hottest symbol
  /// (rank 0), the shape a sudden retail pile-in produces.
  [[nodiscard]] std::unique_ptr<Node> hot_tree();

 private:
  [[nodiscard]] std::unique_ptr<Node> price_alert();
  [[nodiscard]] std::unique_ptr<Node> momentum_scanner();
  [[nodiscard]] std::unique_ptr<Node> portfolio_guard();
  [[nodiscard]] std::unique_ptr<Node> circuit_breaker();
  [[nodiscard]] std::unique_ptr<Node> symbol_is(std::size_t idx);

  const StockDomain* domain_;
  Rng rng_;
  ZipfDistribution symbol_dist_;
  ZipfDistribution sector_dist_;
};

}  // namespace dbsp
