#include "workload/iot.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp {

namespace {

std::unique_ptr<Node> and_of(std::vector<std::unique_ptr<Node>> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  return Node::and_(std::move(parts));
}

std::unique_ptr<Node> or_of(std::vector<std::unique_ptr<Node>> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  return Node::or_(std::move(parts));
}

double round1(double v) { return std::round(v * 10.0) / 10.0; }

constexpr const char* kRegions[] = {
    "eu_west", "eu_north", "eu_south", "us_east", "us_west", "us_central",
    "ap_south", "ap_east", "ap_north", "sa_east", "af_south", "me_central",
    "eu_east", "us_south", "ap_west", "oc_east", "ca_east", "ca_west",
    "in_north", "in_south", "cn_east", "cn_west", "jp_east", "kr_central"};

}  // namespace

IotDomain::IotDomain(const IotConfig& config) : config_(config) {
  device = schema_.add_attribute("device", ValueType::String);
  sensor = schema_.add_attribute("sensor", ValueType::String);
  region = schema_.add_attribute("region", ValueType::String);
  zone = schema_.add_attribute("zone", ValueType::Int);
  reading = schema_.add_attribute("reading", ValueType::Double);
  battery = schema_.add_attribute("battery", ValueType::Double);
  rssi = schema_.add_attribute("rssi", ValueType::Int);
  firmware = schema_.add_attribute("firmware", ValueType::String);
  uptime_hours = schema_.add_attribute("uptime_hours", ValueType::Double);
  interval_sec = schema_.add_attribute("interval_sec", ValueType::Int);
  alarm = schema_.add_attribute("alarm", ValueType::Bool);

  devices_.reserve(config.devices);
  for (std::size_t i = 0; i < config.devices; ++i) {
    devices_.push_back("dev-" + std::to_string(100000 + i));
  }
  sensors_ = {"temperature", "humidity", "co2",   "pressure",
              "light",       "motion",   "door",  "vibration"};
  regions_.reserve(config.regions);
  for (std::size_t i = 0; i < config.regions; ++i) {
    regions_.push_back(i < std::size(kRegions) ? kRegions[i]
                                               : "region_" + std::to_string(i));
  }
  firmwares_ = {"1.0.3", "1.1.0", "2.0.1", "2.1.4"};
}

IotDomain::Range IotDomain::reading_range(const std::string& sensor_kind) const {
  if (sensor_kind == "temperature") return {-10.0, 45.0};
  if (sensor_kind == "humidity") return {10.0, 95.0};
  if (sensor_kind == "co2") return {350.0, 2500.0};
  if (sensor_kind == "pressure") return {950.0, 1050.0};
  if (sensor_kind == "light") return {0.0, 2000.0};
  if (sensor_kind == "motion") return {0.0, 50.0};
  if (sensor_kind == "door") return {0.0, 1.0};
  return {0.0, 25.0};  // vibration (mm/s) and anything unknown
}

IotEventGenerator::IotEventGenerator(const IotDomain& domain, std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0x9e3779b97f4a7c15ULL + stream + 307),
      device_dist_(domain.devices().size(), domain.config().zipf_devices),
      battery_(domain.devices().size()),
      uptime_(domain.devices().size()) {
  for (std::size_t i = 0; i < battery_.size(); ++i) {
    battery_[i] = rng_.uniform_real(15.0, 100.0);
    uptime_[i] = rng_.uniform_real(0.0, 2000.0);
  }
}

Event IotEventGenerator::next() {
  const IotDomain& d = *domain_;
  const std::size_t idx = device_dist_(rng_);
  const std::string& kind = d.sensor_of(idx);
  const auto range = d.reading_range(kind);

  // Readings cluster mid-range with occasional excursions to the extremes —
  // the excursions are what threshold subscriptions exist for.
  const double mid = (range.lo + range.hi) / 2.0;
  const double span = range.hi - range.lo;
  double value = rng_.chance(0.06)
                     ? rng_.uniform_real(range.lo, range.hi)  // excursion
                     : std::clamp(rng_.normal(mid, span / 8.0), range.lo, range.hi);
  if (kind == "door" || kind == "motion") {
    value = rng_.chance(0.15) ? std::ceil(rng_.uniform_real(0.0, range.hi)) : 0.0;
  }

  // Battery drains slowly per report; a swap recharges it.
  battery_[idx] = std::max(0.0, battery_[idx] - rng_.uniform_real(0.0, 0.05));
  if (battery_[idx] < 1.0 && rng_.chance(0.2)) battery_[idx] = 100.0;
  uptime_[idx] += rng_.uniform_real(0.01, 0.5);

  const double low_battery = battery_[idx] < 10.0 ? 0.2 : 0.004;
  const bool alarm_on =
      rng_.chance(low_battery) || value >= range.lo + 0.96 * span;

  Event e;
  e.set(d.device, d.devices()[idx]);
  e.set(d.sensor, kind);
  e.set(d.region, d.region_of(idx));
  e.set(d.zone, d.zone_of(idx));
  e.set(d.reading, std::round(value * 100.0) / 100.0);
  e.set(d.battery, round1(battery_[idx]));
  e.set(d.rssi, rng_.uniform_int(-95, -40));
  e.set(d.firmware, d.firmware_of(idx));
  e.set(d.uptime_hours, round1(uptime_[idx]));
  e.set(d.interval_sec, static_cast<std::int64_t>(30) << rng_.uniform_int(0, 4));
  e.set(d.alarm, alarm_on);
  return e;
}

std::vector<Event> IotEventGenerator::generate(std::size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

IotSubscriptionGenerator::IotSubscriptionGenerator(const IotDomain& domain,
                                                   std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0xbf58476d1ce4e5b9ULL + stream + 401),
      device_dist_(domain.devices().size(), domain.config().zipf_devices),
      region_dist_(domain.regions().size(), domain.config().zipf_regions) {}

std::unique_ptr<Node> IotSubscriptionGenerator::device_watch() {
  // One device's health: chatty devices attract the most watchers.
  const std::size_t idx = device_dist_(rng_);
  std::vector<std::unique_ptr<Node>> unhealthy;
  unhealthy.push_back(Node::leaf(Predicate(
      domain_->battery, Op::Le, std::round(rng_.uniform_real(5.0, 30.0)))));
  unhealthy.push_back(Node::leaf(
      Predicate(domain_->rssi, Op::Le, rng_.uniform_int(-92, -80))));
  if (rng_.chance(0.3)) {
    unhealthy.push_back(Node::leaf(Predicate(domain_->alarm, Op::Eq, true)));
  }

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(
      Predicate(domain_->device, Op::Eq, domain_->devices()[idx])));
  parts.push_back(or_of(std::move(unhealthy)));
  return and_of(std::move(parts));
}

std::unique_ptr<Node> IotSubscriptionGenerator::threshold_alert() {
  const auto& sensors = domain_->sensors();
  const auto& kind =
      sensors[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(sensors.size()) - 1))];
  const auto range = domain_->reading_range(kind);

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(
      Predicate(domain_->region, Op::Eq, domain_->regions()[region_dist_(rng_)])));
  parts.push_back(Node::leaf(Predicate(domain_->sensor, Op::Eq, kind)));
  // Upper-tail thresholds: the top 2%..40% of the sensor's range.
  const double cut = range.hi - (range.hi - range.lo) * rng_.uniform_real(0.02, 0.4);
  parts.push_back(Node::leaf(Predicate(
      domain_->reading, Op::Ge, std::round(cut * 10.0) / 10.0)));
  if (rng_.chance(0.25)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->battery, Op::Ge, std::round(rng_.uniform_real(5.0, 20.0)))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> IotSubscriptionGenerator::zone_monitor() {
  const auto& sensors = domain_->sensors();
  const auto& kind =
      sensors[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(sensors.size()) - 1))];
  const auto range = domain_->reading_range(kind);
  const double lo = range.lo + (range.hi - range.lo) * rng_.uniform_real(0.0, 0.6);
  const double hi = lo + (range.hi - range.lo) * rng_.uniform_real(0.1, 0.4);

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(
      Predicate(domain_->region, Op::Eq, domain_->regions()[region_dist_(rng_)])));
  parts.push_back(Node::leaf(Predicate(
      domain_->zone, Op::Eq,
      rng_.uniform_int(0,
                       static_cast<std::int64_t>(domain_->config().zones_per_region) - 1))));
  parts.push_back(Node::leaf(Predicate(domain_->sensor, Op::Eq, kind)));
  parts.push_back(Node::leaf(Predicate(
      domain_->reading, Value(std::round(lo * 10.0) / 10.0),
      Value(std::round(hi * 10.0) / 10.0))));
  return and_of(std::move(parts));
}

std::unique_ptr<Node> IotSubscriptionGenerator::fleet_health() {
  std::vector<std::unique_ptr<Node>> parts;
  const auto& sensors = domain_->sensors();
  parts.push_back(Node::leaf(Predicate(
      domain_->sensor, Op::Eq,
      sensors[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(sensors.size()) - 1))])));
  parts.push_back(Node::leaf(Predicate(
      domain_->battery, Op::Le, std::round(rng_.uniform_real(10.0, 40.0)))));
  if (rng_.chance(0.5)) {
    // Old firmware still in the field is what the sweep is hunting.
    parts.push_back(Node::leaf(Predicate(
        domain_->firmware, {Value(domain_->firmwares()[0]),
                            Value(domain_->firmwares()[1])})));
  }
  if (rng_.chance(0.3)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->uptime_hours, Op::Ge, std::round(rng_.uniform_real(500.0, 5000.0)))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> IotSubscriptionGenerator::alarm_feed() {
  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(
      Predicate(domain_->region, Op::Eq, domain_->regions()[region_dist_(rng_)])));
  parts.push_back(Node::leaf(Predicate(domain_->alarm, Op::Eq, true)));
  if (rng_.chance(0.4)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->rssi, Op::Ge, rng_.uniform_int(-90, -60))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> IotSubscriptionGenerator::hot_tree() {
  // Heat wave in the hottest region: temperature alerts pile on.
  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(Predicate(domain_->region, Op::Eq, domain_->regions()[0])));
  parts.push_back(Node::leaf(Predicate(domain_->sensor, Op::Eq, std::string("temperature"))));
  parts.push_back(Node::leaf(Predicate(
      domain_->reading, Op::Ge, std::round(rng_.uniform_real(25.0, 40.0)))));
  return and_of(std::move(parts));
}

IotSubscriptionGenerator::Generated IotSubscriptionGenerator::next() {
  const IotConfig& cfg = domain_->config();
  const double total = cfg.class_device_watch + cfg.class_threshold +
                       cfg.class_zone_monitor + cfg.class_fleet_health +
                       cfg.class_alarm_feed;
  double u = rng_.uniform_real(0.0, total);

  Generated g;
  if ((u -= cfg.class_device_watch) < 0.0) {
    g.cls = IotSubscriberClass::DeviceWatch;
    g.tree = device_watch();
  } else if ((u -= cfg.class_threshold) < 0.0) {
    g.cls = IotSubscriberClass::Threshold;
    g.tree = threshold_alert();
  } else if ((u -= cfg.class_zone_monitor) < 0.0) {
    g.cls = IotSubscriberClass::ZoneMonitor;
    g.tree = zone_monitor();
  } else if ((u -= cfg.class_fleet_health) < 0.0) {
    g.cls = IotSubscriberClass::FleetHealth;
    g.tree = fleet_health();
  } else {
    g.cls = IotSubscriberClass::AlarmFeed;
    g.tree = alarm_feed();
  }
  g.tree = simplify(std::move(g.tree));
  return g;
}

}  // namespace dbsp
