#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/schema.hpp"

namespace dbsp {

/// Scale and shape knobs of the synthetic online book-auction workload
/// (reconstruction of the paper's refs [3]/[4]; see DESIGN.md §2).
struct WorkloadConfig {
  std::uint64_t seed = 42;

  // Domain pool sizes and the Zipf exponents of their popularity skew.
  std::size_t categories = 24;
  std::size_t titles = 4000;
  std::size_t authors = 1200;
  std::size_t locations = 16;
  double zipf_categories = 0.8;
  double zipf_titles = 0.6;
  double zipf_authors = 0.6;
  double zipf_locations = 1.1;

  /// Fraction of subscriptions *without* a specific author/title anchor.
  /// Book-auction subscribers overwhelmingly track specific items, which
  /// keeps individual subscriptions highly selective; the broad minority
  /// dominates baseline traffic. Raising this saturates the overlay's
  /// links and flattens Fig 1(e)'s headroom.
  double broad_fraction = 0.05;

  // Mix of the three subscription classes (bargain hunter, collector,
  // market watcher); normalized internally.
  double class_bargain = 0.45;
  double class_collector = 0.30;
  double class_watcher = 0.25;

  /// Probability that an eligible subscription wraps one condition in a
  /// NOT (exercises negative polarity; 0 reproduces the paper's setup).
  double not_probability = 0.0;
};

/// The attribute layout of auction events plus the shared value pools.
/// One instance backs both generators and all subscriptions of a run.
class AuctionDomain {
 public:
  explicit AuctionDomain(const WorkloadConfig& config);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  // Attribute handles.
  AttributeId category, title, author, format, condition, price, buy_now, bids,
      seller_rating, year, pages, shipping, ends_in_hours, location, is_signed,
      first_edition;

  [[nodiscard]] const std::vector<std::string>& categories() const { return categories_; }
  [[nodiscard]] const std::vector<std::string>& titles() const { return titles_; }
  [[nodiscard]] const std::vector<std::string>& authors() const { return authors_; }
  [[nodiscard]] const std::vector<std::string>& locations() const { return locations_; }
  [[nodiscard]] const std::vector<std::string>& formats() const { return formats_; }
  /// Conditions ordered best-to-worst; "at least X" predicates are prefixes.
  [[nodiscard]] const std::vector<std::string>& conditions() const { return conditions_; }

  /// The author associated with a title (fixed correlation so collector
  /// subscriptions on an author also see that author's titles).
  [[nodiscard]] const std::string& author_of_title(std::size_t title_idx) const {
    return authors_[title_idx % authors_.size()];
  }

 private:
  WorkloadConfig config_;
  Schema schema_;
  std::vector<std::string> categories_;
  std::vector<std::string> titles_;
  std::vector<std::string> authors_;
  std::vector<std::string> locations_;
  std::vector<std::string> formats_;
  std::vector<std::string> conditions_;
};

}  // namespace dbsp
