#pragma once

/// \file
/// The IoT-telemetry workload domain, modeled on mware-style sensor
/// middleware: large fleets of devices emitting periodic readings, and a
/// subscription population of many *narrow* per-device / per-region
/// monitors — the long-lived, continuously churning population the
/// scenario subsystem stresses.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "subscription/node.hpp"

namespace dbsp {

/// Scale and shape knobs of the synthetic IoT-telemetry workload.
struct IotConfig {
  std::uint64_t seed = 42;

  std::size_t devices = 4000;
  std::size_t regions = 24;
  std::size_t zones_per_region = 8;
  /// A minority of chatty devices produces most readings.
  double zipf_devices = 0.7;
  double zipf_regions = 1.0;

  // Mix of the five subscription classes; normalized internally.
  double class_device_watch = 0.30;
  double class_threshold = 0.30;
  double class_zone_monitor = 0.20;
  double class_fleet_health = 0.12;
  double class_alarm_feed = 0.08;
};

/// Attribute layout of telemetry events plus shared device/region pools.
class IotDomain {
 public:
  explicit IotDomain(const IotConfig& config);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] const IotConfig& config() const { return config_; }

  // Attribute handles.
  AttributeId device, sensor, region, zone, reading, battery, rssi, firmware,
      uptime_hours, interval_sec, alarm;

  /// Pools are indexed by popularity rank: index 0 is the hottest.
  [[nodiscard]] const std::vector<std::string>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<std::string>& sensors() const { return sensors_; }
  [[nodiscard]] const std::vector<std::string>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<std::string>& firmwares() const { return firmwares_; }

  /// Fixed device attributes (a device keeps its sensor kind and placement).
  [[nodiscard]] const std::string& sensor_of(std::size_t device_idx) const {
    return sensors_[device_idx % sensors_.size()];
  }
  [[nodiscard]] const std::string& region_of(std::size_t device_idx) const {
    return regions_[(device_idx * 13) % regions_.size()];
  }
  [[nodiscard]] std::int64_t zone_of(std::size_t device_idx) const {
    return static_cast<std::int64_t>((device_idx * 31) % config_.zones_per_region);
  }
  [[nodiscard]] const std::string& firmware_of(std::size_t device_idx) const {
    return firmwares_[(device_idx * 3) % firmwares_.size()];
  }

  /// Typical reading range of a sensor kind (used by generators and
  /// threshold subscriptions so selectivities are meaningful).
  struct Range {
    double lo, hi;
  };
  [[nodiscard]] Range reading_range(const std::string& sensor_kind) const;

 private:
  IotConfig config_;
  Schema schema_;
  std::vector<std::string> devices_;
  std::vector<std::string> sensors_;
  std::vector<std::string> regions_;
  std::vector<std::string> firmwares_;
};

/// Generates periodic telemetry: Zipf-popular devices report their sensor's
/// reading plus health attributes (battery drains monotonically and is
/// occasionally swapped, RSSI jitters, uptime accumulates). Deterministic
/// for a given (config.seed, stream) pair.
class IotEventGenerator {
 public:
  IotEventGenerator(const IotDomain& domain, std::uint64_t stream = 0);

  [[nodiscard]] Event next();
  [[nodiscard]] std::vector<Event> generate(std::size_t n);

 private:
  const IotDomain* domain_;
  Rng rng_;
  ZipfDistribution device_dist_;
  std::vector<double> battery_;
  std::vector<double> uptime_;
};

/// The subscriber profile a generated IoT subscription belongs to.
enum class IotSubscriberClass : std::uint8_t {
  DeviceWatch,   ///< one device's health (battery / signal)
  Threshold,     ///< region + sensor kind + reading threshold
  ZoneMonitor,   ///< region + zone + reading band
  FleetHealth,   ///< fleet-wide battery/firmware sweep
  AlarmFeed,     ///< region's alarm stream
};

/// Generates the narrow monitoring subscriptions typical of sensor
/// middleware deployments.
class IotSubscriptionGenerator {
 public:
  IotSubscriptionGenerator(const IotDomain& domain, std::uint64_t stream = 1);

  struct Generated {
    std::unique_ptr<Node> tree;
    IotSubscriberClass cls;
  };

  [[nodiscard]] Generated next();
  [[nodiscard]] std::unique_ptr<Node> next_tree() { return next().tree; }

  /// Flash-crowd template: a heat-wave style pile-on — temperature alerts
  /// concentrated on the hottest region.
  [[nodiscard]] std::unique_ptr<Node> hot_tree();

 private:
  [[nodiscard]] std::unique_ptr<Node> device_watch();
  [[nodiscard]] std::unique_ptr<Node> threshold_alert();
  [[nodiscard]] std::unique_ptr<Node> zone_monitor();
  [[nodiscard]] std::unique_ptr<Node> fleet_health();
  [[nodiscard]] std::unique_ptr<Node> alarm_feed();

  const IotDomain* domain_;
  Rng rng_;
  ZipfDistribution device_dist_;
  ZipfDistribution region_dist_;
};

}  // namespace dbsp
