#include "workload/event_gen.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp {

namespace {

/// Weighted pick over a small list; weights need not be normalized.
template <class T>
const T& weighted_pick(Rng& rng, const std::vector<T>& items,
                       const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < items.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return items[i];
  }
  return items.back();
}

double round_cents(double v) { return std::round(v * 100.0) / 100.0; }

}  // namespace

AuctionEventGenerator::AuctionEventGenerator(const AuctionDomain& domain,
                                             std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0x9e3779b97f4a7c15ULL + stream + 1),
      category_dist_(domain.categories().size(), domain.config().zipf_categories),
      title_dist_(domain.titles().size(), domain.config().zipf_titles),
      location_dist_(domain.locations().size(), domain.config().zipf_locations) {}

Event AuctionEventGenerator::next() {
  const AuctionDomain& d = *domain_;
  Event e;

  const std::size_t title_idx = title_dist_(rng_);
  e.set(d.category, d.categories()[category_dist_(rng_)]);
  e.set(d.title, d.titles()[title_idx]);
  e.set(d.author, d.author_of_title(title_idx));
  e.set(d.format, weighted_pick(rng_, d.formats(), {0.45, 0.30, 0.15, 0.10}));
  e.set(d.condition,
        weighted_pick(rng_, d.conditions(), {0.15, 0.20, 0.25, 0.30, 0.10}));

  const double price = round_cents(std::clamp(rng_.log_normal(2.7, 0.9), 0.5, 500.0));
  e.set(d.price, price);
  if (rng_.chance(0.6)) {
    e.set(d.buy_now, round_cents(price * rng_.uniform_real(1.2, 2.5)));
  }
  e.set(d.bids, static_cast<std::int64_t>(
                    std::min(200.0, std::floor(rng_.log_normal(1.2, 1.1)))));
  e.set(d.seller_rating,
        std::round(std::clamp(rng_.normal(92.0, 8.0), 50.0, 100.0) * 10.0) / 10.0);
  e.set(d.year, static_cast<std::int64_t>(
                    2006 - std::min(150.0, std::floor(rng_.log_normal(2.0, 1.1)))));
  e.set(d.pages, static_cast<std::int64_t>(
                     std::clamp(rng_.normal(320.0, 120.0), 20.0, 2000.0)));
  e.set(d.shipping,
        rng_.chance(0.3) ? 0.0 : round_cents(rng_.uniform_real(1.0, 15.0)));
  e.set(d.ends_in_hours, std::round(rng_.uniform_real(0.0, 168.0) * 10.0) / 10.0);
  e.set(d.location, d.locations()[location_dist_(rng_)]);
  e.set(d.is_signed, rng_.chance(0.03));
  e.set(d.first_edition, rng_.chance(0.08));
  return e;
}

std::vector<Event> AuctionEventGenerator::generate(std::size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace dbsp
