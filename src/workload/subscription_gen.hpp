#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "subscription/node.hpp"
#include "workload/auction_schema.hpp"

namespace dbsp {

/// The subscriber profile a generated subscription belongs to.
enum class SubscriberClass : std::uint8_t {
  BargainHunter,  ///< conjunctive: category + price ceiling + extras
  Collector,      ///< OR-group of authors/titles AND collector constraints
  MarketWatcher,  ///< OR of per-category monitoring conjunctions
};

/// Generates Boolean subscription trees of the three classes typical for
/// online book auctions (paper §4; DESIGN.md §2). Thresholds are drawn
/// from distributions similar to the event distributions so predicate
/// selectivities span the whole [0,1] range — the spread the network
/// heuristic exploits.
class AuctionSubscriptionGenerator {
 public:
  AuctionSubscriptionGenerator(const AuctionDomain& domain, std::uint64_t stream = 1);

  struct Generated {
    std::unique_ptr<Node> tree;
    SubscriberClass cls;
  };

  [[nodiscard]] Generated next();
  [[nodiscard]] std::unique_ptr<Node> next_tree() { return next().tree; }

  /// A batch of `n` trees.
  [[nodiscard]] std::vector<std::unique_ptr<Node>> generate(std::size_t n);

 private:
  [[nodiscard]] std::unique_ptr<Node> bargain_hunter(bool broad);
  [[nodiscard]] std::unique_ptr<Node> collector();
  [[nodiscard]] std::unique_ptr<Node> market_watcher(bool broad);
  [[nodiscard]] std::unique_ptr<Node> watcher_group(bool broad);
  [[nodiscard]] std::unique_ptr<Node> author_anchor();

  // Single-predicate leaf helpers; `maybe_negate` wraps the leaf in NOT
  // with the configured probability.
  [[nodiscard]] std::unique_ptr<Node> category_is();
  [[nodiscard]] std::unique_ptr<Node> price_ceiling();
  [[nodiscard]] std::unique_ptr<Node> price_band();
  [[nodiscard]] std::unique_ptr<Node> condition_at_least();
  [[nodiscard]] std::unique_ptr<Node> format_in();
  [[nodiscard]] std::unique_ptr<Node> rating_floor();
  [[nodiscard]] std::unique_ptr<Node> maybe_negate(std::unique_ptr<Node> node);

  const AuctionDomain* domain_;
  Rng rng_;
  ZipfDistribution category_dist_;
  ZipfDistribution title_dist_;
  ZipfDistribution author_dist_;
  ZipfDistribution location_dist_;
};

}  // namespace dbsp
