#pragma once

#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"
#include "workload/auction_schema.hpp"

namespace dbsp {

/// Generates auction listing events following the characteristic skewed
/// distributions of online book auctions: Zipfian popularity of categories,
/// titles, authors and seller locations; log-normal prices and bid counts;
/// quality-skewed conditions. Deterministic for a given (config.seed,
/// stream) pair.
class AuctionEventGenerator {
 public:
  /// `stream` decouples independent event streams (e.g. the statistics
  /// training sample vs. the published workload) drawn from one seed.
  AuctionEventGenerator(const AuctionDomain& domain, std::uint64_t stream = 0);

  [[nodiscard]] Event next();

  /// Convenience: a batch of `n` events.
  [[nodiscard]] std::vector<Event> generate(std::size_t n);

 private:
  const AuctionDomain* domain_;
  Rng rng_;
  ZipfDistribution category_dist_;
  ZipfDistribution title_dist_;
  ZipfDistribution location_dist_;
};

}  // namespace dbsp
