#include "workload/stock.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp {

namespace {

std::unique_ptr<Node> and_of(std::vector<std::unique_ptr<Node>> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  return Node::and_(std::move(parts));
}

std::unique_ptr<Node> or_of(std::vector<std::unique_ptr<Node>> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  return Node::or_(std::move(parts));
}

double round2(double v) { return std::round(v * 100.0) / 100.0; }

/// Ticker codes AAA, AAB, ... — dense, readable, unbounded.
std::string ticker_code(std::size_t i) {
  std::string code;
  code.push_back(static_cast<char>('A' + (i / 676) % 26));
  code.push_back(static_cast<char>('A' + (i / 26) % 26));
  code.push_back(static_cast<char>('A' + i % 26));
  if (i >= 26 * 26 * 26) code += std::to_string(i / (26 * 26 * 26));
  return code;
}

constexpr const char* kSectors[] = {
    "technology", "financials", "healthcare", "energy", "industrials",
    "materials", "utilities", "consumer_staples", "consumer_discretionary",
    "real_estate", "communications", "transport"};

constexpr const char* kExchanges[] = {"nyse", "nasdaq", "lse", "tse", "fra", "asx"};

}  // namespace

StockDomain::StockDomain(const StockConfig& config) : config_(config) {
  symbol = schema_.add_attribute("symbol", ValueType::String);
  exchange = schema_.add_attribute("exchange", ValueType::String);
  sector = schema_.add_attribute("sector", ValueType::String);
  price = schema_.add_attribute("price", ValueType::Double);
  change_pct = schema_.add_attribute("change_pct", ValueType::Double);
  volume = schema_.add_attribute("volume", ValueType::Int);
  bid = schema_.add_attribute("bid", ValueType::Double);
  ask = schema_.add_attribute("ask", ValueType::Double);
  spread_bps = schema_.add_attribute("spread_bps", ValueType::Double);
  market_cap_m = schema_.add_attribute("market_cap_m", ValueType::Double);
  pe_ratio = schema_.add_attribute("pe_ratio", ValueType::Double);
  dividend_yield = schema_.add_attribute("dividend_yield", ValueType::Double);
  volatility = schema_.add_attribute("volatility", ValueType::Double);
  halted = schema_.add_attribute("halted", ValueType::Bool);

  symbols_.reserve(config.symbols);
  for (std::size_t i = 0; i < config.symbols; ++i) symbols_.push_back(ticker_code(i));
  sectors_.reserve(config.sectors);
  for (std::size_t i = 0; i < config.sectors; ++i) {
    sectors_.push_back(i < std::size(kSectors) ? kSectors[i]
                                               : "sector_" + std::to_string(i));
  }
  exchanges_.reserve(config.exchanges);
  for (std::size_t i = 0; i < config.exchanges; ++i) {
    exchanges_.push_back(i < std::size(kExchanges) ? kExchanges[i]
                                                   : "exch_" + std::to_string(i));
  }

  // Fixed per-symbol fundamentals drawn once from the seed, so every
  // generator and subscription of a run agrees on them.
  Rng rng(config.seed * 0x2545f4914f6cdd1dULL + 7);
  base_price_.reserve(config.symbols);
  base_volatility_.reserve(config.symbols);
  for (std::size_t i = 0; i < config.symbols; ++i) {
    base_price_.push_back(round2(std::clamp(rng.log_normal(3.4, 1.2), 1.0, 5000.0)));
    base_volatility_.push_back(std::clamp(rng.log_normal(-4.8, 0.5), 0.002, 0.08));
  }
}

StockEventGenerator::StockEventGenerator(const StockDomain& domain,
                                         std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0x9e3779b97f4a7c15ULL + stream + 101),
      symbol_dist_(domain.symbols().size(), domain.config().zipf_symbols),
      price_(domain.symbols().size()) {
  for (std::size_t i = 0; i < price_.size(); ++i) price_[i] = domain.base_price(i);
}

Event StockEventGenerator::next() {
  const StockDomain& d = *domain_;
  const StockConfig& cfg = d.config();

  if (burst_remaining_ == 0 && rng_.chance(cfg.burst_probability)) {
    burst_remaining_ = cfg.burst_events;
    burst_symbol_ = symbol_dist_(rng_);  // Zipf: usually a hot ticker
  }

  bool bursting = false;
  std::size_t idx;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    bursting = rng_.chance(cfg.burst_share);
    idx = bursting ? burst_symbol_ : symbol_dist_(rng_);
  } else {
    idx = symbol_dist_(rng_);
  }

  // Multiplicative random walk with mean reversion toward the base price;
  // bursts amplify the step and the traded volume.
  const double amp = bursting ? 5.0 : 1.0;
  const double sigma = d.base_volatility(idx) * amp;
  const double reversion = 0.02 * std::log(d.base_price(idx) / price_[idx]);
  const double step = std::exp(rng_.normal(reversion, sigma));
  const double prev = price_[idx];
  price_[idx] = std::clamp(prev * step, 0.01, 100000.0);
  const double change = (price_[idx] / prev - 1.0) * 100.0;

  const double spread_frac =
      std::clamp(rng_.log_normal(bursting ? -6.2 : -7.0, 0.6), 1e-5, 0.02);
  const double half_spread = price_[idx] * spread_frac / 2.0;

  Event e;
  e.set(d.symbol, d.symbols()[idx]);
  e.set(d.exchange, d.exchange_of(idx));
  e.set(d.sector, d.sector_of(idx));
  e.set(d.price, round2(price_[idx]));
  e.set(d.change_pct, std::round(change * 1000.0) / 1000.0);
  e.set(d.volume, static_cast<std::int64_t>(
                      std::floor(rng_.log_normal(bursting ? 9.5 : 7.0, 1.3))));
  e.set(d.bid, round2(price_[idx] - half_spread));
  e.set(d.ask, round2(price_[idx] + half_spread));
  e.set(d.spread_bps, std::round(spread_frac * 10000.0 * 10.0) / 10.0);
  e.set(d.market_cap_m,
        round2(d.base_price(idx) * (50.0 + static_cast<double>(idx % 997))));
  e.set(d.pe_ratio, round2(std::clamp(rng_.log_normal(2.9, 0.6), 2.0, 400.0)));
  e.set(d.dividend_yield,
        std::round(std::clamp(rng_.log_normal(0.3, 0.9), 0.0, 12.0) * 100.0) / 100.0);
  e.set(d.volatility, std::round(sigma * 10000.0) / 10000.0);
  // Exchanges halt on extreme moves; bursts trip the breaker far more often.
  e.set(d.halted, std::abs(change) > 8.0 || rng_.chance(0.0005));
  return e;
}

std::vector<Event> StockEventGenerator::generate(std::size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

StockSubscriptionGenerator::StockSubscriptionGenerator(const StockDomain& domain,
                                                       std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0xbf58476d1ce4e5b9ULL + stream + 211),
      symbol_dist_(domain.symbols().size(), domain.config().zipf_symbols),
      sector_dist_(domain.sectors().size(), domain.config().zipf_sectors) {}

std::unique_ptr<Node> StockSubscriptionGenerator::symbol_is(std::size_t idx) {
  return Node::leaf(Predicate(domain_->symbol, Op::Eq, domain_->symbols()[idx]));
}

std::unique_ptr<Node> StockSubscriptionGenerator::price_alert() {
  // "Tell me when S trades below X or above Y" — thresholds scatter around
  // the symbol's base price so per-subscription selectivity varies widely.
  const std::size_t idx = symbol_dist_(rng_);
  const double base = domain_->base_price(idx);
  const double low = round2(base * rng_.uniform_real(0.75, 1.0));
  const double high = round2(base * rng_.uniform_real(1.0, 1.3));

  std::vector<std::unique_ptr<Node>> band;
  band.push_back(Node::leaf(Predicate(domain_->price, Op::Le, low)));
  band.push_back(Node::leaf(Predicate(domain_->price, Op::Ge, high)));

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(symbol_is(idx));
  parts.push_back(or_of(std::move(band)));
  if (rng_.chance(0.4)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->volume, Op::Ge,
        static_cast<std::int64_t>(rng_.uniform_int(100, 20000)))));
  }
  if (rng_.chance(0.25)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->spread_bps, Op::Le, std::round(rng_.uniform_real(2.0, 40.0)))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> StockSubscriptionGenerator::momentum_scanner() {
  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(Node::leaf(
      Predicate(domain_->sector, Op::Eq, domain_->sectors()[sector_dist_(rng_)])));
  const double floor = std::round(rng_.uniform_real(0.2, 4.0) * 10.0) / 10.0;
  parts.push_back(Node::leaf(Predicate(
      domain_->change_pct, rng_.chance(0.5) ? Op::Ge : Op::Le,
      rng_.chance(0.5) ? floor : -floor)));
  parts.push_back(Node::leaf(Predicate(
      domain_->volume, Op::Ge, static_cast<std::int64_t>(rng_.uniform_int(500, 50000)))));
  if (rng_.chance(0.4)) {
    const double lo = round2(rng_.log_normal(3.0, 1.0));
    parts.push_back(Node::leaf(
        Predicate(domain_->price, Value(lo), Value(round2(lo * rng_.uniform_real(2.0, 8.0))))));
  }
  if (rng_.chance(0.3)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->market_cap_m, Op::Ge, std::round(rng_.uniform_real(100.0, 5000.0)))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> StockSubscriptionGenerator::portfolio_guard() {
  // Holdings OR-group + "something is wrong" conditions.
  const auto holdings = static_cast<std::size_t>(rng_.uniform_int(2, 5));
  std::vector<std::unique_ptr<Node>> held;
  for (std::size_t i = 0; i < holdings; ++i) held.push_back(symbol_is(symbol_dist_(rng_)));

  std::vector<std::unique_ptr<Node>> trouble;
  trouble.push_back(Node::leaf(Predicate(
      domain_->change_pct, Op::Le,
      -std::round(rng_.uniform_real(1.0, 6.0) * 10.0) / 10.0)));
  trouble.push_back(Node::leaf(Predicate(domain_->halted, Op::Eq, true)));
  if (rng_.chance(0.3)) {
    trouble.push_back(Node::leaf(Predicate(
        domain_->spread_bps, Op::Ge, std::round(rng_.uniform_real(30.0, 120.0)))));
  }

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(or_of(std::move(held)));
  parts.push_back(or_of(std::move(trouble)));
  return and_of(std::move(parts));
}

std::unique_ptr<Node> StockSubscriptionGenerator::circuit_breaker() {
  // Broad extreme-move monitoring, the tape-wide minority.
  const double limit = std::round(rng_.uniform_real(4.0, 9.0) * 10.0) / 10.0;
  std::vector<std::unique_ptr<Node>> extreme;
  extreme.push_back(Node::leaf(Predicate(domain_->change_pct, Op::Ge, limit)));
  extreme.push_back(Node::leaf(Predicate(domain_->change_pct, Op::Le, -limit)));
  extreme.push_back(Node::leaf(Predicate(domain_->halted, Op::Eq, true)));

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(or_of(std::move(extreme)));
  parts.push_back(Node::leaf(Predicate(
      domain_->volume, Op::Ge, static_cast<std::int64_t>(rng_.uniform_int(100, 5000)))));
  if (rng_.chance(0.5)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->exchange, Op::Eq,
        domain_->exchanges()[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(domain_->exchanges().size()) - 1))])));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> StockSubscriptionGenerator::hot_tree() {
  // The flash-crowd shape: everyone piles onto the hottest ticker with a
  // slightly different move threshold.
  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(symbol_is(0));
  parts.push_back(Node::leaf(Predicate(
      domain_->change_pct, rng_.chance(0.7) ? Op::Ge : Op::Le,
      std::round(rng_.uniform_real(-2.0, 2.0) * 10.0) / 10.0)));
  if (rng_.chance(0.5)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->volume, Op::Ge, static_cast<std::int64_t>(rng_.uniform_int(10, 5000)))));
  }
  return and_of(std::move(parts));
}

StockSubscriptionGenerator::Generated StockSubscriptionGenerator::next() {
  const StockConfig& cfg = domain_->config();
  const double total = cfg.class_price_alert + cfg.class_momentum +
                       cfg.class_portfolio + cfg.class_breaker;
  const double u = rng_.uniform_real(0.0, total);

  Generated g;
  if (u < cfg.class_price_alert) {
    g.cls = StockSubscriberClass::PriceAlert;
    g.tree = price_alert();
  } else if (u < cfg.class_price_alert + cfg.class_momentum) {
    g.cls = StockSubscriberClass::MomentumScanner;
    g.tree = momentum_scanner();
  } else if (u < cfg.class_price_alert + cfg.class_momentum + cfg.class_portfolio) {
    g.cls = StockSubscriberClass::PortfolioGuard;
    g.tree = portfolio_guard();
  } else {
    g.cls = StockSubscriberClass::CircuitBreaker;
    g.tree = circuit_breaker();
  }
  g.tree = simplify(std::move(g.tree));
  return g;
}

}  // namespace dbsp
