#include "workload/subscription_gen.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp {

namespace {

std::unique_ptr<Node> and_of(std::vector<std::unique_ptr<Node>> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  return Node::and_(std::move(parts));
}

}  // namespace

AuctionSubscriptionGenerator::AuctionSubscriptionGenerator(const AuctionDomain& domain,
                                                           std::uint64_t stream)
    : domain_(&domain),
      rng_(domain.config().seed * 0xbf58476d1ce4e5b9ULL + stream + 17),
      category_dist_(domain.categories().size(), domain.config().zipf_categories),
      title_dist_(domain.titles().size(), domain.config().zipf_titles),
      author_dist_(domain.authors().size(), domain.config().zipf_authors),
      location_dist_(domain.locations().size(), domain.config().zipf_locations) {}

std::unique_ptr<Node> AuctionSubscriptionGenerator::maybe_negate(
    std::unique_ptr<Node> node) {
  if (rng_.chance(domain_->config().not_probability)) {
    return Node::not_(std::move(node));
  }
  return node;
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::category_is() {
  return Node::leaf(Predicate(domain_->category, Op::Eq,
                              domain_->categories()[category_dist_(rng_)]));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::price_ceiling() {
  // Ceilings follow a distribution similar to prices themselves, so the
  // selectivity of this predicate is spread over the whole unit interval.
  const double ceiling =
      std::round(std::clamp(rng_.log_normal(2.7, 1.1), 1.0, 400.0));
  return Node::leaf(Predicate(domain_->price, Op::Lt, ceiling));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::price_band() {
  const double lo = std::round(std::clamp(rng_.log_normal(2.3, 0.9), 1.0, 200.0));
  const double hi = lo + std::round(std::clamp(rng_.log_normal(2.5, 0.8), 2.0, 250.0));
  return Node::leaf(Predicate(domain_->price, Value(lo), Value(hi)));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::condition_at_least() {
  // "At least <quality>": a prefix of the best-to-worst condition ranking.
  const auto& conds = domain_->conditions();
  const auto cut = static_cast<std::size_t>(rng_.uniform_int(1, 4));
  if (cut == 1) {
    return Node::leaf(Predicate(domain_->condition, Op::Eq, conds[0]));
  }
  std::vector<Value> values;
  for (std::size_t i = 0; i < cut; ++i) values.emplace_back(conds[i]);
  return Node::leaf(Predicate(domain_->condition, std::move(values)));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::format_in() {
  const auto& formats = domain_->formats();
  if (rng_.chance(0.5)) {
    return Node::leaf(
        Predicate(domain_->format, Op::Eq,
                  formats[static_cast<std::size_t>(rng_.uniform_int(0, 3))]));
  }
  // Physical books only (paperback or hardcover) is the common case.
  return Node::leaf(Predicate(domain_->format, {Value(formats[0]), Value(formats[1])}));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::rating_floor() {
  const double floor = std::round(rng_.uniform_real(80.0, 99.0));
  return Node::leaf(Predicate(domain_->seller_rating, Op::Ge, floor));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::author_anchor() {
  return Node::leaf(
      Predicate(domain_->author, Op::Eq, domain_->authors()[author_dist_(rng_)]));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::bargain_hunter(bool broad) {
  std::vector<std::unique_ptr<Node>> parts;
  if (!broad) parts.push_back(author_anchor());
  parts.push_back(category_is());
  parts.push_back(price_ceiling());
  if (rng_.chance(0.6)) parts.push_back(condition_at_least());
  if (rng_.chance(0.4)) parts.push_back(format_in());
  if (rng_.chance(0.35)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->shipping, Op::Le, std::round(rng_.uniform_real(0.0, 8.0)))));
  }
  if (rng_.chance(0.3)) parts.push_back(maybe_negate(rating_floor()));
  if (rng_.chance(0.25)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->ends_in_hours, Op::Lt, std::round(rng_.uniform_real(1.0, 72.0)))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::collector() {
  // The wanted-items OR-group: specific authors and/or titles.
  std::vector<std::unique_ptr<Node>> wanted;
  const auto author_alternatives = static_cast<std::size_t>(rng_.uniform_int(1, 3));
  for (std::size_t i = 0; i < author_alternatives; ++i) {
    wanted.push_back(Node::leaf(
        Predicate(domain_->author, Op::Eq, domain_->authors()[author_dist_(rng_)])));
  }
  if (rng_.chance(0.5)) {
    wanted.push_back(Node::leaf(
        Predicate(domain_->title, Op::Eq, domain_->titles()[title_dist_(rng_)])));
  }

  std::vector<std::unique_ptr<Node>> parts;
  parts.push_back(wanted.size() == 1 ? std::move(wanted.front())
                                     : Node::or_(std::move(wanted)));
  if (rng_.chance(0.5)) parts.push_back(condition_at_least());
  if (rng_.chance(0.5)) {
    const auto to = static_cast<std::int64_t>(rng_.uniform_int(1950, 2000));
    const auto from = to - rng_.uniform_int(5, 60);
    parts.push_back(Node::leaf(Predicate(domain_->year, Value(from), Value(to))));
  }
  if (rng_.chance(0.3)) {
    parts.push_back(Node::leaf(Predicate(domain_->first_edition, Op::Eq, true)));
  }
  if (rng_.chance(0.15)) {
    parts.push_back(Node::leaf(Predicate(domain_->is_signed, Op::Eq, true)));
  }
  if (rng_.chance(0.7)) parts.push_back(price_ceiling());
  if (rng_.chance(0.2)) {
    parts.push_back(maybe_negate(Node::leaf(Predicate(
        domain_->location, Op::Eq, domain_->locations()[location_dist_(rng_)]))));
  }
  return and_of(std::move(parts));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::watcher_group(bool broad) {
  std::vector<std::unique_ptr<Node>> parts;
  if (!broad) parts.push_back(author_anchor());
  parts.push_back(category_is());
  parts.push_back(rng_.chance(0.5) ? price_band() : price_ceiling());
  if (rng_.chance(0.6)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->bids, Op::Ge, static_cast<std::int64_t>(rng_.uniform_int(1, 20)))));
  }
  if (rng_.chance(0.5)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->ends_in_hours, Op::Lt, std::round(rng_.uniform_real(2.0, 48.0)))));
  }
  if (rng_.chance(0.3)) parts.push_back(rating_floor());
  if (rng_.chance(0.2)) {
    parts.push_back(Node::leaf(Predicate(
        domain_->pages, Op::Ge, static_cast<std::int64_t>(rng_.uniform_int(100, 600)))));
  }
  // Guarantee at least two conjuncts so each group supports pruning.
  if (parts.size() < 2) parts.push_back(rating_floor());
  return and_of(std::move(parts));
}

std::unique_ptr<Node> AuctionSubscriptionGenerator::market_watcher(bool broad) {
  const auto groups = static_cast<std::size_t>(rng_.uniform_int(2, 3));
  std::vector<std::unique_ptr<Node>> alternatives;
  for (std::size_t i = 0; i < groups; ++i) {
    alternatives.push_back(watcher_group(broad));
  }
  return Node::or_(std::move(alternatives));
}

AuctionSubscriptionGenerator::Generated AuctionSubscriptionGenerator::next() {
  const auto& cfg = domain_->config();
  const double total = cfg.class_bargain + cfg.class_collector + cfg.class_watcher;
  const double u = rng_.uniform_real(0.0, total);
  // The broad minority: subscriptions with no specific-item anchor.
  const bool broad = rng_.chance(cfg.broad_fraction);

  Generated g;
  if (u < cfg.class_bargain) {
    g.cls = SubscriberClass::BargainHunter;
    g.tree = bargain_hunter(broad);
  } else if (u < cfg.class_bargain + cfg.class_collector) {
    g.cls = SubscriberClass::Collector;
    g.tree = collector();
  } else {
    g.cls = SubscriberClass::MarketWatcher;
    g.tree = market_watcher(broad);
  }
  g.tree = simplify(std::move(g.tree));
  return g;
}

std::vector<std::unique_ptr<Node>> AuctionSubscriptionGenerator::generate(std::size_t n) {
  std::vector<std::unique_ptr<Node>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next().tree);
  return out;
}

}  // namespace dbsp
