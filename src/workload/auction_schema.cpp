#include "workload/auction_schema.hpp"

namespace dbsp {

namespace {

std::vector<std::string> named_pool(const char* const* base, std::size_t base_n,
                                    const char* prefix, std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < base_n) {
      out.emplace_back(base[i]);
    } else {
      out.push_back(std::string(prefix) + std::to_string(i));
    }
  }
  return out;
}

constexpr const char* kCategories[] = {
    "fiction", "mystery", "science_fiction", "fantasy", "romance", "thriller",
    "history", "biography", "science", "technology", "children", "young_adult",
    "poetry", "art", "cooking", "travel", "religion", "business", "health",
    "sports", "comics", "reference", "philosophy", "music"};

constexpr const char* kLocations[] = {
    "usa", "uk", "germany", "canada", "australia", "france", "new_zealand",
    "japan", "italy", "spain", "netherlands", "ireland", "sweden", "brazil",
    "india", "switzerland"};

}  // namespace

AuctionDomain::AuctionDomain(const WorkloadConfig& config) : config_(config) {
  category = schema_.add_attribute("category", ValueType::String);
  title = schema_.add_attribute("title", ValueType::String);
  author = schema_.add_attribute("author", ValueType::String);
  format = schema_.add_attribute("format", ValueType::String);
  condition = schema_.add_attribute("condition", ValueType::String);
  price = schema_.add_attribute("price", ValueType::Double);
  buy_now = schema_.add_attribute("buy_now", ValueType::Double);
  bids = schema_.add_attribute("bids", ValueType::Int);
  seller_rating = schema_.add_attribute("seller_rating", ValueType::Double);
  year = schema_.add_attribute("year", ValueType::Int);
  pages = schema_.add_attribute("pages", ValueType::Int);
  shipping = schema_.add_attribute("shipping", ValueType::Double);
  ends_in_hours = schema_.add_attribute("ends_in_hours", ValueType::Double);
  location = schema_.add_attribute("location", ValueType::String);
  is_signed = schema_.add_attribute("is_signed", ValueType::Bool);
  first_edition = schema_.add_attribute("first_edition", ValueType::Bool);

  categories_ = named_pool(kCategories, std::size(kCategories), "category_",
                           config.categories);
  locations_ = named_pool(kLocations, std::size(kLocations), "location_",
                          config.locations);
  titles_.reserve(config.titles);
  for (std::size_t i = 0; i < config.titles; ++i) {
    titles_.push_back("title_" + std::to_string(i));
  }
  authors_.reserve(config.authors);
  for (std::size_t i = 0; i < config.authors; ++i) {
    authors_.push_back("author_" + std::to_string(i));
  }
  formats_ = {"paperback", "hardcover", "ebook", "audiobook"};
  conditions_ = {"new", "like_new", "very_good", "good", "acceptable"};
}

}  // namespace dbsp
