#pragma once

/// \file
/// The subscription churn model: seeded stochastic arrival/departure
/// processes that the ScenarioRunner interleaves with event publication.
/// Interest skew lives in the workload domains (their Zipf pools);
/// the churn model decides *how many* subscriptions come and go per event
/// tick and *which* live subscription leaves.

#include <cstdint>
#include <cstddef>

#include "common/rng.hpp"

namespace dbsp {

/// Rates of one churn regime (one scenario phase).
struct ChurnConfig {
  /// Expected subscription arrivals per published event (Poisson).
  double arrival_rate = 0.0;
  /// Expected unsubscriptions per published event (Poisson).
  double departure_rate = 0.0;
  /// Bias of departure-victim selection toward the *newest* live
  /// subscriptions — transient interest (a flash crowd) leaves first,
  /// long-lived sensor monitors stay. 1 = uniform over live subscriptions;
  /// larger values skew harder toward recent arrivals.
  double departure_recency_bias = 3.0;
};

/// A seeded churn process. Deterministic for a given (config, seed) pair.
class ChurnProcess {
 public:
  ChurnProcess(ChurnConfig config, std::uint64_t seed);

  /// Arrivals / departures for the next event tick (independent Poisson
  /// draws with the configured rates).
  [[nodiscard]] std::size_t arrivals();
  [[nodiscard]] std::size_t departures();

  /// Index of the departure victim among `live` subscriptions ordered by
  /// arrival time, 0 = newest. Power-law skewed toward 0 by
  /// departure_recency_bias. Precondition: live > 0.
  [[nodiscard]] std::size_t pick_victim(std::size_t live);

  [[nodiscard]] const ChurnConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::size_t poisson(double lambda);

  ChurnConfig config_;
  Rng rng_;
};

}  // namespace dbsp
