#include "scenario/churn.hpp"

#include <algorithm>
#include <cmath>

namespace dbsp {

ChurnProcess::ChurnProcess(ChurnConfig config, std::uint64_t seed)
    : config_(config), rng_(seed * 0x94d049bb133111ebULL + 601) {}

std::size_t ChurnProcess::poisson(double lambda) {
  // Knuth's product method; rates here are a handful per tick at most.
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  double p = 1.0;
  std::size_t k = 0;
  do {
    ++k;
    p *= rng_.uniform_real(0.0, 1.0);
  } while (p > limit);
  return k - 1;
}

std::size_t ChurnProcess::arrivals() { return poisson(config_.arrival_rate); }

std::size_t ChurnProcess::departures() { return poisson(config_.departure_rate); }

std::size_t ChurnProcess::pick_victim(std::size_t live) {
  const double bias = std::max(1.0, config_.departure_recency_bias);
  const double u = rng_.uniform_real(0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(live) * std::pow(u, bias));
  return std::min(idx, live - 1);
}

}  // namespace dbsp
